// FigureReport: the output unit of every analysis.
//
// Each figure/table reproduction produces one report: a title, one or more
// aligned text tables (often including explicit paper-vs-measured rows), and
// notes. Bench binaries print reports; `--csv` prints the tables as CSV.
#ifndef RPCSCOPE_SRC_CORE_REPORT_H_
#define RPCSCOPE_SRC_CORE_REPORT_H_

#include <string>
#include <vector>

#include "src/common/table.h"

namespace rpcscope {

struct FigureReport {
  std::string id;     // e.g. "fig02".
  std::string title;  // e.g. "Per-method RPC latency (Fig. 2)".
  std::vector<std::string> notes;
  std::vector<TextTable> tables;

  // Renders title, notes, and all tables for terminal output.
  std::string Render() const;
  std::string RenderCsv() const;
};

// Builds a three-column comparison table ("metric", "paper", "measured").
class ComparisonTable {
 public:
  ComparisonTable();
  void Add(const std::string& metric, const std::string& paper, const std::string& measured);
  TextTable Build() const { return table_; }

 private:
  TextTable table_;
};

// Standard entry point used by every bench binary: prints the report, as CSV
// when argv contains "--csv".
int RunFigureMain(int argc, char** argv, const FigureReport& report);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_CORE_REPORT_H_

// One analysis function per paper figure/table. Each consumes substrate
// output (sampled spans, call trees, DES study results, profiles, metric
// series) and produces a FigureReport with paper-vs-measured comparisons.
// The bench binaries under bench/ are thin wrappers: build workload -> call
// the analysis -> print.
#ifndef RPCSCOPE_SRC_CORE_ANALYSES_H_
#define RPCSCOPE_SRC_CORE_ANALYSES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/method_stats.h"
#include "src/core/report.h"
#include "src/fleet/call_graph.h"
#include "src/fleet/cluster_state.h"
#include "src/fleet/fleet_sampler.h"
#include "src/fleet/load_balancer.h"
#include "src/fleet/method_catalog.h"
#include "src/fleet/service_catalog.h"
#include "src/monitor/metrics.h"
#include "src/profile/profile.h"
#include "src/rpc/stage_model.h"

namespace rpcscope {

// --- Fig. 1: normalized RPS per CPU cycle over the measurement window.
FigureReport AnalyzeGrowth(const MetricRegistry& registry, int days);

// --- Fig. 2: per-method RPC completion time distributions.
FigureReport AnalyzeLatency(const MethodAggregator& agg);

// --- Fig. 3: method popularity vs latency rank.
FigureReport AnalyzePopularity(const MethodAggregator& agg, const MethodCatalog& catalog);

// --- Figs. 4 & 5: descendants / ancestors of nested call trees.
struct TreeShapeStats {
  // Per-method distributions of descendant counts and depths.
  std::map<int32_t, std::vector<double>> descendants_by_method;
  std::map<int32_t, std::vector<double>> ancestors_by_method;
  std::vector<double> tree_depths;
  std::vector<double> tree_widths;
};
TreeShapeStats CollectTreeShapes(CallGraphModel& model, int num_trees);
FigureReport AnalyzeDescendants(const TreeShapeStats& stats);
FigureReport AnalyzeAncestors(const TreeShapeStats& stats);

// --- Figs. 6 & 7: request sizes and response/request ratios.
FigureReport AnalyzeSizes(const MethodAggregator& agg);
FigureReport AnalyzeSizeRatio(const MethodAggregator& agg);

// --- Fig. 8 + Table 1: service mix by calls / bytes / cycles.
FigureReport AnalyzeServiceMix(const MethodAggregator& agg, const ProfileCollector& profile,
                               const ServiceCatalog& services);
FigureReport MakeTable1(const ServiceCatalog& services);

// --- Fig. 10: fleet-wide latency tax overview (mean and P95 tail).
// Two passes over identically-seeded samplers (bounded memory at fleet
// sample counts): pass 1 finds the P95 RCT, pass 2 aggregates components.
FigureReport AnalyzeTaxOverview(const std::function<FleetSampler()>& make_sampler, int64_t n);

// --- Figs. 11-13: per-method tax ratio, wire+stack latency, queueing.
FigureReport AnalyzeTaxRatio(const MethodAggregator& agg);
FigureReport AnalyzeWireStack(const MethodAggregator& agg);
FigureReport AnalyzeQueueing(const MethodAggregator& agg);

// --- Figs. 14-15: per-service completion-time breakdowns and the what-if
// tail analysis, from DES study spans.
struct ServiceSpans {
  std::string name;
  std::vector<Span> spans;
};
FigureReport AnalyzeServiceBreakdown(const std::vector<ServiceSpans>& studies);
FigureReport AnalyzeWhatIf(const std::vector<ServiceSpans>& studies);

// --- Fig. 16: P95 breakdown across clusters.
struct ClusterRunSpans {
  int cluster_index = 0;
  double exo_cpu_util = 0;
  std::vector<Span> spans;
};
FigureReport AnalyzeClusterVariation(
    const std::vector<std::pair<std::string, std::vector<ClusterRunSpans>>>& per_service);

// --- Fig. 17: exogenous variables vs P95 latency (bucketed sweeps).
// Buckets carry precomputed per-run statistics (runs are reused across the
// four variables, so carrying raw spans four times would dominate memory).
struct ExogenousBucket {
  double variable_value = 0;
  double p95_latency_ms = 0;
  double app_share = 0;
  double queue_share = 0;
};
FigureReport AnalyzeExogenousSweep(
    const std::vector<std::pair<std::string, std::vector<ExogenousBucket>>>& sweeps);

// Reduces one run's spans to the bucket statistics.
ExogenousBucket SummarizeRun(double variable_value, const std::vector<Span>& spans);

// --- Fig. 18: 24-hour co-movement of latency and exogenous variables.
struct DiurnalWindow {
  double hour = 0;
  double p95_latency_ms = 0;
  ExogenousState state;
};
FigureReport AnalyzeDiurnal(const std::vector<std::pair<std::string, std::vector<DiurnalWindow>>>&
                                clusters);

// --- Fig. 19: cross-cluster latency staircase.
struct CrossClusterPoint {
  int client_cluster = 0;
  std::string distance_class;
  std::vector<Span> spans;
};
FigureReport AnalyzeCrossCluster(const std::vector<CrossClusterPoint>& points);

// --- Figs. 20 & 21: cycle tax breakdown and per-method cycles.
FigureReport AnalyzeCycleTax(const ProfileCollector& profile);
FigureReport AnalyzeMethodCycles(const MethodAggregator& agg);

// --- Offload what-if (docs/TAX.md#reading-offload_whatif-output): reprice
// sampled fleet RPCs under each stage-cost profile in the catalog and compare
// fleet-wide completion-time quantiles and the cycle tax against the baseline
// profile (catalog id 0). The repricing is a span transform in the spirit of
// Fig. 15: queueing and wire components are left untouched; the two proc+stack
// components are scaled by the profile/baseline host-cycle ratio for their
// direction, plus device transfer+execution time when stages are offloaded.
struct OffloadProfileOutcome {
  std::string name;
  double p50_ms = 0;
  double p99_ms = 0;
  double host_tax_cycles = 0;  // Host-side stage cycles across all messages.
  double device_cycles = 0;    // Cycles moved to offload devices.
  std::array<double, kNumTaxCategories> category_cycles{};
};
struct OffloadWhatIf {
  FigureReport report;
  // One outcome per catalog profile, in catalog (id) order.
  std::vector<OffloadProfileOutcome> profiles;
};
OffloadWhatIf AnalyzeOffloadWhatIf(const std::vector<SampledRpc>& rpcs,
                                   const CycleCostModel& costs,
                                   const ProfileCatalog& profiles);

// --- Fig. 22: load balancing across clusters and machines.
FigureReport AnalyzeLoadBalance(
    const std::vector<std::pair<std::string, LoadBalanceResult>>& services);

// --- Fig. 23: error taxonomy by count and wasted cycles.
FigureReport AnalyzeErrors(const std::map<StatusCode, int64_t>& error_counts,
                           const std::map<StatusCode, double>& error_cycles,
                           int64_t total_calls);

// Shared helper: feed sampled RPCs into an aggregator/profile/error maps.
struct FleetScan {
  MethodAggregator agg;
  ProfileCollector profile;
  std::map<StatusCode, int64_t> error_counts;
  std::map<StatusCode, double> error_cycles;
  int64_t total_calls = 0;

  explicit FleetScan(int32_t num_methods) : agg(num_methods) {}
  void Add(const SampledRpc& rpc);
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_CORE_ANALYSES_H_

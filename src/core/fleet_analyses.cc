// Fleet-wide analyses: Figs. 1-3, 6-8, 10-13, 20, 21, 23 and Table 1.
#include <algorithm>
#include <cmath>

#include "src/common/stats.h"
#include "src/core/analyses.h"
#include "src/core/plot.h"
#include "src/fleet/growth_model.h"

namespace rpcscope {

namespace {

std::string FmtUs(double us) { return FormatDuration(DurationFromMicros(us)); }

// Quantile of the per-method quantiles: e.g. QQ(agg, 0.5, P99 of rct).
double QQ(const MethodAggregator& agg, double method_q,
          const std::function<double(const MethodAccum&)>& extract) {
  const std::vector<double> values = agg.CollectSorted(100, extract);
  return SortedQuantile(values, method_q);
}

}  // namespace

void FleetScan::Add(const SampledRpc& rpc) {
  agg.Add(rpc.span);
  profile.AddRpcSample(rpc.span.method_id, rpc.span.service_id, rpc.cycles, rpc.machine_speed,
                       rpc.span.status);
  ++total_calls;
  if (rpc.span.status != StatusCode::kOk) {
    ++error_counts[rpc.span.status];
    error_cycles[rpc.span.status] += rpc.cycles.Total() / rpc.machine_speed;
  }
}

FigureReport AnalyzeGrowth(const MetricRegistry& registry, int days) {
  FigureReport report;
  report.id = "fig01";
  report.title = "Normalized RPS per CPU cycle over time (Fig. 1)";
  const std::vector<double> ratio = GrowthModel::NormalizedDailyRatio(registry, days);

  TextTable series({"day", "normalized RPS/CPU"});
  for (size_t d = 0; d < ratio.size(); d += 28) {
    series.AddRow({std::to_string(d), FormatDouble(ratio[d], 3)});
  }
  if (!ratio.empty()) {
    series.AddRow({std::to_string(ratio.size() - 1), FormatDouble(ratio.back(), 3)});
  }

  ComparisonTable cmp;
  if (!ratio.empty()) {
    const double total_growth = ratio.back();
    const double annual =
        std::pow(total_growth, 365.0 / static_cast<double>(ratio.size())) - 1.0;
    cmp.Add("total growth over window", "+64%",
            "+" + FormatDouble((total_growth - 1.0) * 100, 1) + "%");
    cmp.Add("annualized growth", "~30%/yr", FormatDouble(annual * 100, 1) + "%/yr");
  }
  report.tables.push_back(cmp.Build());
  report.tables.push_back(series);
  report.notes.push_back("RPC usage grows faster than compute: the fleet serves more RPCs per "
                         "CPU cycle every year.");
  return report;
}

FigureReport AnalyzeLatency(const MethodAggregator& agg) {
  FigureReport report;
  report.id = "fig02";
  report.title = "Per-method RPC completion time (Fig. 2)";

  auto p = [](double q) {
    return [q](const MethodAccum& m) { return m.rct.Quantile(q); };
  };

  ComparisonTable cmp;
  cmp.Add("P1 latency, 90% of methods <=", "657us", FmtUs(QQ(agg, 0.90, p(0.01))));
  cmp.Add("median latency, 90% of methods >=", "10.7ms", FmtUs(QQ(agg, 0.10, p(0.5))));
  cmp.Add("P99 latency, 99.5% of methods >=", "1ms", FmtUs(QQ(agg, 0.005, p(0.99))));
  cmp.Add("P99 latency, 50% of methods >=", "225ms", FmtUs(QQ(agg, 0.50, p(0.99))));
  cmp.Add("slowest 5% of methods: P1 >=", "166ms", FmtUs(QQ(agg, 0.95, p(0.01))));
  cmp.Add("slowest 5% of methods: P99 >=", "5s", FmtUs(QQ(agg, 0.95, p(0.99))));
  report.tables.push_back(cmp.Build());

  // Heatmap-style summary: method deciles (by median RCT) x latency quantiles.
  std::vector<const MethodAccum*> eligible = agg.Eligible(100);
  std::sort(eligible.begin(), eligible.end(), [](const MethodAccum* a, const MethodAccum* b) {
    return a->rct.Quantile(0.5) < b->rct.Quantile(0.5);
  });
  TextTable heat({"method decile", "P1", "P10", "P50", "P90", "P99"});
  for (int d = 0; d < 10; ++d) {
    const size_t idx =
        std::min(eligible.size() - 1, (eligible.size() * (2 * static_cast<size_t>(d) + 1)) / 20);
    const MethodAccum* m = eligible[idx];
    heat.AddRow({std::to_string(d * 10) + "-" + std::to_string(d * 10 + 10) + "%",
                 FmtUs(m->rct.Quantile(0.01)), FmtUs(m->rct.Quantile(0.10)),
                 FmtUs(m->rct.Quantile(0.5)), FmtUs(m->rct.Quantile(0.90)),
                 FmtUs(m->rct.Quantile(0.99))});
  }
  report.tables.push_back(heat);
  report.notes.push_back("Hyperscale RPCs operate at millisecond, not microsecond timescales; "
                         "tails reach seconds.");
  // Fig. 2b analogue: CDF of per-method P99 latency in milliseconds.
  const std::vector<double> p99s_ms = agg.CollectSorted(
      100, [](const MethodAccum& m) { return m.rct.Quantile(0.99) / 1000.0; });
  report.notes.push_back("CDF of per-method P99 completion time (ms):\n" +
                         RenderAsciiCdf(p99s_ms, 60, 10, "ms"));
  return report;
}

FigureReport AnalyzePopularity(const MethodAggregator& agg, const MethodCatalog& catalog) {
  FigureReport report;
  report.id = "fig03";
  report.title = "Per-method RPC frequency (Fig. 3)";

  // Call counts per method, in latency order (method id == latency rank).
  const auto& methods = agg.methods();
  std::vector<double> counts(methods.size());
  double total = 0;
  for (size_t i = 0; i < methods.size(); ++i) {
    counts[i] = static_cast<double>(methods[i].calls);
    total += counts[i];
  }
  double fastest100 = 0;
  for (size_t i = 0; i < std::min<size_t>(100, counts.size()); ++i) {
    fastest100 += counts[i];
  }
  const size_t slow_start = counts.size() >= 1000 ? counts.size() - 1000 : 0;
  double slowest1000 = 0, slowest1000_time = 0, total_time = 0;
  for (size_t i = 0; i < methods.size(); ++i) {
    total_time += methods[i].total_time_us;
    if (i >= slow_start) {
      slowest1000 += counts[i];
      slowest1000_time += methods[i].total_time_us;
    }
  }
  std::vector<double> sorted_counts = counts;
  std::sort(sorted_counts.rbegin(), sorted_counts.rend());
  double top10 = 0, top100 = 0;
  for (size_t i = 0; i < std::min<size_t>(100, sorted_counts.size()); ++i) {
    if (i < 10) {
      top10 += sorted_counts[i];
    }
    top100 += sorted_counts[i];
  }
  const double write_share =
      catalog.network_disk_write_id() >= 0
          ? counts[static_cast<size_t>(catalog.network_disk_write_id())] / total
          : 0;

  ComparisonTable cmp;
  cmp.Add("Network Disk Write share of all calls", "28%", FormatPercent(write_share));
  cmp.Add("100 lowest-latency methods share", "40%", FormatPercent(fastest100 / total));
  cmp.Add("top-10 most popular methods share", "58%", FormatPercent(top10 / total));
  cmp.Add("top-100 most popular methods share", "91%", FormatPercent(top100 / total));
  cmp.Add("slowest 1000 methods: share of calls", "1.1%", FormatPercent(slowest1000 / total));
  cmp.Add("slowest 1000 methods: share of total RPC time", "89%",
          FormatPercent(total_time > 0 ? slowest1000_time / total_time : 0));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Popularity is extremely skewed and concentrated on low-latency "
                         "methods; the slow tail dominates total RPC time.");
  return report;
}

FigureReport AnalyzeSizes(const MethodAggregator& agg) {
  FigureReport report;
  report.id = "fig06";
  report.title = "Per-method request size (Fig. 6)";
  auto req = [](double q) {
    return [q](const MethodAccum& m) { return m.req_size.Quantile(q); };
  };
  auto resp = [](double q) {
    return [q](const MethodAccum& m) { return m.resp_size.Quantile(q); };
  };
  ComparisonTable cmp;
  cmp.Add("smallest request observed", "64B (one cache line)",
          FormatBytes(QQ(agg, 0.0, [](const MethodAccum& m) { return m.req_size.min(); })));
  cmp.Add("median-method median request", "1530B", FormatBytes(QQ(agg, 0.5, req(0.5))));
  cmp.Add("median-method median response", "315B", FormatBytes(QQ(agg, 0.5, resp(0.5))));
  cmp.Add("P90-method median request", "11.8KB", FormatBytes(QQ(agg, 0.9, req(0.5))));
  cmp.Add("P90-method median response", "10KB", FormatBytes(QQ(agg, 0.9, resp(0.5))));
  cmp.Add("P99-method median request", "196KB", FormatBytes(QQ(agg, 0.99, req(0.5))));
  cmp.Add("P99-method median response", "563KB", FormatBytes(QQ(agg, 0.99, resp(0.5))));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Most RPCs are small (KB-scale) but the size tail spans orders of "
                         "magnitude; single-MTU offloads would miss the tail.");
  return report;
}

FigureReport AnalyzeSizeRatio(const MethodAggregator& agg) {
  FigureReport report;
  report.id = "fig07";
  report.title = "Per-method response/request size ratio (Fig. 7)";
  const std::vector<double> median_ratios = agg.CollectSorted(
      100, [](const MethodAccum& m) { return m.size_ratio.Quantile(0.5); });
  double below_one = 0;
  for (double r : median_ratios) {
    if (r < 1.0) {
      below_one += 1;
    }
  }
  ComparisonTable cmp;
  cmp.Add("methods with median ratio < 1 (write-dominant)", "majority",
          FormatPercent(median_ratios.empty()
                            ? 0
                            : below_one / static_cast<double>(median_ratios.size())));
  cmp.Add("median-method median ratio", "<1",
          FormatDouble(SortedQuantile(median_ratios, 0.5), 2));
  cmp.Add("P99-method median ratio (read-heavy tail)", ">>1",
          FormatDouble(SortedQuantile(median_ratios, 0.99), 1));
  report.tables.push_back(cmp.Build());

  TextTable dist({"method quantile", "median resp/req ratio"});
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    dist.AddRow({FormatPercent(q, 0), FormatDouble(SortedQuantile(median_ratios, q), 2)});
  }
  report.tables.push_back(dist);
  report.notes.push_back("Most methods serve both reads and writes, with the bulk of RPCs "
                         "write-dominant; both tails are heavy.");
  return report;
}

FigureReport AnalyzeServiceMix(const MethodAggregator& agg, const ProfileCollector& profile,
                               const ServiceCatalog& services) {
  FigureReport report;
  report.id = "fig08";
  report.title = "Fraction of top RPC services by calls, bytes, and cycles (Fig. 8)";

  std::vector<double> calls(static_cast<size_t>(services.size()), 0.0);
  std::vector<double> bytes(static_cast<size_t>(services.size()), 0.0);
  double total_calls = 0, total_bytes = 0;
  for (const MethodAccum& m : agg.methods()) {
    if (m.service_id < 0 || m.calls == 0) {
      continue;
    }
    calls[static_cast<size_t>(m.service_id)] += static_cast<double>(m.calls);
    const double b = m.req_size.sum() + m.resp_size.sum();
    bytes[static_cast<size_t>(m.service_id)] += b;
    total_calls += static_cast<double>(m.calls);
    total_bytes += b;
  }
  double total_cycles = 0;
  for (const auto& [sid, cycles] : profile.per_service_cycles()) {
    total_cycles += cycles;
  }

  TextTable mix({"service", "calls %", "bytes %", "cycles %"});
  for (int32_t id : services.TopByCallShare(static_cast<size_t>(services.size()))) {
    const size_t s = static_cast<size_t>(id);
    const auto it = profile.per_service_cycles().find(id);
    const double cyc = it == profile.per_service_cycles().end() ? 0 : it->second;
    mix.AddRow({services.service(id).name,
                FormatPercent(total_calls > 0 ? calls[s] / total_calls : 0),
                FormatPercent(total_bytes > 0 ? bytes[s] / total_bytes : 0),
                FormatPercent(total_cycles > 0 ? cyc / total_cycles : 0, 2)});
  }
  report.tables.push_back(mix);

  const int32_t nd = services.studied().network_disk;
  const int32_t ml = services.studied().ml_inference;
  const int32_t f1 = services.studied().f1;
  auto cycles_share = [&](int32_t id) {
    const auto it = profile.per_service_cycles().find(id);
    return total_cycles > 0 && it != profile.per_service_cycles().end()
               ? it->second / total_cycles
               : 0.0;
  };
  double top8 = 0;
  for (int32_t id : services.TopByCallShare(8)) {
    top8 += calls[static_cast<size_t>(id)];
  }
  ComparisonTable cmp;
  cmp.Add("top-8 services' share of calls", "60%",
          FormatPercent(total_calls > 0 ? top8 / total_calls : 0));
  cmp.Add("Network Disk share of calls", "35%",
          FormatPercent(calls[static_cast<size_t>(nd)] / total_calls));
  cmp.Add("Network Disk share of cycles", "<2%", FormatPercent(cycles_share(nd), 2));
  cmp.Add("ML Inference calls vs cycles", "0.17% / 0.89%",
          FormatPercent(calls[static_cast<size_t>(ml)] / total_calls, 2) + " / " +
              FormatPercent(cycles_share(ml), 2));
  cmp.Add("F1 calls vs cycles", "1.8% / 1.8%",
          FormatPercent(calls[static_cast<size_t>(f1)] / total_calls, 2) + " / " +
              FormatPercent(cycles_share(f1), 2));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Storage dominates invocations and bytes; compute-heavy services "
                         "consume disproportionately many cycles per call.");
  return report;
}

FigureReport MakeTable1(const ServiceCatalog& services) {
  FigureReport report;
  report.id = "table1";
  report.title = "RPC services in this study (Table 1)";
  TextTable t({"category", "server", "client", "RPC size", "method description"});
  auto row = [&](const char* category, int32_t id) {
    const ServiceSpec& s = services.service(id);
    t.AddRow({category, s.name, s.table1_client, s.table1_rpc_size, s.table1_description});
  };
  const StudiedServices& ids = services.studied();
  row("Storage", ids.bigtable);
  row("Storage", ids.network_disk);
  row("Storage", ids.ssd_cache);
  row("Storage", ids.video_metadata);
  row("Storage", ids.spanner);
  row("Compute-intensive", ids.f1);
  row("Compute-intensive", ids.ml_inference);
  row("Latency-sensitive", ids.kv_store);
  report.tables.push_back(t);
  return report;
}

FigureReport AnalyzeTaxOverview(const std::function<FleetSampler()>& make_sampler, int64_t n) {
  FigureReport report;
  report.id = "fig10";
  report.title = "RPC latency tax: fleet-wide mean and P95 tail (Fig. 10)";

  // Pass 1: distribution of completion times to locate the P95 threshold.
  LogHistogram totals({.min_value = 1.0, .max_value = 1e8, .buckets_per_decade = 20});
  {
    FleetSampler sampler = make_sampler();
    for (int64_t i = 0; i < n; ++i) {
      const Span span = sampler.Sample().span;
      if (span.status == StatusCode::kOk) {
        totals.Add(ToMicros(span.latency.Total()));
      }
    }
  }
  const double p95_us = totals.Quantile(0.95);

  // Pass 2: component sums, overall and among tail RPCs.
  double sum_total = 0, sum_app = 0, sum_wire = 0, sum_proc = 0, sum_queue = 0;
  double tail_total = 0, tail_app = 0, tail_wire = 0, tail_proc = 0, tail_queue = 0;
  {
    FleetSampler sampler = make_sampler();
    for (int64_t i = 0; i < n; ++i) {
      const Span span = sampler.Sample().span;
      if (span.status != StatusCode::kOk) {
        continue;
      }
      const double total = ToMicros(span.latency.Total());
      const double app = ToMicros(span.latency[RpcComponent::kServerApp]);
      const double wire = ToMicros(span.latency.WireTotal());
      const double proc = ToMicros(span.latency.ProcStackTotal());
      const double queue = ToMicros(span.latency.QueueTotal());
      sum_total += total;
      sum_app += app;
      sum_wire += wire;
      sum_proc += proc;
      sum_queue += queue;
      if (total >= p95_us) {
        tail_total += total;
        tail_app += app;
        tail_wire += wire;
        tail_proc += proc;
        tail_queue += queue;
      }
    }
  }

  ComparisonTable cmp;
  cmp.Add("mean latency tax (share of RCT)", "2.0%",
          FormatPercent((sum_total - sum_app) / sum_total, 2));
  cmp.Add("  network wire share", "1.1%", FormatPercent(sum_wire / sum_total, 2));
  cmp.Add("  RPC proc + net stack share", "0.49%", FormatPercent(sum_proc / sum_total, 2));
  cmp.Add("  queueing share", "0.43%", FormatPercent(sum_queue / sum_total, 2));
  cmp.Add("P95-tail tax (share of tail RCT)", "significant, network-skewed",
          FormatPercent((tail_total - tail_app) / tail_total, 1));
  report.tables.push_back(cmp.Build());

  TextTable tail({"component", "overall share", "P95-tail share"});
  tail.AddRow({"Server application", FormatPercent(sum_app / sum_total),
               FormatPercent(tail_app / tail_total)});
  tail.AddRow({"Network wire", FormatPercent(sum_wire / sum_total, 2),
               FormatPercent(tail_wire / tail_total, 2)});
  tail.AddRow({"RPC proc + net stack", FormatPercent(sum_proc / sum_total, 2),
               FormatPercent(tail_proc / tail_total, 2)});
  tail.AddRow({"Queueing", FormatPercent(sum_queue / sum_total, 2),
               FormatPercent(tail_queue / tail_total, 2)});
  report.tables.push_back(tail);
  report.notes.push_back("Application time dominates on average, but the tax share grows in "
                         "the tail and skews toward the network.");
  return report;
}

FigureReport AnalyzeTaxRatio(const MethodAggregator& agg) {
  FigureReport report;
  report.id = "fig11";
  report.title = "Per-method tax ratio: RPC Latency Tax / RCT (Fig. 11)";
  auto ratio = [](double q) {
    return [q](const MethodAccum& m) { return m.tax_ratio.Quantile(q); };
  };
  ComparisonTable cmp;
  cmp.Add("median-method median tax ratio", "8.6%", FormatPercent(QQ(agg, 0.5, ratio(0.5))));
  cmp.Add("top-decile methods: median tax ratio", "38%", FormatPercent(QQ(agg, 0.9, ratio(0.5))));
  cmp.Add("top-decile methods: P90 tax ratio", "96%", FormatPercent(QQ(agg, 0.9, ratio(0.9))));
  cmp.Add("P99 tax ratio, median method", "66%", FormatPercent(QQ(agg, 0.5, ratio(0.99))));
  cmp.Add("P99 tax ratio, bottom 1% of methods", "0.5%",
          FormatPercent(QQ(agg, 0.01, ratio(0.99)), 2));
  cmp.Add("P99 tax ratio, top 1% of methods", "99.99%",
          FormatPercent(QQ(agg, 0.99, ratio(0.99)), 2));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Most RPCs are bottlenecked by application time, but at the tail many "
                         "methods' latency is almost entirely RPC tax.");
  return report;
}

FigureReport AnalyzeWireStack(const MethodAggregator& agg) {
  FigureReport report;
  report.id = "fig12";
  report.title = "Per-method network wire + proc/stack latency (Fig. 12)";
  auto ws = [](double q) {
    return [q](const MethodAccum& m) { return m.wire_stack.Quantile(q); };
  };
  ComparisonTable cmp;
  cmp.Add("fastest 1% of methods: P99", "6ms", FmtUs(QQ(agg, 0.01, ws(0.99))));
  cmp.Add("fastest 10% of methods: P99", "19ms", FmtUs(QQ(agg, 0.10, ws(0.99))));
  cmp.Add("fastest 50% of methods: P99 <=", "115ms", FmtUs(QQ(agg, 0.50, ws(0.99))));
  cmp.Add("slowest 10% of methods: P99 >=", "271ms", FmtUs(QQ(agg, 0.90, ws(0.99))));
  cmp.Add("slowest 1% of methods: P99 >=", "826ms (> 200ms max WAN RTT)",
          FmtUs(QQ(agg, 0.99, ws(0.99))));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Tail network latencies exceed the longest WAN propagation delay: "
                         "congestion still impacts the WAN.");
  return report;
}

FigureReport AnalyzeQueueing(const MethodAggregator& agg) {
  FigureReport report;
  report.id = "fig13";
  report.title = "Per-method queueing latency (Fig. 13)";
  auto qx = [](double q) {
    return [q](const MethodAccum& m) { return m.queue.Quantile(q); };
  };
  ComparisonTable cmp;
  cmp.Add("median-method median queueing <=", "360us", FmtUs(QQ(agg, 0.5, qx(0.5))));
  cmp.Add("median-method P99 queueing <=", "102ms", FmtUs(QQ(agg, 0.5, qx(0.99))));
  cmp.Add("worst-decile methods: median queueing", "1.1ms", FmtUs(QQ(agg, 0.9, qx(0.5))));
  cmp.Add("worst-decile methods: P99 queueing", "611ms", FmtUs(QQ(agg, 0.9, qx(0.99))));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Tail queueing is orders of magnitude above the median: better "
                         "scheduling/load-balancing can cut tail latency.");
  return report;
}

FigureReport AnalyzeCycleTax(const ProfileCollector& profile) {
  FigureReport report;
  report.id = "fig20";
  report.title = "RPC cycle tax across the fleet (Fig. 20)";
  const auto fractions = profile.TaxCategoryFractions();
  ComparisonTable cmp;
  cmp.Add("total RPC cycle tax (share of all cycles)", "7.1%",
          FormatPercent(profile.TaxFraction(), 2));
  cmp.Add("  compression", "3.1%",
          FormatPercent(fractions[static_cast<size_t>(CycleCategory::kCompression)], 2));
  cmp.Add("  networking", "1.7%",
          FormatPercent(fractions[static_cast<size_t>(CycleCategory::kNetworking)], 2));
  cmp.Add("  serialization", "1.2%",
          FormatPercent(fractions[static_cast<size_t>(CycleCategory::kSerialization)], 2));
  cmp.Add("  RPC library", "1.1%",
          FormatPercent(fractions[static_cast<size_t>(CycleCategory::kRpcLibrary)], 2));
  cmp.Add("  encryption (folded into networking in the paper)", "-",
          FormatPercent(fractions[static_cast<size_t>(CycleCategory::kEncryption)], 2));
  cmp.Add("  checksum", "-",
          FormatPercent(fractions[static_cast<size_t>(CycleCategory::kChecksum)], 2));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Compression is the single biggest tax component; the RPC library "
                         "itself is a small fraction, so offloading it alone has limited value.");
  std::vector<Bar> bars;
  for (int c = 0; c < kNumTaxCategories; ++c) {
    bars.push_back({std::string(CycleCategoryName(static_cast<CycleCategory>(c))),
                    fractions[static_cast<size_t>(c)] * 100});
  }
  report.notes.push_back("tax cycles by category (% of all fleet cycles):\n" +
                         RenderAsciiBars(bars, 40));
  return report;
}

FigureReport AnalyzeMethodCycles(const MethodAggregator& agg) {
  FigureReport report;
  report.id = "fig21";
  report.title = "Per-method normalized CPU cycles (Fig. 21)";
  auto cy = [](double q) {
    return [q](const MethodAccum& m) { return m.cycles.Quantile(q); };
  };
  const std::vector<double> p50s =
      agg.CollectSorted(100, [](const MethodAccum& m) { return m.cycles.Quantile(0.5); });
  const std::vector<double> p99_over_p50 = agg.CollectSorted(100, [](const MethodAccum& m) {
    const double p50 = m.cycles.Quantile(0.5);
    return p50 > 0 ? m.cycles.Quantile(0.99) / p50 : 0;
  });
  ComparisonTable cmp;
  cmp.Add("cheapest 10% of calls, cheapest 10% of methods", "0.017",
          FormatDouble(QQ(agg, 0.10, cy(0.10)), 3));
  cmp.Add("cheapest 10% of calls, 90th pct of methods", "0.02",
          FormatDouble(QQ(agg, 0.90, cy(0.10)), 3));
  cmp.Add("most-expensive 10% of calls, method spread", "0.02-0.16+",
          FormatDouble(QQ(agg, 0.10, cy(0.90)), 3) + " - " +
              FormatDouble(QQ(agg, 0.90, cy(0.90)), 3));
  cmp.Add("median-method P99/median cycle ratio", "10-100x",
          FormatDouble(SortedQuantile(p99_over_p50, 0.5), 1) + "x");
  report.tables.push_back(cmp.Build());
  report.notes.push_back("CPU cost per call is heavy-tailed for almost all methods, and is not "
                         "predictable from size or latency: load balancing by count mis-balances "
                         "CPU.");
  return report;
}

FigureReport AnalyzeErrors(const std::map<StatusCode, int64_t>& error_counts,
                           const std::map<StatusCode, double>& error_cycles,
                           int64_t total_calls) {
  FigureReport report;
  report.id = "fig23";
  report.title = "RPC error taxonomy by count and wasted cycles (Fig. 23)";
  int64_t total_errors = 0;
  double total_wasted = 0;
  for (const auto& [code, count] : error_counts) {
    total_errors += count;
  }
  for (const auto& [code, cycles] : error_cycles) {
    total_wasted += cycles;
  }
  TextTable t({"error type", "% of errors", "% of wasted cycles"});
  // Render in descending count order.
  std::vector<std::pair<StatusCode, int64_t>> ordered(error_counts.begin(), error_counts.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [code, count] : ordered) {
    const auto it = error_cycles.find(code);
    const double cycles = it == error_cycles.end() ? 0 : it->second;
    t.AddRow({std::string(StatusCodeName(code)),
              FormatPercent(total_errors > 0
                                ? static_cast<double>(count) / static_cast<double>(total_errors)
                                : 0),
              FormatPercent(total_wasted > 0 ? cycles / total_wasted : 0)});
  }
  report.tables.push_back(t);

  auto share = [&](StatusCode code, const auto& map_in, double denom) -> double {
    const auto it = map_in.find(code);
    if (it == map_in.end() || denom <= 0) {
      return 0;
    }
    return static_cast<double>(it->second) / denom;
  };
  ComparisonTable cmp;
  cmp.Add("overall error rate", "1.9%",
          FormatPercent(total_calls > 0 ? static_cast<double>(total_errors) /
                                              static_cast<double>(total_calls)
                                        : 0,
                        2));
  cmp.Add("Cancelled: share of errors", "45%",
          FormatPercent(share(StatusCode::kCancelled, error_counts,
                              static_cast<double>(total_errors))));
  cmp.Add("Cancelled: share of wasted cycles", "55%",
          FormatPercent(share(StatusCode::kCancelled, error_cycles, total_wasted)));
  cmp.Add("NotFound: share of errors", "20%",
          FormatPercent(share(StatusCode::kNotFound, error_counts,
                              static_cast<double>(total_errors))));
  cmp.Add("NotFound: share of wasted cycles", "21%",
          FormatPercent(share(StatusCode::kNotFound, error_cycles, total_wasted)));
  report.tables.push_back(cmp.Build());
  report.notes.push_back("Cancellations (mostly request hedging) dominate errors and consume an "
                         "outsized share of wasted cycles.");
  return report;
}

}  // namespace rpcscope

// Offload what-if: the hardware-acceleration counterpart of Fig. 15.
//
// Fig. 20/21 show where the fleet's tax cycles go; the offload literature
// (RPCAcc, kernel-bypass transports, NIC crypto engines, NotNets) asks what
// happens if individual stages stop running on host CPUs. This analysis
// replays a fleet sample under every stage-cost profile in a ProfileCatalog
// and reports the fleet-wide completion-time quantiles and the per-category
// cycle tax next to the baseline profile. docs/TAX.md documents the method
// and how to read the output.
#include <algorithm>
#include <array>
#include <cmath>

#include "src/common/stats.h"
#include "src/core/analyses.h"

namespace rpcscope {

namespace {

// Host-side tax cycles the legacy pipeline charges for one direction of one
// message. Identical to what the baseline profile produces (a unit test pins
// that equivalence), so baseline rows double as the pre-offload reference.
double LegacySideCycles(const CycleCostModel& costs, bool send, int64_t payload_bytes,
                        int64_t wire_bytes) {
  const CycleBreakdown b = send ? costs.SendSideCost(payload_bytes, wire_bytes)
                                : costs.RecvSideCost(payload_bytes, wire_bytes);
  return b.TaxTotal();
}

}  // namespace

OffloadWhatIf AnalyzeOffloadWhatIf(const std::vector<SampledRpc>& rpcs,
                                   const CycleCostModel& costs,
                                   const ProfileCatalog& profiles) {
  OffloadWhatIf out;
  out.report.id = "offload";
  out.report.title = "Offload what-if: fleet latency and cycle tax per stage-cost profile";

  for (int32_t id = 0; id < static_cast<int32_t>(profiles.size()); ++id) {
    const TaxProfile& profile = profiles.at(static_cast<size_t>(id));
    OffloadProfileOutcome outcome;
    outcome.name = profile.name;

    std::vector<double> totals_ms;
    totals_ms.reserve(rpcs.size());
    for (const SampledRpc& rpc : rpcs) {
      const Span& s = rpc.span;
      if (s.status != StatusCode::kOk) {
        continue;
      }
      // The four stage-pipeline traversals of a unary call: client-send and
      // server-recv of the request, server-send and client-recv of the
      // response. Each is repriced under the profile.
      struct Side {
        int64_t payload;
        int64_t wire;
        bool send;
      };
      const Side req_sides[2] = {{s.request_payload_bytes, s.request_wire_bytes, true},
                                 {s.request_payload_bytes, s.request_wire_bytes, false}};
      const Side rsp_sides[2] = {{s.response_payload_bytes, s.response_wire_bytes, true},
                                 {s.response_payload_bytes, s.response_wire_bytes, false}};
      double dir_host[2] = {0, 0};    // Profile host cycles: request, response.
      double dir_base[2] = {0, 0};    // Legacy host cycles: request, response.
      double dir_device[2] = {0, 0};  // Device cycles: request, response.
      for (int dir = 0; dir < 2; ++dir) {
        for (const Side& side : (dir == 0 ? req_sides : rsp_sides)) {
          const ProfileCost pc = profile.MessageCost(
              costs, StageCostInput{.payload_bytes = side.payload,
                                    .wire_bytes = side.wire,
                                    .send = side.send,
                                    .colocated = s.colocated});
          dir_host[dir] += pc.host.TaxTotal();
          dir_device[dir] += pc.device_cycles;
          dir_base[dir] += LegacySideCycles(costs, side.send, side.payload, side.wire);
          for (int i = 0; i < kNumTaxCategories; ++i) {
            const auto stage = static_cast<size_t>(i);
            outcome.category_cycles[stage] += pc.host.cycles[stage];
          }
          outcome.host_tax_cycles += pc.host.TaxTotal();
          outcome.device_cycles += pc.device_cycles;
        }
      }
      // Span transform (Fig. 15 method): queueing and wire stay as sampled;
      // the proc+stack components shrink (or grow) with the host-cycle ratio
      // of their direction, plus device transfer+execution when offloaded.
      const double req_ps = static_cast<double>(s.latency[RpcComponent::kRequestProcStack]);
      const double rsp_ps = static_cast<double>(s.latency[RpcComponent::kResponseProcStack]);
      const double req_ratio = dir_base[0] > 0 ? dir_host[0] / dir_base[0] : 1.0;
      const double rsp_ratio = dir_base[1] > 0 ? dir_host[1] / dir_base[1] : 1.0;
      const double new_req_ps =
          req_ps * req_ratio + static_cast<double>(profile.DeviceTime(dir_device[0]));
      const double new_rsp_ps =
          rsp_ps * rsp_ratio + static_cast<double>(profile.DeviceTime(dir_device[1]));
      const double total = static_cast<double>(s.latency.Total()) - req_ps - rsp_ps +
                           new_req_ps + new_rsp_ps;
      totals_ms.push_back(total / 1.0e6);  // SimDuration is ns.
    }
    std::sort(totals_ms.begin(), totals_ms.end());
    outcome.p50_ms = SortedQuantile(totals_ms, 0.5);
    outcome.p99_ms = SortedQuantile(totals_ms, 0.99);
    out.profiles.push_back(std::move(outcome));
  }

  if (out.profiles.empty()) {
    return out;
  }
  const OffloadProfileOutcome& base = out.profiles.front();

  TextTable latency({"profile", "p50 RCT", "p99 RCT", "d p99", "host tax Gcyc", "d tax",
                     "device Gcyc"});
  for (const OffloadProfileOutcome& p : out.profiles) {
    const double dp99 = base.p99_ms > 0 ? p.p99_ms / base.p99_ms - 1.0 : 0.0;
    const double dtax =
        base.host_tax_cycles > 0 ? p.host_tax_cycles / base.host_tax_cycles - 1.0 : 0.0;
    latency.AddRow({p.name, FormatDouble(p.p50_ms, 3) + "ms", FormatDouble(p.p99_ms, 3) + "ms",
                    FormatPercent(dp99), FormatDouble(p.host_tax_cycles / 1.0e9, 2),
                    FormatPercent(dtax), FormatDouble(p.device_cycles / 1.0e9, 2)});
  }
  out.report.tables.push_back(latency);

  // Per-category host-cycle deltas vs baseline (Fig. 20's split, repriced).
  std::vector<std::string> header = {"profile"};
  for (int i = 0; i < kNumTaxCategories; ++i) {
    header.emplace_back(CycleCategoryName(static_cast<CycleCategory>(i)));
  }
  TextTable categories(header);
  for (const OffloadProfileOutcome& p : out.profiles) {
    std::vector<std::string> row = {p.name};
    for (int i = 0; i < kNumTaxCategories; ++i) {
      const auto stage = static_cast<size_t>(i);
      if (&p == &base) {
        row.push_back(FormatDouble(p.category_cycles[stage] / 1.0e9, 2) + "G");
      } else {
        const double b = base.category_cycles[stage];
        row.push_back(b > 0 ? FormatPercent(p.category_cycles[stage] / b - 1.0)
                            : FormatDouble(p.category_cycles[stage] / 1.0e9, 2) + "G");
      }
    }
    categories.AddRow(row);
  }
  out.report.tables.push_back(categories);

  out.report.notes.push_back(
      "Baseline row: absolute host cycles per category; other rows: delta vs baseline. "
      "Queueing and wire components are held fixed; only proc+stack latency and stage "
      "cycles are repriced (docs/TAX.md#reading-offload_whatif-output).");
  return out;
}

}  // namespace rpcscope

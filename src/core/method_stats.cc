#include "src/core/method_stats.h"

#include <algorithm>

namespace rpcscope {

namespace {

LogHistogram::Options LatencyHist() {
  // 1 us .. 1e8 us (100 s), 10 buckets/decade.
  return {.min_value = 1.0, .max_value = 1e8, .buckets_per_decade = 10};
}

LogHistogram::Options RatioHist() {
  return {.min_value = 1e-6, .max_value = 1e4, .buckets_per_decade = 10};
}

LogHistogram::Options SizeHist() {
  return {.min_value = 1.0, .max_value = 1e9, .buckets_per_decade = 10};
}

LogHistogram::Options CycleHist() {
  return {.min_value = 1e-6, .max_value = 1e6, .buckets_per_decade = 10};
}

}  // namespace

MethodAccum::MethodAccum()
    : rct(LatencyHist()),
      tax_ratio(RatioHist()),
      queue(LatencyHist()),
      wire_stack(LatencyHist()),
      req_size(SizeHist()),
      resp_size(SizeHist()),
      size_ratio(RatioHist()),
      cycles(CycleHist()) {}

MethodAggregator::MethodAggregator(int32_t num_methods)
    : methods_(static_cast<size_t>(num_methods)) {}

void MethodAggregator::Add(const Span& span) {
  if (span.method_id < 0 || span.method_id >= static_cast<int32_t>(methods_.size())) {
    return;
  }
  MethodAccum& m = methods_[static_cast<size_t>(span.method_id)];
  m.method_id = span.method_id;
  m.service_id = span.service_id;
  ++m.calls;
  ++total_calls_;
  if (span.status != StatusCode::kOk) {
    ++m.errors;
    // Per §2.1, error RPC latency is excluded from latency measurements.
    return;
  }
  const double total_us = ToMicros(span.latency.Total());
  const double tax_us = ToMicros(span.latency.Tax());
  m.total_time_us += total_us;
  m.rct.Add(total_us);
  if (total_us > 0) {
    m.tax_ratio.Add(std::max(tax_us / total_us, 1e-6));
  }
  m.queue.Add(ToMicros(span.latency.QueueTotal()));
  m.wire_stack.Add(ToMicros(span.latency.WireTotal() + span.latency.ProcStackTotal()));
  // Sizes are measured on serialized payloads, falling back to wire bytes
  // for spans recorded by stacks that don't report payload sizes.
  const double req_b = static_cast<double>(
      span.request_payload_bytes > 0 ? span.request_payload_bytes : span.request_wire_bytes);
  const double resp_b = static_cast<double>(span.response_payload_bytes > 0
                                                ? span.response_payload_bytes
                                                : span.response_wire_bytes);
  m.req_size.Add(req_b);
  m.resp_size.Add(resp_b);
  if (req_b > 0) {
    m.size_ratio.Add(resp_b / req_b);
  }
  if (span.has_cpu_annotation) {
    m.cycles.Add(std::max(span.normalized_cpu_cycles, 1e-6));
    ++m.annotated_calls;
  }
}

std::vector<const MethodAccum*> MethodAggregator::Eligible(int64_t min_calls) const {
  std::vector<const MethodAccum*> out;
  for (const MethodAccum& m : methods_) {
    if (m.calls >= min_calls && m.rct.count() > 0) {
      out.push_back(&m);
    }
  }
  return out;
}

std::vector<double> MethodAggregator::CollectSorted(
    int64_t min_calls, const std::function<double(const MethodAccum&)>& extract) const {
  std::vector<double> out;
  for (const MethodAccum* m : Eligible(min_calls)) {
    out.push_back(extract(*m));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rpcscope

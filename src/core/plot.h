// Terminal plotting: ASCII CDFs and bar charts for figure reports.
//
// The bench binaries are the paper's figures; a coarse visual alongside the
// numeric tables makes distribution shapes (heavy tails, staircases,
// crossovers) reviewable without leaving the terminal.
#ifndef RPCSCOPE_SRC_CORE_PLOT_H_
#define RPCSCOPE_SRC_CORE_PLOT_H_

#include <string>
#include <vector>

namespace rpcscope {

// Renders the CDF of `values` on a log-x grid: `width` columns spanning
// [min, max] of the data, `height` rows spanning 0..100%. Values must be
// positive; empty input renders an empty string.
std::string RenderAsciiCdf(std::vector<double> values, int width = 60, int height = 12,
                           const std::string& x_unit = "");

// Renders labeled horizontal bars scaled to the largest value.
struct Bar {
  std::string label;
  double value = 0;
};
std::string RenderAsciiBars(const std::vector<Bar>& bars, int width = 48);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_CORE_PLOT_H_

#include "src/core/plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rpcscope {

std::string RenderAsciiCdf(std::vector<double> values, int width, int height,
                           const std::string& x_unit) {
  std::string out;
  if (values.empty() || width < 8 || height < 2) {
    return out;
  }
  std::sort(values.begin(), values.end());
  const double lo = std::max(values.front(), 1e-12);
  const double hi = std::max(values.back(), lo * 1.0000001);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);

  // CDF value at each column's x position (log-spaced).
  std::vector<double> cdf(static_cast<size_t>(width));
  for (int c = 0; c < width; ++c) {
    const double x =
        std::exp(log_lo + (log_hi - log_lo) * (static_cast<double>(c) + 0.5) / width);
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    cdf[static_cast<size_t>(c)] =
        static_cast<double>(it - values.begin()) / static_cast<double>(values.size());
  }

  for (int r = height - 1; r >= 0; --r) {
    const double row_top = static_cast<double>(r + 1) / height;
    const double row_bottom = static_cast<double>(r) / height;
    char label[16];
    std::snprintf(label, sizeof(label), "%3.0f%% |", row_top * 100);
    out += label;
    for (int c = 0; c < width; ++c) {
      const double v = cdf[static_cast<size_t>(c)];
      out += v >= row_top ? '#' : (v > row_bottom ? '+' : ' ');
    }
    out += '\n';
  }
  out += "     +";
  out.append(static_cast<size_t>(width), '-');
  out += '\n';
  char footer[128];
  std::snprintf(footer, sizeof(footer), "      %.3g%s%*s%.3g%s (log scale)\n", lo,
                x_unit.c_str(), width - 18, "", hi, x_unit.c_str());
  out += footer;
  return out;
}

std::string RenderAsciiBars(const std::vector<Bar>& bars, int width) {
  std::string out;
  if (bars.empty() || width < 4) {
    return out;
  }
  size_t label_width = 0;
  double max_value = 0;
  for (const Bar& b : bars) {
    label_width = std::max(label_width, b.label.size());
    max_value = std::max(max_value, b.value);
  }
  if (max_value <= 0) {
    return out;
  }
  for (const Bar& b : bars) {
    out += b.label;
    out.append(label_width - b.label.size() + 1, ' ');
    const int fill = static_cast<int>(std::lround(b.value / max_value * width));
    out.append(static_cast<size_t>(fill), '#');
    char value[32];
    std::snprintf(value, sizeof(value), " %.3g\n", b.value);
    out += value;
  }
  return out;
}

}  // namespace rpcscope

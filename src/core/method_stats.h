// MethodAggregator: per-method distribution accumulation over sampled RPCs.
//
// One pass over spans builds, for every method, bounded-memory histograms of
// the quantities the per-method figures need: completion time, tax ratio,
// queueing, wire+stack, sizes, response/request ratio, and normalized CPU
// cycles. The per-method views (Figs. 2, 3, 6, 7, 11, 12, 13, 21) then
// reduce these to quantiles-of-quantiles across the method population.
#ifndef RPCSCOPE_SRC_CORE_METHOD_STATS_H_
#define RPCSCOPE_SRC_CORE_METHOD_STATS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/histogram.h"
#include "src/trace/span.h"

namespace rpcscope {

// Per-method accumulated distributions. Histogram value units:
//   latency histograms: microseconds; sizes: bytes; ratios: dimensionless.
struct MethodAccum {
  int32_t method_id = -1;
  int32_t service_id = -1;
  int64_t calls = 0;
  int64_t errors = 0;
  double total_time_us = 0;  // Sum of completion times (for time shares).
  LogHistogram rct;          // Completion time.
  LogHistogram tax_ratio;    // Tax / RCT in [~1e-6, 1].
  LogHistogram queue;        // Sum of the four queue components.
  LogHistogram wire_stack;   // Network wire + proc/stack (Fig. 12's RW+RN).
  LogHistogram req_size;
  LogHistogram resp_size;
  LogHistogram size_ratio;   // response bytes / request bytes.
  LogHistogram cycles;       // Normalized CPU cycles (annotated spans only).
  int64_t annotated_calls = 0;

  MethodAccum();
};

class MethodAggregator {
 public:
  explicit MethodAggregator(int32_t num_methods);

  void Add(const Span& span);

  const std::vector<MethodAccum>& methods() const { return methods_; }
  int64_t total_calls() const { return total_calls_; }

  // Methods with at least `min_calls` samples (the paper requires >= 100 for
  // a well-defined P99), optionally sorted by a key extracted per method.
  std::vector<const MethodAccum*> Eligible(int64_t min_calls) const;

  // Across eligible methods, collects `extract(method)` values and returns
  // them sorted ascending (for quantile-of-quantile queries).
  std::vector<double> CollectSorted(
      int64_t min_calls, const std::function<double(const MethodAccum&)>& extract) const;

 private:
  std::vector<MethodAccum> methods_;
  int64_t total_calls_ = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_CORE_METHOD_STATS_H_

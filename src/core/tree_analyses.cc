// Call-tree shape analyses: descendants (Fig. 4) and ancestors (Fig. 5).
#include <algorithm>
#include <numeric>

#include "src/common/stats.h"
#include "src/core/analyses.h"

namespace rpcscope {

namespace {

// Per-method quantile-of-quantiles over the collected shape samples.
double ShapeQQ(const std::map<int32_t, std::vector<double>>& by_method, double method_q,
               double sample_q, size_t min_samples) {
  std::vector<double> per_method;
  for (const auto& [method, samples] : by_method) {
    if (samples.size() >= min_samples) {
      per_method.push_back(ExactQuantile(samples, sample_q));
    }
  }
  std::sort(per_method.begin(), per_method.end());
  return SortedQuantile(per_method, method_q);
}

size_t CountEligible(const std::map<int32_t, std::vector<double>>& by_method,
                     size_t min_samples) {
  size_t n = 0;
  for (const auto& [method, samples] : by_method) {
    if (samples.size() >= min_samples) {
      ++n;
    }
  }
  return n;
}

}  // namespace

TreeShapeStats CollectTreeShapes(CallGraphModel& model, int num_trees) {
  TreeShapeStats stats;
  std::map<int32_t, int64_t> method_max_desc;
  std::map<int32_t, int32_t> method_max_depth;
  for (int t = 0; t < num_trees; ++t) {
    const CallTree tree = model.SampleTree();
    // Subtree sizes via reverse scan (children appear after parents).
    std::vector<int64_t> descendants(tree.nodes.size(), 0);
    int max_depth = 0;
    std::vector<int64_t> width(32, 0);
    for (size_t i = tree.nodes.size(); i-- > 1;) {
      descendants[static_cast<size_t>(tree.nodes[i].parent)] += 1 + descendants[i];
    }
    // One sample per (method, trace): the method's largest responsibility in
    // this trace. A popular method appears in a trace both as interior fan-out
    // points and as leaves; the study's per-method descendant counts reflect
    // the distributed computation the method presides over, so the per-trace
    // maximum — not the leaf-dominated per-occurrence view — is aggregated.
    // Ancestors likewise use the shallowest occurrence (return distance of
    // the method's top-most call to the root).
    method_max_desc.clear();
    method_max_depth.clear();
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const CallTreeNode& node = tree.nodes[i];
      auto [dit, dnew] = method_max_desc.try_emplace(node.method_id, descendants[i]);
      if (!dnew) {
        dit->second = std::max(dit->second, descendants[i]);
      }
      auto [ait, anew] = method_max_depth.try_emplace(node.method_id, node.depth);
      if (!anew) {
        ait->second = std::min(ait->second, node.depth);
      }
      max_depth = std::max(max_depth, node.depth);
      ++width[static_cast<size_t>(node.depth)];
    }
    for (const auto& [method, desc] : method_max_desc) {
      stats.descendants_by_method[method].push_back(static_cast<double>(desc));
    }
    for (const auto& [method, depth] : method_max_depth) {
      stats.ancestors_by_method[method].push_back(static_cast<double>(depth));
    }
    stats.tree_depths.push_back(max_depth);
    stats.tree_widths.push_back(
        static_cast<double>(*std::max_element(width.begin(), width.end())));
  }
  return stats;
}

FigureReport AnalyzeDescendants(const TreeShapeStats& stats) {
  FigureReport report;
  report.id = "fig04";
  report.title = "Per-method number of descendants (Fig. 4)";
  const auto& d = stats.descendants_by_method;
  ComparisonTable cmp;
  cmp.Add("median-method median descendants <=", "13",
          FormatDouble(ShapeQQ(d, 0.5, 0.5, 100), 0));
  cmp.Add("P90 descendants, 10th-pct method >=", "105",
          FormatDouble(ShapeQQ(d, 0.10, 0.90, 100), 0));
  cmp.Add("P99 descendants, 10th-pct method >=", "1155",
          FormatDouble(ShapeQQ(d, 0.10, 0.99, 100), 0));
  cmp.Add("methods with >=100 tree samples", "-",
          FormatCount(static_cast<double>(CountEligible(d, 100))));
  report.tables.push_back(cmp.Build());

  TextTable dist({"method quantile", "median", "P90", "P99"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    dist.AddRow({FormatPercent(q, 0), FormatDouble(ShapeQQ(d, q, 0.5, 100), 0),
                 FormatDouble(ShapeQQ(d, q, 0.9, 100), 0),
                 FormatDouble(ShapeQQ(d, q, 0.99, 100), 0)});
  }
  report.tables.push_back(dist);
  report.notes.push_back("Nested RPCs fan out widely: descendant tails reach thousands via "
                         "partition/aggregate bursts.");
  return report;
}

FigureReport AnalyzeAncestors(const TreeShapeStats& stats) {
  FigureReport report;
  report.id = "fig05";
  report.title = "Per-method number of ancestors (Fig. 5)";
  const auto& a = stats.ancestors_by_method;
  ComparisonTable cmp;
  cmp.Add("median-method P99 ancestors <", "10", FormatDouble(ShapeQQ(a, 0.5, 0.99, 100), 0));
  cmp.Add("max observed tree depth", "<=19 (Meta reports 9-19)",
          FormatDouble(stats.tree_depths.empty()
                           ? 0
                           : *std::max_element(stats.tree_depths.begin(),
                                               stats.tree_depths.end()),
                       0));
  const double mean_depth =
      stats.tree_depths.empty()
          ? 0
          : std::accumulate(stats.tree_depths.begin(), stats.tree_depths.end(), 0.0) /
                static_cast<double>(stats.tree_depths.size());
  const double mean_width =
      stats.tree_widths.empty()
          ? 0
          : std::accumulate(stats.tree_widths.begin(), stats.tree_widths.end(), 0.0) /
                static_cast<double>(stats.tree_widths.size());
  cmp.Add("mean tree width vs mean depth", "wider than deep",
          FormatDouble(mean_width, 1) + " vs " + FormatDouble(mean_depth, 1));
  report.tables.push_back(cmp.Build());

  TextTable dist({"method quantile", "median ancestors", "P99 ancestors"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    dist.AddRow({FormatPercent(q, 0), FormatDouble(ShapeQQ(a, q, 0.5, 100), 1),
                 FormatDouble(ShapeQQ(a, q, 0.99, 100), 0)});
  }
  report.tables.push_back(dist);
  report.notes.push_back("Ancestor counts are small compared to descendant counts: the typical "
                         "call tree is much wider than it is deep.");
  return report;
}

}  // namespace rpcscope

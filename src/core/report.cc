#include "src/core/report.h"

#include <cstdio>
#include <cstring>

namespace rpcscope {

std::string FigureReport::Render() const {
  std::string out = "== " + id + ": " + title + " ==\n";
  for (const std::string& note : notes) {
    out += "   " + note + "\n";
  }
  for (const TextTable& t : tables) {
    out += "\n";
    out += t.Render();
  }
  out += "\n";
  return out;
}

std::string FigureReport::RenderCsv() const {
  std::string out;
  for (const TextTable& t : tables) {
    out += t.RenderCsv();
    out += "\n";
  }
  return out;
}

ComparisonTable::ComparisonTable() : table_({"metric", "paper", "measured"}) {}

void ComparisonTable::Add(const std::string& metric, const std::string& paper,
                          const std::string& measured) {
  table_.AddRow({metric, paper, measured});
}

int RunFigureMain(int argc, char** argv, const FigureReport& report) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    }
  }
  std::fputs((csv ? report.RenderCsv() : report.Render()).c_str(), stdout);
  return 0;
}

}  // namespace rpcscope

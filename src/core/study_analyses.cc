// Analyses over DES service-study spans: Figs. 14-19 and 22.
#include <algorithm>
#include <cmath>

#include "src/common/stats.h"
#include "src/core/analyses.h"

namespace rpcscope {

namespace {

// Component sums of OK spans.
struct ComponentSums {
  std::array<double, kNumRpcComponents> sums{};
  double total = 0;
  int64_t count = 0;

  void Add(const Span& span) {
    for (int c = 0; c < kNumRpcComponents; ++c) {
      sums[static_cast<size_t>(c)] +=
          ToMicros(span.latency.components[static_cast<size_t>(c)]);
    }
    total += ToMicros(span.latency.Total());
    ++count;
  }
};

std::vector<double> OkTotalsMs(const std::vector<Span>& spans) {
  std::vector<double> out;
  for (const Span& s : spans) {
    if (s.status == StatusCode::kOk) {
      out.push_back(ToMillis(s.latency.Total()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

RpcComponent DominantComponent(const ComponentSums& sums) {
  size_t best = 0;
  for (size_t c = 1; c < sums.sums.size(); ++c) {
    if (sums.sums[c] > sums.sums[best]) {
      best = c;
    }
  }
  return static_cast<RpcComponent>(best);
}

// Groups the dominant component into the paper's three categories.
std::string CategoryOf(RpcComponent c) {
  switch (c) {
    case RpcComponent::kServerApp:
      return "application-heavy";
    case RpcComponent::kClientSendQueue:
    case RpcComponent::kServerRecvQueue:
    case RpcComponent::kServerSendQueue:
    case RpcComponent::kClientRecvQueue:
      return "queueing-heavy";
    case RpcComponent::kRequestProcStack:
    case RpcComponent::kResponseProcStack:
      return "RPC-stack-heavy";
    default:
      return "network-heavy";
  }
}

}  // namespace

FigureReport AnalyzeServiceBreakdown(const std::vector<ServiceSpans>& studies) {
  FigureReport report;
  report.id = "fig14";
  report.title = "CDF of RPC completion-time breakdown per service (Fig. 14)";

  TextTable t({"service", "median RCT", "P95 RCT", "P95/median", "dominant component",
               "dom. share", "category"});
  for (const ServiceSpans& study : studies) {
    ComponentSums sums;
    for (const Span& s : study.spans) {
      if (s.status == StatusCode::kOk) {
        sums.Add(s);
      }
    }
    if (sums.count == 0) {
      continue;
    }
    const std::vector<double> totals = OkTotalsMs(study.spans);
    const double median = SortedQuantile(totals, 0.5);
    const double p95 = SortedQuantile(totals, 0.95);
    const RpcComponent dom = DominantComponent(sums);
    const double dom_share = sums.sums[static_cast<size_t>(dom)] / sums.total;
    t.AddRow({study.name, FormatDouble(median, 2) + "ms", FormatDouble(p95, 2) + "ms",
              FormatDouble(p95 / std::max(median, 1e-9), 2) + "x",
              std::string(RpcComponentName(dom)), FormatPercent(dom_share),
              CategoryOf(dom)});
  }
  report.tables.push_back(t);

  // Full per-component shares (one row per service, columns per component).
  TextTable shares({"service", "CSQ", "ReqPS", "ReqW", "SRQ", "App", "SSQ", "RspPS", "RspW",
                    "CRQ"});
  for (const ServiceSpans& study : studies) {
    ComponentSums sums;
    for (const Span& s : study.spans) {
      if (s.status == StatusCode::kOk) {
        sums.Add(s);
      }
    }
    if (sums.count == 0) {
      continue;
    }
    std::vector<std::string> row = {study.name};
    for (size_t c = 0; c < kNumRpcComponents; ++c) {
      row.push_back(FormatPercent(sums.sums[c] / sums.total));
    }
    shares.AddRow(row);
  }
  report.tables.push_back(shares);
  report.notes.push_back("Paper: dominant components take 25-66% of latency at the median and "
                         "P95 is 1.86-10.6x the median (F1 largest).");
  return report;
}

FigureReport AnalyzeWhatIf(const std::vector<ServiceSpans>& studies) {
  FigureReport report;
  report.id = "fig15";
  report.title = "What-if: % of P95-tail RPCs made non-tail per component (Fig. 15)";

  TextTable t({"service", "CSQ", "ReqW", "ReqPS", "SRQ", "App", "SSQ", "RspPS", "RspW", "CRQ"});
  for (const ServiceSpans& study : studies) {
    // Medians per component and the P95 threshold.
    std::vector<std::vector<double>> comp(kNumRpcComponents);
    std::vector<double> totals;
    for (const Span& s : study.spans) {
      if (s.status != StatusCode::kOk) {
        continue;
      }
      for (size_t c = 0; c < kNumRpcComponents; ++c) {
        comp[c].push_back(ToMicros(s.latency.components[c]));
      }
      totals.push_back(ToMicros(s.latency.Total()));
    }
    if (totals.empty()) {
      continue;
    }
    std::vector<double> medians(kNumRpcComponents);
    for (size_t c = 0; c < kNumRpcComponents; ++c) {
      medians[c] = ExactQuantile(comp[c], 0.5);
    }
    const double p95 = ExactQuantile(totals, 0.95);

    // For each tail RPC, would replacing component c by its median move the
    // RPC below the old P95?
    std::array<int64_t, kNumRpcComponents> rescued{};
    int64_t tail_count = 0;
    for (const Span& s : study.spans) {
      if (s.status != StatusCode::kOk) {
        continue;
      }
      const double total = ToMicros(s.latency.Total());
      if (total < p95) {
        continue;
      }
      ++tail_count;
      for (size_t c = 0; c < kNumRpcComponents; ++c) {
        const double replaced =
            total - ToMicros(s.latency.components[c]) + medians[c];
        if (replaced < p95) {
          ++rescued[c];
        }
      }
    }
    if (tail_count == 0) {
      continue;
    }
    // Render in the paper's column order (Fig. 15).
    const RpcComponent order[] = {
        RpcComponent::kClientSendQueue, RpcComponent::kRequestWire,
        RpcComponent::kRequestProcStack, RpcComponent::kServerRecvQueue,
        RpcComponent::kServerApp, RpcComponent::kServerSendQueue,
        RpcComponent::kResponseProcStack, RpcComponent::kResponseWire,
        RpcComponent::kClientRecvQueue};
    std::vector<std::string> row = {study.name};
    for (RpcComponent c : order) {
      row.push_back(FormatPercent(
          static_cast<double>(rescued[static_cast<size_t>(c)]) /
              static_cast<double>(tail_count),
          1));
    }
    t.AddRow(row);
  }
  report.tables.push_back(t);
  report.notes.push_back("The component that dominates a service's latency in general is also "
                         "the main cause of its tail (cf. paper Fig. 15: ML Inference app 68%, "
                         "SSD cache SRQ 33.6%, KV-Store RspPS 15.5%, F1 CRQ 28.6%).");
  return report;
}

FigureReport AnalyzeClusterVariation(
    const std::vector<std::pair<std::string, std::vector<ClusterRunSpans>>>& per_service) {
  FigureReport report;
  report.id = "fig16";
  report.title = "P95 latency breakdown across clusters (Fig. 16)";

  TextTable t({"service", "clusters", "P95 min", "P95 max", "spread", "dominant stable?"});
  for (const auto& [name, runs] : per_service) {
    double p95_min = 1e18, p95_max = 0;
    std::string first_dom;
    bool stable = true;
    for (const ClusterRunSpans& run : runs) {
      const std::vector<double> totals = OkTotalsMs(run.spans);
      if (totals.empty()) {
        continue;
      }
      const double p95 = SortedQuantile(totals, 0.95);
      p95_min = std::min(p95_min, p95);
      p95_max = std::max(p95_max, p95);
      ComponentSums sums;
      for (const Span& s : run.spans) {
        if (s.status == StatusCode::kOk) {
          sums.Add(s);
        }
      }
      const std::string dom = std::string(RpcComponentName(DominantComponent(sums)));
      if (first_dom.empty()) {
        first_dom = dom;
      } else if (dom != first_dom) {
        stable = false;
      }
    }
    t.AddRow({name, std::to_string(runs.size()), FormatDouble(p95_min, 2) + "ms",
              FormatDouble(p95_max, 2) + "ms",
              FormatDouble(p95_max / std::max(p95_min, 1e-9), 2) + "x",
              stable ? "yes" : "mostly"});
  }
  report.tables.push_back(t);
  report.notes.push_back("Paper: the dominant component stays the same across clusters while "
                         "P95 varies 1.24-10x with cluster state (exogenous variables).");
  return report;
}

ExogenousBucket SummarizeRun(double variable_value, const std::vector<Span>& spans) {
  ExogenousBucket b;
  b.variable_value = variable_value;
  const std::vector<double> totals = OkTotalsMs(spans);
  if (totals.empty()) {
    return b;
  }
  ComponentSums sums;
  for (const Span& s : spans) {
    if (s.status == StatusCode::kOk) {
      sums.Add(s);
    }
  }
  b.p95_latency_ms = SortedQuantile(totals, 0.95);
  b.app_share = sums.sums[static_cast<size_t>(RpcComponent::kServerApp)] / sums.total;
  b.queue_share = (sums.sums[static_cast<size_t>(RpcComponent::kServerRecvQueue)] +
                   sums.sums[static_cast<size_t>(RpcComponent::kServerSendQueue)] +
                   sums.sums[static_cast<size_t>(RpcComponent::kClientSendQueue)] +
                   sums.sums[static_cast<size_t>(RpcComponent::kClientRecvQueue)]) /
                  sums.total;
  return b;
}

FigureReport AnalyzeExogenousSweep(
    const std::vector<std::pair<std::string, std::vector<ExogenousBucket>>>& sweeps) {
  FigureReport report;
  report.id = "fig17";
  report.title = "Exogenous variables vs P95 latency breakdown (Fig. 17)";

  for (const auto& [variable, buckets] : sweeps) {
    TextTable t({variable, "P95 RCT", "app share", "queue share"});
    std::vector<double> xs, ys;
    for (const ExogenousBucket& b : buckets) {
      if (b.p95_latency_ms <= 0) {
        continue;
      }
      xs.push_back(b.variable_value);
      ys.push_back(b.p95_latency_ms);
      t.AddRow({FormatDouble(b.variable_value, 3), FormatDouble(b.p95_latency_ms, 2) + "ms",
                FormatPercent(b.app_share), FormatPercent(b.queue_share)});
    }
    TextTable corr({"metric", "value"});
    corr.AddRow({"correlation(" + variable + ", P95 latency)",
                 FormatDouble(PearsonCorrelation(xs, ys), 2)});
    report.tables.push_back(t);
    report.tables.push_back(corr);
  }
  report.notes.push_back("Server-state variables (CPU util, memory BW, wake-up rate, CPI) "
                         "correlate with tail RPC latency.");
  return report;
}

FigureReport AnalyzeDiurnal(
    const std::vector<std::pair<std::string, std::vector<DiurnalWindow>>>& clusters) {
  FigureReport report;
  report.id = "fig18";
  report.title = "24h co-movement of latency and exogenous variables (Fig. 18)";

  for (const auto& [name, windows] : clusters) {
    TextTable t({"hour (" + name + ")", "P95 RCT", "CPU util", "mem BW GB/s",
                 "long-wakeup rate", "CPI"});
    std::vector<double> lat, util, bw, wake, cpi;
    for (const DiurnalWindow& w : windows) {
      lat.push_back(w.p95_latency_ms);
      util.push_back(w.state.cpu_util);
      bw.push_back(w.state.memory_bw_gbps);
      wake.push_back(w.state.long_wakeup_rate);
      cpi.push_back(w.state.cycles_per_instr);
      if (static_cast<int64_t>(std::llround(w.hour * 2)) % 4 == 0) {  // Every 2 hours.
        t.AddRow({FormatDouble(w.hour, 1), FormatDouble(w.p95_latency_ms, 2) + "ms",
                  FormatPercent(w.state.cpu_util), FormatDouble(w.state.memory_bw_gbps, 1),
                  FormatDouble(w.state.long_wakeup_rate * 1000, 2) + "e-3",
                  FormatDouble(w.state.cycles_per_instr, 3)});
      }
    }
    report.tables.push_back(t);
    TextTable corr({"correlate (" + name + ")", "r with P95 latency"});
    corr.AddRow({"CPU util", FormatDouble(PearsonCorrelation(util, lat), 2)});
    corr.AddRow({"memory BW", FormatDouble(PearsonCorrelation(bw, lat), 2)});
    corr.AddRow({"long-wakeup rate", FormatDouble(PearsonCorrelation(wake, lat), 2)});
    corr.AddRow({"cycles per instr", FormatDouble(PearsonCorrelation(cpi, lat), 2)});
    report.tables.push_back(corr);
  }
  report.notes.push_back("RPC latency fluctuates with the same diurnal trend as the cluster's "
                         "exogenous variables, in both fast and slow clusters.");
  return report;
}

FigureReport AnalyzeCrossCluster(const std::vector<CrossClusterPoint>& points) {
  FigureReport report;
  report.id = "fig19";
  report.title = "Spanner cross-cluster latency breakdown (Fig. 19)";

  struct Row {
    int cluster;
    std::string dc;
    double median_ms;
    double wire_share;
    double app_share;
  };
  std::vector<Row> rows;
  for (const CrossClusterPoint& p : points) {
    const std::vector<double> totals = OkTotalsMs(p.spans);
    if (totals.empty()) {
      continue;
    }
    ComponentSums sums;
    for (const Span& s : p.spans) {
      if (s.status == StatusCode::kOk) {
        sums.Add(s);
      }
    }
    rows.push_back({p.client_cluster, p.distance_class, SortedQuantile(totals, 0.5),
                    (sums.sums[static_cast<size_t>(RpcComponent::kRequestWire)] +
                     sums.sums[static_cast<size_t>(RpcComponent::kResponseWire)]) /
                        sums.total,
                    sums.sums[static_cast<size_t>(RpcComponent::kServerApp)] / sums.total});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.median_ms < b.median_ms; });

  TextTable t({"client cluster", "distance", "median RCT", "wire share", "app share"});
  for (const Row& r : rows) {
    t.AddRow({std::to_string(r.cluster), r.dc, FormatDouble(r.median_ms, 2) + "ms",
              FormatPercent(r.wire_share), FormatPercent(r.app_share)});
  }
  report.tables.push_back(t);

  // Per-distance-class aggregates (the staircase).
  TextTable stairs({"distance class", "clients", "median RCT (avg)", "wire share (avg)"});
  std::map<std::string, std::vector<const Row*>> by_class;
  for (const Row& r : rows) {
    by_class[r.dc].push_back(&r);
  }
  for (const auto& [dc, members] : by_class) {
    double median_sum = 0, wire_sum = 0;
    for (const Row* r : members) {
      median_sum += r->median_ms;
      wire_sum += r->wire_share;
    }
    stairs.AddRow({dc, std::to_string(members.size()),
                   FormatDouble(median_sum / static_cast<double>(members.size()), 2) + "ms",
                   FormatPercent(wire_sum / static_cast<double>(members.size()))});
  }
  report.tables.push_back(stairs);
  report.notes.push_back("As client-server distance grows the network wire dominates; the "
                         "latency closely tracks propagation (speed of light), not congestion.");
  return report;
}

FigureReport AnalyzeLoadBalance(
    const std::vector<std::pair<std::string, LoadBalanceResult>>& services) {
  FigureReport report;
  report.id = "fig22";
  report.title = "CPU usage across clusters and machines (Fig. 22)";

  TextTable t({"service", "cluster P10", "cluster P50", "cluster P90", "cluster P99",
               "machine P10", "machine P50", "machine P90", "machine P99"});
  for (const auto& [name, result] : services) {
    const auto& machines = result.median_cluster_machine_usage;
    t.AddRow({name, FormatPercent(SortedQuantile(result.cluster_usage, 0.10)),
              FormatPercent(SortedQuantile(result.cluster_usage, 0.50)),
              FormatPercent(SortedQuantile(result.cluster_usage, 0.90)),
              FormatPercent(SortedQuantile(result.cluster_usage, 0.99)),
              FormatPercent(SortedQuantile(machines, 0.10)),
              FormatPercent(SortedQuantile(machines, 0.50)),
              FormatPercent(SortedQuantile(machines, 0.90)),
              FormatPercent(SortedQuantile(machines, 0.99))});
  }
  report.tables.push_back(t);
  report.notes.push_back("Load is significantly imbalanced across clusters (latency-aware "
                         "routing does not balance CPU); within a cluster, load is tight except "
                         "for data-dependent services whose hot machines approach the limit.");
  return report;
}

}  // namespace rpcscope

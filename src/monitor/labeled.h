// Dimensional metrics: Monarch's defining feature.
//
// A metric family ("rpc/server/latency") fans out into one stream per label
// value ("cluster=aa", "method=Write"); queries either read one stream or
// aggregate across all of them. This is what lets the paper slice the same
// counters per-cluster (Figs. 16-18) and fleet-wide (Fig. 1) from one
// instrumentation point.
#ifndef RPCSCOPE_SRC_MONITOR_LABELED_H_
#define RPCSCOPE_SRC_MONITOR_LABELED_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/histogram.h"
#include "src/monitor/metrics.h"

namespace rpcscope {

// Counter family keyed by a label value.
class LabeledCounter {
 public:
  explicit LabeledCounter(std::string name) : name_(std::move(name)) {}

  Counter& WithLabel(const std::string& label);

  // Sum of all streams' current values.
  double Total() const;
  const std::string& name() const { return name_; }
  const std::map<std::string, std::unique_ptr<Counter>>& streams() const { return streams_; }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Counter>> streams_;
};

// Distribution family keyed by a label value; supports cross-label merge.
class LabeledDistribution {
 public:
  LabeledDistribution(std::string name, const LogHistogram::Options& options)
      : name_(std::move(name)), options_(options) {}

  void Record(const std::string& label, double value);

  // Histogram for one label (nullptr if never recorded).
  const LogHistogram* ForLabel(const std::string& label) const;

  // Merged histogram across every label (the fleet-wide view).
  LogHistogram Merged() const;

  const std::string& name() const { return name_; }
  size_t num_streams() const { return streams_.size(); }

 private:
  std::string name_;
  LogHistogram::Options options_;
  std::map<std::string, std::unique_ptr<LogHistogram>> streams_;
};

// Samples every stream of a labeled counter into a registry's time series
// under "<family>{<label>}".
void SampleLabeledCounter(const LabeledCounter& family, MetricRegistry& registry, SimTime now);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_MONITOR_LABELED_H_

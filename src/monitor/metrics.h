// Monarch-like metrics: counters, gauges, and distribution metrics, sampled
// periodically into a retained time-series store.
//
// The paper's Fig. 1 is built from exactly this kind of data: counters
// sampled every 30 minutes with a 700-day retention. MetricRegistry owns the
// live instruments; TimeSeriesStore holds the sampled points and answers
// range/rate queries.
#ifndef RPCSCOPE_SRC_MONITOR_METRICS_H_
#define RPCSCOPE_SRC_MONITOR_METRICS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

// Monotonically increasing counter.
class Counter {
 public:
  void Increment(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Point-in-time gauge.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Distribution-valued metric (latency, size); cumulative log histogram.
class DistributionMetric {
 public:
  DistributionMetric() = default;
  explicit DistributionMetric(const LogHistogram::Options& options) : hist_(options) {}

  void Record(double value) { hist_.Add(value); }
  const LogHistogram& histogram() const { return hist_; }
  // Checkpoint restore writes the saved histogram state back in place.
  LogHistogram& mutable_histogram() { return hist_; }

 private:
  LogHistogram hist_;
};

struct TimePoint {
  SimTime time;
  double value;
};

// Retained samples for one metric stream.
class TimeSeries {
 public:
  void Append(SimTime time, double value) { points_.push_back({time, value}); }

  // Drops points older than `retention` before `now`.
  void Expire(SimTime now, SimDuration retention);

  const std::deque<TimePoint>& points() const { return points_; }

  // Values in [begin, end].
  std::vector<TimePoint> Range(SimTime begin, SimTime end) const;

  // Rate of change between consecutive cumulative samples over the window
  // [begin, end] (for counter streams): (v[i] - v[i-1]) / dt, per second.
  std::vector<TimePoint> RatePerSecond(SimTime begin, SimTime end) const;

 private:
  std::deque<TimePoint> points_;
};

// RPCSCOPE_CHECKPOINTED(MetricRegistry::CheckpointTo, MetricRegistry::RestoreFrom)
class MetricRegistry {
 public:
  struct Options {
    SimDuration sample_window = Minutes(30);
    SimDuration retention = Days(700);
  };

  MetricRegistry() : MetricRegistry(Options{}) {}
  explicit MetricRegistry(const Options& options) : options_(options) {}

  // Instruments are created on first use and owned by the registry.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  DistributionMetric& GetDistribution(const std::string& name);

  // Non-creating lookups, for cross-shard aggregation: merging registries
  // must not materialize default-layout instruments on shards that never
  // touched the metric (LogHistogram::Merge CHECKs layout equality).
  const Counter* FindCounter(const std::string& name) const;
  const DistributionMetric* FindDistribution(const std::string& name) const;

  // Samples every registered instrument into its time series at `now`
  // (counters record their cumulative value; gauges their current value;
  // distributions their cumulative count). Applies retention.
  void SampleAll(SimTime now);

  const TimeSeries* Series(const std::string& name) const;
  const Options& options() const { return options_; }

  // Checkpoint support. Instruments serialize in sorted-name order (the maps
  // are unordered; checkpoint bytes must not be). Restore targets a registry
  // whose instruments are freshly registered but never incremented — values
  // land in the *existing* Counter/Gauge/Distribution objects so pointers
  // cached by components at construction stay valid across a restore.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  Options options_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<DistributionMetric>> distributions_;
  std::unordered_map<std::string, TimeSeries> series_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_MONITOR_METRICS_H_

// WindowedDistribution: distribution metrics over time windows.
//
// Monarch answers "P95 latency per 30-minute window" queries; a cumulative
// histogram cannot. WindowedDistribution keeps one log-histogram per aligned
// window with bounded retention, supporting quantile-over-time series like
// Fig. 18's 24-hour latency traces.
#ifndef RPCSCOPE_SRC_MONITOR_WINDOWED_H_
#define RPCSCOPE_SRC_MONITOR_WINDOWED_H_

#include <deque>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/time.h"

namespace rpcscope {

class WindowedDistribution {
 public:
  struct Options {
    SimDuration window = Minutes(30);
    int max_windows = 48 * 700;  // 700 days of 30-minute windows.
    LogHistogram::Options histogram = {.min_value = 1.0,
                                       .max_value = 1e10,
                                       .buckets_per_decade = 10};
  };

  WindowedDistribution() : WindowedDistribution(Options{}) {}
  explicit WindowedDistribution(const Options& options);

  // Records a value at a timestamp. Timestamps may arrive slightly out of
  // order within retained windows; values older than the retention are
  // dropped.
  void Record(SimTime time, double value);

  struct WindowQuantile {
    SimTime window_start;
    double value;
    int64_t count;
  };

  // Per-window quantiles over [begin, end).
  std::vector<WindowQuantile> QuantileSeries(SimTime begin, SimTime end, double q) const;

  // Merged histogram across all retained windows.
  LogHistogram Merged() const;

  size_t num_windows() const { return windows_.size(); }

 private:
  struct Window {
    SimTime start;
    LogHistogram histogram;
  };

  Options options_;
  std::deque<Window> windows_;  // Ascending by start.
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_MONITOR_WINDOWED_H_

// The streaming observability pipeline: shard-local sinks -> online hub.
//
// The paper's three measurement systems (Dapper traces, Monarch windowed
// metrics, GWP profiles) never materialize the fleet's raw sample stream in
// one place — each machine aggregates locally and ships bounded *deltas* to a
// central aggregation plane. This module reproduces that shape for the
// sharded simulator (docs/OBSERVABILITY.md):
//
//   ShardStreamSink   one per shard domain, single-threaded. Taps the kept
//                     span stream (TraceSink), folds every span into bounded
//                     mergeable state — per-method StreamStat deltas and
//                     per-window MetricWindowDelta counters/histograms — and
//                     buffers at most `max_buffered_spans` raw spans for
//                     exemplar sampling. Overflow drops raw spans (counted,
//                     never silent) but NEVER loses aggregate counts: every
//                     span lands in the deltas before the buffer cap applies.
//   ObservabilityHub  the central aggregation plane. Fed exclusively on the
//                     coordinator thread at conservative-round barriers, in
//                     canonical shard order, so its state is bit-for-bit
//                     identical for any worker-thread count. Holds running
//                     per-method quantile state, a bounded deque of window
//                     summaries (closed windows retire eagerly through the
//                     live tap), and per-method span reservoirs.
//
// Determinism rules (tested by parallel_test):
//  * Sinks are only touched from their own shard's round execution.
//  * All sink -> hub movement happens at barriers, shard 0 first. With
//    batched rounds (per-pair lookahead horizons, docs/PARALLEL.md) barriers
//    are far rarer than before, so each flush carries a bigger delta — the
//    watermark passed to FlushInto is the round's minimum per-domain horizon,
//    which the executor guarantees is strictly increasing round over round,
//    and no event below it can ever run again. Single-domain runs have no
//    barriers at all: one final FlushInto(kMaxSimTime) drains everything.
//  * Aggregate state is integer-valued (counts, wrapping nanosecond sums,
//    histogram buckets), so it is also *ingest-order independent*: streaming
//    at barriers and replaying the post-run merged span stream produce the
//    same AggregateDigest. Reservoir contents are order-dependent but
//    barrier-order is canonical, so they are worker-count invariant too.
#ifndef RPCSCOPE_SRC_MONITOR_STREAM_H_
#define RPCSCOPE_SRC_MONITOR_STREAM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/trace/sink.h"
#include "src/trace/span.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

// Mergeable per-method aggregate. All fields are integers: merging and
// ingesting commute bit-for-bit regardless of order (sums wrap mod 2^64,
// which is still associative + commutative).
// RPCSCOPE_CHECKPOINTED(StreamStat::Merge, StreamStat::WriteTo, StreamStat::RestoreFrom)
struct StreamStat {
  int64_t count = 0;
  int64_t errors = 0;
  uint64_t total_nanos_sum = 0;  // Sum of latency.Total(), wrapping.
  uint64_t tax_nanos_sum = 0;    // Sum of latency.Tax(), wrapping.
  // Colocated-bypass accounting (docs/POLICY.md#colocated-bypass): spans that
  // took the fast path, and the cycles their skipped stages would have cost
  // (rounded to integers so the sum stays ingest-order independent).
  int64_t colocated = 0;
  uint64_t avoided_tax_cycles_sum = 0;  // Wrapping.
  SimDuration min_total = 0;     // Valid when count > 0.
  SimDuration max_total = 0;
  LogHistogram total_nanos;      // latency.Total() in nanoseconds.

  explicit StreamStat(const LogHistogram::Options& histogram_options)
      : total_nanos(histogram_options) {}

  void AddSpan(const Span& span);
  void Merge(const StreamStat& other);
  // Checkpoint support: writes/reads every field inline into the caller's
  // open section (no section of its own — aggregates nest inside their
  // owner's frame).
  void WriteTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);
  // Mean over the *non-wrapped* range (sums in any realistic run are far
  // below 2^64 ns ~ 584 years of accumulated latency).
  double MeanTotalNanos() const {
    return count == 0 ? 0.0 : static_cast<double>(total_nanos_sum) / static_cast<double>(count);
  }
};

// One time window's metric flush: Monarch's "counter sampled per 30-minute
// window", as a delta since the previous flush. Windows are aligned to
// `window` and keyed by the *span start time* — an in-flight RPC that
// completes after its start window closed is a late update, merged in and
// counted, never dropped.
// RPCSCOPE_CHECKPOINTED(MetricWindowDelta::Merge, MetricWindowDelta::WriteTo, MetricWindowDelta::RestoreFrom)
struct MetricWindowDelta {
  SimTime window_start = 0;
  int64_t spans = 0;
  int64_t errors = 0;
  uint64_t total_nanos_sum = 0;  // Wrapping.
  LogHistogram total_nanos;

  explicit MetricWindowDelta(const LogHistogram::Options& histogram_options)
      : total_nanos(histogram_options) {}

  void AddSpan(const Span& span);
  void Merge(const MetricWindowDelta& other);
  void WriteTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);
};

// Receiver of a shard's flushed metric deltas. ObservabilityHub is the
// production implementation; tests substitute recorders.
class MetricSink {
 public:
  virtual ~MetricSink() = default;

  // A shard's per-window delta since its previous flush.
  virtual void IngestWindowDelta(const MetricWindowDelta& delta) = 0;
  // A shard's per-method aggregate delta since its previous flush.
  virtual void IngestMethodDelta(int32_t method_id, const StreamStat& delta) = 0;
  // Raw-span buffer overflow drops since the previous flush (aggregates for
  // the dropped spans were still ingested — only exemplars were lost).
  virtual void IngestSpanDrops(uint64_t dropped) = 0;
};

// Configuration for the whole pipeline (shared by sinks and hub so their
// histogram layouts always agree — LogHistogram::Merge CHECKs layout).
struct ObservabilityOptions {
  // Build sinks + hub and stream at barriers. Off leaves the legacy post-run
  // merge (RpcSystem::MergedSpans) as the only aggregation path.
  bool streaming = true;
  // Monarch window width. The paper's counters use 30 minutes; short DES
  // scenarios set this to milliseconds to get a live series.
  SimDuration window = Minutes(30);
  // Hub retention: window summaries beyond this are evicted oldest-first
  // (after closing through the tap); evictions are counted, never silent.
  int max_windows = 96;
  // Per-shard cap on raw spans buffered between barrier flushes. Aggregates
  // are unaffected by the cap; only exemplar candidates are dropped (counted).
  size_t max_buffered_spans = 1 << 16;
  // Exemplar reservoir size per method at the hub (Algorithm R).
  int reservoir_per_method = 4;
  uint64_t reservoir_seed = 0x0b5eedULL;
  // Latency histogram layout, in nanoseconds: 100ns .. 1000s.
  LogHistogram::Options latency_histogram = {
      .min_value = 1e2, .max_value = 1e12, .buckets_per_decade = 10};
};

// Closed-or-open window summary retained at the hub.
// RPCSCOPE_CHECKPOINTED(WindowStats::WriteTo, WindowStats::RestoreFrom)
struct WindowStats {
  SimTime window_start = 0;
  SimDuration window_width = 0;
  int64_t spans = 0;
  int64_t errors = 0;
  uint64_t total_nanos_sum = 0;  // Wrapping.
  LogHistogram total_nanos;
  bool closed = false;
  // Deltas merged after the window already closed (in-flight stragglers whose
  // start window retired before they completed). The tap saw the window
  // without them; the aggregate state still includes them.
  int64_t late_updates = 0;

  explicit WindowStats(const LogHistogram::Options& histogram_options)
      : total_nanos(histogram_options) {}

  double Rps() const {
    return window_width <= 0 ? 0.0 : static_cast<double>(spans) / ToSeconds(window_width);
  }
  double MeanTotalNanos() const {
    return spans == 0 ? 0.0 : static_cast<double>(total_nanos_sum) / static_cast<double>(spans);
  }

  void WriteTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);
};

// The central aggregation plane. Single-threaded by contract: only the
// coordinator (barrier) thread or a post-run caller may touch it.
// RPCSCOPE_CHECKPOINTED(ObservabilityHub::CheckpointTo, ObservabilityHub::RestoreFrom)
class ObservabilityHub : public MetricSink, public TraceSink {
 public:
  // RPCSCOPE_CHECKPOINTED(ObservabilityHub::MethodStream::WriteTo, ObservabilityHub::MethodStream::RestoreFrom)
  struct MethodStream {
    StreamStat stat;
    // Exemplar reservoir (Algorithm R over the canonical ingest order).
    std::vector<Span> reservoir;
    int64_t reservoir_seen = 0;
    Rng reservoir_rng;

    MethodStream(const LogHistogram::Options& histogram_options, uint64_t seed)
        : stat(histogram_options), reservoir_rng(seed) {}

    void WriteTo(CheckpointWriter& w) const;
    [[nodiscard]] Status RestoreFrom(CheckpointReader& r);
  };

  explicit ObservabilityHub(const ObservabilityOptions& options);

  // Live tap: invoked exactly once per window, when the watermark passes its
  // end (or at final flush). Not part of digests.
  void SetWindowCloseTap(std::function<void(const WindowStats&)> tap) {
    on_window_close_ = std::move(tap);
  }

  // MetricSink: mergeable deltas, order-independent aggregate state.
  void IngestWindowDelta(const MetricWindowDelta& delta) override;
  void IngestMethodDelta(int32_t method_id, const StreamStat& delta) override;
  void IngestSpanDrops(uint64_t dropped) override;

  // TraceSink: exemplar path. Feeds the per-method reservoir only — aggregate
  // state comes exclusively through the MetricSink deltas, so replaying raw
  // spans here never double-counts.
  void OnSpan(const Span& span) override;

  // Closes every window whose end <= watermark: fires the tap once and marks
  // it closed. Idempotent per window; watermarks must be non-decreasing.
  void AdvanceWatermark(SimTime watermark);

  // Queries.
  SimTime watermark() const { return watermark_; }
  const std::map<int32_t, MethodStream>& methods() const { return methods_; }
  const std::deque<WindowStats>& windows() const { return windows_; }
  const WindowStats* FindWindow(SimTime window_start) const;
  // Running quantile of a method's completion time, in nanoseconds.
  double MethodQuantileNanos(int32_t method_id, double q) const;

  // Counters (all cumulative).
  int64_t spans_ingested() const { return spans_ingested_; }         // Via deltas.
  int64_t exemplars_ingested() const { return exemplars_ingested_; }  // Via OnSpan.
  uint64_t span_buffer_drops() const { return span_buffer_drops_; }
  int64_t reservoir_drops() const { return reservoir_drops_; }
  int64_t windows_closed() const { return windows_closed_; }
  int64_t windows_evicted() const { return windows_evicted_; }
  int64_t late_window_updates() const { return late_window_updates_; }

  // FNV-1a fold of the order-independent aggregate state: every method's
  // StreamStat and every retained window's counters + bucket counts, in key
  // order. Streaming at barriers and replaying the post-run merged span
  // stream yield the same digest; so do any two worker-thread counts.
  uint64_t AggregateDigest() const;
  // FNV-1a fold of reservoir contents (span ids per method). Order-dependent,
  // but the barrier order is canonical: equal across worker-thread counts.
  uint64_t ExemplarDigest() const;

  const ObservabilityOptions& options() const { return options_; }

  // Checkpoint support: the full aggregation state — per-method streams
  // (stats + reservoirs + reservoir RNGs), retained windows, watermark, and
  // every counter. Restore requires a hub freshly constructed with the same
  // digest-relevant options (validated) and replaces its state wholesale, so
  // AggregateDigest/ExemplarDigest after restore equal the values at save.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  WindowStats& WindowAt(SimTime window_start);

  ObservabilityOptions options_;
  // Re-attached by the owner after restore, like any live callback.
  std::function<void(const WindowStats&)> on_window_close_;  // NOLINT(detan-checkpoint-field) structural
  std::map<int32_t, MethodStream> methods_;
  std::deque<WindowStats> windows_;  // Ascending by window_start.
  SimTime watermark_ = kMinSimTime;
  int64_t spans_ingested_ = 0;
  int64_t exemplars_ingested_ = 0;
  uint64_t span_buffer_drops_ = 0;
  int64_t reservoir_drops_ = 0;
  int64_t windows_closed_ = 0;
  int64_t windows_evicted_ = 0;
  int64_t late_window_updates_ = 0;
};

// The shard-local half of the pipeline. Owned by a shard context, invoked
// only from that shard's round execution; flushed by the coordinator at
// barriers (canonical shard order) via FlushInto.
// RPCSCOPE_CHECKPOINTED(ShardStreamSink::CheckpointTo, ShardStreamSink::RestoreFrom)
class ShardStreamSink : public TraceSink {
 public:
  explicit ShardStreamSink(const ObservabilityOptions& options);

  // Folds the span into the per-method and per-window deltas (always), and
  // appends it to the bounded exemplar buffer (unless full: counted drop).
  void OnSpan(const Span& span) override;

  // Moves all accumulated deltas and buffered spans into `hub` and resets
  // this sink to empty. Windows that ended at or before `watermark` are
  // retired here eagerly — by contract no event at time < watermark will run
  // again, and late completions for an already-retired window simply open a
  // fresh delta that merges into the hub's (closed) window summary.
  // Single-threaded: caller must be the coordinator, at a barrier.
  void FlushInto(ObservabilityHub& hub, SimTime watermark);

  // Stats for cap/bounded-memory verification.
  size_t buffered_spans() const { return buffered_spans_.size(); }
  size_t peak_buffered_spans() const { return peak_buffered_spans_; }
  uint64_t dropped_spans() const { return dropped_spans_; }
  int64_t spans_seen() const { return spans_seen_; }

  // Checkpoint support. Checkpoints happen right after a barrier flush, so
  // both directions require the delta maps and span buffer to be empty (only
  // the cumulative counters survive a flush).
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  ObservabilityOptions options_;
  std::map<int32_t, StreamStat> method_deltas_;
  std::map<SimTime, MetricWindowDelta> window_deltas_;
  std::vector<Span> buffered_spans_;
  size_t peak_buffered_spans_ = 0;
  uint64_t dropped_spans_ = 0;       // Cumulative (survives flushes).
  uint64_t unflushed_drops_ = 0;     // Since the last flush.
  int64_t spans_seen_ = 0;
};

// Post-run reference aggregation: feeds every span through a fresh
// sink + hub pair with one final flush. Tests compare its AggregateDigest
// against the barrier-streamed hub's to prove the streamed pipeline lost
// nothing (docs/OBSERVABILITY.md). The cap is lifted so exemplar candidates
// are never dropped by buffering (reservoir policy still applies). Digests
// are comparable as long as neither hub evicted windows (windows_evicted()
// == 0) — retention eviction is deliberately lossy, so runs spanning more
// than max_windows windows digest only the retained suffix.
ObservabilityHub ReplayIntoHub(const std::vector<Span>& spans, ObservabilityOptions options);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_MONITOR_STREAM_H_

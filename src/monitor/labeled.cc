#include "src/monitor/labeled.h"

namespace rpcscope {

Counter& LabeledCounter::WithLabel(const std::string& label) {
  auto& slot = streams_[label];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

double LabeledCounter::Total() const {
  double total = 0;
  for (const auto& [label, counter] : streams_) {
    total += counter->value();
  }
  return total;
}

void LabeledDistribution::Record(const std::string& label, double value) {
  auto& slot = streams_[label];
  if (!slot) {
    slot = std::make_unique<LogHistogram>(options_);
  }
  slot->Add(value);
}

const LogHistogram* LabeledDistribution::ForLabel(const std::string& label) const {
  auto it = streams_.find(label);
  return it == streams_.end() ? nullptr : it->second.get();
}

LogHistogram LabeledDistribution::Merged() const {
  LogHistogram merged(options_);
  for (const auto& [label, hist] : streams_) {
    merged.Merge(*hist);
  }
  return merged;
}

void SampleLabeledCounter(const LabeledCounter& family, MetricRegistry& registry, SimTime now) {
  for (const auto& [label, counter] : family.streams()) {
    // Mirror the per-stream cumulative value into the registry so retention
    // and rate queries apply uniformly.
    registry.GetCounter(family.name() + "{" + label + "}").Increment(0);
    Counter& mirror = registry.GetCounter(family.name() + "{" + label + "}");
    const double delta = counter->value() - mirror.value();
    if (delta > 0) {
      mirror.Increment(delta);
    }
  }
  registry.SampleAll(now);
}

}  // namespace rpcscope

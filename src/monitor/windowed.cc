#include "src/monitor/windowed.h"

#include <cassert>

namespace rpcscope {

WindowedDistribution::WindowedDistribution(const Options& options) : options_(options) {
  assert(options.window > 0);
  assert(options.max_windows > 0);
}

void WindowedDistribution::Record(SimTime time, double value) {
  const SimTime start = (time / options_.window) * options_.window;
  // Find the window from the back (recent samples dominate); insert in order
  // if it does not exist yet.
  auto it = windows_.end();
  while (it != windows_.begin()) {
    auto prev = std::prev(it);
    if (prev->start == start) {
      prev->histogram.Add(value);
      return;
    }
    if (prev->start < start) {
      break;
    }
    it = prev;
  }
  if (!windows_.empty() && start < windows_.front().start &&
      static_cast<int>(windows_.size()) >= options_.max_windows) {
    return;  // Older than the retention horizon: drop.
  }
  auto inserted = windows_.insert(it, {start, LogHistogram(options_.histogram)});
  inserted->histogram.Add(value);
  while (static_cast<int>(windows_.size()) > options_.max_windows) {
    windows_.pop_front();
  }
}

std::vector<WindowedDistribution::WindowQuantile> WindowedDistribution::QuantileSeries(
    SimTime begin, SimTime end, double q) const {
  std::vector<WindowQuantile> out;
  for (const Window& w : windows_) {
    if (w.start >= begin && w.start < end && w.histogram.count() > 0) {
      out.push_back({w.start, w.histogram.Quantile(q), w.histogram.count()});
    }
  }
  return out;
}

LogHistogram WindowedDistribution::Merged() const {
  LogHistogram merged(options_.histogram);
  for (const Window& w : windows_) {
    merged.Merge(w.histogram);
  }
  return merged;
}

}  // namespace rpcscope

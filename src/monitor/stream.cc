#include "src/monitor/stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"
#include "src/trace/storage.h"

namespace rpcscope {

namespace {

// FNV-1a fold of one 64-bit word, byte by byte — the repo-wide digest
// primitive (same mix as Simulator::event_digest, so hub digests compose
// with the rest of the determinism fingerprints).
uint64_t FnvMix(uint64_t digest, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    digest ^= (word >> (8 * i)) & 0xff;
    digest *= kPrime;
  }
  return digest;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

uint64_t FoldHistogram(uint64_t digest, const LogHistogram& histogram) {
  digest = FnvMix(digest, static_cast<uint64_t>(histogram.count()));
  for (int64_t bucket : histogram.bucket_counts()) {
    digest = FnvMix(digest, static_cast<uint64_t>(bucket));
  }
  return digest;
}

SimTime WindowStartOf(SimTime time, SimDuration window) {
  // Aligned window containing `time`; negative times (not produced by the
  // stack, but accepted) floor toward -inf so windows stay half-open.
  SimTime start = (time / window) * window;
  if (start > time) {
    start -= window;
  }
  return start;
}

}  // namespace

void StreamStat::AddSpan(const Span& span) {
  const SimDuration total = span.latency.Total();
  if (count == 0 || total < min_total) {
    min_total = total;
  }
  if (count == 0 || total > max_total) {
    max_total = total;
  }
  ++count;
  if (span.status != StatusCode::kOk) {
    ++errors;
  }
  total_nanos_sum += static_cast<uint64_t>(total);
  tax_nanos_sum += static_cast<uint64_t>(span.latency.Tax());
  if (span.colocated) {
    ++colocated;
    avoided_tax_cycles_sum += static_cast<uint64_t>(std::llround(span.avoided_tax_cycles));
  }
  total_nanos.Add(static_cast<double>(total));
}

void StreamStat::Merge(const StreamStat& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0 || other.min_total < min_total) {
    min_total = other.min_total;
  }
  if (count == 0 || other.max_total > max_total) {
    max_total = other.max_total;
  }
  count += other.count;
  errors += other.errors;
  total_nanos_sum += other.total_nanos_sum;
  tax_nanos_sum += other.tax_nanos_sum;
  colocated += other.colocated;
  avoided_tax_cycles_sum += other.avoided_tax_cycles_sum;
  total_nanos.Merge(other.total_nanos);
}

void StreamStat::WriteTo(CheckpointWriter& w) const {
  w.WriteI64(count);
  w.WriteI64(errors);
  w.WriteU64(total_nanos_sum);
  w.WriteU64(tax_nanos_sum);
  w.WriteI64(colocated);
  w.WriteU64(avoided_tax_cycles_sum);
  w.WriteI64(min_total);
  w.WriteI64(max_total);
  WriteHistogramState(w, total_nanos);
}

Status StreamStat::RestoreFrom(CheckpointReader& r) {
  count = r.ReadI64();
  errors = r.ReadI64();
  total_nanos_sum = r.ReadU64();
  tax_nanos_sum = r.ReadU64();
  colocated = r.ReadI64();
  avoided_tax_cycles_sum = r.ReadU64();
  min_total = r.ReadI64();
  max_total = r.ReadI64();
  return ReadHistogramState(r, total_nanos);
}

void MetricWindowDelta::AddSpan(const Span& span) {
  ++spans;
  if (span.status != StatusCode::kOk) {
    ++errors;
  }
  const SimDuration total = span.latency.Total();
  total_nanos_sum += static_cast<uint64_t>(total);
  total_nanos.Add(static_cast<double>(total));
}

void MetricWindowDelta::Merge(const MetricWindowDelta& other) {
  RPCSCOPE_DCHECK_EQ(window_start, other.window_start);
  spans += other.spans;
  errors += other.errors;
  total_nanos_sum += other.total_nanos_sum;
  total_nanos.Merge(other.total_nanos);
}

void MetricWindowDelta::WriteTo(CheckpointWriter& w) const {
  w.WriteI64(window_start);
  w.WriteI64(spans);
  w.WriteI64(errors);
  w.WriteU64(total_nanos_sum);
  WriteHistogramState(w, total_nanos);
}

Status MetricWindowDelta::RestoreFrom(CheckpointReader& r) {
  window_start = r.ReadI64();
  spans = r.ReadI64();
  errors = r.ReadI64();
  total_nanos_sum = r.ReadU64();
  return ReadHistogramState(r, total_nanos);
}

void WindowStats::WriteTo(CheckpointWriter& w) const {
  w.WriteI64(window_start);
  w.WriteI64(window_width);
  w.WriteI64(spans);
  w.WriteI64(errors);
  w.WriteU64(total_nanos_sum);
  w.WriteBool(closed);
  w.WriteI64(late_updates);
  WriteHistogramState(w, total_nanos);
}

Status WindowStats::RestoreFrom(CheckpointReader& r) {
  window_start = r.ReadI64();
  window_width = r.ReadI64();
  spans = r.ReadI64();
  errors = r.ReadI64();
  total_nanos_sum = r.ReadU64();
  closed = r.ReadBool();
  late_updates = r.ReadI64();
  return ReadHistogramState(r, total_nanos);
}

void ObservabilityHub::MethodStream::WriteTo(CheckpointWriter& w) const {
  stat.WriteTo(w);
  w.WriteI64(reservoir_seen);
  WriteRngState(w, reservoir_rng);
  w.WriteBytes(SerializeSpans(reservoir));
}

Status ObservabilityHub::MethodStream::RestoreFrom(CheckpointReader& r) {
  if (Status s = stat.RestoreFrom(r); !s.ok()) {
    return s;
  }
  reservoir_seen = r.ReadI64();
  ReadRngState(r, reservoir_rng);
  Result<std::vector<Span>> spans = DeserializeSpans(r.ReadBytes());
  if (!spans.ok()) {
    return spans.status();
  }
  reservoir = std::move(spans).value();
  return Status::Ok();
}

ObservabilityHub::ObservabilityHub(const ObservabilityOptions& options) : options_(options) {
  RPCSCOPE_CHECK_GT(options_.window, 0);
  RPCSCOPE_CHECK_GT(options_.max_windows, 0);
  RPCSCOPE_CHECK_GE(options_.reservoir_per_method, 0);
}

WindowStats& ObservabilityHub::WindowAt(SimTime window_start) {
  // Windows arrive almost in order (barrier watermarks are monotone); search
  // from the back, insert in place if absent.
  auto it = windows_.end();
  while (it != windows_.begin()) {
    auto prev = std::prev(it);
    if (prev->window_start == window_start) {
      return *prev;
    }
    if (prev->window_start < window_start) {
      break;
    }
    it = prev;
  }
  it = windows_.insert(it, WindowStats(options_.latency_histogram));
  it->window_start = window_start;
  it->window_width = options_.window;
  // A window created at or below the watermark was already closed (a late
  // straggler re-opened it): keep it marked closed so the tap never fires
  // twice, and let AdvanceWatermark's counters stand.
  if (AddClamped(window_start, options_.window) <= watermark_) {
    it->closed = true;
  }
  WindowStats& created = *it;
  while (static_cast<int>(windows_.size()) > options_.max_windows) {
    // Evict oldest-first; an unclosed evictee still goes through the tap so
    // no window ever disappears silently.
    WindowStats& oldest = windows_.front();
    if (&oldest == &created) {
      break;  // Never evict the entry being returned.
    }
    if (!oldest.closed) {
      oldest.closed = true;
      ++windows_closed_;
      if (on_window_close_) {
        on_window_close_(oldest);
      }
    }
    ++windows_evicted_;
    windows_.pop_front();
  }
  return created;
}

void ObservabilityHub::IngestWindowDelta(const MetricWindowDelta& delta) {
  WindowStats& window = WindowAt(delta.window_start);
  if (window.closed) {
    ++window.late_updates;
    ++late_window_updates_;
  }
  window.spans += delta.spans;
  window.errors += delta.errors;
  window.total_nanos_sum += delta.total_nanos_sum;
  window.total_nanos.Merge(delta.total_nanos);
  spans_ingested_ += delta.spans;
}

void ObservabilityHub::IngestMethodDelta(int32_t method_id, const StreamStat& delta) {
  auto it = methods_.find(method_id);
  if (it == methods_.end()) {
    it = methods_
             .emplace(method_id,
                      MethodStream(options_.latency_histogram,
                                   Mix64(options_.reservoir_seed ^
                                         static_cast<uint64_t>(static_cast<uint32_t>(method_id)))))
             .first;
  }
  it->second.stat.Merge(delta);
}

void ObservabilityHub::IngestSpanDrops(uint64_t dropped) { span_buffer_drops_ += dropped; }

void ObservabilityHub::OnSpan(const Span& span) {
  ++exemplars_ingested_;
  auto it = methods_.find(span.method_id);
  if (it == methods_.end()) {
    it = methods_
             .emplace(span.method_id,
                      MethodStream(options_.latency_histogram,
                                   Mix64(options_.reservoir_seed ^
                                         static_cast<uint64_t>(
                                             static_cast<uint32_t>(span.method_id)))))
             .first;
  }
  MethodStream& stream = it->second;
  const int64_t seen = stream.reservoir_seen++;
  const int64_t capacity = options_.reservoir_per_method;
  if (capacity == 0) {
    ++reservoir_drops_;
    return;
  }
  if (seen < capacity) {
    stream.reservoir.push_back(span);
    return;
  }
  // Algorithm R: the i-th span (0-based) replaces a random slot with
  // probability capacity / (i + 1). Deterministic per method given the
  // canonical ingest order.
  const uint64_t j = stream.reservoir_rng.NextBounded(static_cast<uint64_t>(seen) + 1);
  if (j < static_cast<uint64_t>(capacity)) {
    stream.reservoir[static_cast<size_t>(j)] = span;
  }
  ++reservoir_drops_;
}

void ObservabilityHub::AdvanceWatermark(SimTime watermark) {
  RPCSCOPE_CHECK_GE(watermark, watermark_) << "watermarks must be non-decreasing";
  watermark_ = watermark;
  for (WindowStats& window : windows_) {
    if (window.closed) {
      continue;
    }
    if (AddClamped(window.window_start, window.window_width) > watermark) {
      break;  // Ascending order: everything later is still open.
    }
    window.closed = true;
    ++windows_closed_;
    if (on_window_close_) {
      on_window_close_(window);
    }
  }
}

const WindowStats* ObservabilityHub::FindWindow(SimTime window_start) const {
  for (const WindowStats& window : windows_) {
    if (window.window_start == window_start) {
      return &window;
    }
  }
  return nullptr;
}

double ObservabilityHub::MethodQuantileNanos(int32_t method_id, double q) const {
  auto it = methods_.find(method_id);
  if (it == methods_.end() || it->second.stat.count == 0) {
    return 0.0;
  }
  return it->second.stat.total_nanos.Quantile(q);
}

uint64_t ObservabilityHub::AggregateDigest() const {
  uint64_t digest = kFnvOffset;
  digest = FnvMix(digest, static_cast<uint64_t>(methods_.size()));
  for (const auto& [method_id, stream] : methods_) {
    digest = FnvMix(digest, static_cast<uint64_t>(static_cast<uint32_t>(method_id)));
    digest = FnvMix(digest, static_cast<uint64_t>(stream.stat.count));
    digest = FnvMix(digest, static_cast<uint64_t>(stream.stat.errors));
    digest = FnvMix(digest, stream.stat.total_nanos_sum);
    digest = FnvMix(digest, stream.stat.tax_nanos_sum);
    digest = FnvMix(digest, static_cast<uint64_t>(stream.stat.colocated));
    digest = FnvMix(digest, stream.stat.avoided_tax_cycles_sum);
    digest = FnvMix(digest, static_cast<uint64_t>(stream.stat.min_total));
    digest = FnvMix(digest, static_cast<uint64_t>(stream.stat.max_total));
    digest = FoldHistogram(digest, stream.stat.total_nanos);
  }
  digest = FnvMix(digest, static_cast<uint64_t>(windows_.size()));
  for (const WindowStats& window : windows_) {
    digest = FnvMix(digest, static_cast<uint64_t>(window.window_start));
    digest = FnvMix(digest, static_cast<uint64_t>(window.spans));
    digest = FnvMix(digest, static_cast<uint64_t>(window.errors));
    digest = FnvMix(digest, window.total_nanos_sum);
    digest = FoldHistogram(digest, window.total_nanos);
  }
  digest = FnvMix(digest, static_cast<uint64_t>(spans_ingested_));
  return digest;
}

uint64_t ObservabilityHub::ExemplarDigest() const {
  uint64_t digest = kFnvOffset;
  for (const auto& [method_id, stream] : methods_) {
    digest = FnvMix(digest, static_cast<uint64_t>(static_cast<uint32_t>(method_id)));
    digest = FnvMix(digest, static_cast<uint64_t>(stream.reservoir_seen));
    for (const Span& span : stream.reservoir) {
      digest = FnvMix(digest, span.trace_id);
      digest = FnvMix(digest, span.span_id);
      digest = FnvMix(digest, static_cast<uint64_t>(span.start_time));
    }
  }
  return digest;
}

Status ObservabilityHub::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("hub");
  // Digest-relevant configuration, re-validated on restore.
  w.WriteI64(options_.window);
  w.WriteU32(static_cast<uint32_t>(options_.max_windows));
  w.WriteU32(static_cast<uint32_t>(options_.reservoir_per_method));
  w.WriteU64(options_.reservoir_seed);
  w.WriteI64(watermark_);
  w.WriteI64(spans_ingested_);
  w.WriteI64(exemplars_ingested_);
  w.WriteU64(span_buffer_drops_);
  w.WriteI64(reservoir_drops_);
  w.WriteI64(windows_closed_);
  w.WriteI64(windows_evicted_);
  w.WriteI64(late_window_updates_);
  w.WriteU32(static_cast<uint32_t>(methods_.size()));
  for (const auto& [method_id, stream] : methods_) {
    w.WriteU32(static_cast<uint32_t>(method_id));
    stream.WriteTo(w);
  }
  w.WriteU32(static_cast<uint32_t>(windows_.size()));
  for (const WindowStats& window : windows_) {
    window.WriteTo(w);
  }
  w.EndSection();
  return Status::Ok();
}

Status ObservabilityHub::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("hub"); !s.ok()) {
    return s;
  }
  const SimDuration window = r.ReadI64();
  const auto max_windows = static_cast<int>(r.ReadU32());
  const auto reservoir_per_method = static_cast<int>(r.ReadU32());
  const uint64_t reservoir_seed = r.ReadU64();
  if (window != options_.window || max_windows != options_.max_windows ||
      reservoir_per_method != options_.reservoir_per_method ||
      reservoir_seed != options_.reservoir_seed) {
    // Surface the config mismatch with its own code; drain the section first
    // so the caller could in principle continue past it.
    (void)r.LeaveSection();
    return FailedPreconditionError(
        "checkpoint observability configuration does not match this run");
  }
  const SimTime watermark = r.ReadI64();
  const int64_t spans_ingested = r.ReadI64();
  const int64_t exemplars_ingested = r.ReadI64();
  const uint64_t span_buffer_drops = r.ReadU64();
  const int64_t reservoir_drops = r.ReadI64();
  const int64_t windows_closed = r.ReadI64();
  const int64_t windows_evicted = r.ReadI64();
  const int64_t late_window_updates = r.ReadI64();
  std::map<int32_t, MethodStream> methods;
  const uint32_t num_methods = r.ReadU32();
  int64_t previous_method = -1;
  for (uint32_t i = 0; i < num_methods && r.status().ok(); ++i) {
    const auto method_id = static_cast<int32_t>(r.ReadU32());
    if (static_cast<int64_t>(method_id) <= previous_method) {
      (void)r.LeaveSection();
      return DataLossError("hub method ids out of order in checkpoint");
    }
    previous_method = method_id;
    auto it = methods
                  .emplace(method_id,
                           MethodStream(options_.latency_histogram,
                                        Mix64(options_.reservoir_seed ^
                                              static_cast<uint64_t>(
                                                  static_cast<uint32_t>(method_id)))))
                  .first;
    if (Status s = it->second.RestoreFrom(r); !s.ok()) {
      (void)r.LeaveSection();
      return s;
    }
  }
  std::deque<WindowStats> windows;
  const uint32_t num_windows = r.ReadU32();
  for (uint32_t i = 0; i < num_windows && r.status().ok(); ++i) {
    windows.emplace_back(options_.latency_histogram);
    if (Status s = windows.back().RestoreFrom(r); !s.ok()) {
      (void)r.LeaveSection();
      return s;
    }
    if (windows.size() > 1 &&
        windows[windows.size() - 2].window_start >= windows.back().window_start) {
      (void)r.LeaveSection();
      return DataLossError("hub windows out of order in checkpoint");
    }
  }
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  watermark_ = watermark;
  spans_ingested_ = spans_ingested;
  exemplars_ingested_ = exemplars_ingested;
  span_buffer_drops_ = span_buffer_drops;
  reservoir_drops_ = reservoir_drops;
  windows_closed_ = windows_closed;
  windows_evicted_ = windows_evicted;
  late_window_updates_ = late_window_updates;
  methods_ = std::move(methods);
  windows_ = std::move(windows);
  return Status::Ok();
}

ShardStreamSink::ShardStreamSink(const ObservabilityOptions& options) : options_(options) {
  RPCSCOPE_CHECK_GT(options_.window, 0);
}

Status ShardStreamSink::CheckpointTo(CheckpointWriter& w) const {
  if (!method_deltas_.empty() || !window_deltas_.empty() || !buffered_spans_.empty() ||
      unflushed_drops_ != 0) {
    return FailedPreconditionError(
        "shard stream sink has unflushed deltas: checkpoints are only taken "
        "right after a barrier flush");
  }
  w.BeginSection("stream_sink");
  w.WriteI64(options_.window);  // Validation aid.
  w.WriteU64(static_cast<uint64_t>(peak_buffered_spans_));
  w.WriteU64(dropped_spans_);
  w.WriteI64(spans_seen_);
  w.EndSection();
  return Status::Ok();
}

Status ShardStreamSink::RestoreFrom(CheckpointReader& r) {
  if (!method_deltas_.empty() || !window_deltas_.empty() || !buffered_spans_.empty() ||
      unflushed_drops_ != 0) {
    return FailedPreconditionError("restore into a stream sink with unflushed deltas");
  }
  if (Status s = r.EnterSection("stream_sink"); !s.ok()) {
    return s;
  }
  const SimDuration window = r.ReadI64();
  const uint64_t peak_buffered_spans = r.ReadU64();
  const uint64_t dropped_spans = r.ReadU64();
  const int64_t spans_seen = r.ReadI64();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (window != options_.window) {
    return FailedPreconditionError("checkpoint sink window does not match this run");
  }
  peak_buffered_spans_ = static_cast<size_t>(peak_buffered_spans);
  dropped_spans_ = dropped_spans;
  spans_seen_ = spans_seen;
  return Status::Ok();
}

void ShardStreamSink::OnSpan(const Span& span) {
  ++spans_seen_;
  // Aggregates first: the buffer cap only ever costs exemplars.
  auto method_it = method_deltas_.find(span.method_id);
  if (method_it == method_deltas_.end()) {
    method_it =
        method_deltas_.emplace(span.method_id, StreamStat(options_.latency_histogram)).first;
  }
  method_it->second.AddSpan(span);

  const SimTime window_start = WindowStartOf(span.start_time, options_.window);
  auto window_it = window_deltas_.find(window_start);
  if (window_it == window_deltas_.end()) {
    window_it =
        window_deltas_.emplace(window_start, MetricWindowDelta(options_.latency_histogram)).first;
    window_it->second.window_start = window_start;
  }
  window_it->second.AddSpan(span);

  if (buffered_spans_.size() >= options_.max_buffered_spans) {
    ++dropped_spans_;
    ++unflushed_drops_;
    return;
  }
  buffered_spans_.push_back(span);
  peak_buffered_spans_ = std::max(peak_buffered_spans_, buffered_spans_.size());
}

void ShardStreamSink::FlushInto(ObservabilityHub& hub, SimTime watermark) {
  // Window deltas retire eagerly: every delta ships now and its shard-side
  // entry is erased, closed or not — the hub owns the running summary. The
  // `watermark` parameter names the round barrier this flush happens at; the
  // hub uses it (via AdvanceWatermark, called by the owner after all shards
  // flushed) to decide which windows are final.
  (void)watermark;
  for (auto& [window_start, delta] : window_deltas_) {
    hub.IngestWindowDelta(delta);
  }
  window_deltas_.clear();
  for (auto& [method_id, delta] : method_deltas_) {
    hub.IngestMethodDelta(method_id, delta);
  }
  method_deltas_.clear();
  for (const Span& span : buffered_spans_) {
    hub.OnSpan(span);
  }
  buffered_spans_.clear();
  if (unflushed_drops_ != 0) {
    hub.IngestSpanDrops(unflushed_drops_);
    unflushed_drops_ = 0;
  }
}

ObservabilityHub ReplayIntoHub(const std::vector<Span>& spans, ObservabilityOptions options) {
  // Lift the cap: the reference path buffers everything once, then flushes.
  options.max_buffered_spans = spans.size() + 1;
  ObservabilityHub hub(options);
  ShardStreamSink sink(options);
  for (const Span& span : spans) {
    sink.OnSpan(span);
  }
  sink.FlushInto(hub, kMaxSimTime);
  hub.AdvanceWatermark(kMaxSimTime);
  return hub;
}

}  // namespace rpcscope

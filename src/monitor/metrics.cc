#include "src/monitor/metrics.h"

#include <algorithm>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"

namespace rpcscope {

namespace {

// Deterministic iteration order over an unordered map keyed by name.
template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> keys;
  keys.reserve(map.size());
  for (const auto& [name, unused] : map) {
    keys.push_back(name);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void TimeSeries::Expire(SimTime now, SimDuration retention) {
  const SimTime cutoff = now - retention;
  while (!points_.empty() && points_.front().time < cutoff) {
    points_.pop_front();
  }
}

std::vector<TimePoint> TimeSeries::Range(SimTime begin, SimTime end) const {
  std::vector<TimePoint> out;
  for (const TimePoint& p : points_) {
    if (p.time >= begin && p.time <= end) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<TimePoint> TimeSeries::RatePerSecond(SimTime begin, SimTime end) const {
  std::vector<TimePoint> range = Range(begin, end);
  std::vector<TimePoint> out;
  for (size_t i = 1; i < range.size(); ++i) {
    const SimDuration dt = range[i].time - range[i - 1].time;
    if (dt <= 0) {
      continue;
    }
    out.push_back({range[i].time, (range[i].value - range[i - 1].value) / ToSeconds(dt)});
  }
  return out;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

DistributionMetric& MetricRegistry::GetDistribution(const std::string& name) {
  auto& slot = distributions_[name];
  if (!slot) {
    slot = std::make_unique<DistributionMetric>();
  }
  return *slot;
}

const Counter* MetricRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const DistributionMetric* MetricRegistry::FindDistribution(const std::string& name) const {
  auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : it->second.get();
}

void MetricRegistry::SampleAll(SimTime now) {
  for (const auto& [name, counter] : counters_) {
    TimeSeries& ts = series_[name];
    ts.Append(now, counter->value());
    ts.Expire(now, options_.retention);
  }
  for (const auto& [name, gauge] : gauges_) {
    TimeSeries& ts = series_[name];
    ts.Append(now, gauge->value());
    ts.Expire(now, options_.retention);
  }
  for (const auto& [name, dist] : distributions_) {
    TimeSeries& ts = series_[name];
    ts.Append(now, static_cast<double>(dist->histogram().count()));
    ts.Expire(now, options_.retention);
  }
}

const TimeSeries* MetricRegistry::Series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

Status MetricRegistry::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("metrics");
  w.WriteI64(options_.sample_window);
  w.WriteI64(options_.retention);
  w.WriteU32(static_cast<uint32_t>(counters_.size()));
  for (const std::string& name : SortedKeys(counters_)) {
    w.WriteString(name);
    w.WriteDouble(counters_.at(name)->value());
  }
  w.WriteU32(static_cast<uint32_t>(gauges_.size()));
  for (const std::string& name : SortedKeys(gauges_)) {
    w.WriteString(name);
    w.WriteDouble(gauges_.at(name)->value());
  }
  w.WriteU32(static_cast<uint32_t>(distributions_.size()));
  for (const std::string& name : SortedKeys(distributions_)) {
    w.WriteString(name);
    WriteHistogramState(w, distributions_.at(name)->histogram());
  }
  w.WriteU32(static_cast<uint32_t>(series_.size()));
  for (const std::string& name : SortedKeys(series_)) {
    w.WriteString(name);
    const std::deque<TimePoint>& points = series_.at(name).points();
    w.WriteU32(static_cast<uint32_t>(points.size()));
    for (const TimePoint& p : points) {
      w.WriteI64(p.time);
      w.WriteDouble(p.value);
    }
  }
  w.EndSection();
  return Status::Ok();
}

Status MetricRegistry::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("metrics"); !s.ok()) {
    return s;
  }
  const SimDuration sample_window = r.ReadI64();
  const SimDuration retention = r.ReadI64();

  // Read everything into locals first; nothing is applied until the section
  // parses clean and the configuration matches.
  std::vector<std::pair<std::string, double>> counters;
  const uint32_t num_counters = r.ReadU32();
  for (uint32_t i = 0; i < num_counters && r.status().ok(); ++i) {
    std::string name = r.ReadString();
    const double value = r.ReadDouble();
    counters.emplace_back(std::move(name), value);
  }
  std::vector<std::pair<std::string, double>> gauges;
  const uint32_t num_gauges = r.ReadU32();
  for (uint32_t i = 0; i < num_gauges && r.status().ok(); ++i) {
    std::string name = r.ReadString();
    const double value = r.ReadDouble();
    gauges.emplace_back(std::move(name), value);
  }
  std::vector<std::pair<std::string, LogHistogram>> distributions;
  const uint32_t num_distributions = r.ReadU32();
  for (uint32_t i = 0; i < num_distributions && r.status().ok(); ++i) {
    std::string name = r.ReadString();
    LogHistogram hist;
    if (Status s = ReadHistogramState(r, hist); !s.ok()) {
      (void)r.LeaveSection();
      return s;
    }
    distributions.emplace_back(std::move(name), std::move(hist));
  }
  std::vector<std::pair<std::string, TimeSeries>> series;
  const uint32_t num_series = r.ReadU32();
  for (uint32_t i = 0; i < num_series && r.status().ok(); ++i) {
    std::string name = r.ReadString();
    const uint32_t num_points = r.ReadU32();
    TimeSeries ts;
    for (uint32_t j = 0; j < num_points && r.status().ok(); ++j) {
      const SimTime time = r.ReadI64();
      const double value = r.ReadDouble();
      ts.Append(time, value);
    }
    series.emplace_back(std::move(name), std::move(ts));
  }
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (sample_window != options_.sample_window || retention != options_.retention) {
    return FailedPreconditionError("metrics: registry options mismatch");
  }

  // Values land in the existing instrument objects (created during fleet
  // construction) so Counter*/Gauge* pointers cached by components survive.
  for (const auto& [name, value] : counters) {
    Counter& c = GetCounter(name);
    if (c.value() != 0.0) {
      return FailedPreconditionError("metrics: restore into non-zero counter " + name);
    }
    c.Increment(value);
    RPCSCOPE_DCHECK(counters_.count(name) == 1);
  }
  for (const auto& [name, value] : gauges) {
    GetGauge(name).Set(value);
    RPCSCOPE_DCHECK(gauges_.count(name) == 1);
  }
  for (auto& [name, hist] : distributions) {
    GetDistribution(name).mutable_histogram() = std::move(hist);
    RPCSCOPE_DCHECK(distributions_.count(name) == 1);
  }
  series_.clear();
  for (auto& [name, ts] : series) {
    series_.emplace(std::move(name), std::move(ts));
  }
  return Status::Ok();
}

}  // namespace rpcscope

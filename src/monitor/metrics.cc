#include "src/monitor/metrics.h"

namespace rpcscope {

void TimeSeries::Expire(SimTime now, SimDuration retention) {
  const SimTime cutoff = now - retention;
  while (!points_.empty() && points_.front().time < cutoff) {
    points_.pop_front();
  }
}

std::vector<TimePoint> TimeSeries::Range(SimTime begin, SimTime end) const {
  std::vector<TimePoint> out;
  for (const TimePoint& p : points_) {
    if (p.time >= begin && p.time <= end) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<TimePoint> TimeSeries::RatePerSecond(SimTime begin, SimTime end) const {
  std::vector<TimePoint> range = Range(begin, end);
  std::vector<TimePoint> out;
  for (size_t i = 1; i < range.size(); ++i) {
    const SimDuration dt = range[i].time - range[i - 1].time;
    if (dt <= 0) {
      continue;
    }
    out.push_back({range[i].time, (range[i].value - range[i - 1].value) / ToSeconds(dt)});
  }
  return out;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

DistributionMetric& MetricRegistry::GetDistribution(const std::string& name) {
  auto& slot = distributions_[name];
  if (!slot) {
    slot = std::make_unique<DistributionMetric>();
  }
  return *slot;
}

const Counter* MetricRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const DistributionMetric* MetricRegistry::FindDistribution(const std::string& name) const {
  auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : it->second.get();
}

void MetricRegistry::SampleAll(SimTime now) {
  for (const auto& [name, counter] : counters_) {
    TimeSeries& ts = series_[name];
    ts.Append(now, counter->value());
    ts.Expire(now, options_.retention);
  }
  for (const auto& [name, gauge] : gauges_) {
    TimeSeries& ts = series_[name];
    ts.Append(now, gauge->value());
    ts.Expire(now, options_.retention);
  }
  for (const auto& [name, dist] : distributions_) {
    TimeSeries& ts = series_[name];
    ts.Append(now, static_cast<double>(dist->histogram().count()));
    ts.Expire(now, options_.retention);
  }
}

const TimeSeries* MetricRegistry::Series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

}  // namespace rpcscope

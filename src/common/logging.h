// Minimal leveled logging to stderr.
//
// The library itself is silent by default (benches print reports to stdout);
// logging exists for debugging simulations and is compiled in at all levels,
// gated by a process-wide runtime threshold.
#ifndef RPCSCOPE_SRC_COMMON_LOGGING_H_
#define RPCSCOPE_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rpcscope {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default: kWarning.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Implementation detail of the RPCSCOPE_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace rpcscope

// Usage: RPCSCOPE_LOG(kInfo) << "served " << n << " requests";
#define RPCSCOPE_LOG(severity)                                                       \
  if (::rpcscope::LogLevel::severity < ::rpcscope::GetLogLevel()) {                  \
  } else                                                                             \
    ::rpcscope::LogMessage(::rpcscope::LogLevel::severity, __FILE__, __LINE__).stream()

#endif  // RPCSCOPE_SRC_COMMON_LOGGING_H_

// Simulation time: a signed 64-bit nanosecond count since simulation start.
//
// All latencies in the study range from sub-microsecond stack operations to
// multi-second tail RPCs and 700-day retention windows; int64 nanoseconds
// covers ±292 years, which is ample.
#ifndef RPCSCOPE_SRC_COMMON_TIME_H_
#define RPCSCOPE_SRC_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace rpcscope {

// Instants and durations share a representation; the type alias documents intent.
using SimTime = int64_t;      // Nanoseconds since simulation epoch.
using SimDuration = int64_t;  // Nanoseconds.

constexpr SimTime kMinSimTime = INT64_MIN;
constexpr SimTime kMaxSimTime = INT64_MAX;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }
constexpr SimDuration Minutes(int64_t n) { return n * kMinute; }
constexpr SimDuration Hours(int64_t n) { return n * kHour; }
constexpr SimDuration Days(int64_t n) { return n * kDay; }

// Saturating instant + duration addition: clamps to the SimTime range
// instead of wrapping. `Simulator::Schedule`/`RunFor` route through this so a
// caller passing "effectively forever" (e.g. INT64_MAX) schedules at the far
// end of virtual time rather than silently wrapping into the past in release
// builds.
constexpr SimTime AddClamped(SimTime t, SimDuration d) {
  if (d >= 0) {
    return t > kMaxSimTime - d ? kMaxSimTime : t + d;
  }
  return t < kMinSimTime - d ? kMinSimTime : t + d;
}

// Conversions to floating-point units (for statistics and reporting).
constexpr double ToMicros(SimDuration d) { return static_cast<double>(d) / kMicrosecond; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

// Converts a floating-point duration in seconds to SimDuration, rounding to
// the nearest nanosecond and saturating negative inputs at zero.
SimDuration DurationFromSeconds(double seconds);
SimDuration DurationFromMillis(double millis);
SimDuration DurationFromMicros(double micros);

// Renders a duration with an auto-selected unit, e.g. "657us", "10.7ms", "5.0s".
std::string FormatDuration(SimDuration d);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_COMMON_TIME_H_

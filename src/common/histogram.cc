#include "src/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/check.h"

namespace rpcscope {

LogHistogram::LogHistogram(const Options& options) : options_(options) {
  assert(options.min_value > 0);
  assert(options.max_value > options.min_value);
  assert(options.buckets_per_decade > 0);
  log_min_ = std::log10(options.min_value);
  inv_log_step_ = static_cast<double>(options.buckets_per_decade);
  const double decades = std::log10(options.max_value) - log_min_;
  const size_t core = static_cast<size_t>(std::ceil(decades * inv_log_step_)) + 1;
  buckets_.assign(core + 2, 0);  // +underflow +overflow
}

LogHistogram::State LogHistogram::SaveState() const {
  RPCSCOPE_DCHECK(log_min_ == std::log10(options_.min_value));
  RPCSCOPE_DCHECK(inv_log_step_ == static_cast<double>(options_.buckets_per_decade));
  State state;
  state.options = options_;
  state.buckets = buckets_;
  state.count = count_;
  state.sum = sum_;
  state.min = min_;
  state.max = max_;
  return state;
}

Status LogHistogram::RestoreState(const State& state) {
  if (!(state.options.min_value > 0) || !(state.options.max_value > state.options.min_value) ||
      state.options.buckets_per_decade <= 0) {
    return InvalidArgumentError("histogram state carries invalid options");
  }
  *this = LogHistogram(state.options);
  RPCSCOPE_DCHECK(log_min_ == std::log10(options_.min_value));
  RPCSCOPE_DCHECK(inv_log_step_ == static_cast<double>(options_.buckets_per_decade));
  if (state.buckets.size() != buckets_.size()) {
    return InvalidArgumentError("histogram state has " + std::to_string(state.buckets.size()) +
                                " buckets, options imply " + std::to_string(buckets_.size()));
  }
  buckets_ = state.buckets;
  count_ = state.count;
  sum_ = state.sum;
  min_ = state.min;
  max_ = state.max;
  return Status::Ok();
}

size_t LogHistogram::BucketIndex(double value) const {
  if (!(value >= options_.min_value)) {
    return 0;  // Underflow (also catches NaN defensively).
  }
  if (value >= options_.max_value) {
    return buckets_.size() - 1;  // Overflow.
  }
  const double pos = (std::log10(value) - log_min_) * inv_log_step_;
  size_t idx = static_cast<size_t>(pos) + 1;
  return std::min(idx, buckets_.size() - 2);
}

double LogHistogram::BucketLowerBound(size_t index) const {
  if (index == 0) {
    return 0.0;
  }
  return std::pow(10.0, log_min_ + static_cast<double>(index - 1) / inv_log_step_);
}

void LogHistogram::AddCount(double value, int64_t count) {
  assert(count >= 0);
  if (count == 0) {
    return;
  }
  buckets_[BucketIndex(value)] += count;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
}

void LogHistogram::Merge(const LogHistogram& other) {
  // Merging mismatched layouts would silently misattribute counts to the
  // wrong value ranges; the sharded-metrics merge path depends on this being
  // loud, so it is a CHECK in all build types.
  RPCSCOPE_CHECK_EQ(options_.min_value, other.options_.min_value)
      << "LogHistogram::Merge: min_value mismatch";
  RPCSCOPE_CHECK_EQ(options_.max_value, other.options_.max_value)
      << "LogHistogram::Merge: max_value mismatch";
  RPCSCOPE_CHECK_EQ(options_.buckets_per_decade, other.options_.buckets_per_decade)
      << "LogHistogram::Merge: buckets_per_decade mismatch";
  RPCSCOPE_CHECK_EQ(buckets_.size(), other.buckets_.size())
      << "LogHistogram::Merge: bucket-layout mismatch";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::Quantile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  double cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double frac =
          buckets_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(buckets_[i]);
      double lo = BucketLowerBound(i);
      double hi = (i + 1 < buckets_.size()) ? BucketLowerBound(i + 1) : max_;
      lo = std::max(lo, min_);
      hi = std::min(std::max(hi, lo), max_);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return max_;
}

double LogHistogram::CdfAt(double x) const {
  if (count_ == 0) {
    return 0.0;
  }
  const size_t idx = BucketIndex(x);
  int64_t below = 0;
  for (size_t i = 0; i < idx; ++i) {
    below += buckets_[i];
  }
  // Interpolate within the containing bucket.
  double lo = BucketLowerBound(idx);
  double hi = (idx + 1 < buckets_.size()) ? BucketLowerBound(idx + 1) : max_;
  double frac = hi > lo ? std::clamp((x - lo) / (hi - lo), 0.0, 1.0) : 1.0;
  return (static_cast<double>(below) + frac * static_cast<double>(buckets_[idx])) /
         static_cast<double>(count_);
}

}  // namespace rpcscope

// Small statistics helpers: exact quantiles over sample vectors, running
// moments, and Pearson correlation (used by the exogenous-variable analysis).
#ifndef RPCSCOPE_SRC_COMMON_STATS_H_
#define RPCSCOPE_SRC_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace rpcscope {

// Exact quantile of `values` (copied and partially sorted), p in [0, 1],
// using linear interpolation between order statistics. Returns 0 for empty.
double ExactQuantile(std::vector<double> values, double p);

// Quantile over a pre-sorted ascending vector without copying.
double SortedQuantile(const std::vector<double>& sorted, double p);

// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void Add(double value);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

// Pearson correlation coefficient of paired samples; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_COMMON_STATS_H_

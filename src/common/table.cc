#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

namespace rpcscope {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      if (c + 1 < headers_.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TextTable::RenderCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') {
        out += '"';
      }
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto render_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += escape(c < row.size() ? row[c] : std::string());
    }
    out += '\n';
  };
  render_row(headers_);
  for (const auto& row : rows_) {
    render_row(row);
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  } else if (bytes < 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", bytes / 1024.0);
  } else if (bytes < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", bytes / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", bytes / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::string FormatCount(double count) {
  char buf[64];
  if (count < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f", count);
  } else if (count < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fK", count / 1e3);
  } else if (count < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fM", count / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fB", count / 1e9);
  }
  return buf;
}

}  // namespace rpcscope

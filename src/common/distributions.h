// Parametric and empirical distributions used by the generative fleet model.
//
// The calibration strategy throughout rpcscope is quantile-anchored: the paper
// reports distributions by their quantiles (e.g. "90% of methods have a median
// latency of 10.7 ms or greater"), so QuantileCurve lets us construct a
// distribution directly from a set of (probability, value) anchors with
// log-linear interpolation between them. Parametric families (lognormal,
// pareto, zipf, mixtures) cover the per-RPC sampling inside each method.
#ifndef RPCSCOPE_SRC_COMMON_DISTRIBUTIONS_H_
#define RPCSCOPE_SRC_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"

namespace rpcscope {

// Abstract positive-valued continuous distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double Sample(Rng& rng) const = 0;
};

// Fixed value.
class ConstantDist final : public Distribution {
 public:
  explicit ConstantDist(double value) : value_(value) {}
  double Sample(Rng&) const override { return value_; }

 private:
  double value_;
};

// Uniform on [lo, hi).
class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {}
  double Sample(Rng& rng) const override { return rng.NextUniform(lo_, hi_); }

 private:
  double lo_;
  double hi_;
};

// Exponential with the given mean.
class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double mean) : mean_(mean) {}
  double Sample(Rng& rng) const override { return rng.NextExponential(mean_); }

 private:
  double mean_;
};

// Lognormal parameterized by the log-space mean/stddev.
class LognormalDist final : public Distribution {
 public:
  LognormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {}

  // Construct from the distribution's own median and the sigma of log-values.
  static LognormalDist FromMedianSigma(double median, double sigma);

  double Sample(Rng& rng) const override { return rng.NextLognormal(mu_, sigma_); }
  double Quantile(double p) const;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

// Pareto (heavy tail) with scale and shape.
class ParetoDist final : public Distribution {
 public:
  ParetoDist(double scale, double alpha) : scale_(scale), alpha_(alpha) {}
  double Sample(Rng& rng) const override { return rng.NextPareto(scale_, alpha_); }

 private:
  double scale_;
  double alpha_;
};

// Mixture of component distributions with the given weights.
class MixtureDist final : public Distribution {
 public:
  MixtureDist(std::vector<std::unique_ptr<Distribution>> components, std::vector<double> weights);
  double Sample(Rng& rng) const override;

 private:
  std::vector<std::unique_ptr<Distribution>> components_;
  std::vector<double> cumulative_;  // Normalized CDF over components.
};

// A distribution defined by quantile anchors (p_i, v_i), 0 < p_i < 1 strictly
// increasing, v_i > 0 non-decreasing. Sampling draws U~Uniform(0,1) and
// interpolates log(v) linearly in p; beyond the outermost anchors the curve
// extrapolates with the slope of the nearest segment, clamped to
// [min_value, max_value].
class QuantileCurve final : public Distribution {
 public:
  struct Anchor {
    double p;
    double value;
  };

  QuantileCurve(std::vector<Anchor> anchors, double min_value, double max_value);

  double Sample(Rng& rng) const override { return Quantile(rng.NextDouble()); }

  // Inverse-CDF evaluation at probability p in [0, 1].
  double Quantile(double p) const;

 private:
  std::vector<Anchor> anchors_;  // Stored with log(value).
  double min_value_;
  double max_value_;
};

// Discrete distribution over {0..n-1} with arbitrary weights, sampled in O(1)
// via Walker's alias method. Used for the 10K-method popularity table, where
// per-sample cost matters (millions of draws per figure).
class DiscreteDist {
 public:
  explicit DiscreteDist(const std::vector<double>& weights);

  int64_t Sample(Rng& rng) const;
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<int64_t> alias_;
};

// Zipf-like rank weights: weight(rank) = 1 / (rank + offset)^exponent.
// Returns unnormalized weights for ranks 1..n.
std::vector<double> ZipfWeights(size_t n, double exponent, double offset);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_COMMON_DISTRIBUTIONS_H_

#include "src/common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace rpcscope {

namespace {

// Standard normal quantile (Acklam's rational approximation, |err| < 1.2e-8).
double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= 1 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

LognormalDist LognormalDist::FromMedianSigma(double median, double sigma) {
  return LognormalDist(std::log(median), sigma);
}

double LognormalDist::Quantile(double p) const {
  return std::exp(mu_ + sigma_ * NormalQuantile(p));
}

MixtureDist::MixtureDist(std::vector<std::unique_ptr<Distribution>> components,
                         std::vector<double> weights)
    : components_(std::move(components)) {
  assert(components_.size() == weights.size());
  assert(!components_.empty());
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  double acc = 0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

double MixtureDist::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const size_t idx = static_cast<size_t>(it - cumulative_.begin());
  return components_[std::min(idx, components_.size() - 1)]->Sample(rng);
}

QuantileCurve::QuantileCurve(std::vector<Anchor> anchors, double min_value, double max_value)
    : min_value_(min_value), max_value_(max_value) {
  assert(anchors.size() >= 2);
  anchors_.reserve(anchors.size());
  for (const Anchor& a : anchors) {
    assert(a.p > 0.0 && a.p < 1.0);
    assert(a.value > 0.0);
    anchors_.push_back({a.p, std::log(a.value)});
  }
  for (size_t i = 1; i < anchors_.size(); ++i) {
    assert(anchors_[i].p > anchors_[i - 1].p);
    assert(anchors_[i].value >= anchors_[i - 1].value);
  }
}

double QuantileCurve::Quantile(double p) const {
  p = std::clamp(p, 1e-9, 1.0 - 1e-9);
  size_t hi = 0;
  while (hi < anchors_.size() && anchors_[hi].p < p) {
    ++hi;
  }
  double log_v;
  if (hi == 0) {
    // Extrapolate below the first anchor using the first segment's slope.
    const auto& a0 = anchors_[0];
    const auto& a1 = anchors_[1];
    const double slope = (a1.value - a0.value) / (a1.p - a0.p);
    log_v = a0.value + slope * (p - a0.p);
  } else if (hi == anchors_.size()) {
    const auto& a0 = anchors_[anchors_.size() - 2];
    const auto& a1 = anchors_.back();
    const double slope = (a1.value - a0.value) / (a1.p - a0.p);
    log_v = a1.value + slope * (p - a1.p);
  } else {
    const auto& a0 = anchors_[hi - 1];
    const auto& a1 = anchors_[hi];
    const double t = (p - a0.p) / (a1.p - a0.p);
    log_v = a0.value + t * (a1.value - a0.value);
  }
  return std::clamp(std::exp(log_v), min_value_, max_value_);
}

DiscreteDist::DiscreteDist(const std::vector<double>& weights) {
  assert(!weights.empty());
  const size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);

  // Walker's alias method: partition scaled probabilities into "small" and
  // "large" and pair them so every column has unit mass.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::deque<size_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.front();
    small.pop_front();
    const size_t l = large.front();
    large.pop_front();
    prob_[s] = scaled[s];
    alias_[s] = static_cast<int64_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) {
    prob_[i] = 1.0;
  }
  for (size_t i : small) {
    prob_[i] = 1.0;  // Numerical leftovers.
  }
}

int64_t DiscreteDist::Sample(Rng& rng) const {
  const size_t column = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[column] ? static_cast<int64_t>(column) : alias_[column];
}

std::vector<double> ZipfWeights(size_t n, double exponent, double offset) {
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1) + offset, exponent);
  }
  return weights;
}

}  // namespace rpcscope

#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rpcscope {
namespace check_internal {

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition << " ";
}

CheckFailure::~CheckFailure() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace rpcscope

#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rpcscope {

double SortedQuantile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double ExactQuantile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, p);
}

void RunningStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) {
    return 0.0;
  }
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace rpcscope

// Fail-fast invariant checking: RPCSCOPE_CHECK and RPCSCOPE_DCHECK.
//
// The observability pipeline built on the simulated fleet is only trustworthy
// if the fleet's internal invariants hold (monotonic virtual clock, balanced
// queue accounting, in-bounds codec cursors, acyclic trace trees). These
// macros make invariant violations loud instead of silently corrupting
// downstream statistics:
//
//   RPCSCOPE_CHECK(queue_depth <= limit) << "depth " << queue_depth;
//   RPCSCOPE_CHECK_EQ(busy_workers, expected);
//   RPCSCOPE_DCHECK_GE(delay, 0) << "negative delay clamped in release";
//
// CHECK is always on, in every build type: use it where a violated invariant
// would poison results (codec bounds, accounting balance). DCHECK compiles to
// a no-op in NDEBUG builds: use it on hot paths and for developer-visible
// diagnostics of otherwise-silent release behavior (see docs/CORRECTNESS.md
// for the full policy). A failed check prints file:line, the condition text,
// and the streamed message to stderr, then aborts.
#ifndef RPCSCOPE_SRC_COMMON_CHECK_H_
#define RPCSCOPE_SRC_COMMON_CHECK_H_

#include <sstream>

namespace rpcscope {

// True when RPCSCOPE_DCHECK evaluates its condition in this build. Exposed so
// tests can assert death only when the check is live.
#if defined(NDEBUG) && !defined(RPCSCOPE_DCHECK_ALWAYS_ON)
inline constexpr bool kDCheckEnabled = false;
#else
inline constexpr bool kDCheckEnabled = true;
#endif

namespace check_internal {

// Accumulates the streamed message; the destructor reports and aborts. Only
// ever constructed on the failure path, so the cost of the stringstream is
// irrelevant.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Makes the ternary in RPCSCOPE_CHECK type-check: both arms must be void.
struct Voidify {
  void operator&(std::ostream&) const {}
};

}  // namespace check_internal
}  // namespace rpcscope

// Always-on invariant check. Streams like a logger on failure.
#define RPCSCOPE_CHECK(condition)                                          \
  (condition) ? (void)0                                                    \
              : ::rpcscope::check_internal::Voidify() &                    \
                    ::rpcscope::check_internal::CheckFailure(__FILE__, __LINE__, #condition) \
                        .stream()

// Binary comparison forms; on failure the operand values are appended to the
// message so the report is actionable without a debugger.
#define RPCSCOPE_CHECK_OP_IMPL(a, b, op)                                     \
  ((a)op(b)) ? (void)0                                                       \
             : ::rpcscope::check_internal::Voidify() &                       \
                   (::rpcscope::check_internal::CheckFailure(__FILE__, __LINE__, \
                                                             #a " " #op " " #b) \
                        .stream()                                            \
                    << "(" << (a) << " vs " << (b) << ") ")

#define RPCSCOPE_CHECK_EQ(a, b) RPCSCOPE_CHECK_OP_IMPL(a, b, ==)
#define RPCSCOPE_CHECK_NE(a, b) RPCSCOPE_CHECK_OP_IMPL(a, b, !=)
#define RPCSCOPE_CHECK_LT(a, b) RPCSCOPE_CHECK_OP_IMPL(a, b, <)
#define RPCSCOPE_CHECK_LE(a, b) RPCSCOPE_CHECK_OP_IMPL(a, b, <=)
#define RPCSCOPE_CHECK_GT(a, b) RPCSCOPE_CHECK_OP_IMPL(a, b, >)
#define RPCSCOPE_CHECK_GE(a, b) RPCSCOPE_CHECK_OP_IMPL(a, b, >=)

// Debug-only forms. When disabled, the condition is parsed (so it cannot rot
// and operands do not become "unused") but never evaluated.
#if defined(NDEBUG) && !defined(RPCSCOPE_DCHECK_ALWAYS_ON)
#define RPCSCOPE_DCHECK(condition) RPCSCOPE_CHECK(true || (condition))
#define RPCSCOPE_DCHECK_EQ(a, b) RPCSCOPE_DCHECK((a) == (b))
#define RPCSCOPE_DCHECK_NE(a, b) RPCSCOPE_DCHECK((a) != (b))
#define RPCSCOPE_DCHECK_LT(a, b) RPCSCOPE_DCHECK((a) < (b))
#define RPCSCOPE_DCHECK_LE(a, b) RPCSCOPE_DCHECK((a) <= (b))
#define RPCSCOPE_DCHECK_GT(a, b) RPCSCOPE_DCHECK((a) > (b))
#define RPCSCOPE_DCHECK_GE(a, b) RPCSCOPE_DCHECK((a) >= (b))
#else
#define RPCSCOPE_DCHECK(condition) RPCSCOPE_CHECK(condition)
#define RPCSCOPE_DCHECK_EQ(a, b) RPCSCOPE_CHECK_EQ(a, b)
#define RPCSCOPE_DCHECK_NE(a, b) RPCSCOPE_CHECK_NE(a, b)
#define RPCSCOPE_DCHECK_LT(a, b) RPCSCOPE_CHECK_LT(a, b)
#define RPCSCOPE_DCHECK_LE(a, b) RPCSCOPE_CHECK_LE(a, b)
#define RPCSCOPE_DCHECK_GT(a, b) RPCSCOPE_CHECK_GT(a, b)
#define RPCSCOPE_DCHECK_GE(a, b) RPCSCOPE_CHECK_GE(a, b)
#endif

#endif  // RPCSCOPE_SRC_COMMON_CHECK_H_

// Aligned text-table and CSV rendering for bench/figure output.
//
// Every figure-reproduction binary prints one or more TextTables so the
// regenerated series can be compared to the paper at a glance, plus an
// optional CSV dump for plotting.
#ifndef RPCSCOPE_SRC_COMMON_TABLE_H_
#define RPCSCOPE_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace rpcscope {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule and right-padded columns.
  std::string Render() const;

  // RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string RenderCsv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric cell formatting helpers.
std::string FormatDouble(double v, int precision = 3);
std::string FormatPercent(double fraction, int precision = 1);  // 0.283 -> "28.3%"
std::string FormatBytes(double bytes);                          // 1530 -> "1.49KiB"
std::string FormatCount(double count);                          // 1.2e6 -> "1.20M"

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_COMMON_TABLE_H_

// Deterministic pseudo-random number generation.
//
// Every randomized component in rpcscope takes an explicit seed so that all
// benchmarks and figure reproductions are bit-for-bit deterministic. The
// generator is xoshiro256**, seeded through SplitMix64 per the authors'
// recommendation; both are tiny, fast, and have well-understood quality.
#ifndef RPCSCOPE_SRC_COMMON_RNG_H_
#define RPCSCOPE_SRC_COMMON_RNG_H_

#include <cstdint>

namespace rpcscope {

// SplitMix64 step: advances `state` and returns the next 64-bit output.
// Used for seeding and for cheap stateless hashing of ids to parameters.
uint64_t SplitMix64(uint64_t& state);

// Stateless mix of a 64-bit value (one SplitMix64 output for a given input).
uint64_t Mix64(uint64_t value);

// xoshiro256** PRNG with distribution helpers.
//
// The full generator state is exposed as a plain-data State so checkpoints
// (src/checkpoint/) can persist a stream mid-sequence and resume it with the
// identical draw order; the cached Box-Muller pair is part of that state —
// dropping it would shift every subsequent gaussian by one draw.
// RPCSCOPE_CHECKPOINTED(SaveState, RestoreState)
class Rng {
 public:
  // Complete serializable generator state.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  explicit Rng(uint64_t seed);

  State SaveState() const;
  void RestoreState(const State& state);

  // Uniform on [0, 2^64).
  uint64_t NextUint64();

  // Uniform on [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double on [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform double on (0, 1] — safe as an argument to log().
  double NextDoublePositive();

  // Uniform double on [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via the polar Box-Muller method (caches the pair).
  double NextGaussian();

  // Exponential with the given mean (mean > 0).
  double NextExponential(double mean);

  // Lognormal: exp(mu + sigma * Z).
  double NextLognormal(double mu, double sigma);

  // Pareto with scale x_m > 0 and shape alpha > 0: x_m / U^(1/alpha).
  double NextPareto(double scale, double alpha);

  // Bernoulli with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64 to stay O(1)).
  int64_t NextPoisson(double mean);

  // Geometric number of failures before first success, success prob p in (0,1].
  int64_t NextGeometric(double p);

  // Derives an independent child generator; stream `i` of this rng.
  Rng Fork(uint64_t stream);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_COMMON_RNG_H_

// Canonical status codes and a lightweight Status/Result error-propagation type.
//
// rpcscope does not throw exceptions across API boundaries; fallible operations
// return Status (for void results) or Result<T>. The code set mirrors the
// canonical codes used by Stubby/gRPC, which the paper's error taxonomy
// (Fig. 23) is expressed in.
#ifndef RPCSCOPE_SRC_COMMON_STATUS_H_
#define RPCSCOPE_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace rpcscope {

// Canonical RPC status codes (subset ordering matches gRPC's numeric codes so
// that logs are familiar to RPC practitioners).
enum class StatusCode : int32_t {
  kOk = 0,
  kCancelled = 1,
  kUnknown = 2,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kPermissionDenied = 7,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kAborted = 10,
  kOutOfRange = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kUnavailable = 14,
  kDataLoss = 15,
  kUnauthenticated = 16,
};

// Human-readable name for a code, e.g. "NOT_FOUND".
std::string_view StatusCodeName(StatusCode code);

// A status: a code plus an optional diagnostic message. Cheap to copy when OK.
//
// The class itself is [[nodiscard]]: any call site that receives a Status by
// value and drops it on the floor is a compile error (-Werror=unused-result).
// Intentional drops must write `(void)DoThing();` — grep-able and reviewable.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "NOT_FOUND: no such entity".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Convenience constructors matching the canonical codes used in this codebase.
Status CancelledError(std::string message);
Status InvalidArgumentError(std::string message);
Status DeadlineExceededError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);

// Result<T>: either a value or a non-OK Status. [[nodiscard]] for the same
// reason as Status: discarding one silently discards a possible error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  // Precondition: ok().
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_COMMON_STATUS_H_

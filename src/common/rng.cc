#include "src/common/rng.h"

#include <cmath>

namespace rpcscope {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = SplitMix64(sm);
  }
}

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) {
    state.s[i] = s_[i];
  }
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) {
    s_[i] = state.s[i];
  }
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoublePositive() {
  return (static_cast<double>(NextUint64() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double mean) { return -mean * std::log(NextDoublePositive()); }

double Rng::NextLognormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

double Rng::NextPareto(double scale, double alpha) {
  return scale / std::pow(NextDoublePositive(), 1.0 / alpha);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

int64_t Rng::NextPoisson(double mean) {
  if (mean <= 0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for workload
    // generation at high arrival counts.
    double v = mean + std::sqrt(mean) * NextGaussian() + 0.5;
    return v < 0 ? 0 : static_cast<int64_t>(v);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int64_t count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

int64_t Rng::NextGeometric(double p) {
  if (p >= 1.0) {
    return 0;
  }
  if (p <= 0.0) {
    return INT64_MAX;
  }
  return static_cast<int64_t>(std::log(NextDoublePositive()) / std::log1p(-p));
}

Rng Rng::Fork(uint64_t stream) {
  uint64_t base = s_[0] ^ Rotl(s_[2], 13);
  return Rng(Mix64(base ^ Mix64(stream)));
}

}  // namespace rpcscope

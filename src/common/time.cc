#include "src/common/time.h"

#include <cmath>
#include <cstdio>

namespace rpcscope {

namespace {

SimDuration FromScaled(double value, double scale) {
  if (!(value > 0)) {
    return 0;
  }
  double ns = value * scale;
  if (ns >= 9.2e18) {
    return INT64_MAX;
  }
  return static_cast<SimDuration>(std::llround(ns));
}

}  // namespace

SimDuration DurationFromSeconds(double seconds) { return FromScaled(seconds, 1e9); }
SimDuration DurationFromMillis(double millis) { return FromScaled(millis, 1e6); }
SimDuration DurationFromMicros(double micros) { return FromScaled(micros, 1e3); }

std::string FormatDuration(SimDuration d) {
  char buf[32];
  double v = static_cast<double>(d);
  if (d < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  } else if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1fus", v / kMicrosecond);
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / kMillisecond);
  } else if (d < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / kSecond);
  } else if (d < kHour) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", v / kMinute);
  } else if (d < kDay) {
    std::snprintf(buf, sizeof(buf), "%.1fh", v / kHour);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fd", v / kDay);
  }
  return buf;
}

}  // namespace rpcscope

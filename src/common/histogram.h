// Log-bucketed histograms for latency/size/cycle distributions.
//
// Monarch-style distribution metrics need bounded memory regardless of sample
// count; LogHistogram uses geometrically spaced buckets (configurable buckets
// per decade) over a configurable positive range, supporting quantile queries
// with bounded relative error and mergeability for cross-cluster aggregation.
#ifndef RPCSCOPE_SRC_COMMON_HISTOGRAM_H_
#define RPCSCOPE_SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace rpcscope {

// RPCSCOPE_CHECKPOINTED(SaveState, RestoreState)
class LogHistogram {
 public:
  // Bucket layout. Configuration, not checkpointed state: RestoreState
  // validates a saved layout against it instead of overwriting it.
  struct Options {
    double min_value = 1.0;       // Values below land in the underflow bucket.
    double max_value = 1e13;      // Values above land in the overflow bucket.
    int buckets_per_decade = 20;  // ~12% relative bucket width.
  };

  LogHistogram() : LogHistogram(Options{}) {}
  explicit LogHistogram(const Options& options);

  void Add(double value) { AddCount(value, 1); }
  void AddCount(double value, int64_t count);

  // Merges another histogram with identical options. The bucket layouts must
  // match — enforced with RPCSCOPE_CHECK in all build types, since the
  // sharded-metrics merge path would otherwise misattribute counts silently.
  void Merge(const LogHistogram& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Quantile via linear interpolation within the containing bucket (geometric
  // midpoint for degenerate cases). p in [0, 1].
  double Quantile(double p) const;

  // Fraction of samples with value <= x.
  double CdfAt(double x) const;

  const Options& options() const { return options_; }

  // Complete serializable histogram state for checkpoints (src/checkpoint/).
  // The derived layout constants are not part of it: RestoreState recomputes
  // them from the saved options, which keeps one derivation in one place.
  struct State {
    Options options;
    std::vector<int64_t> buckets;
    int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  State SaveState() const;
  // Rebuilds the histogram from a saved state. Fails (leaving *this a fresh
  // histogram with `state.options`) if the bucket vector does not match the
  // layout those options imply — a corrupt or hand-edited checkpoint.
  [[nodiscard]] Status RestoreState(const State& state);

  // Raw bucket counts, [underflow][core...][overflow]. Bucket counts are the
  // order-independent part of the state (unlike sum(), whose floating-point
  // accumulation depends on Add order), so digests of merged histograms fold
  // these — see ObservabilityHub::AggregateDigest.
  const std::vector<int64_t>& bucket_counts() const { return buckets_; }

 private:
  size_t BucketIndex(double value) const;
  double BucketLowerBound(size_t index) const;

  Options options_;
  // Layout constants derived from options_, CHECK-equal across merged
  // histograms (never accumulated), and the advisory FP moments, which are
  // deliberately excluded from digests (see bucket_counts() above): min/max
  // are commutative-idempotent and sum_ is display-only, so merge order
  // cannot corrupt anything replay-checked.
  double log_min_;         // NOLINT(detan-float-merge)
  double inv_log_step_;    // NOLINT(detan-float-merge) buckets_per_decade / ln(10)
  std::vector<int64_t> buckets_;  // [underflow][core...][overflow]
  int64_t count_ = 0;
  double sum_ = 0;  // NOLINT(detan-float-merge)
  double min_ = 0;  // NOLINT(detan-float-merge)
  double max_ = 0;  // NOLINT(detan-float-merge)
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_COMMON_HISTOGRAM_H_

#include "src/common/logging.h"

#include <cstdio>

namespace rpcscope {

namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
}

}  // namespace rpcscope

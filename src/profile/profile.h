// GWP-like fleet CPU profiling.
//
// Collects sampled cycle attributions — per RPC, split into the tax
// categories of Fig. 20b plus application cycles — and answers the queries
// behind Figs. 8c, 20, 21, and 23: fleet-wide category fractions, per-method
// normalized-cycle distributions, per-service cycle shares, and wasted cycles
// by error type. Raw cycles are normalized by the sampled machine's relative
// speed, mirroring the paper's "normalized CPU cycles" unit across
// heterogeneous CPU generations.
#ifndef RPCSCOPE_SRC_PROFILE_PROFILE_H_
#define RPCSCOPE_SRC_PROFILE_PROFILE_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/rpc/cost_model.h"

namespace rpcscope {

class ProfileCollector {
 public:
  ProfileCollector();

  // Records one RPC's cycle breakdown. `machine_speed` is the relative speed
  // of the CPU the cycles ran on (cycles are divided by it to normalize).
  // `method_id`/`service_id` may be -1 when unknown. `status` routes wasted
  // cycles of failed RPCs to the error accounting.
  void AddRpcSample(int32_t method_id, int32_t service_id, const CycleBreakdown& cycles,
                    double machine_speed, StatusCode status);

  // Records non-RPC application cycles (the rest of the fleet's work), which
  // form the denominator of "fraction of all fleet cycles".
  void AddBackgroundCycles(double cycles);

  double total_cycles() const { return total_cycles_; }
  double total_rpc_tax_cycles() const;

  // Fraction of ALL recorded cycles consumed by each tax category (Fig. 20b).
  std::array<double, kNumTaxCategories> TaxCategoryFractions() const;

  // Fraction of all cycles that is RPC tax (Fig. 20a; paper: 7.1%).
  double TaxFraction() const;

  // Per-method distribution of normalized cycles per call (Fig. 21).
  const std::map<int32_t, LogHistogram>& per_method_cycles() const {
    return per_method_cycles_;
  }

  // Total cycles (tax + app) attributed to each service (Fig. 8c).
  const std::map<int32_t, double>& per_service_cycles() const {
    return per_service_cycles_;
  }

  // Cycles consumed by RPCs that ended with each non-OK status (Fig. 23).
  const std::map<StatusCode, double>& wasted_cycles_by_error() const {
    return wasted_cycles_by_error_;
  }

  // Normalization divisor applied to per-call cycles in per_method_cycles().
  double normalization_cycles() const { return normalization_cycles_; }
  void set_normalization_cycles(double n) { normalization_cycles_ = n; }

 private:
  double total_cycles_ = 0;  // Tax + application + background.
  std::array<double, kNumTaxCategories> tax_cycles_{};
  double app_cycles_ = 0;
  double normalization_cycles_ = 1.0e6;
  // Ordered maps: consumers iterate these (summing double cycle shares,
  // rendering report tables), and FP summation order must not depend on a
  // hash function for the report bytes to be replay-stable.
  std::map<int32_t, LogHistogram> per_method_cycles_;
  std::map<int32_t, double> per_service_cycles_;
  std::map<StatusCode, double> wasted_cycles_by_error_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_PROFILE_PROFILE_H_

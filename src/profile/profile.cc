#include "src/profile/profile.h"

namespace rpcscope {

namespace {

// Histogram layout for normalized per-call cycles: most methods fall between
// 1e-4 and 1e3 normalized units.
LogHistogram::Options CycleHistogramOptions() {
  LogHistogram::Options options;
  options.min_value = 1e-6;
  options.max_value = 1e6;
  options.buckets_per_decade = 20;
  return options;
}

}  // namespace

ProfileCollector::ProfileCollector() = default;

void ProfileCollector::AddRpcSample(int32_t method_id, int32_t service_id,
                                    const CycleBreakdown& cycles, double machine_speed,
                                    StatusCode status) {
  const double norm = machine_speed > 0 ? 1.0 / machine_speed : 1.0;
  double call_total = 0;
  for (int i = 0; i < kNumTaxCategories; ++i) {
    const double c = cycles.cycles[static_cast<size_t>(i)] * norm;
    tax_cycles_[static_cast<size_t>(i)] += c;
    call_total += c;
  }
  const double app = cycles[CycleCategory::kApplication] * norm;
  app_cycles_ += app;
  call_total += app;
  total_cycles_ += call_total;

  if (method_id >= 0) {
    auto [it, inserted] = per_method_cycles_.try_emplace(method_id, CycleHistogramOptions());
    it->second.Add(call_total / normalization_cycles_);
  }
  if (service_id >= 0) {
    per_service_cycles_[service_id] += call_total;
  }
  if (status != StatusCode::kOk) {
    wasted_cycles_by_error_[status] += call_total;
  }
}

void ProfileCollector::AddBackgroundCycles(double cycles) { total_cycles_ += cycles; }

double ProfileCollector::total_rpc_tax_cycles() const {
  double total = 0;
  for (double c : tax_cycles_) {
    total += c;
  }
  return total;
}

std::array<double, kNumTaxCategories> ProfileCollector::TaxCategoryFractions() const {
  std::array<double, kNumTaxCategories> out{};
  if (total_cycles_ <= 0) {
    return out;
  }
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = tax_cycles_[i] / total_cycles_;
  }
  return out;
}

double ProfileCollector::TaxFraction() const {
  if (total_cycles_ <= 0) {
    return 0;
  }
  return total_rpc_tax_cycles() / total_cycles_;
}

}  // namespace rpcscope

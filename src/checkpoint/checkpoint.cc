#include "src/checkpoint/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "src/common/check.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/wire/checksum.h"

namespace rpcscope {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointDirPrefix[] = "ckpt-";
constexpr char kStagingSuffix[] = ".tmp";
constexpr char kManifestFileName[] = "manifest.ckpt";

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PatchU64(std::vector<uint8_t>& out, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | p[i];
  }
  return v;
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  if (in.bad()) {
    return DataLossError("read error on " + path);
  }
  return bytes;
}

// Writes `bytes` to `path` through `path + ".part"` + rename, so a crash
// mid-write leaves no file under the final name.
Status WriteFileAtomic(const std::string& path, const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".part";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return InternalError("cannot create " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return InternalError("write failed on " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return InternalError("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------------------

CheckpointWriter::CheckpointWriter() {
  AppendU32(buffer_, kCheckpointMagic);
  AppendU32(buffer_, kCheckpointFormatVersion);
}

void CheckpointWriter::BeginSection(std::string_view name) {
  RPCSCOPE_CHECK(!in_section_) << "BeginSection(" << std::string(name)
                               << ") inside an open section";
  in_section_ = true;
  AppendU32(buffer_, static_cast<uint32_t>(name.size()));
  buffer_.insert(buffer_.end(), name.begin(), name.end());
  section_length_slot_ = buffer_.size();
  AppendU64(buffer_, 0);  // Patched in EndSection.
  section_payload_start_ = buffer_.size();
}

void CheckpointWriter::EndSection() {
  RPCSCOPE_CHECK(in_section_) << "EndSection without BeginSection";
  in_section_ = false;
  const size_t payload_len = buffer_.size() - section_payload_start_;
  PatchU64(buffer_, section_length_slot_, payload_len);
  const uint32_t crc = Crc32c(buffer_.data() + section_payload_start_, payload_len);
  AppendU32(buffer_, crc);
}

void CheckpointWriter::WriteU8(uint8_t v) {
  RPCSCOPE_DCHECK(in_section_);
  buffer_.push_back(v);
}

void CheckpointWriter::WriteU32(uint32_t v) {
  RPCSCOPE_DCHECK(in_section_);
  AppendU32(buffer_, v);
}

void CheckpointWriter::WriteU64(uint64_t v) {
  RPCSCOPE_DCHECK(in_section_);
  AppendU64(buffer_, v);
}

void CheckpointWriter::WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

void CheckpointWriter::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

void CheckpointWriter::WriteDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void CheckpointWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void CheckpointWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteU32(static_cast<uint32_t>(bytes.size()));
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

const std::vector<uint8_t>& CheckpointWriter::buffer() const {
  RPCSCOPE_CHECK(!in_section_) << "buffer() inside an open section";
  return buffer_;
}

Status CheckpointWriter::Commit(const std::string& path) const {
  return WriteFileAtomic(path, buffer());
}

// ---------------------------------------------------------------------------
// CheckpointReader
// ---------------------------------------------------------------------------

Result<CheckpointReader> CheckpointReader::FromBytes(std::vector<uint8_t> bytes) {
  if (bytes.size() < 8) {
    return DataLossError("checkpoint too short for header (" +
                         std::to_string(bytes.size()) + " bytes)");
  }
  const uint32_t magic = LoadU32(bytes.data());
  if (magic != kCheckpointMagic) {
    return DataLossError("bad checkpoint magic");
  }
  const uint32_t version = LoadU32(bytes.data() + 4);
  if (version != kCheckpointFormatVersion) {
    return FailedPreconditionError(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kCheckpointFormatVersion) + ")");
  }
  CheckpointReader reader(std::move(bytes));
  reader.cursor_ = 8;
  return reader;
}

Result<CheckpointReader> CheckpointReader::FromFile(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    return bytes.status();
  }
  Result<CheckpointReader> reader = FromBytes(std::move(bytes).value());
  if (!reader.ok()) {
    return Status(reader.status().code(), path + ": " + reader.status().message());
  }
  return reader;
}

Status CheckpointReader::EnterSection(std::string_view name) {
  if (!status_.ok()) {
    return status_;
  }
  RPCSCOPE_CHECK(!in_section_) << "EnterSection inside an open section";
  // Section frame: [u32 name_len][name][u64 payload_len][payload][u32 crc].
  if (bytes_.size() - cursor_ < 4) {
    return DataLossError("truncated checkpoint: no section header where \"" +
                         std::string(name) + "\" expected");
  }
  const uint32_t name_len = LoadU32(bytes_.data() + cursor_);
  if (name_len > bytes_.size() - cursor_ - 4) {
    return DataLossError("truncated checkpoint: section name overruns file");
  }
  const std::string actual(reinterpret_cast<const char*>(bytes_.data() + cursor_ + 4),
                           name_len);
  if (actual != name) {
    return DataLossError("checkpoint section mismatch: expected \"" + std::string(name) +
                         "\", found \"" + actual + "\"");
  }
  size_t at = cursor_ + 4 + name_len;
  if (bytes_.size() - at < 8) {
    return DataLossError("truncated checkpoint: section \"" + actual + "\" has no length");
  }
  const uint64_t payload_len = LoadU64(bytes_.data() + at);
  at += 8;
  if (payload_len > bytes_.size() - at || bytes_.size() - at - payload_len < 4) {
    return DataLossError("truncated checkpoint: section \"" + actual +
                         "\" payload overruns file");
  }
  const uint32_t stored_crc = LoadU32(bytes_.data() + at + payload_len);
  const uint32_t actual_crc = Crc32c(bytes_.data() + at, payload_len);
  if (stored_crc != actual_crc) {
    return DataLossError("checkpoint section \"" + actual + "\" failed CRC32C check");
  }
  in_section_ = true;
  cursor_ = at;
  section_end_ = at + payload_len;
  return Status::Ok();
}

Status CheckpointReader::LeaveSection() {
  RPCSCOPE_CHECK(in_section_) << "LeaveSection without EnterSection";
  in_section_ = false;
  if (!status_.ok()) {
    return status_;
  }
  if (cursor_ != section_end_) {
    status_ = DataLossError("checkpoint section size mismatch: " +
                            std::to_string(section_end_ - cursor_) + " bytes unread");
    return status_;
  }
  cursor_ = section_end_ + 4;  // Skip the (already verified) CRC.
  return Status::Ok();
}

bool CheckpointReader::CanRead(size_t n, const char* what) {
  if (!status_.ok()) {
    return false;
  }
  RPCSCOPE_DCHECK(in_section_) << "read outside a section";
  if (section_end_ - cursor_ < n) {
    status_ = DataLossError(std::string("checkpoint field underrun reading ") + what);
    return false;
  }
  return true;
}

uint8_t CheckpointReader::ReadU8() {
  if (!CanRead(1, "u8")) {
    return 0;
  }
  return bytes_[cursor_++];
}

uint32_t CheckpointReader::ReadU32() {
  if (!CanRead(4, "u32")) {
    return 0;
  }
  const uint32_t v = LoadU32(bytes_.data() + cursor_);
  cursor_ += 4;
  return v;
}

uint64_t CheckpointReader::ReadU64() {
  if (!CanRead(8, "u64")) {
    return 0;
  }
  const uint64_t v = LoadU64(bytes_.data() + cursor_);
  cursor_ += 8;
  return v;
}

int64_t CheckpointReader::ReadI64() { return static_cast<int64_t>(ReadU64()); }

bool CheckpointReader::ReadBool() { return ReadU8() != 0; }

double CheckpointReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::ReadString() {
  const uint32_t len = ReadU32();
  if (!CanRead(len, "string body")) {
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_), len);
  cursor_ += len;
  return s;
}

std::vector<uint8_t> CheckpointReader::ReadBytes() {
  const uint32_t len = ReadU32();
  if (!CanRead(len, "bytes body")) {
    return {};
  }
  std::vector<uint8_t> out(bytes_.begin() + static_cast<ptrdiff_t>(cursor_),
                           bytes_.begin() + static_cast<ptrdiff_t>(cursor_ + len));
  cursor_ += len;
  return out;
}

Status CheckpointReader::Complete() const {
  if (!status_.ok()) {
    return status_;
  }
  if (in_section_) {
    return InternalError("Complete() with a section still open");
  }
  if (!AtEnd()) {
    return DataLossError("checkpoint has " + std::to_string(bytes_.size() - cursor_) +
                         " trailing bytes");
  }
  return Status::Ok();
}

void WriteRngState(CheckpointWriter& w, const Rng& rng) {
  const Rng::State state = rng.SaveState();
  for (const uint64_t lane : state.s) {
    w.WriteU64(lane);
  }
  w.WriteBool(state.has_cached_gaussian);
  w.WriteDouble(state.cached_gaussian);
}

void ReadRngState(CheckpointReader& r, Rng& rng) {
  Rng::State state;
  for (uint64_t& lane : state.s) {
    lane = r.ReadU64();
  }
  state.has_cached_gaussian = r.ReadBool();
  state.cached_gaussian = r.ReadDouble();
  if (r.status().ok()) {
    rng.RestoreState(state);  // NOLINT(rpcscope-discarded-status) Rng restore is void.
  }
}

void WriteHistogramState(CheckpointWriter& w, const LogHistogram& histogram) {
  const LogHistogram::State state = histogram.SaveState();
  w.WriteDouble(state.options.min_value);
  w.WriteDouble(state.options.max_value);
  w.WriteU32(static_cast<uint32_t>(state.options.buckets_per_decade));
  w.WriteU32(static_cast<uint32_t>(state.buckets.size()));
  for (const int64_t bucket : state.buckets) {
    w.WriteI64(bucket);
  }
  w.WriteI64(state.count);
  w.WriteDouble(state.sum);
  w.WriteDouble(state.min);
  w.WriteDouble(state.max);
}

Status ReadHistogramState(CheckpointReader& r, LogHistogram& histogram) {
  LogHistogram::State state;
  state.options.min_value = r.ReadDouble();
  state.options.max_value = r.ReadDouble();
  state.options.buckets_per_decade = static_cast<int>(r.ReadU32());
  const uint32_t buckets = r.ReadU32();
  state.buckets.reserve(buckets);
  for (uint32_t i = 0; i < buckets && r.status().ok(); ++i) {
    state.buckets.push_back(r.ReadI64());
  }
  state.count = r.ReadI64();
  state.sum = r.ReadDouble();
  state.min = r.ReadDouble();
  state.max = r.ReadDouble();
  if (!r.status().ok()) {
    return r.status();
  }
  return histogram.RestoreState(state);
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

void CheckpointManifest::WriteTo(CheckpointWriter& w) const {
  w.BeginSection("manifest");
  w.WriteU64(config_hash);
  w.WriteU64(epoch);
  w.WriteI64(sim_horizon);
  w.WriteU32(num_shards);
  w.WriteU32(static_cast<uint32_t>(files.size()));
  for (const CheckpointFileEntry& f : files) {
    w.WriteString(f.name);
    w.WriteU64(f.size);
    w.WriteU32(f.crc32c);
  }
  w.EndSection();
}

Status CheckpointManifest::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("manifest"); !s.ok()) {
    return s;
  }
  config_hash = r.ReadU64();
  epoch = r.ReadU64();
  sim_horizon = r.ReadI64();
  num_shards = r.ReadU32();
  const uint32_t n = r.ReadU32();
  files.clear();
  for (uint32_t i = 0; i < n && r.status().ok(); ++i) {
    CheckpointFileEntry f;
    f.name = r.ReadString();
    f.size = r.ReadU64();
    f.crc32c = r.ReadU32();
    files.push_back(std::move(f));
  }
  return r.LeaveSection();
}

// ---------------------------------------------------------------------------
// CheckpointSet + directory store
// ---------------------------------------------------------------------------

namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') {
    return dir + name;
  }
  return dir + "/" + name;
}

std::string CheckpointDirName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%010llu", kCheckpointDirPrefix,
                static_cast<unsigned long long>(epoch));
  return buf;
}

}  // namespace

int64_t CheckpointEpochFromName(std::string_view name) {
  const std::string_view prefix(kCheckpointDirPrefix);
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix) {
    return -1;
  }
  const std::string_view digits = name.substr(prefix.size());
  int64_t epoch = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return -1;  // Covers ".tmp" staging names and unrelated entries.
    }
    epoch = epoch * 10 + (c - '0');
  }
  return epoch;
}

CheckpointSet::CheckpointSet(std::string root, uint64_t epoch)
    : root_(std::move(root)), epoch_(epoch) {
  final_dir_ = JoinPath(root_, CheckpointDirName(epoch));
  staging_dir_ = final_dir_ + kStagingSuffix;
}

Status CheckpointSet::AddFile(const std::string& name, const CheckpointWriter& contents) {
  RPCSCOPE_CHECK(!committed_) << "AddFile after Commit";
  std::error_code ec;
  fs::create_directories(staging_dir_, ec);
  if (ec) {
    return InternalError("cannot create " + staging_dir_ + ": " + ec.message());
  }
  const std::vector<uint8_t>& bytes = contents.buffer();
  if (Status s = WriteFileAtomic(JoinPath(staging_dir_, name), bytes); !s.ok()) {
    return s;
  }
  CheckpointFileEntry entry;
  entry.name = name;
  entry.size = bytes.size();
  entry.crc32c = Crc32c(bytes);
  manifest_.files.push_back(std::move(entry));
  return Status::Ok();
}

Status CheckpointSet::Commit(uint64_t config_hash, int64_t sim_horizon,
                             uint32_t num_shards) {
  RPCSCOPE_CHECK(!committed_) << "double Commit";
  manifest_.config_hash = config_hash;
  manifest_.epoch = epoch_;
  manifest_.sim_horizon = sim_horizon;
  manifest_.num_shards = num_shards;
  // Canonical order so two checkpoints of the same state are byte-identical.
  std::sort(manifest_.files.begin(), manifest_.files.end(),
            [](const CheckpointFileEntry& a, const CheckpointFileEntry& b) {
              return a.name < b.name;
            });
  CheckpointWriter manifest_writer;
  manifest_.WriteTo(manifest_writer);
  if (Status s = manifest_writer.Commit(JoinPath(staging_dir_, kManifestFileName));
      !s.ok()) {
    return s;
  }
  std::error_code ec;
  fs::remove_all(final_dir_, ec);  // A same-epoch leftover from a prior run.
  fs::rename(staging_dir_, final_dir_, ec);
  if (ec) {
    return InternalError("commit rename " + staging_dir_ + " -> " + final_dir_ + ": " +
                         ec.message());
  }
  committed_ = true;
  return Status::Ok();
}

Result<CheckpointManifest> ValidateCheckpoint(const std::string& ckpt_dir,
                                              uint64_t config_hash) {
  Result<CheckpointReader> reader =
      CheckpointReader::FromFile(JoinPath(ckpt_dir, kManifestFileName));
  if (!reader.ok()) {
    return reader.status();
  }
  CheckpointManifest manifest;
  if (Status s = manifest.RestoreFrom(reader.value()); !s.ok()) {
    return s;
  }
  if (Status s = reader.value().Complete(); !s.ok()) {
    return s;
  }
  if (manifest.config_hash != config_hash) {
    return FailedPreconditionError(
        ckpt_dir + ": checkpoint belongs to a different run configuration");
  }
  for (const CheckpointFileEntry& entry : manifest.files) {
    Result<std::vector<uint8_t>> bytes = ReadFileBytes(JoinPath(ckpt_dir, entry.name));
    if (!bytes.ok()) {
      return bytes.status();
    }
    if (bytes.value().size() != entry.size) {
      return DataLossError(ckpt_dir + "/" + entry.name + ": size " +
                           std::to_string(bytes.value().size()) + " != manifest " +
                           std::to_string(entry.size));
    }
    if (Crc32c(bytes.value()) != entry.crc32c) {
      return DataLossError(ckpt_dir + "/" + entry.name + ": CRC32C mismatch");
    }
  }
  return manifest;
}

std::vector<std::string> ListCheckpoints(const std::string& root) {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  // Filesystem enumeration order is non-deterministic; entries are collected
  // and sorted by epoch below, so the result is stable.
  fs::directory_iterator it(root, ec);  // NOLINT(detan-nondet-source)
  if (ec) {
    return {};
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    const int64_t epoch = CheckpointEpochFromName(name);
    if (epoch >= 0) {
      found.emplace_back(epoch, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [epoch, path] : found) {
    out.push_back(std::move(path));
  }
  return out;
}

Result<std::string> NewestValidCheckpoint(const std::string& root, uint64_t config_hash) {
  const std::vector<std::string> all = ListCheckpoints(root);
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    Result<CheckpointManifest> manifest = ValidateCheckpoint(*it, config_hash);
    if (manifest.ok()) {
      return *it;
    }
    RPCSCOPE_LOG(kWarning) << "skipping invalid checkpoint " << *it << ": "
                          << manifest.status().message();
  }
  return NotFoundError("no valid checkpoint under " + root);
}

Status ApplyRetention(const std::string& root, int keep) {
  std::error_code ec;
  // Drop any stale staging directory: it is a partial write by definition.
  fs::directory_iterator it(root, ec);  // NOLINT(detan-nondet-source) pruned set is order-independent
  if (!ec) {
    std::vector<std::string> stale;
    for (const fs::directory_entry& entry : it) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 4 && name.substr(name.size() - 4) == kStagingSuffix &&
          CheckpointEpochFromName(name.substr(0, name.size() - 4)) >= 0) {
        stale.push_back(entry.path().string());
      }
    }
    std::sort(stale.begin(), stale.end());
    for (const std::string& path : stale) {
      fs::remove_all(path, ec);
    }
  }
  if (keep <= 0) {
    return Status::Ok();
  }
  std::vector<std::string> all = ListCheckpoints(root);
  while (all.size() > static_cast<size_t>(keep)) {
    // Oldest first; remove_all of a directory is not atomic, but deleting the
    // manifest-bearing directory can only invalidate the checkpoint being
    // deleted, never a newer one.
    fs::remove_all(all.front(), ec);
    if (ec) {
      return InternalError("retention: cannot remove " + all.front() + ": " +
                           ec.message());
    }
    all.erase(all.begin());
  }
  return Status::Ok();
}

}  // namespace rpcscope

// Checkpoint subsystem: versioned, CRC-guarded state snapshots.
//
// A checkpoint captures the complete sharded-sim state at a quiescent barrier
// (docs/ROBUSTNESS.md#checkpointrestore): every stateful component writes a
// named, length-prefixed, CRC32C-guarded section through a CheckpointWriter
// and restores it through a CheckpointReader. A checkpoint on disk is a
// directory of files — one per shard, so restore parallelizes naturally, plus
// one global file and a manifest — committed with an atomic directory rename
// so a crash mid-write can never corrupt the newest good checkpoint.
//
// Corruption policy: a truncated file, a flipped byte (CRC mismatch), an
// unknown format version, or a config-hash mismatch is a clean error Status,
// never a crash and never a partial restore; resume falls back to the newest
// checkpoint in the directory that validates end to end.
#ifndef RPCSCOPE_SRC_CHECKPOINT_CHECKPOINT_H_
#define RPCSCOPE_SRC_CHECKPOINT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace rpcscope {

// File header constants. Bump kCheckpointFormatVersion whenever any
// component's section layout changes: restore rejects other versions outright
// (resuming across layouts would silently diverge digests, which is strictly
// worse than re-running).
inline constexpr uint32_t kCheckpointMagic = 0x54504b43;  // "CKPT" little-endian.
// v2: policy engine sections, client colocated-bypass fields, StreamStat
// colocated aggregates.
inline constexpr uint32_t kCheckpointFormatVersion = 2;

// Serializes state into an in-memory, section-framed buffer and commits it to
// disk atomically. All scalars are little-endian fixed width; doubles are
// IEEE-754 bit patterns (bit-exact round trip — checkpoints must restore the
// run, not an approximation of it).
//
// Usage: BeginSection("sim"); Write...; EndSection(); ...; Commit(path).
// Writes outside a section are a caller bug (CHECK).
class CheckpointWriter {
 public:
  CheckpointWriter();

  void BeginSection(std::string_view name);
  void EndSection();

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteBool(bool v);
  void WriteDouble(double v);
  void WriteString(std::string_view s);
  void WriteBytes(const std::vector<uint8_t>& bytes);

  // The framed file image (header + completed sections). Must not be inside
  // an open section.
  const std::vector<uint8_t>& buffer() const;

  // Writes buffer() to `path` via a temporary file + rename, so readers never
  // observe a half-written checkpoint file.
  [[nodiscard]] Status Commit(const std::string& path) const;

 private:
  std::vector<uint8_t> buffer_;
  bool in_section_ = false;
  size_t section_payload_start_ = 0;  // First payload byte of the open section.
  size_t section_length_slot_ = 0;    // Offset of the open section's length field.
};

// Bounds-checked reader over a checkpoint file image. Read errors are sticky:
// after the first failure every Read returns a zero value and the error
// surfaces from LeaveSection()/Complete() as a clean Status — restore code can
// read a whole section linearly and check once.
class CheckpointReader {
 public:
  // Validates the header (magic, format version). The reader owns the bytes.
  [[nodiscard]] static Result<CheckpointReader> FromBytes(std::vector<uint8_t> bytes);
  [[nodiscard]] static Result<CheckpointReader> FromFile(const std::string& path);

  // Opens the next section, which must carry exactly `name` (sections are
  // always written and read in the same order), and verifies its CRC32C
  // before any field is parsed.
  [[nodiscard]] Status EnterSection(std::string_view name);
  // Closes the current section, verifying the payload was consumed exactly
  // and no sticky read error occurred.
  [[nodiscard]] Status LeaveSection();

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  bool ReadBool();
  double ReadDouble();
  std::string ReadString();
  std::vector<uint8_t> ReadBytes();

  // True when every section has been consumed.
  bool AtEnd() const { return cursor_ == bytes_.size(); }
  // Verifies the file was consumed exactly (no trailing garbage) and no
  // sticky error is pending.
  [[nodiscard]] Status Complete() const;
  const Status& status() const { return status_; }

 private:
  explicit CheckpointReader(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  bool CanRead(size_t n, const char* what);

  std::vector<uint8_t> bytes_;
  size_t cursor_ = 0;
  bool in_section_ = false;
  size_t section_end_ = 0;  // One past the open section's payload.
  Status status_;
};

class Rng;
class LogHistogram;

// Field-level helpers for the one state shape every layer carries: a seeded
// Rng stream mid-sequence. Writes/reads the full Rng::State (xoshiro lanes +
// cached gaussian) inside the caller's current section.
void WriteRngState(CheckpointWriter& w, const Rng& rng);
void ReadRngState(CheckpointReader& r, Rng& rng);

// Same for LogHistogram: full State (options + buckets + moments) inside the
// caller's current section. ReadHistogramState fails if the saved bucket
// layout is inconsistent with the saved options.
void WriteHistogramState(CheckpointWriter& w, const LogHistogram& histogram);
[[nodiscard]] Status ReadHistogramState(CheckpointReader& r, LogHistogram& histogram);

// ---------------------------------------------------------------------------
// Checkpoint directories: ckpt-<epoch> under a store root.
// ---------------------------------------------------------------------------

// Per-file integrity record in the manifest.
struct CheckpointFileEntry {
  std::string name;
  uint64_t size = 0;
  uint32_t crc32c = 0;
};

// The manifest commits the checkpoint's identity: which run configuration it
// belongs to (config_hash folds every digest-relevant option), which epoch
// barrier it captured, and the exact size + CRC of every member file.
// RPCSCOPE_CHECKPOINTED(WriteTo, RestoreFrom)
struct CheckpointManifest {
  uint64_t config_hash = 0;
  uint64_t epoch = 0;      // Epoch barriers completed when the snapshot was taken.
  int64_t sim_horizon = 0;  // Virtual-time horizon of the run (SimTime ns; validation aid).
  uint32_t num_shards = 0;
  std::vector<CheckpointFileEntry> files;

  void WriteTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);
};

// One checkpoint being assembled. Files land in `<root>/ckpt-<epoch>.tmp/`;
// Commit() writes the manifest last and renames the directory to its final
// `ckpt-<epoch>` name — the rename is the commit point.
class CheckpointSet {
 public:
  // `root` is the checkpoint store directory (created if absent).
  CheckpointSet(std::string root, uint64_t epoch);

  // Writes one member file into the staging directory and records it in the
  // manifest. `name` must be unique within the checkpoint.
  [[nodiscard]] Status AddFile(const std::string& name, const CheckpointWriter& contents);

  // Seals the checkpoint: manifest written, staging directory renamed into
  // place. After Commit() the checkpoint is durable and complete-or-absent.
  [[nodiscard]] Status Commit(uint64_t config_hash, int64_t sim_horizon,
                              uint32_t num_shards);

  const std::string& staging_dir() const { return staging_dir_; }
  const std::string& final_dir() const { return final_dir_; }

 private:
  std::string root_;
  uint64_t epoch_;
  std::string staging_dir_;
  std::string final_dir_;
  CheckpointManifest manifest_;
  bool committed_ = false;
};

// Reads + fully validates a committed checkpoint directory: manifest parses,
// config hash matches, and every member file is present with matching size
// and CRC32C. Any failure is a descriptive error Status.
[[nodiscard]] Result<CheckpointManifest> ValidateCheckpoint(const std::string& ckpt_dir,
                                                            uint64_t config_hash);

// Committed checkpoint directories under `root`, ascending by epoch. Staging
// (`.tmp`) directories and unrelated entries are ignored. Deterministic: the
// listing is sorted, never filesystem-order.
std::vector<std::string> ListCheckpoints(const std::string& root);

// Newest checkpoint under `root` that passes full validation, or NotFound.
// Invalid/corrupt checkpoints are skipped (newest-first) — a flipped byte in
// the latest snapshot costs one epoch of progress, not the run.
[[nodiscard]] Result<std::string> NewestValidCheckpoint(const std::string& root,
                                                        uint64_t config_hash);

// Deletes committed checkpoints beyond the newest `keep` (and any stale
// staging directories), oldest first. keep <= 0 keeps everything.
[[nodiscard]] Status ApplyRetention(const std::string& root, int keep);

// Epoch encoded in a checkpoint directory name, or -1 if `name` is not a
// committed checkpoint directory name.
int64_t CheckpointEpochFromName(std::string_view name);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_CHECKPOINT_CHECKPOINT_H_

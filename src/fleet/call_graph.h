// CallGraphModel: generates nested RPC call trees (§2.4).
//
// A tree grows from a root method: each node is either a leaf, branches into
// a small number of children, or — with the method's burst probability —
// fans out partition/aggregate style into tens..hundreds of children. Child
// methods are drawn popularity-weighted from tiers at or below the parent's
// (computation flows frontend -> backend -> storage), and effective leaf
// probability rises with depth, which is what makes the resulting trees much
// wider than they are deep (max depth ~19, as Huye et al. report for Meta).
#ifndef RPCSCOPE_SRC_FLEET_CALL_GRAPH_H_
#define RPCSCOPE_SRC_FLEET_CALL_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/distributions.h"
#include "src/common/rng.h"
#include "src/fleet/method_catalog.h"

namespace rpcscope {

struct CallTreeNode {
  int32_t method_id = -1;
  int32_t parent = -1;  // Index into the tree's node vector; -1 for the root.
  int32_t depth = 0;
};

struct CallTree {
  std::vector<CallTreeNode> nodes;  // nodes[0] is the root.
};

struct CallGraphOptions {
  uint64_t seed = 99;
  int max_depth = 19;
  int max_nodes = 20000;         // Hard safety cap per tree.
  // Leaf probability ramps up only below this depth (the upper tree branches
  // freely; depth pressure is what keeps trees wider than deep).
  int ramp_start_depth = 11;
  double depth_leaf_ramp = 0.30; // Added leaf probability per level past start.
  int burst_max_depth = 3;       // Partition/aggregate fires in the upper tree.
};

class CallGraphModel {
 public:
  CallGraphModel(const MethodCatalog* methods, const CallGraphOptions& options);

  // Grows one tree from the given root method.
  CallTree SampleTree(int32_t root_method);

  // Grows a tree from a popularity-weighted random *root-capable* method
  // (tiers 0-1, where user requests enter the fleet).
  CallTree SampleTree();

  Rng& rng() { return rng_; }

 private:
  int32_t SampleChildMethod(int parent_tier);

  const MethodCatalog* methods_;
  CallGraphOptions options_;
  Rng rng_;
  // Popularity-weighted samplers over methods with tier >= t, for t = 0..3.
  std::vector<std::unique_ptr<DiscreteDist>> tier_dists_;
  std::vector<std::vector<int32_t>> tier_members_;
  std::unique_ptr<DiscreteDist> root_dist_;
  std::vector<int32_t> root_members_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_CALL_GRAPH_H_

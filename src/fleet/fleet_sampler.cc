#include "src/fleet/fleet_sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rpcscope {

namespace {

// RTT band per distance class (mirrors src/net/topology.cc; the sampler draws
// log-uniformly within the band per call instead of fixing per-pair RTTs).
struct Band {
  double lo_us;
  double hi_us;
};

Band RttBandFor(int class_index) {
  switch (class_index) {
    case 0:
      return {20, 80};  // same-cluster
    case 1:
      return {100, 500};  // same-datacenter
    case 2:
      return {600, 4000};  // same-metro (different campus)
    case 3:
      return {5000, 60000};  // same-continent
    default:
      return {60000, 200000};  // intercontinental
  }
}

}  // namespace

const std::vector<ErrorMixEntry>& FleetErrorMix() {
  // Frequencies sum to 1 over errors; overall error rate is per-method.
  // Cancelled dominates both count (45%) and — via its multiplier — wasted
  // cycles (55%), matching §4.4.
  static const std::vector<ErrorMixEntry> mix = {
      {StatusCode::kCancelled, 0.45, 1.65},
      {StatusCode::kNotFound, 0.20, 1.05},
      {StatusCode::kDeadlineExceeded, 0.09, 1.3},
      {StatusCode::kResourceExhausted, 0.08, 0.9},
      {StatusCode::kPermissionDenied, 0.07, 0.7},
      {StatusCode::kUnavailable, 0.06, 0.8},
      {StatusCode::kAborted, 0.03, 1.0},
      {StatusCode::kInternal, 0.02, 1.0},
  };
  return mix;
}

StatusCode SampleErrorStatus(Rng& rng) {
  const auto& mix = FleetErrorMix();
  double u = rng.NextDouble();
  for (const ErrorMixEntry& e : mix) {
    if (u < e.frequency) {
      return e.code;
    }
    u -= e.frequency;
  }
  return mix.back().code;
}

FleetSampler::FleetSampler(const ServiceCatalog* services, const MethodCatalog* methods,
                           const Topology* topology, const CycleCostModel* costs,
                           const FleetSamplerOptions& options)
    : services_(services),
      methods_(methods),
      topology_(topology),
      costs_(costs),
      options_(options),
      rng_(options.seed) {
  assert(services && methods && topology && costs);
  // Precompute per-cluster candidate lists per distance class.
  const int nc = topology_->num_clusters();
  clusters_by_class_.resize(static_cast<size_t>(nc));
  for (ClusterId a = 0; a < nc; ++a) {
    for (ClusterId b = 0; b < nc; ++b) {
      const DistanceClass dc = topology_->ClusterDistance(a, b);
      const int idx = static_cast<int>(dc) - 1;  // kSameCluster==1 -> 0.
      if (idx >= 0 && idx < 5) {
        clusters_by_class_[static_cast<size_t>(a)][static_cast<size_t>(idx)].push_back(b);
      }
    }
  }
}

ClusterId FleetSampler::PickServerCluster(ClusterId client, DistanceClass dc) {
  const int idx = static_cast<int>(dc) - 1;
  const auto& candidates =
      clusters_by_class_[static_cast<size_t>(client)][static_cast<size_t>(idx)];
  if (candidates.empty()) {
    return client;
  }
  return candidates[rng_.NextBounded(candidates.size())];
}

double FleetSampler::AssumedCompressionRatio(const MethodModel& m) {
  if (!m.compression_enabled) {
    return 1.0;
  }
  return std::clamp(1.05 - 0.75 * m.redundancy, 0.25, 1.0);
}

SampledRpc FleetSampler::Sample() { return SampleMethod(methods_->SampleMethod(rng_)); }

SampledRpc FleetSampler::SampleMethod(int32_t method_id) {
  const MethodModel& m = methods_->method(method_id);
  SampledRpc out;
  Span& span = out.span;
  span.trace_id = Mix64(next_trace_++) | 1;
  span.span_id = Mix64(0xabcd ^ next_trace_) | 1;
  span.method_id = m.method_id;
  span.service_id = m.service_id;
  span.start_time = static_cast<SimTime>(rng_.NextBounded(static_cast<uint64_t>(kDay)));

  // Every method serves a slice of trivial requests (validation failures,
  // empty results, cache hits) that cost almost nothing and carry almost no
  // payload — this shared cheap floor is why the cheapest decile of calls
  // costs nearly the same across the entire method population (Fig. 21).
  const bool cheap_call = rng_.NextBool(0.12);

  // --- Sizes (serialized payload bytes) and wire bytes.
  const double size_scale = cheap_call ? 0.1 : 1.0;
  const double req_bytes = std::max(
      64.0, size_scale * rng_.NextLognormal(std::log(m.req_median_bytes), m.req_sigma));
  const double resp_bytes = std::max(
      64.0, size_scale * rng_.NextLognormal(std::log(m.resp_median_bytes), m.resp_sigma));
  const double ratio = AssumedCompressionRatio(m);
  const int64_t req_wire = static_cast<int64_t>(req_bytes * ratio) + 24;
  const int64_t resp_wire = static_cast<int64_t>(resp_bytes * ratio) + 24;
  span.request_payload_bytes = static_cast<int64_t>(req_bytes);
  span.response_payload_bytes = static_cast<int64_t>(resp_bytes);
  span.request_wire_bytes = req_wire;
  span.response_wire_bytes = resp_wire;

  // --- Machines: client/server clusters by the method's locality mix.
  std::array<double, 5> cum{};
  double acc = 0;
  for (size_t k = 0; k < 5; ++k) {
    acc += m.locality[k];
    cum[k] = acc;
  }
  const double loc_draw = rng_.NextDouble() * acc;
  size_t class_idx = 0;
  while (class_idx < 4 && loc_draw > cum[class_idx]) {
    ++class_idx;
  }
  const ClusterId client_cluster =
      static_cast<ClusterId>(rng_.NextBounded(static_cast<uint64_t>(topology_->num_clusters())));
  const DistanceClass dc = static_cast<DistanceClass>(class_idx + 1);
  const ClusterId server_cluster = PickServerCluster(client_cluster, dc);
  span.client_cluster = client_cluster;
  span.server_cluster = server_cluster;

  // Per-machine CPU generation heterogeneity.
  const double spread = options_.machine_speed_spread;
  out.machine_speed = 1.0 - spread + 2.0 * spread * rng_.NextDouble();

  // --- Application time (mixture with fast path). Fast paths are cache hits
  // served to co-located clients: they occur (almost) only on same-cluster
  // calls — where they are ~3x likelier than the method's base rate — and
  // they bypass most of the server pipeline, so they also see far less
  // queueing. This coupling is what gives slow methods sub-millisecond P1
  // latencies (Fig. 2) without touching their medians.
  double app_us;
  double queue_scale = 1.0;
  const bool local_call = class_idx == 0;
  // Conditioning on locality preserves the method's marginal fast-path rate.
  const double fast_prob =
      local_call ? std::min(1.0, m.fast_weight / std::max(m.locality[0], 1e-3)) : 0.0;
  if (fast_prob > 0 && rng_.NextBool(fast_prob)) {
    app_us = rng_.NextLognormal(std::log(m.fast_median_us), m.fast_sigma);
    queue_scale = 0.15;
  } else {
    app_us = rng_.NextLognormal(std::log(m.app_median_us), m.app_sigma);
  }
  span.latency[RpcComponent::kServerApp] = DurationFromMicros(app_us);

  // --- Queueing: lognormal body with rare congestion episodes (see the
  // MethodModel field comments for why this mixture shape is required).
  double queue_us;
  if (rng_.NextBool(m.queue_tail_prob)) {
    queue_us = rng_.NextLognormal(std::log(m.queue_median_us * m.queue_tail_ratio),
                                  m.queue_tail_sigma);
  } else {
    queue_us = rng_.NextLognormal(std::log(m.queue_median_us), m.queue_body_sigma);
  }
  queue_us *= queue_scale;
  span.latency[RpcComponent::kClientSendQueue] = DurationFromMicros(queue_us * m.queue_split[0]);
  span.latency[RpcComponent::kServerRecvQueue] = DurationFromMicros(queue_us * m.queue_split[1]);
  span.latency[RpcComponent::kServerSendQueue] = DurationFromMicros(queue_us * m.queue_split[2]);
  span.latency[RpcComponent::kClientRecvQueue] = DurationFromMicros(queue_us * m.queue_split[3]);

  // --- Proc + network stack: cycle-model time with per-call jitter.
  CycleBreakdown req_send =
      costs_->SendSideCost(static_cast<int64_t>(req_bytes), req_wire, m.byte_cost_scale);
  CycleBreakdown req_recv =
      costs_->RecvSideCost(static_cast<int64_t>(req_bytes), req_wire, m.byte_cost_scale);
  CycleBreakdown resp_send =
      costs_->SendSideCost(static_cast<int64_t>(resp_bytes), resp_wire, m.byte_cost_scale);
  CycleBreakdown resp_recv =
      costs_->RecvSideCost(static_cast<int64_t>(resp_bytes), resp_wire, m.byte_cost_scale);
  if (!m.compression_enabled) {
    // Bulk/block services ship pre-compressed or raw data and disable the
    // compressor on their channels (this is what keeps Network Disk under 2%
    // of fleet cycles despite carrying 35% of calls, Fig. 8c).
    for (CycleBreakdown* b : {&req_send, &req_recv, &resp_send, &resp_recv}) {
      (*b)[CycleCategory::kCompression] = 0;
    }
  }
  const double jitter_req =
      options_.proc_time_multiplier * std::exp(m.proc_jitter_sigma * rng_.NextGaussian());
  const double jitter_resp =
      options_.proc_time_multiplier * std::exp(m.proc_jitter_sigma * rng_.NextGaussian());
  span.latency[RpcComponent::kRequestProcStack] = static_cast<SimDuration>(
      static_cast<double>(costs_->CyclesToDuration(req_send.TaxTotal() + req_recv.TaxTotal(),
                                                   out.machine_speed)) *
      jitter_req);
  span.latency[RpcComponent::kResponseProcStack] = static_cast<SimDuration>(
      static_cast<double>(costs_->CyclesToDuration(resp_send.TaxTotal() + resp_recv.TaxTotal(),
                                                   out.machine_speed)) *
      jitter_resp);

  // --- Network wire, per direction: propagation + serialization + congestion.
  const Band band = RttBandFor(static_cast<int>(class_idx));
  const double rtt_us =
      band.lo_us * std::pow(band.hi_us / band.lo_us, rng_.NextDouble());
  const bool wan = class_idx >= 3;
  const double bytes_per_us = wan ? 1250.0 : 12500.0;  // 10 / 100 Gbps.
  auto wire_one_way = [&](int64_t wire_bytes) {
    double us = rtt_us / 2 + static_cast<double>(wire_bytes) / bytes_per_us;
    if (rng_.NextBool(m.congestion_prob)) {
      const double mean = wan ? m.wan_congestion_mean_us : m.lan_congestion_mean_us;
      us += rng_.NextExponential(mean);
    }
    return DurationFromMicros(us);
  };
  span.latency[RpcComponent::kRequestWire] = wire_one_way(req_wire);
  span.latency[RpcComponent::kResponseWire] = wire_one_way(resp_wire);

  // --- Cycles: full stack tax on both sides plus the method's own compute.
  out.cycles.Accumulate(req_send);
  out.cycles.Accumulate(req_recv);
  out.cycles.Accumulate(resp_send);
  out.cycles.Accumulate(resp_recv);
  if (cheap_call) {
    out.cycles[CycleCategory::kApplication] +=
        rng_.NextLognormal(std::log(3000.0), 0.3);
  } else {
    // Clamped at ~0.7s of CPU: no single RPC burns more (OS/deadline limits).
    out.cycles[CycleCategory::kApplication] +=
        std::min(2e9, rng_.NextLognormal(std::log(m.cpu_median_cycles), m.cpu_sigma));
  }

  // --- Status (Fig. 23): errors scale the cycles they waste.
  if (rng_.NextBool(m.error_prob)) {
    span.status = SampleErrorStatus(rng_);
    for (const ErrorMixEntry& e : FleetErrorMix()) {
      if (e.code == span.status) {
        for (double& c : out.cycles.cycles) {
          c *= e.cycle_multiplier;
        }
        break;
      }
    }
  }

  span.has_cpu_annotation =
      static_cast<double>(Mix64(span.span_id ^ 0x9c9c) >> 11) * 0x1.0p-53 <
      options_.cpu_annotation_probability;
  span.normalized_cpu_cycles =
      out.cycles.Total() / out.machine_speed / costs_->normalization_cycles;
  return out;
}

std::vector<SampledRpc> FleetSampler::SampleMany(int64_t n) {
  std::vector<SampledRpc> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(Sample());
  }
  return out;
}

}  // namespace rpcscope

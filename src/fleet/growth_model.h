// GrowthModel: the 700-day fleet RPC/CPU growth trend behind Fig. 1.
//
// Generates Monarch-style 30-minute counter samples for fleet RPC count and
// fleet CPU cycles over the measurement window. Two real trends drive the
// ratio: per-RPC stack cycles shrink as the stack gets optimized, and
// microservice adoption shifts work toward more, cheaper RPCs. The combined
// effect is calibrated to the paper's ~30%/year (+64% over 700 days) growth
// in RPS per CPU cycle.
#ifndef RPCSCOPE_SRC_FLEET_GROWTH_MODEL_H_
#define RPCSCOPE_SRC_FLEET_GROWTH_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/monitor/metrics.h"

namespace rpcscope {

struct GrowthModelOptions {
  int days = 700;
  SimDuration sample_window = Minutes(30);
  double base_rps = 1.0e9;                 // Fleet RPCs per second on day 0.
  double base_cycles_per_rpc = 1.0e6;      // Including application cycles.
  double rps_annual_growth = 1.45;         // Raw traffic growth.
  double rps_per_cpu_annual_growth = 1.30; // The paper's headline ratio trend.
  double weekly_amplitude = 0.08;          // Weekday/weekend swing.
  double diurnal_amplitude = 0.15;
  double noise_sigma = 0.02;
  uint64_t seed = 1701;
};

class GrowthModel {
 public:
  explicit GrowthModel(const GrowthModelOptions& options) : options_(options) {}

  // Streams 30-minute samples of the cumulative counters "fleet/rpcs" and
  // "fleet/cpu_cycles" into the registry.
  void GenerateInto(MetricRegistry& registry) const;

  // Daily RPS-per-CPU-cycle ratio, normalized to day 0 (the Fig. 1 series),
  // computed from the registry's sampled counters.
  static std::vector<double> NormalizedDailyRatio(const MetricRegistry& registry, int days);

  const GrowthModelOptions& options() const { return options_; }

 private:
  GrowthModelOptions options_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_GROWTH_MODEL_H_

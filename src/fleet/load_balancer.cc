#include "src/fleet/load_balancer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/distributions.h"

namespace rpcscope {

LoadBalanceStudy::LoadBalanceStudy(const Topology* topology,
                                   const LoadBalanceStudyOptions& options)
    : topology_(topology), options_(options), rng_(options.seed) {
  assert(topology != nullptr);
}

LoadBalanceResult LoadBalanceStudy::Run() {
  const IntraClusterPolicy policy =
      options_.data_dependent ? IntraClusterPolicy::kKeyAffinity : options_.policy;
  const int total_clusters = topology_->num_clusters();
  const int k = std::min(options_.clusters_with_service, total_clusters);

  // Deployment: every k-th cluster hosts the service.
  std::vector<ClusterId> hosting;
  for (int i = 0; i < k; ++i) {
    hosting.push_back(static_cast<ClusterId>(i * total_clusters / k));
  }

  // Demand originates from every cluster with a skewed "population" weight
  // (some metros simply have more users/data).
  std::vector<double> origin_weight(static_cast<size_t>(total_clusters));
  for (int c = 0; c < total_clusters; ++c) {
    const double unit =
        static_cast<double>(Mix64(options_.seed ^ static_cast<uint64_t>(c * 977 + 5)) >> 11) *
        0x1.0p-53;
    origin_weight[static_cast<size_t>(c)] = std::exp(1.1 * (unit * 2 - 1));
  }
  DiscreteDist origin_dist(origin_weight);

  // Latency-aware routing: each origin sends all demand to its nearest
  // hosting cluster (by base RTT). CPU balance is not an objective.
  std::vector<size_t> nearest(static_cast<size_t>(total_clusters));
  for (int c = 0; c < total_clusters; ++c) {
    SimDuration best = INT64_MAX;
    size_t best_idx = 0;
    for (size_t h = 0; h < hosting.size(); ++h) {
      const SimDuration rtt =
          hosting[h] == c ? 0 : topology_->ClusterBaseRtt(static_cast<ClusterId>(c), hosting[h]);
      if (rtt < best) {
        best = rtt;
        best_idx = h;
      }
    }
    nearest[static_cast<size_t>(c)] = best_idx;
  }

  // Intra-cluster routing setup.
  const int machines = options_.machines_per_cluster;
  std::vector<std::vector<double>> machine_load(
      hosting.size(), std::vector<double>(static_cast<size_t>(machines), 0.0));
  std::vector<double> cluster_load(hosting.size(), 0.0);

  // Key -> machine affinity map for data-dependent services.
  std::vector<double> key_weights;
  std::vector<int> key_machine;
  if (policy == IntraClusterPolicy::kKeyAffinity) {
    key_weights = ZipfWeights(static_cast<size_t>(options_.num_keys),
                              options_.key_zipf_exponent, 1.0);
    key_machine.resize(static_cast<size_t>(options_.num_keys));
    for (int key = 0; key < options_.num_keys; ++key) {
      key_machine[static_cast<size_t>(key)] =
          static_cast<int>(Mix64(options_.seed ^ static_cast<uint64_t>(key * 31 + 7)) %
                           static_cast<uint64_t>(machines));
    }
  }
  std::unique_ptr<DiscreteDist> key_dist;
  if (policy == IntraClusterPolicy::kKeyAffinity) {
    key_dist = std::make_unique<DiscreteDist>(key_weights);
  }

  for (int64_t unit = 0; unit < options_.demand_units; ++unit) {
    const ClusterId origin = static_cast<ClusterId>(origin_dist.Sample(rng_));
    const size_t host = nearest[static_cast<size_t>(origin)];
    cluster_load[host] += 1.0;
    auto& loads = machine_load[host];
    switch (policy) {
      case IntraClusterPolicy::kKeyAffinity:
        loads[static_cast<size_t>(
            key_machine[static_cast<size_t>(key_dist->Sample(rng_))])] += 1.0;
        break;
      case IntraClusterPolicy::kRandom:
        loads[rng_.NextBounded(static_cast<uint64_t>(machines))] += 1.0;
        break;
      case IntraClusterPolicy::kPowerOfTwoChoices: {
        const size_t a = rng_.NextBounded(static_cast<uint64_t>(machines));
        const size_t b = rng_.NextBounded(static_cast<uint64_t>(machines));
        loads[loads[a] <= loads[b] ? a : b] += 1.0;
        break;
      }
    }
  }

  // Capacity: clusters are provisioned for the MEAN per-cluster demand times
  // a headroom factor (the balancer does not see actual placement skew).
  const double cluster_capacity =
      static_cast<double>(options_.demand_units) / static_cast<double>(hosting.size()) *
      options_.capacity_headroom;
  const double machine_capacity = cluster_capacity / machines;

  LoadBalanceResult result;
  // Median-loaded cluster for the within-cluster machine view.
  std::vector<size_t> order(hosting.size());
  for (size_t h = 0; h < order.size(); ++h) {
    order[h] = h;
  }
  std::sort(order.begin(), order.end(),
            [&cluster_load](size_t a2, size_t b2) {
              return cluster_load[a2] < cluster_load[b2];
            });
  const size_t median_cluster = order[order.size() / 2];
  for (double load : machine_load[median_cluster]) {
    result.median_cluster_machine_usage.push_back(std::min(1.0, load / machine_capacity));
  }
  std::sort(result.median_cluster_machine_usage.begin(),
            result.median_cluster_machine_usage.end());
  for (size_t h = 0; h < hosting.size(); ++h) {
    const double cluster_ratio = cluster_load[h] / cluster_capacity;
    result.cluster_usage.push_back(std::min(1.0, cluster_ratio));
    result.cluster_usage_raw.push_back(cluster_ratio);
    for (double load : machine_load[h]) {
      const double machine_ratio = load / machine_capacity;
      result.machine_usage.push_back(std::min(1.0, machine_ratio));
      result.machine_usage_raw.push_back(machine_ratio);
    }
  }
  std::sort(result.cluster_usage.begin(), result.cluster_usage.end());
  std::sort(result.machine_usage.begin(), result.machine_usage.end());
  std::sort(result.cluster_usage_raw.begin(), result.cluster_usage_raw.end());
  std::sort(result.machine_usage_raw.begin(), result.machine_usage_raw.end());
  return result;
}

}  // namespace rpcscope

// MiniFleet: the Table-1 service graph, live.
//
// Table 1 names each studied service's *client*: Recommendation calls
// KV-Store, KV-Store's data comes from Bigtable, Bigtable reads Network Disk,
// BigQuery looks up the SSD cache, Video Search fetches Video Metadata. This
// module deploys those services as real DES servers with handlers that call
// their Table-1 dependencies, drives the frontends with open-loop load, and
// returns the full nested traces — a running miniature of the fleet the paper
// measured, rather than eight isolated studies.
#ifndef RPCSCOPE_SRC_FLEET_MINI_FLEET_H_
#define RPCSCOPE_SRC_FLEET_MINI_FLEET_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/service_catalog.h"
#include "src/monitor/stream.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace rpcscope {

struct MiniFleetOptions {
  SimDuration duration = Seconds(4);
  SimDuration warmup = Millis(500);
  // Root request rate driven into each frontend entry point.
  double frontend_rps = 600;
  uint64_t seed = 0xf1ee7;
  // Simulator event-queue implementation. The cross-queue determinism test
  // runs the same fleet under both kinds and requires identical results.
  SimQueueKind sim_queue = SimQueueKind::kLadder;
  // Shard-domain execution (docs/PARALLEL.md). With num_shards == 1 (the
  // default) placement and results are exactly the legacy single-domain
  // fleet. With more shards, each service gets its own cluster (and the
  // frontends theirs), so the Table-1 dependency edges become cross-shard
  // RPCs; results are deterministic per (options, num_shards) and identical
  // for any worker_threads value.
  int num_shards = 1;
  int worker_threads = 1;
  // Streaming observability pipeline configuration (src/monitor/stream.h);
  // forwarded to RpcSystemOptions. Streaming is on by default — the run
  // aggregates online at round barriers, and the result carries both the
  // streamed and post-run-replayed digests so callers can assert equivalence.
  ObservabilityOptions observability;
  // Optional live tap: invoked on the coordinator thread each time the hub
  // closes a metric window (watermark passed its end). Drive it with a short
  // observability.window to watch fleet RPS/latency evolve during the run.
  std::function<void(const WindowStats&)> window_tap;
};

struct MiniFleetResult {
  std::vector<Span> spans;  // All spans (every tier), post-warmup.
  uint64_t root_calls = 0;
  // Spans per service id, for mix sanity checks.
  std::map<int32_t, int64_t> spans_per_service;
  // Determinism fingerprint: total events executed and the order-sensitive
  // (time, seq) event digest (the per-shard fold for sharded runs). Two runs
  // with the same options must match exactly — for sharded runs regardless
  // of worker_threads; the determinism regression tests assert this.
  uint64_t events_executed = 0;
  uint64_t event_digest = 0;
  // Sharded-run stats (0 for single-domain runs).
  uint64_t rounds = 0;
  uint64_t cross_domain_events = 0;

  // Streaming-pipeline fingerprints and counters (zero when streaming off).
  // streamed_aggregate_digest is the hub's AggregateDigest after the run;
  // replayed_aggregate_digest re-aggregates MergedSpans() post-run through
  // ReplayIntoHub. The pipeline's correctness claim is that they are equal —
  // for every worker_threads value (parallel_test asserts both).
  uint64_t streamed_aggregate_digest = 0;
  uint64_t replayed_aggregate_digest = 0;
  // Reservoir-content digest: worker-count invariant (canonical barrier
  // order), but NOT comparable to a replayed hub (different ingest order).
  uint64_t exemplar_digest = 0;
  int64_t spans_streamed = 0;           // Hub spans_ingested (via deltas).
  uint64_t span_buffer_drops = 0;       // Exemplar candidates dropped at caps.
  int64_t reservoir_drops = 0;
  int64_t windows_closed = 0;
  int64_t late_window_updates = 0;
  size_t peak_buffered_spans = 0;       // Max over shards: bounded-memory proof.
};

// Deploys the graph, runs it, and collects traces. `catalog` supplies service
// ids and names (BuildDefault()).
MiniFleetResult RunMiniFleet(const ServiceCatalog& catalog, const MiniFleetOptions& options);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_MINI_FLEET_H_

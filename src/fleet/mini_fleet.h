// MiniFleet: the Table-1 service graph, live.
//
// Table 1 names each studied service's *client*: Recommendation calls
// KV-Store, KV-Store's data comes from Bigtable, Bigtable reads Network Disk,
// BigQuery looks up the SSD cache, Video Search fetches Video Metadata. This
// module deploys those services as real DES servers with handlers that call
// their Table-1 dependencies, drives the frontends with open-loop load, and
// returns the full nested traces — a running miniature of the fleet the paper
// measured, rather than eight isolated studies.
//
// The fleet is a long-lived object so long-horizon runs can be split into
// epochs and checkpointed at quiescent barriers (docs/ROBUSTNESS.md
// #checkpointrestore): RunMiniFleet runs one uninterrupted epoch (the legacy
// behavior, bit-for-bit), RunMiniFleetCheckpointed drives the epoch loop with
// snapshot/resume.
#ifndef RPCSCOPE_SRC_FLEET_MINI_FLEET_H_
#define RPCSCOPE_SRC_FLEET_MINI_FLEET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fleet/service_catalog.h"
#include "src/monitor/stream.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace rpcscope {

struct FaultPlan;
class FaultInjector;
struct MiniFleetDeployment;
struct MiniFleetFrontend;

struct MiniFleetOptions {
  SimDuration duration = Seconds(4);
  SimDuration warmup = Millis(500);
  // Root request rate driven into each frontend entry point.
  double frontend_rps = 600;
  uint64_t seed = 0xf1ee7;
  // Simulator event-queue implementation. The cross-queue determinism test
  // runs the same fleet under both kinds and requires identical results.
  SimQueueKind sim_queue = SimQueueKind::kLadder;
  // Shard-domain execution (docs/PARALLEL.md). With num_shards == 1 (the
  // default) placement and results are exactly the legacy single-domain
  // fleet. With more shards, each service gets its own cluster (and the
  // frontends theirs), so the Table-1 dependency edges become cross-shard
  // RPCs; results are deterministic per (options, num_shards) and identical
  // for any worker_threads value.
  int num_shards = 1;
  int worker_threads = 1;
  // Streaming observability pipeline configuration (src/monitor/stream.h);
  // forwarded to RpcSystemOptions. Streaming is on by default — the run
  // aggregates online at round barriers, and the result carries both the
  // streamed and post-run-replayed digests so callers can assert equivalence.
  ObservabilityOptions observability;
  // Optional live tap: invoked on the coordinator thread each time the hub
  // closes a metric window (watermark passed its end). Drive it with a short
  // observability.window to watch fleet RPS/latency evolve during the run.
  std::function<void(const WindowStats&)> window_tap;
  // Optional chaos: a fault plan executed by a fleet-owned FaultInjector,
  // epoch-gated so checkpoint barriers stay quiescent. The plan is copied at
  // construction; the pointer only needs to live through the MiniFleet
  // constructor. Plan content is folded into the checkpoint config hash.
  const FaultPlan* fault_plan = nullptr;
  // Managed policy plane (docs/POLICY.md): the authored snapshot timeline,
  // forwarded to RpcSystemOptions. Stages apply at conservative-round
  // barriers; an empty timeline reproduces the pre-policy fleet bit-for-bit.
  // Timeline content is folded into the checkpoint config hash.
  PolicyTimeline policy;
  // Colocated zero-copy fast path demo wiring: place each frontend on its
  // target deployment's first machine and enable ClientOptions::
  // colocated_bypass, so root calls that pick that replica skip
  // serialization and the wire (docs/POLICY.md#colocated-bypass).
  bool colocate_frontends = false;
};

struct MiniFleetResult {
  std::vector<Span> spans;  // All spans (every tier), post-warmup.
  uint64_t root_calls = 0;
  // Spans per service id, for mix sanity checks.
  std::map<int32_t, int64_t> spans_per_service;
  // Determinism fingerprint: total events executed and the order-sensitive
  // (time, seq) event digest (the per-shard fold for sharded runs). Two runs
  // with the same options must match exactly — for sharded runs regardless
  // of worker_threads; the determinism regression tests assert this.
  uint64_t events_executed = 0;
  uint64_t event_digest = 0;
  // Sharded-run stats (0 for single-domain runs).
  uint64_t rounds = 0;
  uint64_t cross_domain_events = 0;

  // Streaming-pipeline fingerprints and counters (zero when streaming off).
  // streamed_aggregate_digest is the hub's AggregateDigest after the run;
  // replayed_aggregate_digest re-aggregates MergedSpans() post-run through
  // ReplayIntoHub. The pipeline's correctness claim is that they are equal —
  // for every worker_threads value (parallel_test asserts both).
  uint64_t streamed_aggregate_digest = 0;
  uint64_t replayed_aggregate_digest = 0;
  // Reservoir-content digest: worker-count invariant (canonical barrier
  // order), but NOT comparable to a replayed hub (different ingest order).
  uint64_t exemplar_digest = 0;
  int64_t spans_streamed = 0;           // Hub spans_ingested (via deltas).
  uint64_t span_buffer_drops = 0;       // Exemplar candidates dropped at caps.
  int64_t reservoir_drops = 0;
  int64_t windows_closed = 0;
  int64_t late_window_updates = 0;
  size_t peak_buffered_spans = 0;       // Max over shards: bounded-memory proof.

  // Policy-plane state at run end (identical across shards by construction).
  uint64_t policy_version = 0;
  uint64_t policy_stages_applied = 0;
  // Colocated-bypass accounting, summed over all shards' client counters:
  // attempts that took the fast path, the stack tax actually paid (cycles),
  // and the tax the bypassed stages avoided. The bypassed-tax fraction is
  // avoided / (paid + avoided).
  uint64_t colocated_calls = 0;
  double paid_tax_cycles = 0;
  double avoided_tax_cycles = 0;

  // Checkpointed-run bookkeeping (RunMiniFleetCheckpointed only).
  bool interrupted = false;       // Stopped early via stop_after_epochs.
  bool resumed = false;           // Started from a restored checkpoint.
  uint64_t resumed_epoch = 0;     // Epoch barriers already done at resume.
  uint64_t checkpoints_written = 0;
};

// The deployed graph as a long-lived object. Construction builds the system,
// deploys every service, registers handlers, and creates the (unscheduled)
// frontend arrival processes; nothing runs until ArmThrough + RunSegment.
//
// Epoch protocol (docs/ROBUSTNESS.md#checkpointrestore): each iteration arms
// one virtual-time window and runs the sharded executor until every queue
// drains. Arrivals and fault events are only planted inside the armed window,
// so the drain leaves no pending timers — the fleet is quiescent, and
// WriteCheckpoint/RestoreCheckpoint round-trip its complete state. A run
// resumed from any barrier replays the remaining epochs bit-for-bit: same
// event digest, same streamed AggregateDigest as the uninterrupted run with
// the same cadence.
class MiniFleet {
 public:
  MiniFleet(const ServiceCatalog& catalog, const MiniFleetOptions& options);
  ~MiniFleet();

  MiniFleet(const MiniFleet&) = delete;
  MiniFleet& operator=(const MiniFleet&) = delete;

  // Extends every frontend's armed arrival window and the fault injector's
  // arming watermark to `epoch_end`. Only valid while quiescent (before the
  // run or between segments); epoch ends must be strictly increasing.
  // ArmThrough(kMaxSimTime) arms the whole run (the legacy single-epoch shape).
  [[nodiscard]] Status ArmThrough(SimTime epoch_end);

  // Runs the sharded executor until every queue drains, closing hub windows
  // only up to `flush_watermark` (pass the epoch end; kMaxSimTime on the
  // final segment). Returns the executor round count for the segment.
  uint64_t RunSegment(SimTime flush_watermark);

  // Rewinds every shard clock to the common epoch boundary after a segment
  // drains (cascades run past the boundary, scattering the clocks). Must be
  // called at every non-final barrier — before WriteCheckpoint, and on runs
  // without a checkpoint directory too — so the next segment's cross-shard
  // sends never target a shard's past and cadenced digests are identical
  // whether or not snapshots are being written. Requires quiescence.
  [[nodiscard]] Status ResyncAt(SimTime barrier);

  // Assembles the result from current state. Call after the final segment.
  MiniFleetResult Collect();

  // Identity of this run configuration for checkpoint validation: folds every
  // digest-relevant option — seed, horizon, load, topology sharding,
  // observability layout, the full fault-plan content — plus the checkpoint
  // cadence (digest equality only holds between runs with the same epoch
  // boundaries, so resuming under a different cadence must be rejected).
  uint64_t ConfigHash(SimDuration checkpoint_every) const;

  // Snapshots complete fleet state into `<root>/ckpt-<epoch>` (atomic
  // directory-rename commit), then prunes to the newest `keep` checkpoints.
  // Only valid at a quiescent barrier; fails (without writing a committed
  // checkpoint) if any component still has in-flight work.
  [[nodiscard]] Status WriteCheckpoint(const std::string& root, uint64_t epoch,
                                       uint64_t config_hash, int64_t sim_horizon, int keep);

  // Restores complete fleet state from a committed checkpoint directory,
  // validating the manifest (config hash, per-file CRCs) first and every
  // section CRC during the read. Any failure is a clean error Status; the
  // fleet must then be discarded (a failed restore may be partial). Returns
  // the epoch count the snapshot was taken at. Member files are independent
  // (one per shard), so a future restore could parallelize; this one is
  // sequential.
  [[nodiscard]] Result<uint64_t> RestoreCheckpoint(const std::string& ckpt_dir,
                                                   uint64_t config_hash);

  RpcSystem& system() { return system_; }

 private:
  // Issues a child call linked to the parent span, inheriting the parent's
  // remaining deadline. Owned by the *calling* deployment — its client issues
  // it and its RNG picks the replica — because the handler executes in the
  // caller's shard domain and must not touch target-shard state directly; the
  // fabric is the only cross-shard edge. Static (capture-free call sites) so
  // handlers only ever capture stable Deployment pointers.
  static void ChildCall(MiniFleetDeployment& caller, MiniFleetDeployment& target,
                        const std::shared_ptr<ServerCall>& parent, int64_t request_bytes,
                        CallCallback done);

  void BuildGraph(const ServiceCatalog& catalog);

  MiniFleetOptions options_;
  RpcSystem system_;
  // Fixed deployment/frontend order — checkpoint sections are written and
  // read in exactly this order within each shard's file.
  std::vector<std::unique_ptr<MiniFleetDeployment>> deployments_;
  std::vector<std::unique_ptr<MiniFleetFrontend>> frontends_;
  std::unique_ptr<FaultInjector> injector_;
};

// Deploys the graph, runs it uninterrupted, and collects traces. `catalog`
// supplies service ids and names (BuildDefault()).
MiniFleetResult RunMiniFleet(const ServiceCatalog& catalog, const MiniFleetOptions& options);

// Checkpointed-run driver configuration.
struct CheckpointRunOptions {
  // Checkpoint store root. Empty: never write checkpoints (and `resume` finds
  // nothing), i.e. a plain cadenced run.
  std::string dir;
  // Epoch length in virtual time. <= 0 runs one uninterrupted epoch.
  SimDuration every = 0;
  // Retention: keep the newest N committed checkpoints (<= 0 keeps all).
  int keep = 0;
  // Resume from the newest *valid* checkpoint under `dir`; corrupt or stale
  // snapshots are skipped, and with none valid the run starts fresh (logged).
  bool resume = false;
  // Test hook: stop after this many epoch segments have run in this process
  // (after the barrier checkpoint is written), reporting interrupted = true.
  // 0 runs to completion. Simulates a mid-run kill for resume tests.
  int stop_after_epochs = 0;
};

// Runs the fleet in checkpoint_every-sized epochs, snapshotting at each
// barrier. Digest contract: for a fixed (options, every), any interrupt +
// resume sequence produces the same final event digest and streamed
// AggregateDigest as the uninterrupted cadenced run, for any worker_threads.
[[nodiscard]] Result<MiniFleetResult> RunMiniFleetCheckpointed(const ServiceCatalog& catalog,
                                                               const MiniFleetOptions& options,
                                                               const CheckpointRunOptions& ckpt);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_MINI_FLEET_H_

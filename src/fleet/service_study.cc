#include "src/fleet/service_study.h"

#include <cassert>
#include <cmath>
#include <memory>

#include "src/fleet/fleet_sampler.h"
#include "src/fleet/workload.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace rpcscope {

ServiceStudyConfig MakeStudyConfig(const ServiceCatalog& catalog, int32_t service_id) {
  const ServiceSpec& spec = catalog.service(service_id);
  const StudiedServices& ids = catalog.studied();
  ServiceStudyConfig c;
  c.service_id = service_id;
  c.service_name = spec.name;
  c.category = spec.category;
  c.seed = 0x57d1 + static_cast<uint64_t>(service_id) * 7919;

  if (service_id == ids.bigtable) {
    c.app_median_us = 550;
    c.app_sigma = 0.75;
    c.request_bytes = 1024;
    c.response_bytes = 2048;
    c.target_utilization = 0.6;
  } else if (service_id == ids.network_disk) {
    c.app_median_us = 900;  // SSD read service time.
    c.app_sigma = 0.65;
    c.request_bytes = 512;
    c.response_bytes = 32 * 1024;
    c.target_utilization = 0.55;
  } else if (service_id == ids.f1) {
    // Queries of wildly varying complexity through one method: the largest
    // P95/median ratio of the eight (§3.3.1).
    c.app_median_us = 700;
    c.app_sigma = 1.45;
    c.fast_weight = 0.10;
    c.request_bytes = 75;
    c.response_bytes = 8192;
    c.target_utilization = 0.5;
    c.num_clients = 2;
    c.client_rx_workers = 1;
    c.client_rx_overhead_us = 150;
  } else if (service_id == ids.ssd_cache) {
    // Queue-heavy: lean worker pool driven hard.
    c.app_median_us = 260;
    c.app_sigma = 0.55;
    c.request_bytes = 400;
    c.response_bytes = 1024;
    c.app_workers = 3;
    c.target_utilization = 0.85;
  } else if (service_id == ids.kv_store) {
    // Stack-heavy: tiny handler, full-featured channel, hedged.
    c.app_median_us = 25;
    c.app_sigma = 0.45;
    c.fast_weight = 0;
    c.request_bytes = 128;
    c.response_bytes = 512;
    c.cost_scale = 10.0;
    c.io_workers = 6;
    c.target_utilization = 0.35;
    c.hedged = true;
    c.hedge_delay_multiplier = 12.0;
  } else if (service_id == ids.ml_inference) {
    c.app_median_us = 1800;
    c.app_sigma = 0.8;
    c.fast_weight = 0;
    c.request_bytes = 512;
    c.response_bytes = 2048;
    c.target_utilization = 0.5;
  } else if (service_id == ids.spanner) {
    c.app_median_us = 380;
    c.app_sigma = 0.85;
    c.request_bytes = 800;
    c.response_bytes = 4096;
    c.target_utilization = 0.55;
  } else if (service_id == ids.video_metadata) {
    // Queue-heavy on the server AND on the client receive path.
    c.app_median_us = 120;
    c.app_sigma = 0.6;
    c.request_bytes = 32 * 1024;
    c.response_bytes = 4096;
    c.app_workers = 3;
    c.target_utilization = 0.88;
    c.client_rx_workers = 1;
    c.num_clients = 4;
    c.client_rx_overhead_us = 32;
  } else if (service_id == ids.bigquery) {
    c.app_median_us = 2500;
    c.app_sigma = 1.1;
    c.request_bytes = 2048;
    c.response_bytes = 64 * 1024;
    c.target_utilization = 0.5;
  } else {
    c.app_median_us = 500;
    c.request_bytes = static_cast<int64_t>(spec.typical_request_bytes);
    c.response_bytes = static_cast<int64_t>(spec.typical_response_bytes);
  }
  return c;
}

std::vector<ServiceStudyConfig> MakeAllStudyConfigs(const ServiceCatalog& catalog) {
  const StudiedServices& ids = catalog.studied();
  std::vector<ServiceStudyConfig> out;
  for (int32_t id : {ids.bigtable, ids.network_disk, ids.f1, ids.ssd_cache, ids.kv_store,
                     ids.ml_inference, ids.spanner, ids.video_metadata}) {
    out.push_back(MakeStudyConfig(catalog, id));
  }
  return out;
}

ServiceStudyResult RunServiceStudy(const ServiceStudyConfig& config,
                                   const ServiceStudyRun& run) {
  RpcSystemOptions sys_opts;
  sys_opts.seed = config.seed ^ Mix64(run.seed_salt + 1);
  sys_opts.tracing.sampling_probability = 1.0;
  // Scale stack costs for this service's channel configuration.
  CycleCostModel costs;
  costs.serialize_fixed *= config.cost_scale;
  costs.serialize_per_byte *= config.cost_scale;
  costs.parse_fixed *= config.cost_scale;
  costs.parse_per_byte *= config.cost_scale;
  costs.compress_fixed *= config.cost_scale;
  costs.compress_per_byte *= config.cost_scale;
  costs.decompress_fixed *= config.cost_scale;
  costs.decompress_per_byte *= config.cost_scale;
  costs.encrypt_fixed *= config.cost_scale;
  costs.encrypt_per_byte *= config.cost_scale;
  costs.netstack_fixed *= config.cost_scale;
  costs.netstack_per_packet *= config.cost_scale;
  costs.netstack_per_byte *= config.cost_scale;
  costs.rpclib_fixed_per_side *= config.cost_scale;
  sys_opts.costs = costs;
  RpcSystem system(sys_opts);
  const Topology& topo = system.topology();

  const ClusterId server_cluster = run.server_cluster;
  const ClusterId client_cluster =
      run.client_cluster >= 0 ? run.client_cluster : server_cluster;
  assert(server_cluster < topo.num_clusters());
  assert(client_cluster < topo.num_clusters());

  constexpr MethodId kMethod = 1;
  Rng workload_rng(config.seed ^ Mix64(run.seed_salt + 2));

  // --- Servers.
  ServerOptions server_opts;
  server_opts.app_workers = config.app_workers;
  server_opts.io_workers = config.io_workers;
  server_opts.app_speed_factor = run.app_slowdown;
  server_opts.wakeup_latency = run.wakeup_latency;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<MachineId> server_machines;
  auto handler_rng = std::make_shared<Rng>(config.seed ^ Mix64(run.seed_salt + 3));
  for (int s = 0; s < config.num_servers; ++s) {
    const MachineId machine = topo.MachineAt(server_cluster, s);
    server_machines.push_back(machine);
    auto server = std::make_unique<Server>(&system, machine, server_opts);
    server->RegisterMethod(
        kMethod, config.service_name + "/Study",
        [config, handler_rng](std::shared_ptr<ServerCall> call) {
          double app_us;
          if (config.fast_weight > 0 && handler_rng->NextBool(config.fast_weight)) {
            app_us = handler_rng->NextLognormal(std::log(config.fast_median_us), 0.4);
          } else {
            app_us =
                handler_rng->NextLognormal(std::log(config.app_median_us), config.app_sigma);
          }
          const bool fail = handler_rng->NextBool(config.error_prob);
          if (fail) {
            // Errors fail partway through processing.
            call->Compute(DurationFromMicros(app_us * 0.3), [call]() {
              call->Finish(NotFoundError("entity not found"), Payload::Modeled(64));
            });
            return;
          }
          call->Compute(DurationFromMicros(app_us), [call, config]() {
            call->Finish(Status::Ok(), Payload::Modeled(config.response_bytes));
          });
        });
    servers.push_back(std::move(server));
  }

  // --- Clients with open-loop Poisson arrivals. A worker is occupied for the
  // scheduler wake-up as well as the handler proper, so both count toward the
  // per-job service time when deriving the arrival rate for the target
  // utilization.
  const double mean_app_us = config.app_median_us *
                                 std::exp(config.app_sigma * config.app_sigma / 2.0) *
                                 run.app_slowdown +
                             ToMicros(run.wakeup_latency);
  const double total_workers = static_cast<double>(config.num_servers * config.app_workers);
  const double lambda_total_per_us =
      config.target_utilization * total_workers / mean_app_us;
  const double lambda_client_per_us = lambda_total_per_us / config.num_clients;

  ClientOptions client_opts;
  client_opts.rx_workers = config.client_rx_workers;
  client_opts.rx_processing_overhead = DurationFromMicros(config.client_rx_overhead_us);
  std::vector<std::unique_ptr<Client>> clients;
  const int client_base = topo.machines_per_cluster() / 2;
  for (int c = 0; c < config.num_clients; ++c) {
    // Clients sit on the upper half of the cluster's machines (or in the
    // remote client cluster for cross-cluster runs).
    const MachineId machine = topo.MachineAt(client_cluster, client_base + c);
    clients.push_back(std::make_unique<Client>(&system, machine, client_opts));
  }

  Simulator& sim = system.sim();
  const double lambda_client_per_second = lambda_client_per_us * 1e6;
  std::vector<std::unique_ptr<PoissonArrivals>> arrivals;
  for (int c = 0; c < config.num_clients; ++c) {
    Client* client = clients[static_cast<size_t>(c)].get();
    auto rng = std::make_shared<Rng>(workload_rng.Fork(static_cast<uint64_t>(c) + 100));
    arrivals.push_back(std::make_unique<PoissonArrivals>(
        &sim, lambda_client_per_second, config.duration,
        workload_rng.NextUint64(),
        [&server_machines, client, rng, &config]() {
          const size_t target_idx = rng->NextBounded(server_machines.size());
          CallOptions opts;
          opts.service_id = config.service_id;
          if (config.hedged && server_machines.size() > 1) {
            opts.hedge_delay =
                DurationFromMicros(config.app_median_us * config.hedge_delay_multiplier);
            opts.hedge_target = server_machines[(target_idx + 1) % server_machines.size()];
          }
          client->Call(server_machines[target_idx], kMethod,
                       Payload::Modeled(config.request_bytes), opts,
                       [](const CallResult&, Payload) {});
        }));
  }

  sim.Run();

  ServiceStudyResult result;
  for (const auto& process : arrivals) {
    result.calls_issued += static_cast<uint64_t>(process->arrivals());
  }
  for (const Span& span : system.tracer().spans()) {
    if (span.start_time >= config.warmup) {
      result.spans.push_back(span);
    }
  }
  const SimDuration elapsed = config.duration;
  double util = 0;
  for (auto& server : servers) {
    util += server->AppUtilization(elapsed);
  }
  result.server_app_utilization = util / config.num_servers;
  for (auto& client : clients) {
    result.wasted_cycles += client->wasted_cycles();
  }
  return result;
}

}  // namespace rpcscope

#include "src/fleet/service_catalog.h"

#include <algorithm>

namespace rpcscope {

namespace {

ServiceSpec Make(std::string name, ServiceCategory category, int tier, double call_share,
                 double cycles_scale, double req_bytes, double resp_bytes, double latency_band) {
  ServiceSpec s;
  s.name = std::move(name);
  s.category = category;
  s.tier = tier;
  s.call_share = call_share;
  s.cycles_per_call_scale = cycles_scale;
  s.typical_request_bytes = req_bytes;
  s.typical_response_bytes = resp_bytes;
  s.latency_band = latency_band;
  return s;
}

}  // namespace

ServiceCatalog ServiceCatalog::BuildDefault() {
  ServiceCatalog catalog;
  auto& services = catalog.services_;
  auto add = [&services](ServiceSpec s) {
    s.service_id = static_cast<int32_t>(services.size());
    services.push_back(std::move(s));
    return services.back().service_id;
  };

  // --- The eight studied services (Table 1) plus BigQuery (Fig. 15). ---
  // Network Disk: the most popular service — 35% of all RPCs, the most bytes,
  // yet disproportionately few cycles (<2%).
  {
    ServiceSpec s = Make("Network Disk", ServiceCategory::kAppHeavy, 3, 0.35, 0.03,
                         32 * 1024, 2048, 0.05);
    s.studied = true;
    s.table1_client = "Bigtable";
    s.table1_rpc_size = "32 kB";
    s.table1_description = "Read from SSD";
    catalog.studied_.network_disk = add(std::move(s));
  }
  {
    ServiceSpec s = Make("Spanner", ServiceCategory::kAppHeavy, 3, 0.07, 0.8, 800, 4096, 0.25);
    s.studied = true;
    s.table1_client = "Network information service";
    s.table1_rpc_size = "800 B";
    s.table1_description = "Read rows";
    catalog.studied_.spanner = add(std::move(s));
  }
  {
    ServiceSpec s =
        Make("KV-Store", ServiceCategory::kStackHeavy, 3, 0.06, 0.12, 128, 512, 0.02);
    s.studied = true;
    s.table1_client = "Recommendation service";
    s.table1_rpc_size = "128 B";
    s.table1_description = "Search value";
    catalog.studied_.kv_store = add(std::move(s));
  }
  {
    ServiceSpec s = Make("F1", ServiceCategory::kAppHeavy, 2, 0.018, 0.55, 75, 8192, 0.75);
    s.studied = true;
    s.table1_client = "F1";
    s.table1_rpc_size = "75 B";
    s.table1_description = "Process data packet";
    catalog.studied_.f1 = add(std::move(s));
  }
  {
    ServiceSpec s = Make("Bigtable", ServiceCategory::kAppHeavy, 3, 0.05, 0.5, 1024, 2048, 0.2);
    s.studied = true;
    s.table1_client = "KV-Store";
    s.table1_rpc_size = "1 kB";
    s.table1_description = "Search value";
    catalog.studied_.bigtable = add(std::move(s));
  }
  {
    ServiceSpec s =
        Make("SSD cache", ServiceCategory::kQueueHeavy, 3, 0.025, 0.35, 400, 1024, 0.15);
    s.studied = true;
    s.table1_client = "BigQuery";
    s.table1_rpc_size = "400 B";
    s.table1_description = "Look up streaming data";
    catalog.studied_.ssd_cache = add(std::move(s));
  }
  {
    ServiceSpec s = Make("Video Metadata", ServiceCategory::kQueueHeavy, 2, 0.02, 0.7,
                         32 * 1024, 4096, 0.35);
    s.studied = true;
    s.table1_client = "Video Search";
    s.table1_rpc_size = "32 kB";
    s.table1_description = "Get metadata";
    catalog.studied_.video_metadata = add(std::move(s));
  }
  {
    ServiceSpec s =
        Make("ML Inference", ServiceCategory::kAppHeavy, 2, 0.0017, 2.6, 512, 2048, 0.85);
    s.studied = true;
    s.table1_client = "ML Client";
    s.table1_rpc_size = "512 B";
    s.table1_description = "Perform inference";
    catalog.studied_.ml_inference = add(std::move(s));
  }
  catalog.studied_.bigquery = add(
      Make("BigQuery", ServiceCategory::kAppHeavy, 2, 0.025, 1.6, 2048, 64 * 1024, 0.8));

  // --- Supporting population (shares normalized below). ---
  add(Make("Web Search", ServiceCategory::kMixed, 0, 0.040, 1.2, 512, 16 * 1024, 0.45));
  add(Make("Video Search", ServiceCategory::kMixed, 0, 0.010, 1.2, 512, 16 * 1024, 0.5));
  add(Make("Mail Backend", ServiceCategory::kMixed, 0, 0.030, 1.0, 2048, 8192, 0.5));
  add(Make("Ads Serving", ServiceCategory::kMixed, 1, 0.040, 1.0, 1024, 4096, 0.4));
  add(Make("Analytics Pipeline", ServiceCategory::kAppHeavy, 2, 0.020, 2.5, 4096, 1024, 0.9));
  add(Make("Lock Service", ServiceCategory::kMixed, 3, 0.015, 0.10, 128, 128, 0.1));
  add(Make("Cluster FS Metadata", ServiceCategory::kMixed, 3, 0.030, 0.2, 256, 512, 0.12));
  add(Make("Monitoring", ServiceCategory::kMixed, 1, 0.035, 0.5, 2048, 512, 0.3));
  add(Make("Recommendation", ServiceCategory::kMixed, 1, 0.030, 1.3, 512, 4096, 0.55));
  add(Make("Auth", ServiceCategory::kMixed, 1, 0.030, 0.3, 256, 256, 0.15));
  add(Make("Data Transfer", ServiceCategory::kMixed, 2, 0.020, 0.8, 64 * 1024, 512, 0.6));
  add(Make("Translation", ServiceCategory::kMixed, 1, 0.020, 2.0, 1024, 2048, 0.6));
  add(Make("Photos Backend", ServiceCategory::kMixed, 0, 0.020, 0.8, 4096, 32 * 1024, 0.55));
  add(Make("Docs Backend", ServiceCategory::kMixed, 0, 0.020, 0.8, 2048, 8192, 0.5));
  add(Make("Search Indexing", ServiceCategory::kAppHeavy, 2, 0.020, 2.0, 8192, 1024, 0.85));
  add(Make("Pub/Sub", ServiceCategory::kMixed, 2, 0.030, 0.4, 2048, 256, 0.3));
  add(Make("Maps Tiles", ServiceCategory::kMixed, 1, 0.025, 0.7, 512, 24 * 1024, 0.45));
  add(Make("Batch Scheduler", ServiceCategory::kMixed, 2, 0.010, 1.5, 1024, 1024, 0.7));

  // Normalize: the studied services keep their paper-anchored shares
  // (Network Disk must stay at 35% of calls); the supporting population is
  // scaled to absorb exactly the remainder.
  double studied_total = 0;
  double population_total = 0;
  for (const ServiceSpec& s : services) {
    (s.studied || s.name == "BigQuery" ? studied_total : population_total) += s.call_share;
  }
  const double scale = (1.0 - studied_total) / population_total;
  for (ServiceSpec& s : services) {
    if (!s.studied && s.name != "BigQuery") {
      s.call_share *= scale;
    }
  }
  return catalog;
}

std::vector<int32_t> ServiceCatalog::TopByCallShare(size_t n) const {
  std::vector<int32_t> ids(services_.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int32_t>(i);
  }
  std::sort(ids.begin(), ids.end(), [this](int32_t a, int32_t b) {
    return services_[static_cast<size_t>(a)].call_share >
           services_[static_cast<size_t>(b)].call_share;
  });
  ids.resize(std::min(n, ids.size()));
  return ids;
}

}  // namespace rpcscope

#include "src/fleet/method_catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace rpcscope {

namespace {

// --- Calibration curves (anchors from the paper; see DESIGN.md §4). ---

// Per-method median RPC completion time in microseconds, as a function of the
// latency-rank quantile u (§2.3): 90% of methods have medians >= 10.7 ms; the
// slowest 5% reach seconds.
const QuantileCurve& RctMedianCurve() {
  static const QuantileCurve curve({{0.005, 700.0},
                                    {0.02, 1200.0},
                                    {0.10, 10700.0},
                                    {0.50, 45000.0},
                                    {0.90, 300000.0},
                                    {0.95, 2.6e6},
                                    {0.995, 1.5e7}},
                                   100.0, 8.0e7);
  return curve;
}

// Per-method median total queueing time in microseconds (Fig. 13): half of
// methods <= 360 us, the worst decile >= 1.1 ms.
const QuantileCurve& QueueMedianCurve() {
  static const QuantileCurve curve(
      {{0.02, 20.0}, {0.10, 60.0}, {0.50, 360.0}, {0.90, 1100.0}, {0.99, 3000.0}}, 10.0, 1.0e5);
  return curve;
}

// Per-method median request size in bytes (Fig. 6; Q10 adjusted to keep the
// anchor set monotone — see DESIGN.md).
const QuantileCurve& RequestSizeCurve() {
  static const QuantileCurve curve(
      {{0.10, 200.0}, {0.50, 1530.0}, {0.90, 11800.0}, {0.99, 196000.0}}, 64.0, 1.0e7);
  return curve;
}

// Per-method median response size in bytes (Fig. 6).
const QuantileCurve& ResponseSizeCurve() {
  static const QuantileCurve curve(
      {{0.10, 188.0}, {0.50, 315.0}, {0.90, 10000.0}, {0.99, 563000.0}}, 64.0, 1.0e7);
  return curve;
}

double HashUnit(uint64_t seed, uint64_t a, uint64_t b) {
  return static_cast<double>(Mix64(seed ^ Mix64(a * 0x1009 + b)) >> 11) * 0x1.0p-53;
}

}  // namespace

MethodCatalog MethodCatalog::Generate(const ServiceCatalog& services,
                                      const MethodCatalogOptions& options) {
  const int n = options.num_methods;
  assert(n >= 200);
  MethodCatalog catalog;
  const auto& specs = services.services();
  const int32_t nd = services.studied().network_disk;

  // ---- 1. Methods per service: sub-linear in call share (popular services
  // have more methods, but not proportionally more).
  const size_t num_services = specs.size();
  std::vector<int> methods_per_service(num_services);
  {
    double total_alloc = 0;
    std::vector<double> alloc(num_services);
    for (size_t s = 0; s < num_services; ++s) {
      alloc[s] = std::pow(specs[s].call_share, 0.35);
      total_alloc += alloc[s];
    }
    int assigned = 0;
    for (size_t s = 0; s < num_services; ++s) {
      methods_per_service[s] = std::max(8, static_cast<int>(alloc[s] / total_alloc * n));
      assigned += methods_per_service[s];
    }
    // Trim or pad the largest service so counts sum exactly to n.
    const size_t biggest =
        static_cast<size_t>(std::max_element(methods_per_service.begin(),
                                             methods_per_service.end()) -
                            methods_per_service.begin());
    methods_per_service[biggest] += n - assigned;
    assert(methods_per_service[biggest] > 0);
  }

  // ---- 2. Per-service in-service popularity: one dominant "primary" method
  // (Network Disk's is the famous Write at 80% of the service's traffic,
  // i.e. 28% of the fleet) plus a zipf tail. This construction makes the
  // paper's global skew anchors (top-10 ~58%, top-100 ~91%) structural:
  // the ten most popular methods are the primaries of the largest services.
  struct ProtoMethod {
    int32_t service_id;
    int in_rank;  // 1 = the service's primary method.
    double weight;
    double target_u;
    uint64_t hash;
  };
  std::vector<ProtoMethod> protos;
  protos.reserve(static_cast<size_t>(n));
  for (size_t s = 0; s < num_services; ++s) {
    const ServiceSpec& spec = specs[s];
    const int ns = methods_per_service[s];
    const double f_top = static_cast<int32_t>(s) == nd ? 0.80
                         : spec.call_share >= 0.02    ? 0.80
                                                      : 0.62;
    // Zipf tail over ranks 2..ns.
    double tail_norm = 0;
    for (int r = 2; r <= ns; ++r) {
      tail_norm += 1.0 / std::pow(static_cast<double>(r - 1), 1.45);
    }
    // The primary methods of the two fastest storage substrates (Network
    // Disk, KV-Store) anchor the "100 lowest-latency methods carry 40% of
    // calls" skew; other services' primaries sit near half their band.
    const bool ultra_fast = spec.latency_band <= 0.06;
    const double low_u = ultra_fast ? 0.003 : std::max(0.012, 0.45 * spec.latency_band);
    const double high_u = std::min(0.97, spec.latency_band + 0.50);
    for (int r = 1; r <= ns; ++r) {
      ProtoMethod p;
      p.service_id = static_cast<int32_t>(s);
      p.in_rank = r;
      const double w_in =
          r == 1 ? f_top
                 : (1.0 - f_top) / std::pow(static_cast<double>(r - 1), 1.45) / tail_norm;
      p.weight = spec.call_share * w_in;
      p.hash = Mix64(options.seed ^ Mix64((s << 20) + static_cast<uint64_t>(r)));
      const double t = ns > 1 ? static_cast<double>(r - 1) / (ns - 1) : 0.0;
      const double jitter =
          (static_cast<double>(p.hash >> 11) * 0x1.0p-53 - 0.5) * 0.06;
      p.target_u = std::clamp(low_u + (high_u - low_u) * std::pow(t, 0.75) + jitter,
                              0.0005, 0.9995);
      protos.push_back(p);
    }
  }

  // ---- 3. Latency ranking: methods sorted by target u; method id == rank.
  std::stable_sort(protos.begin(), protos.end(),
                   [](const ProtoMethod& a, const ProtoMethod& b) {
                     return a.target_u < b.target_u;
                   });

  // ---- 4. Pin the slow band at 1.1% of calls (§2.3), preserving service
  // sums by returning the removed mass to each service's faster methods.
  const int slow_band_start = n - std::max(1000 * n / 10000, 50);
  {
    double slow_mass = 0;
    for (int i = slow_band_start; i < n; ++i) {
      slow_mass += protos[static_cast<size_t>(i)].weight;
    }
    const double slow_target = 0.011;
    if (slow_mass > 0 && std::abs(slow_mass - slow_target) > 1e-6) {
      const double alpha = slow_target / slow_mass;
      std::vector<double> service_slow(num_services, 0.0);
      std::vector<double> service_fast(num_services, 0.0);
      for (int i = 0; i < n; ++i) {
        const ProtoMethod& p = protos[static_cast<size_t>(i)];
        (i >= slow_band_start ? service_slow : service_fast)[static_cast<size_t>(p.service_id)] +=
            p.weight;
      }
      for (int i = 0; i < n; ++i) {
        ProtoMethod& p = protos[static_cast<size_t>(i)];
        const size_t s = static_cast<size_t>(p.service_id);
        if (i >= slow_band_start) {
          p.weight *= alpha;
        } else if (service_fast[s] > 0) {
          p.weight *= 1.0 + service_slow[s] * (1.0 - alpha) / service_fast[s];
        }
      }
    }
  }

  // ---- 5. Materialize per-method models.
  catalog.methods_.resize(static_cast<size_t>(n));
  std::vector<double> weight(static_cast<size_t>(n));
  std::vector<int> per_service_counter(num_services, 0);
  for (int i = 0; i < n; ++i) {
    const ProtoMethod& p = protos[static_cast<size_t>(i)];
    MethodModel& m = catalog.methods_[static_cast<size_t>(i)];
    const double u = (static_cast<double>(i) + 0.5) / n;
    const ServiceSpec& spec = specs[static_cast<size_t>(p.service_id)];
    m.method_id = i;
    m.service_id = p.service_id;
    m.u = u;
    m.popularity_weight = p.weight;
    weight[static_cast<size_t>(i)] = p.weight;
    m.tier = spec.tier;
    if (p.service_id == nd && p.in_rank == 1) {
      m.name = spec.name + "/Write";
      catalog.network_disk_write_id_ = i;
    } else if (p.in_rank == 1) {
      m.name = spec.name + "/Primary";
      ++per_service_counter[static_cast<size_t>(p.service_id)];
    } else {
      m.name = spec.name + "/Method" +
               std::to_string(per_service_counter[static_cast<size_t>(p.service_id)]++);
    }

    const uint64_t h = p.hash;

    // Application time: the dominant RCT component for most RPCs. Sigma
    // shrinks with rank: slow batch methods are more predictable per call.
    m.app_median_us = RctMedianCurve().Quantile(u) * 1.05;
    m.app_sigma = std::clamp(1.30 - 0.85 * u, 0.45, 1.35);
    const bool has_fast_path = u < 0.95 && HashUnit(h, 1, 0) < 0.98;
    if (has_fast_path) {
      m.fast_weight = 0.05 + 0.10 * HashUnit(h, 1, 1);
      m.fast_median_us = 80.0 + 420.0 * HashUnit(h, 1, 2);
      m.fast_sigma = 0.5;
    } else {
      m.fast_weight = 0;
    }

    // Queueing: medians from the Fig. 13 curve; tails grow with latency rank
    // so that the popular fast methods keep modest queue tails (which is what
    // keeps the invocation-weighted latency tax small, Fig. 10) while the
    // long tail of methods shows the extreme P99s of Fig. 13.
    const double queue_boost = spec.category == ServiceCategory::kQueueHeavy ? 3.0 : 1.0;
    m.queue_median_us =
        QueueMedianCurve().Quantile(std::clamp(0.85 * u + 0.15 * HashUnit(h, 2, 0), 0.0, 1.0)) *
        queue_boost;
    m.queue_body_sigma = 0.7 + 0.3 * HashUnit(h, 2, 5);
    m.queue_tail_prob = 0.015 + 0.015 * HashUnit(h, 2, 6);
    m.queue_tail_ratio = 60.0 + 800.0 * u * u;
    m.queue_tail_sigma = 0.9;
    {
      double csq = 0.08 + 0.08 * HashUnit(h, 2, 1);
      double srq = 0.50 + 0.20 * HashUnit(h, 2, 2);
      double ssq = 0.08 + 0.10 * HashUnit(h, 2, 3);
      double crq = 0.08 + 0.10 * HashUnit(h, 2, 4);
      const double total = csq + srq + ssq + crq;
      m.queue_split = {csq / total, srq / total, ssq / total, crq / total};
    }

    // Sizes: blend the fleet-wide size curves with the service's typical
    // sizes (Table 1 pins the studied services).
    // Ranks stay uniform (a mixture of uniforms is uniform), so the size
    // curves' tails are reproduced exactly; correlation between request and
    // response size comes from reusing the request's rank for a fraction of
    // methods.
    // Primaries carry most of the fleet's calls, so their payloads sit in the
    // unexceptional middle of the size distribution (huge-payload primaries
    // would blow up fleet-wide byte and compression budgets); the method long
    // tail samples the full curve, which is what gives Fig. 6 its heavy tail.
    const double size_rank = std::clamp(
        p.in_rank <= 50 ? 0.15 + 0.55 * HashUnit(h, 3, 0) : HashUnit(h, 3, 0), 0.001, 0.999);
    const double resp_raw =
        p.in_rank <= 50 ? 0.15 + 0.55 * HashUnit(h, 3, 1) : HashUnit(h, 3, 1);
    const double resp_rank =
        std::clamp(HashUnit(h, 3, 5) < 0.3 ? size_rank : resp_raw, 0.001, 0.999);
    const double blend = spec.studied ? 0.65 : 0.10;
    m.req_median_bytes =
        std::max(64.0, std::exp((1 - blend) * std::log(RequestSizeCurve().Quantile(size_rank)) +
                                blend * std::log(spec.typical_request_bytes)));
    m.resp_median_bytes =
        std::max(64.0, std::exp((1 - blend) * std::log(ResponseSizeCurve().Quantile(resp_rank)) +
                                blend * std::log(spec.typical_response_bytes)));
    m.req_sigma = 1.0 + 0.5 * HashUnit(h, 3, 2);
    m.resp_sigma = 1.1 + 0.6 * HashUnit(h, 3, 3);
    m.redundancy = 0.3 + 0.5 * HashUnit(h, 3, 4);
    // Block/bulk storage ships pre-compressed or raw device data over
    // blob-style channels with zero-copy per-byte paths.
    const bool bulk_channel =
        p.service_id == nd || spec.name == "Video Metadata" || spec.name == "Photos Backend";
    m.compression_enabled = !bulk_channel;
    m.byte_cost_scale = bulk_channel ? 0.02 : 1.0;

    // Locality. Three regimes: deep storage substrates (tier 3) serve their
    // co-located clients almost exclusively; a ~12% slice of higher-tier
    // methods are inherently cross-site (replication, sync, federation);
    // everything else drifts outward with latency rank. This is what lets
    // Network Disk (28% of calls) stay LAN-local while mid-latency methods
    // still pay real WAN time (Fig. 12's tail, Fig. 11's tax ratios).
    {
      double cluster, dc, metro, cont, inter;
      // Popular primaries are never inherently cross-site (their clients
      // co-locate with them); the cross-site slice lives in the long tail.
      const bool cross_site = spec.tier != 3 && p.in_rank > 3 && HashUnit(h, 8, 0) < 0.22;
      if (cross_site) {
        cluster = 0.10;
        dc = 0.10;
        metro = 0.35;
        cont = 0.30;
        inter = 0.15 * std::min(1.0, 3.0 * u + 0.2);
      } else {
        cluster = std::max(0.06, 0.88 - 1.60 * u);
        dc = 0.06;
        metro = 0.03 + 0.45 * u;
        cont = 0.012 + 0.60 * u * u * u;
        inter = 0.0005 + 0.22 * u * u * u;
        if (spec.tier == 3) {
          // Storage substrates mostly serve co-located clients, but cross-DC
          // replica reads do happen.
          metro *= 0.5;
          cont *= 0.5;
          inter *= 0.05;
        }
      }
      const double total = cluster + dc + metro + cont + inter;
      m.locality = {cluster / total, dc / total, metro / total, cont / total, inter / total};
    }
    m.congestion_prob = 0.02 + 0.08 * u;
    m.lan_congestion_mean_us = 400.0 + 1500.0 * u;
    m.wan_congestion_mean_us = 30000.0 + 260000.0 * u;
    m.proc_jitter_sigma = 0.25 + 0.3 * HashUnit(h, 4, 0);

    // CPU cost: scaled by the service's cycles-per-call, scattered widely per
    // method (log-symmetric, so service-level means stay pinned for Fig. 8c)
    // and deliberately decoupled from latency rank (§4.2).
    // Calibrated so the fleet-wide RPC cycle tax lands near the paper's 7.1%
    // (application cycles are CPU work only — IO-bound storage handlers burn
    // few cycles even when their latency is large). Primary methods define a
    // service's typical per-call cost (their traffic dominates the service's
    // Fig. 8c share); the long tail of rare methods scatters widely, which is
    // what decouples cost from latency rank (§4.2).
    const double cpu_base = spec.cycles_per_call_scale * 520000.0;
    const double scatter_sigma = p.in_rank <= 2 ? 0.4 : 1.7;
    m.cpu_median_cycles = cpu_base * std::exp(scatter_sigma * (HashUnit(h, 5, 0) * 2 - 1));
    // Per-call sigma is capped at 1.7: beyond that the fleet-wide mean is
    // dominated by a handful of draws and Fig. 20's tax fraction stops
    // converging at realistic sample counts.
    m.cpu_sigma = m.cpu_median_cycles < 20000.0 ? 0.25 + 0.2 * HashUnit(h, 5, 1)
                                                : 1.0 + 0.4 * HashUnit(h, 5, 1);

    // Call-tree shape by tier: frontends branch a lot; storage mostly leafs
    // but still replicates/journals, and partition/aggregate bursts exist at
    // every level (§2.4's wide-not-deep finding).
    switch (spec.tier) {
      case 0:
        m.leaf_prob = 0.12;
        m.branch_mean = 2.2;
        m.burst_prob = 0.04;
        break;
      case 1:
        m.leaf_prob = 0.20;
        m.branch_mean = 1.8;
        m.burst_prob = 0.02;
        break;
      case 2:
        m.leaf_prob = 0.28;
        m.branch_mean = 1.6;
        m.burst_prob = 0.03;
        break;
      default:
        // Even storage substrates replicate and journal: they branch often
        // enough that nearly every method sometimes presides over a large
        // subtree (Fig. 4's "90% of methods have P90 descendants >= 105").
        m.leaf_prob = 0.34;
        m.branch_mean = 1.52;
        m.burst_prob = 0.02;
        break;
    }
    m.burst_min = 40;
    m.burst_max = 150 + static_cast<int>(250 * HashUnit(h, 6, 0));

    // Errors and hedging.
    m.error_prob = 0.008 + 0.04 * HashUnit(h, 7, 0) * HashUnit(h, 7, 1);
    m.hedged = spec.category == ServiceCategory::kStackHeavy || HashUnit(h, 7, 2) < 0.25;
  }

  // Popularity sampler.
  catalog.popularity_ = std::make_unique<DiscreteDist>(weight);
  return catalog;
}

std::vector<int32_t> MethodCatalog::MethodsOfService(int32_t service_id) const {
  std::vector<int32_t> out;
  for (const MethodModel& m : methods_) {
    if (m.service_id == service_id) {
      out.push_back(m.method_id);
    }
  }
  std::sort(out.begin(), out.end(), [this](int32_t a, int32_t b) {
    return methods_[static_cast<size_t>(a)].popularity_weight >
           methods_[static_cast<size_t>(b)].popularity_weight;
  });
  return out;
}

std::string MethodCatalog::ExportCsv(const ServiceCatalog& services) const {
  std::string out =
      "method_id,name,service,popularity_weight,latency_rank_u,app_median_us,app_sigma,"
      "fast_weight,queue_median_us,req_median_bytes,resp_median_bytes,compression,"
      "cpu_median_cycles,error_prob,hedged,tier\n";
  char row[512];
  for (const MethodModel& m : methods_) {
    std::snprintf(row, sizeof(row),
                  "%d,%s,%s,%.9g,%.4f,%.6g,%.3f,%.3f,%.6g,%.6g,%.6g,%d,%.6g,%.5f,%d,%d\n",
                  m.method_id, m.name.c_str(),
                  services.service(m.service_id).name.c_str(), m.popularity_weight, m.u,
                  m.app_median_us, m.app_sigma, m.fast_weight, m.queue_median_us,
                  m.req_median_bytes, m.resp_median_bytes, m.compression_enabled ? 1 : 0,
                  m.cpu_median_cycles, m.error_prob, m.hedged ? 1 : 0, m.tier);
    out += row;
  }
  return out;
}

}  // namespace rpcscope

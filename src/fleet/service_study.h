// ServiceStudy: discrete-event experiments on individual services (§3.3).
//
// Unlike the model-driven fleet sampler, these experiments run real client
// and server endpoints through the full RPC stack over the simulated fabric:
// queueing emerges from worker occupancy under open-loop Poisson load,
// proc+stack time from the cycle cost model, and wire time from the
// topology. The eight studied services (Table 1) have presets that land them
// in the paper's three bottleneck categories; exogenous knobs (application
// slowdown, scheduler wake-up latency) plug in the cluster-state model for
// the Figs. 16–18 sweeps, and placing clients in a remote cluster reproduces
// the Fig. 19 cross-cluster staircase.
#ifndef RPCSCOPE_SRC_FLEET_SERVICE_STUDY_H_
#define RPCSCOPE_SRC_FLEET_SERVICE_STUDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/service_catalog.h"
#include "src/rpc/rpc_system.h"
#include "src/trace/span.h"

namespace rpcscope {

struct ServiceStudyConfig {
  int32_t service_id = -1;
  std::string service_name;
  ServiceCategory category = ServiceCategory::kMixed;

  // Handler compute model (mixture of a fast path and a lognormal body).
  double app_median_us = 500;
  double app_sigma = 0.8;
  double fast_weight = 0.04;
  double fast_median_us = 80;

  // Payload sizes (Table 1).
  int64_t request_bytes = 1024;
  int64_t response_bytes = 1024;

  // Deployment and load.
  int num_servers = 4;
  int app_workers = 8;
  int io_workers = 2;
  int num_clients = 8;
  int client_rx_workers = 2;
  double client_rx_overhead_us = 0;  // Per-response client-side handling.
  double target_utilization = 0.55;

  // Stack-cost multiplier for this service's channel configuration (a
  // latency-sensitive service running the full auth/validation stack pays
  // more per message than a bulk pipe).
  double cost_scale = 1.0;

  bool hedged = false;
  double hedge_delay_multiplier = 4.0;  // x app median.
  double error_prob = 0.004;

  SimDuration duration = Seconds(8);
  SimDuration warmup = Seconds(1);
  uint64_t seed = 12345;
};

// Per-run environment: which cluster serves, exogenous state knobs, and where
// the clients sit (defaults to the serving cluster).
struct ServiceStudyRun {
  ClusterId server_cluster = 0;
  ClusterId client_cluster = -1;  // -1 => same as server_cluster.
  double app_slowdown = 1.0;
  SimDuration wakeup_latency = 0;
  uint64_t seed_salt = 0;
};

struct ServiceStudyResult {
  std::vector<Span> spans;  // Post-warmup spans, client-observed.
  double server_app_utilization = 0;
  uint64_t calls_issued = 0;
  double wasted_cycles = 0;
};

// Preset configs for the studied services (Table 1 + §3.3.1 categories).
ServiceStudyConfig MakeStudyConfig(const ServiceCatalog& catalog, int32_t service_id);

// All eight Table-1 services in the paper's figure order:
// Bigtable, Network Disk, F1, SSD cache, KV-Store, ML Inference, Spanner,
// Video Metadata.
std::vector<ServiceStudyConfig> MakeAllStudyConfigs(const ServiceCatalog& catalog);

ServiceStudyResult RunServiceStudy(const ServiceStudyConfig& config,
                                   const ServiceStudyRun& run);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_SERVICE_STUDY_H_

#include "src/fleet/growth_model.h"

#include <cmath>

#include "src/common/rng.h"

namespace rpcscope {

void GrowthModel::GenerateInto(MetricRegistry& registry) const {
  Rng rng(options_.seed);
  Counter& rpcs = registry.GetCounter("fleet/rpcs");
  Counter& cycles = registry.GetCounter("fleet/cpu_cycles");

  const double window_seconds = ToSeconds(options_.sample_window);
  const int64_t windows =
      options_.days * (kDay / options_.sample_window);
  const double ln_rps_growth = std::log(options_.rps_annual_growth) / 365.0;
  const double ln_ratio_growth = std::log(options_.rps_per_cpu_annual_growth) / 365.0;

  for (int64_t w = 0; w <= windows; ++w) {
    const SimTime now = w * options_.sample_window;
    const double day = ToSeconds(now) / 86400.0;
    // Traffic: exponential growth with diurnal and weekly seasonality.
    const double diurnal =
        1.0 + options_.diurnal_amplitude * std::sin(2 * M_PI * day);
    const double weekly =
        1.0 + options_.weekly_amplitude * std::sin(2 * M_PI * day / 7.0);
    const double noise = std::exp(options_.noise_sigma * rng.NextGaussian());
    const double rps =
        options_.base_rps * std::exp(ln_rps_growth * day) * diurnal * weekly * noise;
    // Cycles per RPC decline so that RPS/CPU grows at the calibrated rate.
    const double cycles_per_rpc =
        options_.base_cycles_per_rpc * std::exp(-ln_ratio_growth * day) *
        std::exp(options_.noise_sigma * rng.NextGaussian());
    rpcs.Increment(rps * window_seconds);
    cycles.Increment(rps * window_seconds * cycles_per_rpc);
    registry.SampleAll(now);
  }
}

std::vector<double> GrowthModel::NormalizedDailyRatio(const MetricRegistry& registry, int days) {
  const TimeSeries* rpcs = registry.Series("fleet/rpcs");
  const TimeSeries* cycles = registry.Series("fleet/cpu_cycles");
  std::vector<double> out;
  if (rpcs == nullptr || cycles == nullptr) {
    return out;
  }
  double first = 0;
  for (int d = 0; d < days; ++d) {
    const SimTime begin = Days(d);
    const SimTime end = Days(d + 1);
    const auto rpc_rate = rpcs->RatePerSecond(begin, end);
    const auto cycle_rate = cycles->RatePerSecond(begin, end);
    if (rpc_rate.empty() || cycle_rate.empty()) {
      continue;
    }
    double rpc_sum = 0, cycle_sum = 0;
    for (const TimePoint& p : rpc_rate) {
      rpc_sum += p.value;
    }
    for (const TimePoint& p : cycle_rate) {
      cycle_sum += p.value;
    }
    if (cycle_sum <= 0) {
      continue;
    }
    const double ratio = rpc_sum / cycle_sum;
    if (out.empty()) {
      first = ratio;
    }
    out.push_back(ratio / first);
  }
  return out;
}

}  // namespace rpcscope

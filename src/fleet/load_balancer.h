// Load-balancing model (§4.3, Fig. 22).
//
// Inter-cluster: the fleet's balancer is latency-aware — demand originating
// in a metro is routed to the nearest cluster running the service, with CPU
// balance NOT an objective — so per-cluster CPU usage/limit ratios end up
// widely imbalanced. Intra-cluster: stateless services spread load nearly
// evenly across machines (power-of-two-choices); data-dependent services
// (Spanner, F1, ML Inference) route by key affinity over a Zipf-skewed key
// population, leaving some machines near their limit.
#ifndef RPCSCOPE_SRC_FLEET_LOAD_BALANCER_H_
#define RPCSCOPE_SRC_FLEET_LOAD_BALANCER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/fleet/service_catalog.h"
#include "src/net/topology.h"

namespace rpcscope {

// Intra-cluster request-to-machine routing policy.
enum class IntraClusterPolicy {
  kPowerOfTwoChoices,  // Stateless services: join the less-loaded of two.
  kRandom,             // Naive uniform random choice.
  kKeyAffinity,        // Data-dependent: route by key over a Zipf population.
};

struct LoadBalanceStudyOptions {
  uint64_t seed = 4242;
  int clusters_with_service = 24;   // Deployment footprint.
  int machines_per_cluster = 48;
  int64_t demand_units = 2000000;   // Total RPC demand routed.
  double capacity_headroom = 1.6;   // Provisioned capacity vs mean demand.
  IntraClusterPolicy policy = IntraClusterPolicy::kPowerOfTwoChoices;
  bool data_dependent = false;      // Shorthand: forces kKeyAffinity.
  double key_zipf_exponent = 1.05;  // Skew of the key population.
  int num_keys = 4096;
};

struct LoadBalanceResult {
  // CPU usage as a fraction of the allocated limit, capped at 1 (the Fig. 22
  // CDFs plot usage/limit).
  std::vector<double> cluster_usage;
  std::vector<double> machine_usage;  // Machines of all clusters, pooled.
  // Uncapped demand/limit ratios, for measuring skew past saturation.
  std::vector<double> cluster_usage_raw;
  std::vector<double> machine_usage_raw;
  // Machine usage of the median-loaded cluster (the paper's dashed lines
  // plot machines within one cluster).
  std::vector<double> median_cluster_machine_usage;
};

class LoadBalanceStudy {
 public:
  LoadBalanceStudy(const Topology* topology, const LoadBalanceStudyOptions& options);

  LoadBalanceResult Run();

 private:
  const Topology* topology_;
  LoadBalanceStudyOptions options_;
  Rng rng_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_LOAD_BALANCER_H_

#include "src/fleet/call_graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace rpcscope {

CallGraphModel::CallGraphModel(const MethodCatalog* methods, const CallGraphOptions& options)
    : methods_(methods), options_(options), rng_(options.seed) {
  assert(methods != nullptr);
  tier_dists_.resize(4);
  tier_members_.resize(4);
  for (int t = 0; t < 4; ++t) {
    std::vector<double> weights;
    for (const MethodModel& m : methods_->methods()) {
      if (m.tier >= t) {
        tier_members_[static_cast<size_t>(t)].push_back(m.method_id);
        weights.push_back(m.popularity_weight + 1e-9);
      }
    }
    if (!weights.empty()) {
      tier_dists_[static_cast<size_t>(t)] = std::make_unique<DiscreteDist>(weights);
    }
  }
  std::vector<double> root_weights;
  for (const MethodModel& m : methods_->methods()) {
    if (m.tier <= 1) {
      root_members_.push_back(m.method_id);
      root_weights.push_back(m.popularity_weight + 1e-9);
    }
  }
  root_dist_ = std::make_unique<DiscreteDist>(root_weights);
}

int32_t CallGraphModel::SampleChildMethod(int parent_tier) {
  // Children live at the parent's tier or deeper; bias one tier down so
  // computation flows toward storage.
  int tier = std::min(parent_tier + (rng_.NextBool(0.6) ? 1 : 0), 3);
  while (tier > 0 && tier_members_[static_cast<size_t>(tier)].empty()) {
    --tier;
  }
  const auto& members = tier_members_[static_cast<size_t>(tier)];
  const auto& dist = tier_dists_[static_cast<size_t>(tier)];
  return members[static_cast<size_t>(dist->Sample(rng_))];
}

CallTree CallGraphModel::SampleTree() {
  const int32_t root =
      root_members_[static_cast<size_t>(root_dist_->Sample(rng_))];
  return SampleTree(root);
}

CallTree CallGraphModel::SampleTree(int32_t root_method) {
  CallTree tree;
  tree.nodes.push_back({root_method, -1, 0});
  std::deque<int32_t> frontier;
  frontier.push_back(0);
  while (!frontier.empty() && static_cast<int>(tree.nodes.size()) < options_.max_nodes) {
    const int32_t idx = frontier.front();
    frontier.pop_front();
    const CallTreeNode node = tree.nodes[static_cast<size_t>(idx)];
    if (node.depth >= options_.max_depth) {
      continue;
    }
    const MethodModel& m = methods_->method(node.method_id);
    // Deep nodes are increasingly likely to stop: trees end up wide, not deep.
    const double leaf_prob = std::min(
        1.0, m.leaf_prob + options_.depth_leaf_ramp *
                               std::max(0, node.depth - options_.ramp_start_depth));
    int children = 0;
    const double roll = rng_.NextDouble();
    if (node.depth <= options_.burst_max_depth && roll < m.burst_prob) {
      children = m.burst_min +
                 static_cast<int>(rng_.NextBounded(
                     static_cast<uint64_t>(m.burst_max - m.burst_min + 1)));
    } else if (roll >= leaf_prob) {
      children = 1 + static_cast<int>(rng_.NextPoisson(std::max(m.branch_mean - 1.0, 0.0)));
    }
    for (int c = 0; c < children && static_cast<int>(tree.nodes.size()) < options_.max_nodes;
         ++c) {
      const int32_t child_method = SampleChildMethod(m.tier);
      tree.nodes.push_back({child_method, idx, node.depth + 1});
      frontier.push_back(static_cast<int32_t>(tree.nodes.size()) - 1);
    }
  }
  return tree;
}

}  // namespace rpcscope

#include "src/fleet/workload.h"

#include <cassert>

namespace rpcscope {

PoissonArrivals::PoissonArrivals(Simulator* sim, double rate_per_second, SimTime until,
                                 uint64_t seed, Arrival on_arrival)
    : sim_(sim),
      mean_gap_us_(1e6 / rate_per_second),
      until_(until),
      rng_(seed),
      on_arrival_(std::move(on_arrival)) {
  assert(sim != nullptr);
  assert(rate_per_second > 0);
  ScheduleNext();
}

void PoissonArrivals::ScheduleNext() {
  const SimDuration gap = DurationFromMicros(rng_.NextExponential(mean_gap_us_));
  sim_->Schedule(gap, [this]() {
    if (sim_->Now() >= until_) {
      return;
    }
    ++arrivals_;
    on_arrival_();
    ScheduleNext();
  });
}

double ArrivalRateForUtilization(double utilization, int workers, SimDuration mean_service) {
  assert(utilization > 0);
  assert(workers > 0);
  assert(mean_service > 0);
  return utilization * workers / ToSeconds(mean_service);
}

}  // namespace rpcscope

#include "src/fleet/workload.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/checkpoint/checkpoint.h"

namespace rpcscope {

PoissonArrivals::PoissonArrivals(Simulator* sim, double rate_per_second, SimTime until,
                                 uint64_t seed, Arrival on_arrival)
    : sim_(sim),
      mean_gap_us_(1e6 / rate_per_second),
      until_(until),
      rng_(seed),
      on_arrival_(std::move(on_arrival)) {
  assert(sim != nullptr);
  assert(rate_per_second > 0);
  ScheduleNext();
}

void PoissonArrivals::ScheduleNext() {
  const SimDuration gap = DurationFromMicros(rng_.NextExponential(mean_gap_us_));
  sim_->Schedule(gap, [this]() {
    if (sim_->Now() >= until_) {
      return;
    }
    ++arrivals_;
    on_arrival_();
    ScheduleNext();
  });
}

EpochArrivals::EpochArrivals(Simulator* sim, double rate_per_second, SimTime until, uint64_t seed,
                             Arrival on_arrival)
    : sim_(sim),
      mean_gap_us_(1e6 / rate_per_second),
      until_(until),
      rng_(seed),
      on_arrival_(std::move(on_arrival)) {
  assert(sim != nullptr);
  assert(rate_per_second > 0);
}

void EpochArrivals::ArmEpoch(SimTime epoch_end) {
  if (epoch_end <= epoch_end_) {
    return;
  }
  epoch_end_ = epoch_end;
  if (!started_) {
    // Lazy first draw: same first gap PoissonArrivals draws in its
    // constructor (first draw of the same seeded stream, from time 0).
    started_ = true;
    next_time_ = sim_->Now() + DurationFromMicros(rng_.NextExponential(mean_gap_us_));
  }
  ScheduleParked();
}

void EpochArrivals::ScheduleParked() {
  if (!started_ || next_time_ >= epoch_end_) {
    return;  // Parked (or never armed); the next ArmEpoch picks it up.
  }
  // max() clamp: on a resumed run the shard clock can already sit past the
  // parked time (epoch-k cascades run past the boundary before draining).
  // The uninterrupted cadenced run clamps identically at its own ArmEpoch,
  // so the event stream stays bit-for-bit equal.
  sim_->ScheduleAt(std::max(next_time_, sim_->Now()), [this]() {
    if (sim_->Now() >= until_) {
      next_time_ = kMaxSimTime;  // Exhausted: never re-armed.
      return;
    }
    ++arrivals_;
    on_arrival_();
    next_time_ = sim_->Now() + DurationFromMicros(rng_.NextExponential(mean_gap_us_));
    ScheduleParked();
  });
}

void EpochArrivals::WriteTo(CheckpointWriter& w) const {
  w.BeginSection("arrivals");
  w.WriteDouble(mean_gap_us_);
  w.WriteI64(until_);
  WriteRngState(w, rng_);
  w.WriteI64(arrivals_);
  w.WriteBool(started_);
  w.WriteI64(next_time_);
  w.WriteI64(epoch_end_);
  w.EndSection();
}

Status EpochArrivals::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("arrivals"); !s.ok()) {
    return s;
  }
  const double mean_gap_us = r.ReadDouble();
  const SimTime until = r.ReadI64();
  Rng rng(0);
  ReadRngState(r, rng);
  const int64_t arrivals = r.ReadI64();
  const bool started = r.ReadBool();
  const SimTime next_time = r.ReadI64();
  const SimTime epoch_end = r.ReadI64();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (mean_gap_us != mean_gap_us_ || until != until_) {
    return FailedPreconditionError("arrivals: checkpoint is for a different arrival process");
  }
  rng_ = rng;
  arrivals_ = arrivals;
  started_ = started;
  next_time_ = next_time;
  epoch_end_ = epoch_end;
  return Status::Ok();
}

double ArrivalRateForUtilization(double utilization, int workers, SimDuration mean_service) {
  assert(utilization > 0);
  assert(workers > 0);
  assert(mean_service > 0);
  return utilization * workers / ToSeconds(mean_service);
}

}  // namespace rpcscope

#include "src/fleet/mini_fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/fault/injector.h"
#include "src/fleet/workload.h"

namespace rpcscope {

namespace {

constexpr MethodId kServe = 1;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

// One deployed service: a couple of replicas plus a co-located client for
// issuing child RPCs from handlers. All replicas live in one cluster, so a
// deployment belongs to exactly one shard domain and its client and RNG are
// only ever touched from that domain. CheckpointTo/RestoreFrom cover the mutable
// run state (handler RNG stream, server and client progress); the placement
// (service id, machine list) is configuration, written only for validation.
// RPCSCOPE_CHECKPOINTED(MiniFleetDeployment::CheckpointTo, MiniFleetDeployment::RestoreFrom)
struct MiniFleetDeployment {
  int32_t service_id = -1;
  std::vector<MachineId> machines;
  std::vector<std::unique_ptr<Server>> servers;
  std::shared_ptr<Client> client;  // Bound to machines[0].
  Rng rng{0};

  MachineId Pick(Rng& chooser) const { return machines[chooser.NextBounded(machines.size())]; }

  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);
};

Status MiniFleetDeployment::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("deployment");
  w.WriteU32(static_cast<uint32_t>(service_id));
  w.WriteU32(static_cast<uint32_t>(machines.size()));
  for (const MachineId m : machines) {
    w.WriteI64(m);
  }
  WriteRngState(w, rng);
  w.EndSection();
  for (const auto& server : servers) {
    if (Status s = server->CheckpointTo(w); !s.ok()) {
      return s;
    }
  }
  return client->CheckpointTo(w);
}

Status MiniFleetDeployment::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("deployment"); !s.ok()) {
    return s;
  }
  const uint32_t saved_service = r.ReadU32();
  const uint32_t saved_machine_count = r.ReadU32();
  std::vector<MachineId> saved_machines;
  // Bounded by the section payload: the sticky reader zero-fills past it.
  for (uint32_t i = 0; i < saved_machine_count && r.status().ok(); ++i) {
    saved_machines.push_back(r.ReadI64());
  }
  Rng saved_rng(0);
  ReadRngState(r, saved_rng);
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (saved_service != static_cast<uint32_t>(service_id) || saved_machines != machines) {
    return FailedPreconditionError("deployment: checkpoint is for a different placement");
  }
  rng = saved_rng;
  for (auto& server : servers) {
    if (Status s = server->RestoreFrom(r); !s.ok()) {
      return s;
    }
  }
  return client->RestoreFrom(r);
}

// One frontend entry point: its client, replica-chooser stream, root-call
// tally, and epoch-gated arrival process. The target/byte-size wiring is
// configuration, written only for validation.
// RPCSCOPE_CHECKPOINTED(MiniFleetFrontend::CheckpointTo, MiniFleetFrontend::RestoreFrom)
struct MiniFleetFrontend {
  uint32_t index = 0;
  MiniFleetDeployment* target = nullptr;  // NOLINT(detan-checkpoint-field) structural
  int64_t request_bytes = 0;
  MachineId machine = -1;
  std::unique_ptr<Client> client;
  Rng chooser{0};
  uint64_t root_count = 0;
  std::unique_ptr<EpochArrivals> arrivals;

  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);
};

Status MiniFleetFrontend::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("frontend");
  w.WriteU32(index);
  w.WriteI64(request_bytes);
  w.WriteI64(machine);
  WriteRngState(w, chooser);
  w.WriteU64(root_count);
  w.EndSection();
  if (Status s = client->CheckpointTo(w); !s.ok()) {
    return s;
  }
  arrivals->WriteTo(w);
  return Status::Ok();
}

Status MiniFleetFrontend::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("frontend"); !s.ok()) {
    return s;
  }
  const uint32_t saved_index = r.ReadU32();
  const int64_t saved_bytes = r.ReadI64();
  const MachineId saved_machine = r.ReadI64();
  Rng saved_chooser(0);
  ReadRngState(r, saved_chooser);
  const uint64_t saved_root_count = r.ReadU64();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (saved_index != index || saved_bytes != request_bytes || saved_machine != machine) {
    return FailedPreconditionError("frontend: checkpoint is for a different entry point");
  }
  chooser = saved_chooser;
  root_count = saved_root_count;
  if (Status s = client->RestoreFrom(r); !s.ok()) {
    return s;
  }
  return arrivals->RestoreFrom(r);
}

namespace {

RpcSystemOptions MakeSystemOptions(const MiniFleetOptions& options) {
  RpcSystemOptions sys_opts;
  sys_opts.seed = options.seed;
  sys_opts.sim_queue = options.sim_queue;
  sys_opts.num_shards = options.num_shards;
  sys_opts.fabric.congestion_probability = 0.01;
  sys_opts.observability = options.observability;
  sys_opts.policy = options.policy;
  return sys_opts;
}

}  // namespace

MiniFleet::MiniFleet(const ServiceCatalog& catalog, const MiniFleetOptions& options)
    : options_(options), system_(MakeSystemOptions(options)) {
  if (system_.hub() != nullptr && options_.window_tap) {
    system_.hub()->SetWindowCloseTap(options_.window_tap);
  }
  BuildGraph(catalog);
  if (options_.fault_plan != nullptr) {
    injector_ = std::make_unique<FaultInjector>(&system_, *options_.fault_plan);
  }
}

MiniFleet::~MiniFleet() = default;

void MiniFleet::ChildCall(MiniFleetDeployment& caller, MiniFleetDeployment& target,
                          const std::shared_ptr<ServerCall>& parent, int64_t request_bytes,
                          CallCallback done) {
  CallOptions opts = parent->ChildOptions();
  opts.service_id = target.service_id;
  const MachineId machine = target.Pick(caller.rng);
  caller.client->Call(machine, kServe, Payload::Modeled(request_bytes), opts, std::move(done));
}

void MiniFleet::BuildGraph(const ServiceCatalog& catalog) {
  const Topology& topo = system_.topology();
  const StudiedServices& ids = catalog.studied();

  // Placement. Single-domain runs keep the legacy layout (everything packed
  // into cluster 0, frontends in cluster 1) so existing fingerprints hold
  // bit-for-bit. Sharded runs give each service its own cluster, dealt
  // round-robin across the contiguous shard blocks (RpcSystem::ShardOfCluster)
  // so every shard hosts part of the graph and the Table-1 dependency edges
  // exercise the cross-shard fabric path.
  const bool spread = system_.num_shards() > 1;
  Rng placement(options_.seed ^ 0x111);
  int next_machine = 0;
  int next_group = 0;
  auto first_cluster_of_shard = [&](int s) {
    // Smallest c with ShardOfCluster(c) == s under the block partition
    // floor(c * N / C): c = ceil(s * C / N).
    return static_cast<ClusterId>(
        (static_cast<int64_t>(s) * topo.num_clusters() + system_.num_shards() - 1) /
        system_.num_shards());
  };
  auto spread_cluster = [&]() {
    const int g = next_group++;
    const int s = g % system_.num_shards();
    const ClusterId first = first_cluster_of_shard(s);
    const ClusterId limit = first_cluster_of_shard(s + 1);
    const int block = static_cast<int>(limit - first);
    return first + static_cast<ClusterId>((g / system_.num_shards()) % block);
  };
  auto deploy = [&](int32_t service_id, int replicas, int app_workers) {
    auto d = std::make_unique<MiniFleetDeployment>();
    d->service_id = service_id;
    d->rng = placement.Fork(static_cast<uint64_t>(service_id));
    ServerOptions server_opts;
    server_opts.app_workers = app_workers;
    const ClusterId cluster = spread ? spread_cluster() : 0;
    for (int r = 0; r < replicas; ++r) {
      const MachineId m = spread ? topo.MachineAt(cluster, r) : topo.MachineAt(0, next_machine++);
      d->machines.push_back(m);
      d->servers.push_back(std::make_unique<Server>(&system_, m, server_opts));
    }
    d->client = std::make_shared<Client>(&system_, d->machines[0]);
    deployments_.push_back(std::move(d));
    return deployments_.back().get();
  };

  // --- Deploy the Table-1 services bottom-up. The order fixes both the RNG
  // placement draws (legacy parity) and the per-shard checkpoint layout.
  MiniFleetDeployment* network_disk = deploy(ids.network_disk, 3, 8);
  MiniFleetDeployment* bigtable = deploy(ids.bigtable, 2, 8);
  MiniFleetDeployment* kv_store = deploy(ids.kv_store, 2, 8);
  MiniFleetDeployment* ssd_cache = deploy(ids.ssd_cache, 2, 4);
  MiniFleetDeployment* bigquery = deploy(ids.bigquery, 2, 8);
  MiniFleetDeployment* video_metadata = deploy(ids.video_metadata, 2, 4);
  MiniFleetDeployment* spanner = deploy(ids.spanner, 2, 8);
  MiniFleetDeployment* f1 = deploy(ids.f1, 2, 8);
  MiniFleetDeployment* ml = deploy(ids.ml_inference, 2, 8);

  // --- Handlers wire the Table-1 dependency edges. They capture only stable
  // MiniFleetDeployment pointers (owned by deployments_) and call the static
  // ChildCall — no reference to any stack-local survives construction.
  // Network Disk: leaf SSD read, 32 KB responses.
  for (auto& server : network_disk->servers) {
    server->RegisterMethod(kServe, "NetworkDisk/Read",
                           [d = network_disk](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng.NextLognormal(std::log(900.0), 0.6);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(32 * 1024, 1.0));
                             });
                           });
  }
  // Bigtable: tablet lookup; ~45% of lookups miss the memtable and read disk.
  for (auto& server : bigtable->servers) {
    server->RegisterMethod(
        kServe, "Bigtable/Search",
        [d = bigtable, nd = network_disk](std::shared_ptr<ServerCall> call) {
          const double us = d->rng.NextLognormal(std::log(350.0), 0.6);
          call->Compute(DurationFromMicros(us), [d, nd, call]() {
            if (d->rng.NextBool(0.45)) {
              ChildCall(*d, *nd, call, 512, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(2048));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(2048));
            }
          });
        });
  }
  // KV-Store: in-memory with a ~20% backing-store miss to Bigtable.
  for (auto& server : kv_store->servers) {
    server->RegisterMethod(
        kServe, "KVStore/Search",
        [d = kv_store, bt = bigtable](std::shared_ptr<ServerCall> call) {
          const double us = d->rng.NextLognormal(std::log(25.0), 0.4);
          call->Compute(DurationFromMicros(us), [d, bt, call]() {
            if (d->rng.NextBool(0.20)) {
              ChildCall(*d, *bt, call, 1024, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(512));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(512));
            }
          });
        });
  }
  // SSD cache: leaf streaming-data lookup.
  for (auto& server : ssd_cache->servers) {
    server->RegisterMethod(kServe, "SSDCache/Lookup",
                           [d = ssd_cache](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng.NextLognormal(std::log(260.0), 0.55);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(1024));
                             });
                           });
  }
  // BigQuery: partition/aggregate — 4 parallel SSD-cache lookups + compute.
  for (auto& server : bigquery->servers) {
    server->RegisterMethod(
        kServe, "BigQuery/Query",
        [d = bigquery, sc = ssd_cache](std::shared_ptr<ServerCall> call) {
          auto pending = std::make_shared<int>(4);
          for (int i = 0; i < 4; ++i) {
            ChildCall(*d, *sc, call, 400, [d, call, pending](const CallResult&, Payload) {
              if (--*pending == 0) {
                const double us = d->rng.NextLognormal(std::log(2000.0), 1.0);
                call->Compute(DurationFromMicros(us), [call]() {
                  call->Finish(Status::Ok(), Payload::Modeled(64 * 1024));
                });
              }
            });
          }
        });
  }
  // Video Metadata: leaf.
  for (auto& server : video_metadata->servers) {
    server->RegisterMethod(kServe, "VideoMetadata/Get",
                           [d = video_metadata](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng.NextLognormal(std::log(120.0), 0.6);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(4096));
                             });
                           });
  }
  // Spanner: row read, occasionally consulting Bigtable-backed storage.
  for (auto& server : spanner->servers) {
    server->RegisterMethod(
        kServe, "Spanner/Read",
        [d = spanner, nd = network_disk](std::shared_ptr<ServerCall> call) {
          const double us = d->rng.NextLognormal(std::log(380.0), 0.8);
          call->Compute(DurationFromMicros(us), [d, nd, call]() {
            if (d->rng.NextBool(0.3)) {
              ChildCall(*d, *nd, call, 800, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(4096));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(4096));
            }
          });
        });
  }
  // F1: "Process data packet" — F1 calls F1 (Table 1's client for F1 is F1).
  for (auto& server : f1->servers) {
    server->RegisterMethod(
        kServe, "F1/Process",
        [d = f1, sp = spanner](std::shared_ptr<ServerCall> call) {
          const double us = d->rng.NextLognormal(std::log(700.0), 1.2);
          call->Compute(DurationFromMicros(us), [d, sp, call]() {
            if (d->rng.NextBool(0.5)) {
              ChildCall(*d, *sp, call, 800, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(8192));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(8192));
            }
          });
        });
  }
  // ML Inference: compute-bound leaf.
  for (auto& server : ml->servers) {
    server->RegisterMethod(kServe, "ML/Infer",
                           [d = ml](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng.NextLognormal(std::log(1800.0), 0.8);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(2048));
                             });
                           });
  }

  // --- Frontends: each entry point drives its Table-1 server. Arrival chains
  // stay unscheduled until the first ArmEpoch; EpochArrivals draws the exact
  // stream PoissonArrivals used to, so legacy fingerprints hold.
  struct FrontendSpec {
    MiniFleetDeployment* target;
    int64_t request_bytes;
  };
  const std::vector<FrontendSpec> specs = {
      {kv_store, 128},              // Recommendation service -> KV-Store.
      {bigquery, 2048},             // Analyst queries -> BigQuery.
      {video_metadata, 32 * 1024},  // Video Search -> Video Metadata.
      {f1, 75},                     // F1 -> F1.
      {ml, 512},                    // ML Client -> ML Inference.
      {spanner, 800},               // Network information service -> Spanner.
  };
  Rng workload(options_.seed ^ 0x222);
  frontends_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    // Sharded runs also spread the frontends, one cluster each, continuing
    // the round-robin over shard blocks; the arrival process is scheduled on
    // the frontend's own shard simulator. Each arrival callback runs in its
    // own frontend's shard domain, so the per-frontend root_count tally is
    // never a cross-domain write; Collect sums them.
    auto fe = std::make_unique<MiniFleetFrontend>();
    fe->index = static_cast<uint32_t>(i);
    fe->target = specs[i].target;
    fe->request_bytes = specs[i].request_bytes;
    // Colocated demo wiring puts the frontend on its target's first replica
    // so root calls that pick that machine qualify for the bypass.
    fe->machine = options_.colocate_frontends ? specs[i].target->machines[0]
                  : spread                    ? topo.MachineAt(spread_cluster(), 0)
                                              : topo.MachineAt(1, static_cast<int>(i));
    ClientOptions fe_client_opts;
    fe_client_opts.colocated_bypass = options_.colocate_frontends;
    fe->client = std::make_unique<Client>(&system_, fe->machine, fe_client_opts);
    fe->chooser = workload.Fork(i);
    MiniFleetFrontend* slot = fe.get();
    fe->arrivals = std::make_unique<EpochArrivals>(
        &system_.ShardFor(fe->machine).sim(), options_.frontend_rps, options_.duration,
        workload.NextUint64(), [slot]() {
          ++slot->root_count;
          CallOptions opts;
          opts.service_id = slot->target->service_id;
          slot->client->Call(slot->target->Pick(slot->chooser), kServe,
                             Payload::Modeled(slot->request_bytes), opts,
                             [](const CallResult&, Payload) {});
        });
    frontends_.push_back(std::move(fe));
  }
}

Status MiniFleet::ArmThrough(SimTime epoch_end) {
  // Frontends first, injector second — a fixed order, so the per-shard event
  // seq numbering is identical whether this epoch is reached by running
  // through or by restoring a checkpoint.
  for (auto& fe : frontends_) {
    fe->arrivals->ArmEpoch(epoch_end);
  }
  if (injector_ != nullptr) {
    return injector_->ArmThrough(epoch_end);
  }
  return Status::Ok();
}

uint64_t MiniFleet::RunSegment(SimTime flush_watermark) {
  return system_.RunShardedSegment(options_.worker_threads, flush_watermark);
}

Status MiniFleet::ResyncAt(SimTime barrier) { return system_.ResyncShards(barrier); }

MiniFleetResult MiniFleet::Collect() {
  MiniFleetResult result;
  for (const auto& fe : frontends_) {
    result.root_calls += fe->root_count;
  }
  if (system_.num_shards() > 1) {
    result.events_executed = system_.TotalEventsExecuted();
    result.event_digest = system_.ShardedEventDigest();
    result.rounds = system_.last_rounds();
    result.cross_domain_events = system_.last_cross_domain_events();
    const std::vector<Span> merged = system_.MergedSpans();
    result.spans.reserve(merged.size());
    for (const Span& span : merged) {
      if (span.start_time >= options_.warmup) {
        result.spans.push_back(span);
        ++result.spans_per_service[span.service_id];
      }
    }
  } else {
    result.events_executed = system_.sim().events_executed();
    result.event_digest = system_.sim().event_digest();
    // The executor's single-domain fast path reports one round, so per-round
    // derived stats stay meaningful across shard counts.
    result.rounds = system_.last_rounds();
    result.cross_domain_events = system_.last_cross_domain_events();
    result.spans.reserve(system_.tracer().spans().size());
    for (const Span& span : system_.tracer().spans()) {
      if (span.start_time >= options_.warmup) {
        result.spans.push_back(span);
        ++result.spans_per_service[span.service_id];
      }
    }
  }

  result.policy_version = system_.shard(0).policy.version();
  result.policy_stages_applied = system_.shard(0).policy.stages_applied();
  for (int s = 0; s < system_.num_shards(); ++s) {
    MetricRegistry& metrics = system_.shard(s).metrics;
    result.colocated_calls +=
        static_cast<uint64_t>(metrics.GetCounter("client.colocated_calls").value());
    result.paid_tax_cycles += metrics.GetCounter("client.tax_cycles").value();
    result.avoided_tax_cycles += metrics.GetCounter("client.avoided_tax_cycles").value();
  }

  if (const ObservabilityHub* hub = system_.hub(); hub != nullptr) {
    result.streamed_aggregate_digest = hub->AggregateDigest();
    result.exemplar_digest = hub->ExemplarDigest();
    result.spans_streamed = hub->spans_ingested();
    result.span_buffer_drops = hub->span_buffer_drops();
    result.reservoir_drops = hub->reservoir_drops();
    result.windows_closed = hub->windows_closed();
    result.late_window_updates = hub->late_window_updates();
    for (int s = 0; s < system_.num_shards(); ++s) {
      result.peak_buffered_spans = std::max(result.peak_buffered_spans,
                                            system_.shard(s).stream_sink->peak_buffered_spans());
    }
    // The reference aggregation: replay the canonical post-run merge through
    // a fresh hub. Equal aggregate digests prove the barrier-streamed
    // pipeline lost nothing and double-counted nothing.
    result.replayed_aggregate_digest =
        ReplayIntoHub(system_.MergedSpans(), options_.observability).AggregateDigest();
  }
  return result;
}

uint64_t MiniFleet::ConfigHash(SimDuration checkpoint_every) const {
  uint64_t h = 14695981039346656037ull;
  auto fold = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
    h = Mix64(h);
  };
  fold(options_.seed);
  fold(static_cast<uint64_t>(options_.duration));
  fold(static_cast<uint64_t>(options_.warmup));
  fold(DoubleBits(options_.frontend_rps));
  fold(static_cast<uint64_t>(options_.sim_queue));
  fold(static_cast<uint64_t>(options_.num_shards));
  const ObservabilityOptions& obs = options_.observability;
  fold(obs.streaming ? 1 : 0);
  fold(static_cast<uint64_t>(obs.window));
  fold(static_cast<uint64_t>(obs.max_windows));
  fold(static_cast<uint64_t>(obs.max_buffered_spans));
  fold(static_cast<uint64_t>(obs.reservoir_per_method));
  fold(obs.reservoir_seed);
  fold(DoubleBits(obs.latency_histogram.min_value));
  fold(DoubleBits(obs.latency_histogram.max_value));
  fold(static_cast<uint64_t>(obs.latency_histogram.buckets_per_decade));
  fold(static_cast<uint64_t>(checkpoint_every));
  // The policy plan and colocation wiring both change event streams: resuming
  // under a different rollout (or placement) must be rejected.
  fold(options_.policy.ContentHash());
  fold(options_.colocate_frontends ? 1 : 0);
  // Full fault-plan content: a resumed run must execute the same chaos.
  if (options_.fault_plan == nullptr) {
    fold(0);
  } else {
    const FaultPlan& plan = *options_.fault_plan;
    fold(1);
    fold(plan.crashes.size());
    for (const CrashFault& f : plan.crashes) {
      fold(static_cast<uint64_t>(f.machine));
      fold(static_cast<uint64_t>(f.at));
      fold(static_cast<uint64_t>(f.restart_at));
    }
    fold(plan.gray_slowdowns.size());
    for (const GraySlowFault& f : plan.gray_slowdowns) {
      fold(static_cast<uint64_t>(f.machine));
      fold(static_cast<uint64_t>(f.start));
      fold(static_cast<uint64_t>(f.end));
      fold(DoubleBits(f.factor));
    }
    fold(plan.partitions.size());
    for (const PartitionFault& f : plan.partitions) {
      fold(f.group_a.size());
      for (const MachineId m : f.group_a) {
        fold(static_cast<uint64_t>(m));
      }
      fold(f.group_b.size());
      for (const MachineId m : f.group_b) {
        fold(static_cast<uint64_t>(m));
      }
      fold(static_cast<uint64_t>(f.start));
      fold(static_cast<uint64_t>(f.end));
    }
    fold(plan.losses.size());
    for (const PacketLossFault& f : plan.losses) {
      fold(static_cast<uint64_t>(f.src));
      fold(static_cast<uint64_t>(f.dst));
      fold(f.bidirectional ? 1 : 0);
      fold(static_cast<uint64_t>(f.start));
      fold(static_cast<uint64_t>(f.end));
      fold(DoubleBits(f.loss_probability));
    }
  }
  return h;
}

namespace {

std::string ShardFileName(int s) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04d.ckpt", s);
  return name;
}

constexpr char kGlobalFileName[] = "global.ckpt";

}  // namespace

Status MiniFleet::WriteCheckpoint(const std::string& root, uint64_t epoch, uint64_t config_hash,
                                  int64_t sim_horizon, int keep) {
  CheckpointSet set(root, epoch);
  for (int s = 0; s < system_.num_shards(); ++s) {
    CheckpointWriter w;
    if (Status st = system_.SerializeShard(s, w); !st.ok()) {
      return st;
    }
    // Fleet-layer components pinned to this shard, in fixed build order.
    for (const auto& d : deployments_) {
      if (system_.ShardOf(d->machines[0]) == s) {
        if (Status st = d->CheckpointTo(w); !st.ok()) {
          return st;
        }
      }
    }
    for (const auto& fe : frontends_) {
      if (system_.ShardOf(fe->machine) == s) {
        if (Status st = fe->CheckpointTo(w); !st.ok()) {
          return st;
        }
      }
    }
    if (Status st = set.AddFile(ShardFileName(s), w); !st.ok()) {
      return st;
    }
  }
  CheckpointWriter g;
  if (Status st = system_.SerializeGlobal(g); !st.ok()) {
    return st;
  }
  g.BeginSection("fleet");
  g.WriteU32(static_cast<uint32_t>(deployments_.size()));
  g.WriteU32(static_cast<uint32_t>(frontends_.size()));
  g.WriteBool(injector_ != nullptr);
  g.EndSection();
  if (injector_ != nullptr) {
    if (Status st = injector_->CheckpointTo(g); !st.ok()) {
      return st;
    }
  }
  if (Status st = set.AddFile(kGlobalFileName, g); !st.ok()) {
    return st;
  }
  if (Status st = set.Commit(config_hash, sim_horizon,
                             static_cast<uint32_t>(system_.num_shards()));
      !st.ok()) {
    return st;
  }
  return ApplyRetention(root, keep);
}

Result<uint64_t> MiniFleet::RestoreCheckpoint(const std::string& ckpt_dir, uint64_t config_hash) {
  Result<CheckpointManifest> manifest = ValidateCheckpoint(ckpt_dir, config_hash);
  if (!manifest.ok()) {
    return manifest.status();
  }
  if (manifest->num_shards != static_cast<uint32_t>(system_.num_shards())) {
    return FailedPreconditionError("checkpoint shard count does not match this fleet");
  }
  for (int s = 0; s < system_.num_shards(); ++s) {
    Result<CheckpointReader> reader = CheckpointReader::FromFile(ckpt_dir + "/" + ShardFileName(s));
    if (!reader.ok()) {
      return reader.status();
    }
    if (Status st = system_.RestoreShard(s, *reader); !st.ok()) {
      return st;
    }
    for (auto& d : deployments_) {
      if (system_.ShardOf(d->machines[0]) == s) {
        if (Status st = d->RestoreFrom(*reader); !st.ok()) {
          return st;
        }
      }
    }
    for (auto& fe : frontends_) {
      if (system_.ShardOf(fe->machine) == s) {
        if (Status st = fe->RestoreFrom(*reader); !st.ok()) {
          return st;
        }
      }
    }
    if (Status st = reader->Complete(); !st.ok()) {
      return st;
    }
  }
  Result<CheckpointReader> global = CheckpointReader::FromFile(ckpt_dir + "/" + kGlobalFileName);
  if (!global.ok()) {
    return global.status();
  }
  if (Status st = system_.RestoreGlobal(*global); !st.ok()) {
    return st;
  }
  if (Status st = global->EnterSection("fleet"); !st.ok()) {
    return st;
  }
  const uint32_t saved_deployments = global->ReadU32();
  const uint32_t saved_frontends = global->ReadU32();
  const bool saved_injector = global->ReadBool();
  if (Status st = global->LeaveSection(); !st.ok()) {
    return st;
  }
  if (saved_deployments != deployments_.size() || saved_frontends != frontends_.size() ||
      saved_injector != (injector_ != nullptr)) {
    return FailedPreconditionError("checkpoint fleet shape does not match this fleet");
  }
  if (injector_ != nullptr) {
    if (Status st = injector_->RestoreFrom(*global); !st.ok()) {
      return st;
    }
  }
  if (Status st = global->Complete(); !st.ok()) {
    return st;
  }
  return manifest->epoch;
}

MiniFleetResult RunMiniFleet(const ServiceCatalog& catalog, const MiniFleetOptions& options) {
  MiniFleet fleet(catalog, options);
  const Status armed = fleet.ArmThrough(kMaxSimTime);
  RPCSCOPE_CHECK(armed.ok()) << "fault plan failed to arm: " << armed.message();
  fleet.RunSegment(kMaxSimTime);
  return fleet.Collect();
}

Result<MiniFleetResult> RunMiniFleetCheckpointed(const ServiceCatalog& catalog,
                                                 const MiniFleetOptions& options,
                                                 const CheckpointRunOptions& ckpt) {
  MiniFleet fleet(catalog, options);
  uint64_t num_epochs = 1;
  if (ckpt.every > 0) {
    num_epochs = static_cast<uint64_t>((options.duration + ckpt.every - 1) / ckpt.every);
    num_epochs = std::max<uint64_t>(num_epochs, 1);
  }
  const uint64_t config_hash = fleet.ConfigHash(ckpt.every);

  uint64_t start_epoch = 0;
  bool resumed = false;
  if (ckpt.resume && !ckpt.dir.empty()) {
    Result<std::string> newest = NewestValidCheckpoint(ckpt.dir, config_hash);
    if (newest.ok()) {
      Result<uint64_t> epoch = fleet.RestoreCheckpoint(*newest, config_hash);
      if (!epoch.ok()) {
        return epoch.status();
      }
      start_epoch = *epoch;
      resumed = true;
      RPCSCOPE_LOG(kInfo) << "resumed from " << *newest << " (epoch " << start_epoch << ")";
    } else if (newest.status().code() == StatusCode::kNotFound) {
      RPCSCOPE_LOG(kWarning) << "resume requested but no valid checkpoint under '" << ckpt.dir
                             << "'; starting fresh";
    } else {
      return newest.status();
    }
  }

  uint64_t checkpoints_written = 0;
  int epochs_run = 0;
  bool interrupted = false;
  for (uint64_t k = start_epoch; k < num_epochs; ++k) {
    const bool final_epoch = k + 1 == num_epochs;
    const SimTime end = final_epoch ? kMaxSimTime : static_cast<SimTime>(k + 1) * ckpt.every;
    if (Status s = fleet.ArmThrough(end); !s.ok()) {
      return s;
    }
    fleet.RunSegment(end);
    ++epochs_run;
    // Pull every shard clock back to the boundary before snapshotting (and
    // even when not snapshotting): the serialized clocks must match what a
    // resumed run reconstructs, and the next segment's arrivals start at the
    // boundary regardless of how far this segment's cascades ran past it.
    if (!final_epoch) {
      if (Status s = fleet.ResyncAt(end); !s.ok()) {
        return s;
      }
    }
    if (!final_epoch && !ckpt.dir.empty()) {
      if (Status s =
              fleet.WriteCheckpoint(ckpt.dir, k + 1, config_hash, options.duration, ckpt.keep);
          !s.ok()) {
        return s;
      }
      ++checkpoints_written;
    }
    if (!final_epoch && ckpt.stop_after_epochs > 0 && epochs_run >= ckpt.stop_after_epochs) {
      interrupted = true;
      break;
    }
  }

  MiniFleetResult result = fleet.Collect();
  result.interrupted = interrupted;
  result.resumed = resumed;
  result.resumed_epoch = start_epoch;
  result.checkpoints_written = checkpoints_written;
  return result;
}

}  // namespace rpcscope

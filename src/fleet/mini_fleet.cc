#include "src/fleet/mini_fleet.h"

#include <algorithm>
#include <cmath>

#include "src/fleet/workload.h"

namespace rpcscope {

namespace {

constexpr MethodId kServe = 1;

// One deployed service: a couple of replicas plus a co-located client for
// issuing child RPCs from handlers. All replicas live in one cluster, so a
// deployment belongs to exactly one shard domain and its client and RNG are
// only ever touched from that domain.
struct Deployment {
  int32_t service_id = -1;
  std::vector<MachineId> machines;
  std::vector<std::unique_ptr<Server>> servers;
  std::shared_ptr<Client> client;  // Bound to machines[0].
  std::shared_ptr<Rng> rng;

  MachineId Pick(Rng& chooser) const {
    return machines[chooser.NextBounded(machines.size())];
  }
};

}  // namespace

MiniFleetResult RunMiniFleet(const ServiceCatalog& catalog, const MiniFleetOptions& options) {
  RpcSystemOptions sys_opts;
  sys_opts.seed = options.seed;
  sys_opts.sim_queue = options.sim_queue;
  sys_opts.num_shards = options.num_shards;
  sys_opts.fabric.congestion_probability = 0.01;
  sys_opts.observability = options.observability;
  RpcSystem system(sys_opts);
  if (system.hub() != nullptr && options.window_tap) {
    system.hub()->SetWindowCloseTap(options.window_tap);
  }
  const Topology& topo = system.topology();
  const StudiedServices& ids = catalog.studied();

  // Placement. Single-domain runs keep the legacy layout (everything packed
  // into cluster 0, frontends in cluster 1) so existing fingerprints hold
  // bit-for-bit. Sharded runs give each service its own cluster, dealt
  // round-robin across the contiguous shard blocks (RpcSystem::ShardOfCluster)
  // so every shard hosts part of the graph and the Table-1 dependency edges
  // exercise the cross-shard fabric path.
  const bool spread = system.num_shards() > 1;
  Rng placement(options.seed ^ 0x111);
  int next_machine = 0;
  int next_group = 0;
  auto first_cluster_of_shard = [&](int s) {
    // Smallest c with ShardOfCluster(c) == s under the block partition
    // floor(c * N / C): c = ceil(s * C / N).
    return static_cast<ClusterId>(
        (static_cast<int64_t>(s) * topo.num_clusters() + system.num_shards() - 1) /
        system.num_shards());
  };
  auto spread_cluster = [&]() {
    const int g = next_group++;
    const int s = g % system.num_shards();
    const ClusterId first = first_cluster_of_shard(s);
    const ClusterId limit = first_cluster_of_shard(s + 1);
    const int block = static_cast<int>(limit - first);
    return first + static_cast<ClusterId>((g / system.num_shards()) % block);
  };
  auto deploy = [&](int32_t service_id, int replicas, int app_workers) {
    auto d = std::make_unique<Deployment>();
    d->service_id = service_id;
    d->rng = std::make_shared<Rng>(placement.Fork(static_cast<uint64_t>(service_id)));
    ServerOptions server_opts;
    server_opts.app_workers = app_workers;
    const ClusterId cluster = spread ? spread_cluster() : 0;
    for (int r = 0; r < replicas; ++r) {
      const MachineId m = spread ? topo.MachineAt(cluster, r) : topo.MachineAt(0, next_machine++);
      d->machines.push_back(m);
      d->servers.push_back(std::make_unique<Server>(&system, m, server_opts));
    }
    d->client = std::make_shared<Client>(&system, d->machines[0]);
    return d;
  };

  // --- Deploy the Table-1 services bottom-up.
  auto network_disk = deploy(ids.network_disk, 3, 8);
  auto bigtable = deploy(ids.bigtable, 2, 8);
  auto kv_store = deploy(ids.kv_store, 2, 8);
  auto ssd_cache = deploy(ids.ssd_cache, 2, 4);
  auto bigquery = deploy(ids.bigquery, 2, 8);
  auto video_metadata = deploy(ids.video_metadata, 2, 4);
  auto spanner = deploy(ids.spanner, 2, 8);
  auto f1 = deploy(ids.f1, 2, 8);
  auto ml = deploy(ids.ml_inference, 2, 8);

  // Helper: issue a child call linked to the parent span, inheriting the
  // parent's remaining deadline (ChildOptions fills trace linkage and
  // parent_deadline_time). The call is owned by the *calling* deployment —
  // its client issues it and its RNG picks the replica — because the handler
  // executes in the caller's shard domain and must not touch target-shard
  // state directly; the fabric is the only cross-shard edge.
  auto child_call = [](Deployment& caller, Deployment& target,
                       std::shared_ptr<ServerCall> parent, int64_t request_bytes,
                       CallCallback done) {
    CallOptions opts = parent->ChildOptions();
    opts.service_id = target.service_id;
    const MachineId machine = target.Pick(*caller.rng);
    caller.client->Call(machine, kServe, Payload::Modeled(request_bytes), opts,
                        std::move(done));
  };

  // --- Handlers wire the Table-1 dependency edges.
  // Network Disk: leaf SSD read, 32 KB responses.
  for (auto& server : network_disk->servers) {
    server->RegisterMethod(kServe, "NetworkDisk/Read",
                           [d = network_disk.get()](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng->NextLognormal(std::log(900.0), 0.6);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(32 * 1024, 1.0));
                             });
                           });
  }
  // Bigtable: tablet lookup; ~45% of lookups miss the memtable and read disk.
  for (auto& server : bigtable->servers) {
    server->RegisterMethod(
        kServe, "Bigtable/Search",
        [d = bigtable.get(), nd = network_disk.get(),
         &child_call](std::shared_ptr<ServerCall> call) {
          const double us = d->rng->NextLognormal(std::log(350.0), 0.6);
          call->Compute(DurationFromMicros(us), [d, nd, &child_call, call]() {
            if (d->rng->NextBool(0.45)) {
              child_call(*d, *nd, call, 512, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(2048));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(2048));
            }
          });
        });
  }
  // KV-Store: in-memory with a ~20% backing-store miss to Bigtable.
  for (auto& server : kv_store->servers) {
    server->RegisterMethod(
        kServe, "KVStore/Search",
        [d = kv_store.get(), bt = bigtable.get(),
         &child_call](std::shared_ptr<ServerCall> call) {
          const double us = d->rng->NextLognormal(std::log(25.0), 0.4);
          call->Compute(DurationFromMicros(us), [d, bt, &child_call, call]() {
            if (d->rng->NextBool(0.20)) {
              child_call(*d, *bt, call, 1024, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(512));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(512));
            }
          });
        });
  }
  // SSD cache: leaf streaming-data lookup.
  for (auto& server : ssd_cache->servers) {
    server->RegisterMethod(kServe, "SSDCache/Lookup",
                           [d = ssd_cache.get()](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng->NextLognormal(std::log(260.0), 0.55);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(1024));
                             });
                           });
  }
  // BigQuery: partition/aggregate — 4 parallel SSD-cache lookups + compute.
  for (auto& server : bigquery->servers) {
    server->RegisterMethod(
        kServe, "BigQuery/Query",
        [d = bigquery.get(), sc = ssd_cache.get(),
         &child_call](std::shared_ptr<ServerCall> call) {
          auto pending = std::make_shared<int>(4);
          for (int i = 0; i < 4; ++i) {
            child_call(*d, *sc, call, 400, [d, call, pending](const CallResult&, Payload) {
              if (--*pending == 0) {
                const double us = d->rng->NextLognormal(std::log(2000.0), 1.0);
                call->Compute(DurationFromMicros(us), [call]() {
                  call->Finish(Status::Ok(), Payload::Modeled(64 * 1024));
                });
              }
            });
          }
        });
  }
  // Video Metadata: leaf.
  for (auto& server : video_metadata->servers) {
    server->RegisterMethod(kServe, "VideoMetadata/Get",
                           [d = video_metadata.get()](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng->NextLognormal(std::log(120.0), 0.6);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(4096));
                             });
                           });
  }
  // Spanner: row read, occasionally consulting Bigtable-backed storage.
  for (auto& server : spanner->servers) {
    server->RegisterMethod(
        kServe, "Spanner/Read",
        [d = spanner.get(), nd = network_disk.get(),
         &child_call](std::shared_ptr<ServerCall> call) {
          const double us = d->rng->NextLognormal(std::log(380.0), 0.8);
          call->Compute(DurationFromMicros(us), [d, nd, &child_call, call]() {
            if (d->rng->NextBool(0.3)) {
              child_call(*d, *nd, call, 800, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(4096));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(4096));
            }
          });
        });
  }
  // F1: "Process data packet" — F1 calls F1 (Table 1's client for F1 is F1).
  for (auto& server : f1->servers) {
    server->RegisterMethod(
        kServe, "F1/Process",
        [d = f1.get(), sp = spanner.get(), &child_call](std::shared_ptr<ServerCall> call) {
          const double us = d->rng->NextLognormal(std::log(700.0), 1.2);
          call->Compute(DurationFromMicros(us), [d, sp, &child_call, call]() {
            if (d->rng->NextBool(0.5)) {
              child_call(*d, *sp, call, 800, [call](const CallResult&, Payload) {
                call->Finish(Status::Ok(), Payload::Modeled(8192));
              });
            } else {
              call->Finish(Status::Ok(), Payload::Modeled(8192));
            }
          });
        });
  }
  // ML Inference: compute-bound leaf.
  for (auto& server : ml->servers) {
    server->RegisterMethod(kServe, "ML/Infer",
                           [d = ml.get()](std::shared_ptr<ServerCall> call) {
                             const double us = d->rng->NextLognormal(std::log(1800.0), 0.8);
                             call->Compute(DurationFromMicros(us), [call]() {
                               call->Finish(Status::Ok(), Payload::Modeled(2048));
                             });
                           });
  }

  // --- Frontends: each entry point drives its Table-1 server.
  struct Frontend {
    Deployment* target;
    int64_t request_bytes;
  };
  std::vector<Frontend> frontends = {
      {kv_store.get(), 128},        // Recommendation service -> KV-Store.
      {bigquery.get(), 2048},       // Analyst queries -> BigQuery.
      {video_metadata.get(), 32 * 1024},  // Video Search -> Video Metadata.
      {f1.get(), 75},               // F1 -> F1.
      {ml.get(), 512},              // ML Client -> ML Inference.
      {spanner.get(), 800},         // Network information service -> Spanner.
  };
  std::vector<std::unique_ptr<Client>> frontend_clients;
  std::vector<std::unique_ptr<PoissonArrivals>> arrivals;
  frontend_clients.reserve(frontends.size());
  arrivals.reserve(frontends.size());
  Rng workload(options.seed ^ 0x222);
  // One counter slot per frontend: each arrival callback runs in its own
  // frontend's shard domain, so a shared counter would be a cross-domain
  // write under sharding. Summed after the run.
  std::vector<uint64_t> root_counts(frontends.size(), 0);
  for (size_t i = 0; i < frontends.size(); ++i) {
    // Sharded runs also spread the frontends, one cluster each, continuing
    // the round-robin over shard blocks; the arrival process is scheduled on
    // the frontend's own shard simulator.
    const MachineId fe_machine = spread ? topo.MachineAt(spread_cluster(), 0)
                                        : topo.MachineAt(1, static_cast<int>(i));
    frontend_clients.push_back(std::make_unique<Client>(&system, fe_machine));
    Client* client = frontend_clients.back().get();
    Frontend& fe = frontends[i];
    auto chooser = std::make_shared<Rng>(workload.Fork(i));
    uint64_t* root_count = &root_counts[i];
    arrivals.push_back(std::make_unique<PoissonArrivals>(
        &system.ShardFor(fe_machine).sim(), options.frontend_rps, options.duration,
        workload.NextUint64(), [client, &fe, chooser, root_count]() {
          ++*root_count;
          CallOptions opts;
          opts.service_id = fe.target->service_id;
          client->Call(fe.target->Pick(*chooser), kServe,
                       Payload::Modeled(fe.request_bytes), opts,
                       [](const CallResult&, Payload) {});
        }));
  }

  // RunSharded drives all configurations: with num_shards == 1 it is exactly
  // the legacy sim().Run() (same event stream bit-for-bit), and in every case
  // it performs the final observability flush.
  system.RunSharded(options.worker_threads);

  MiniFleetResult result;
  for (uint64_t count : root_counts) {
    result.root_calls += count;
  }
  if (system.num_shards() > 1) {
    result.events_executed = system.TotalEventsExecuted();
    result.event_digest = system.ShardedEventDigest();
    result.rounds = system.last_rounds();
    result.cross_domain_events = system.last_cross_domain_events();
    const std::vector<Span> merged = system.MergedSpans();
    result.spans.reserve(merged.size());
    for (const Span& span : merged) {
      if (span.start_time >= options.warmup) {
        result.spans.push_back(span);
        ++result.spans_per_service[span.service_id];
      }
    }
  } else {
    result.events_executed = system.sim().events_executed();
    result.event_digest = system.sim().event_digest();
    // The executor's single-domain fast path reports one round, so per-round
    // derived stats stay meaningful across shard counts.
    result.rounds = system.last_rounds();
    result.cross_domain_events = system.last_cross_domain_events();
    result.spans.reserve(system.tracer().spans().size());
    for (const Span& span : system.tracer().spans()) {
      if (span.start_time >= options.warmup) {
        result.spans.push_back(span);
        ++result.spans_per_service[span.service_id];
      }
    }
  }

  if (const ObservabilityHub* hub = system.hub(); hub != nullptr) {
    result.streamed_aggregate_digest = hub->AggregateDigest();
    result.exemplar_digest = hub->ExemplarDigest();
    result.spans_streamed = hub->spans_ingested();
    result.span_buffer_drops = hub->span_buffer_drops();
    result.reservoir_drops = hub->reservoir_drops();
    result.windows_closed = hub->windows_closed();
    result.late_window_updates = hub->late_window_updates();
    for (int s = 0; s < system.num_shards(); ++s) {
      result.peak_buffered_spans =
          std::max(result.peak_buffered_spans, system.shard(s).stream_sink->peak_buffered_spans());
    }
    // The reference aggregation: replay the canonical post-run merge through
    // a fresh hub. Equal aggregate digests prove the barrier-streamed
    // pipeline lost nothing and double-counted nothing.
    result.replayed_aggregate_digest =
        ReplayIntoHub(system.MergedSpans(), options.observability).AggregateDigest();
  }
  return result;
}

}  // namespace rpcscope

// ClusterStateModel: exogenous per-cluster system state (§3.3.4, Table 2).
//
// Four observable variables — CPU utilization, memory bandwidth, long-wakeup
// rate, and cycles-per-instruction — evolve per cluster with a diurnal cycle
// plus cluster-specific baselines. The same state maps onto the two knobs the
// DES servers expose (application slowdown and scheduler wake-up latency), so
// the correlation the paper measures between exogenous variables and RPC
// latency (Figs. 17, 18) arises mechanically rather than by construction.
#ifndef RPCSCOPE_SRC_FLEET_CLUSTER_STATE_H_
#define RPCSCOPE_SRC_FLEET_CLUSTER_STATE_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/net/topology.h"

namespace rpcscope {

struct ExogenousState {
  double cpu_util = 0.4;          // Fraction in [0, 1].
  double memory_bw_gbps = 50;     // GB/s consumed.
  double long_wakeup_rate = 0.004;  // Fraction of scheduling events > 50 us.
  double cycles_per_instr = 1.0;
};

struct ClusterStateOptions {
  uint64_t seed = 31337;
  double diurnal_amplitude = 0.18;  // CPU-util swing over a day.
  double noise_sigma = 0.03;
};

class ClusterStateModel {
 public:
  explicit ClusterStateModel(const ClusterStateOptions& options) : options_(options) {}

  // State of a cluster at a virtual time (deterministic).
  ExogenousState StateAt(ClusterId cluster, SimTime time) const;

  // Knob mappings used by the DES studies.
  // Application slowdown factor (>= 1): contention inflates compute time.
  static double AppSlowdown(const ExogenousState& state);
  // Mean scheduler wake-up latency added before a handler starts.
  static SimDuration WakeupLatency(const ExogenousState& state);

 private:
  ClusterStateOptions options_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_CLUSTER_STATE_H_

// FleetSampler: the model-driven path that emits Dapper-style spans at fleet
// scale.
//
// The real study consumed ~722 billion sampled traces; our equivalent draws
// per-RPC component latencies, sizes, cycles, and statuses from each method's
// generative model (MethodCatalog) and materializes them as the same Span
// records the DES stack produces. All fleet-wide per-method figures
// (Figs. 2, 3, 6, 7, 8, 10–13, 21, 23) are computed from these spans.
#ifndef RPCSCOPE_SRC_FLEET_FLEET_SAMPLER_H_
#define RPCSCOPE_SRC_FLEET_FLEET_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/fleet/method_catalog.h"
#include "src/fleet/service_catalog.h"
#include "src/net/topology.h"
#include "src/rpc/cost_model.h"
#include "src/trace/span.h"

namespace rpcscope {

// A sampled RPC: the span plus its cycle breakdown (the span only carries the
// scalar normalized total; profiling wants the full split).
struct SampledRpc {
  Span span;
  CycleBreakdown cycles;
  double machine_speed = 1.0;
};

struct FleetSamplerOptions {
  uint64_t seed = 7;
  double cpu_annotation_probability = 0.5;
  double machine_speed_spread = 0.15;
  // Wall-time per stack cycle exceeds pure execution (cache misses, context
  // switches); proc+stack *latency* is cycles-derived time times this factor,
  // while the *cycle* accounting stays at the raw cost-model value.
  double proc_time_multiplier = 6.0;
};

class FleetSampler {
 public:
  FleetSampler(const ServiceCatalog* services, const MethodCatalog* methods,
               const Topology* topology, const CycleCostModel* costs,
               const FleetSamplerOptions& options);

  // Samples one RPC of a popularity-weighted random method.
  SampledRpc Sample();

  // Samples one RPC of the given method.
  SampledRpc SampleMethod(int32_t method_id);

  // Convenience: n popularity-weighted spans.
  std::vector<SampledRpc> SampleMany(int64_t n);

  // Effective compression ratio the model assumes for a method's payloads.
  static double AssumedCompressionRatio(const MethodModel& m);

  Rng& rng() { return rng_; }

 private:
  // Picks a server cluster at the drawn distance class from the client.
  ClusterId PickServerCluster(ClusterId client, DistanceClass dc);

  const ServiceCatalog* services_;
  const MethodCatalog* methods_;
  const Topology* topology_;
  const CycleCostModel* costs_;
  FleetSamplerOptions options_;
  Rng rng_;
  uint64_t next_trace_ = 1;
  // clusters_by_class_[client][class] -> candidate server clusters.
  std::vector<std::array<std::vector<ClusterId>, 5>> clusters_by_class_;
};

// Error taxonomy mix (Fig. 23): relative frequency of each error type among
// failed RPCs, and the wasted-cycle multiplier applied when an RPC fails with
// that status (cancellations abort late, wasting an outsized share).
struct ErrorMixEntry {
  StatusCode code;
  double frequency;         // Fraction of all errors.
  double cycle_multiplier;  // Scales the call's cycles when it fails this way.
};
const std::vector<ErrorMixEntry>& FleetErrorMix();

// Draws an error status from the mix.
StatusCode SampleErrorStatus(Rng& rng);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_FLEET_SAMPLER_H_

// MethodCatalog: the generative model of the ~10,000-method population.
//
// This is the substitute for Google's proprietary workload. Every per-method
// generative parameter is a function of the method's latency-rank quantile
// u in [0,1) (methods sorted by median completion time, as in the paper's
// per-method figures) plus its service's workload category. The calibration
// anchors come straight from §2–§4 (see DESIGN.md §4); tests assert them.
//
// Popularity is built constructively so the paper's skew anchors hold:
//   - Network Disk "Write" alone is 28% of all calls (§2.3);
//   - the 10 / 100 most popular methods are ~58% / ~91% of calls;
//   - the 100 lowest-latency methods are ~40% of calls;
//   - the slowest 1000 methods are ~1.1% of calls.
// Per-service sums are then rescaled so service invocation shares match the
// ServiceCatalog exactly (Fig. 8a).
#ifndef RPCSCOPE_SRC_FLEET_METHOD_CATALOG_H_
#define RPCSCOPE_SRC_FLEET_METHOD_CATALOG_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/distributions.h"
#include "src/common/rng.h"
#include "src/fleet/service_catalog.h"
#include "src/net/topology.h"

namespace rpcscope {

struct MethodModel {
  int32_t method_id = -1;
  int32_t service_id = -1;
  std::string name;
  double popularity_weight = 0;
  double u = 0;  // Latency-rank quantile; drives all correlated parameters.

  // Server application time per RPC: a mixture of a fast path (cache hits,
  // trivially-served requests — this is what produces sub-millisecond P1
  // latencies on methods whose medians are tens of milliseconds) and a main
  // lognormal body.
  double app_median_us = 0;
  double app_sigma = 1.0;
  double fast_weight = 0;  // Probability an RPC takes the fast path.
  double fast_median_us = 200;
  double fast_sigma = 0.5;

  // Total queueing time (client send + server recv + server send + client
  // recv). Modeled as a mixture: most calls see a modest lognormal body, but
  // with a small probability the call lands in a congestion episode whose
  // scale is queue_tail_ratio x the median. This is the only shape that
  // satisfies both Fig. 13 (P99 queueing ~300x the median for many methods)
  // and Fig. 10 (queuing is only ~0.4% of invocation-weighted completion
  // time) simultaneously — a pure lognormal with that P99 would have a mean
  // ~50x the median and blow up the aggregate. Split across the four queue
  // components by fixed weights.
  double queue_median_us = 0;
  double queue_body_sigma = 0.8;
  double queue_tail_prob = 0.02;
  double queue_tail_ratio = 100;  // Episode median / body median.
  double queue_tail_sigma = 0.9;
  std::array<double, 4> queue_split{};  // csq, srq, ssq, crq; sums to 1.

  // Payload sizes (uncompressed serialized bytes), lognormal (Fig. 6).
  double req_median_bytes = 0;
  double req_sigma = 1.2;
  double resp_median_bytes = 0;
  double resp_sigma = 1.4;
  double redundancy = 0.5;          // Payload compressibility.
  bool compression_enabled = true;  // Bulk/block services skip compression.
  // Per-byte stack cost discount for blob-style channels (see
  // CycleCostModel::SendSideCost).
  double byte_cost_scale = 1.0;

  // Client->server distance mix: probabilities over the five non-trivial
  // DistanceClass values {same-cluster, same-dc, same-metro, same-continent,
  // intercontinental}. Popular low-latency methods are overwhelmingly local.
  std::array<double, 5> locality{};

  // Per-method congestion profile (WAN congestion drives the Fig. 12 tail).
  double congestion_prob = 0.02;
  double lan_congestion_mean_us = 150;
  double wan_congestion_mean_us = 60000;

  // Lognormal sigma of the multiplicative jitter on proc+stack time.
  double proc_jitter_sigma = 0.35;

  // The method's own CPU work per call (excluding stack tax), in cycles.
  // Deliberately only loosely coupled to latency: §4.2 finds neither size nor
  // latency correlates with CPU cost.
  double cpu_median_cycles = 0;
  double cpu_sigma = 1.0;

  // Call-tree shape: a node of this method either stops (leaf), branches into
  // a small number of children, or — with probability burst_prob — fans out
  // partition/aggregate style into tens..hundreds of children (§2.4).
  double leaf_prob = 0.6;
  double branch_mean = 2.0;
  double burst_prob = 0.01;
  int burst_min = 40;
  int burst_max = 400;
  int tier = 1;

  // Error injection (Fig. 23): per-call probability of a server-side error.
  double error_prob = 0.01;
  // Whether callers hedge this method (hedging produces cancellations).
  bool hedged = false;
};

struct MethodCatalogOptions {
  int num_methods = 10000;
  uint64_t seed = 2023;
};

class MethodCatalog {
 public:
  // Generates the population against a service catalog.
  static MethodCatalog Generate(const ServiceCatalog& services,
                                const MethodCatalogOptions& options);

  const std::vector<MethodModel>& methods() const { return methods_; }
  const MethodModel& method(int32_t id) const { return methods_[static_cast<size_t>(id)]; }
  int32_t size() const { return static_cast<int32_t>(methods_.size()); }

  // Popularity-weighted sampling of method ids (O(1) per draw).
  const DiscreteDist& popularity() const { return *popularity_; }
  int32_t SampleMethod(Rng& rng) const { return static_cast<int32_t>(popularity_->Sample(rng)); }

  // The planted Network Disk "Write" method (28% of all calls).
  int32_t network_disk_write_id() const { return network_disk_write_id_; }

  // Methods of a given service, sorted by popularity (most popular first).
  std::vector<int32_t> MethodsOfService(int32_t service_id) const;

  // CSV dump of the generative parameters (one row per method) for external
  // tooling and inspection of the calibrated population.
  std::string ExportCsv(const ServiceCatalog& services) const;

 private:
  std::vector<MethodModel> methods_;
  std::unique_ptr<DiscreteDist> popularity_;
  int32_t network_disk_write_id_ = -1;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_METHOD_CATALOG_H_

#include "src/fleet/cluster_state.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace rpcscope {

ExogenousState ClusterStateModel::StateAt(ClusterId cluster, SimTime time) const {
  const uint64_t ch = Mix64(options_.seed ^ static_cast<uint64_t>(cluster));
  auto unit = [&](uint64_t salt) {
    return static_cast<double>(Mix64(ch ^ salt) >> 11) * 0x1.0p-53;
  };
  // Cluster-specific baseline load and diurnal phase.
  const double base_util = 0.25 + 0.45 * unit(1);
  const double phase = unit(2);
  const double day_frac = ToSeconds(time) / 86400.0;
  // Deterministic "noise" varying by 30-minute bucket.
  const int64_t bucket = time / Minutes(30);
  const double n1 =
      (static_cast<double>(Mix64(ch ^ static_cast<uint64_t>(bucket) ^ 0xa1) >> 11) * 0x1.0p-53 -
       0.5) *
      2.0;

  ExogenousState s;
  s.cpu_util = std::clamp(
      base_util + options_.diurnal_amplitude * std::sin(2 * M_PI * (day_frac + phase)) +
          options_.noise_sigma * 3 * n1,
      0.05, 0.97);
  // Memory bandwidth tracks CPU activity with a cluster-specific slope.
  s.memory_bw_gbps = 20.0 + 90.0 * s.cpu_util * (0.8 + 0.4 * unit(3));
  // Long wake-ups grow superlinearly as the cluster saturates.
  s.long_wakeup_rate = 0.0008 + 0.02 * s.cpu_util * s.cpu_util * (0.7 + 0.6 * unit(4));
  // CPI rises with memory pressure.
  s.cycles_per_instr = 0.85 + 0.55 * (s.memory_bw_gbps / 110.0) + 0.05 * n1;
  return s;
}

double ClusterStateModel::AppSlowdown(const ExogenousState& state) {
  // Mild until ~70% utilization, then sharply contended; CPI multiplies.
  const double util_term = 1.0 / std::max(0.25, 1.0 - 0.75 * state.cpu_util);
  const double cpi_term = state.cycles_per_instr / 1.0;
  return std::max(1.0, 0.7 * util_term * cpi_term);
}

SimDuration ClusterStateModel::WakeupLatency(const ExogenousState& state) {
  // Mean wake-up cost: baseline scheduling latency plus the long-wakeup tail
  // (50+ us events) weighted by its rate.
  const double mean_us = 3.0 + state.long_wakeup_rate * 4000.0;
  return DurationFromMicros(mean_us);
}

}  // namespace rpcscope

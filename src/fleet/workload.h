// Open-loop workload generation.
//
// Hyperscale services see open-loop arrivals: clients do not slow down when
// the server queues (which is exactly why utilization drives the queueing
// tails of §3.3). PoissonArrivals schedules an exponential-gap arrival
// process on the simulator until a stop time; ArrivalRateForUtilization
// derives the rate that loads a worker pool to a target utilization.
#ifndef RPCSCOPE_SRC_FLEET_WORKLOAD_H_
#define RPCSCOPE_SRC_FLEET_WORKLOAD_H_

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

class PoissonArrivals {
 public:
  using Arrival = std::function<void()>;

  // Schedules `on_arrival` with exponential inter-arrival gaps of mean
  // 1/rate_per_second, starting now and stopping at `until` (virtual time).
  // The object must outlive the simulation run.
  PoissonArrivals(Simulator* sim, double rate_per_second, SimTime until, uint64_t seed,
                  Arrival on_arrival);

  PoissonArrivals(const PoissonArrivals&) = delete;
  PoissonArrivals& operator=(const PoissonArrivals&) = delete;

  int64_t arrivals() const { return arrivals_; }

 private:
  void ScheduleNext();

  Simulator* sim_;
  double mean_gap_us_;
  SimTime until_;
  Rng rng_;
  Arrival on_arrival_;
  int64_t arrivals_ = 0;
};

// Epoch-gated Poisson arrivals for checkpointed runs (docs/ROBUSTNESS.md
// #checkpointrestore). Same arrival process as PoissonArrivals, but nothing
// is scheduled until ArmEpoch(end), and the chain never plants a timer at or
// beyond the armed window end: an arrival drawn past the boundary is parked
// (its time remembered, no event queued) and re-armed by the next ArmEpoch.
// The event queue therefore drains to full quiescence at each epoch boundary
// — the precondition for serializing the simulator. ArmEpoch(kMaxSimTime)
// reproduces the PoissonArrivals event stream exactly, including the one
// terminal no-op event at or after `until`.
//
// ArmEpoch may only be called while the simulator is quiescent (before the
// run or between epoch segments); epoch ends must be strictly increasing.
// RPCSCOPE_CHECKPOINTED(EpochArrivals::WriteTo, EpochArrivals::RestoreFrom)
class EpochArrivals {
 public:
  using Arrival = std::function<void()>;

  EpochArrivals(Simulator* sim, double rate_per_second, SimTime until, uint64_t seed,
                Arrival on_arrival);

  EpochArrivals(const EpochArrivals&) = delete;
  EpochArrivals& operator=(const EpochArrivals&) = delete;

  // Extends the armed window to [previous end, epoch_end): draws the first
  // gap lazily on the first call, then schedules the parked arrival if it
  // now falls inside the window. No-op if epoch_end is not past the current
  // window end.
  void ArmEpoch(SimTime epoch_end);

  int64_t arrivals() const { return arrivals_; }

  // Checkpoint support: RNG stream, parked arrival time, and tally, in an
  // own "arrivals" section. Restore validates rate/until configuration and
  // applies nothing on mismatch; re-scheduling happens via the next ArmEpoch,
  // never from checkpoint bytes.
  void WriteTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  // Queues the parked arrival when it lies inside the armed window. The
  // chain keeps at most one pending timer; the stop check runs inside the
  // event (legacy parity), and an exhausted chain parks at kMaxSimTime.
  void ScheduleParked();

  Simulator* sim_;  // NOLINT(detan-checkpoint-field) structural
  double mean_gap_us_;
  SimTime until_;
  Rng rng_;
  Arrival on_arrival_;  // NOLINT(detan-checkpoint-field) structural
  int64_t arrivals_ = 0;
  bool started_ = false;     // First gap drawn.
  SimTime next_time_ = 0;    // Parked arrival time (valid once started).
  SimTime epoch_end_ = kMinSimTime;  // Armed window end.
};

// Arrival rate (per second) that drives `workers` servers, each with mean
// service time `mean_service`, to `utilization` (0..1).
double ArrivalRateForUtilization(double utilization, int workers, SimDuration mean_service);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_WORKLOAD_H_

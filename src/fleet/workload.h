// Open-loop workload generation.
//
// Hyperscale services see open-loop arrivals: clients do not slow down when
// the server queues (which is exactly why utilization drives the queueing
// tails of §3.3). PoissonArrivals schedules an exponential-gap arrival
// process on the simulator until a stop time; ArrivalRateForUtilization
// derives the rate that loads a worker pool to a target utilization.
#ifndef RPCSCOPE_SRC_FLEET_WORKLOAD_H_
#define RPCSCOPE_SRC_FLEET_WORKLOAD_H_

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace rpcscope {

class PoissonArrivals {
 public:
  using Arrival = std::function<void()>;

  // Schedules `on_arrival` with exponential inter-arrival gaps of mean
  // 1/rate_per_second, starting now and stopping at `until` (virtual time).
  // The object must outlive the simulation run.
  PoissonArrivals(Simulator* sim, double rate_per_second, SimTime until, uint64_t seed,
                  Arrival on_arrival);

  PoissonArrivals(const PoissonArrivals&) = delete;
  PoissonArrivals& operator=(const PoissonArrivals&) = delete;

  int64_t arrivals() const { return arrivals_; }

 private:
  void ScheduleNext();

  Simulator* sim_;
  double mean_gap_us_;
  SimTime until_;
  Rng rng_;
  Arrival on_arrival_;
  int64_t arrivals_ = 0;
};

// Arrival rate (per second) that drives `workers` servers, each with mean
// service time `mean_service`, to `utilization` (0..1).
double ArrivalRateForUtilization(double utilization, int workers, SimDuration mean_service);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_WORKLOAD_H_

// ServiceCatalog: the population of first-party services the fleet runs.
//
// Contains the paper's eight studied services (Table 1) with their documented
// client/size/method metadata and workload category (application-heavy,
// queue-heavy, or stack-heavy, per §3.3.1), plus a broader population of
// supporting services so that fleet-wide mixes (Fig. 8) have realistic
// diversity. Call shares, relative cycles per call, and bytes per call are
// calibrated to Fig. 8's anchors (Network Disk 35% of calls yet <2% of
// cycles; ML Inference 0.17% of calls yet 0.89% of cycles; F1 1.8%/1.8%).
#ifndef RPCSCOPE_SRC_FLEET_SERVICE_CATALOG_H_
#define RPCSCOPE_SRC_FLEET_SERVICE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rpcscope {

// Dominant-bottleneck category (§3.3.1).
enum class ServiceCategory : int32_t {
  kAppHeavy = 0,    // Bigtable, Network Disk, F1, ML Inference, Spanner.
  kQueueHeavy = 1,  // SSD cache, Video Metadata.
  kStackHeavy = 2,  // KV-Store.
  kMixed = 3,       // Population services without a single dominant stage.
};

struct ServiceSpec {
  int32_t service_id = -1;
  std::string name;
  ServiceCategory category = ServiceCategory::kMixed;
  // Call-tree tier: 0 = user-facing frontend, 3 = deepest storage substrate.
  int tier = 1;
  // Target fraction of all fleet RPC invocations (normalized at build time).
  double call_share = 0;
  // Relative CPU cycles per call (1.0 = fleet-typical); drives Fig. 8c.
  double cycles_per_call_scale = 1.0;
  // Typical request payload bytes (median); drives Fig. 8b with call share.
  double typical_request_bytes = 1024;
  double typical_response_bytes = 1024;
  // Latency-band bias: typical method-latency quantile u in [0,1] for this
  // service's methods (0 = fastest band). Methods scatter around it.
  double latency_band = 0.5;

  // Table 1 metadata (only for the eight studied services).
  bool studied = false;
  std::string table1_client;       // e.g. "KV-Store" for Bigtable.
  std::string table1_rpc_size;     // e.g. "1 kB".
  std::string table1_description;  // e.g. "Search value".
};

// Well-known ids for the studied services (indices into the catalog).
struct StudiedServices {
  int32_t bigtable = -1;
  int32_t network_disk = -1;
  int32_t ssd_cache = -1;
  int32_t video_metadata = -1;
  int32_t spanner = -1;
  int32_t f1 = -1;
  int32_t ml_inference = -1;
  int32_t kv_store = -1;
  int32_t bigquery = -1;  // Studied in Fig. 15 but not Table 1's eight.
};

class ServiceCatalog {
 public:
  // Builds the default fleet population (call shares normalized to 1).
  static ServiceCatalog BuildDefault();

  const std::vector<ServiceSpec>& services() const { return services_; }
  const ServiceSpec& service(int32_t id) const { return services_[static_cast<size_t>(id)]; }
  int32_t size() const { return static_cast<int32_t>(services_.size()); }
  const StudiedServices& studied() const { return studied_; }

  // Eight most-popular services by call share (Fig. 8 uses "top 8").
  std::vector<int32_t> TopByCallShare(size_t n) const;

 private:
  std::vector<ServiceSpec> services_;
  StudiedServices studied_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FLEET_SERVICE_CATALOG_H_

#include "src/rpc/client.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/rpc/codec.h"
#include "src/rpc/server.h"

namespace rpcscope {

namespace {

// Stack cycles one message direction would have cost through the full
// serialize/compress/encrypt/checksum/netstack pipeline, minus the RPC
// library bookkeeping the colocated fast path still charges on both sides —
// the per-direction "avoided tax" recorded on bypassed spans.
double AvoidedDirectionTax(const CycleCostModel& costs, int64_t payload_bytes,
                           int64_t wire_bytes) {
  const double full = costs.SendSideCost(payload_bytes, wire_bytes).TaxTotal() +
                      costs.RecvSideCost(payload_bytes, wire_bytes).TaxTotal();
  return full - 2 * costs.rpclib_fixed_per_side;
}

}  // namespace

struct Client::CallState {
  CallOptions options;
  CallCallback done;
  MachineId primary_target = -1;
  MethodId method = -1;
  Payload request;
  TraceId trace_id = 0;
  SimTime issue_time = 0;
  bool completed = false;
  StatusCode completion_reason = StatusCode::kOk;
  int attempts_started = 0;
  // Attempts issued but not yet decided. A failed attempt only concludes the
  // call when it is the last one standing: a hedge that fails fast (e.g. a
  // crashed backend refusing the connection) must not preempt a primary that
  // is still working — and vice versa.
  int attempts_inflight = 0;
  int retries_used = 0;
  bool hedge_launched = false;
  // Policy-resolved at issue time: attempts to this client's own machine take
  // the colocated fast path (docs/POLICY.md#colocated-bypass).
  bool colocated_bypass = false;
  // Offload profile resolved at issue time (docs/TAX.md); -1 = legacy host
  // pipeline. Every attempt of the call prices its messages with the same
  // profile even if a policy swap lands mid-call.
  int32_t tax_profile = -1;
};

struct Client::Attempt {
  SpanId span_id = 0;
  MachineId target = -1;
  SimTime start = 0;
  // Set once the attempt's outcome is decided (reply, error, or watchdog);
  // a late reply for an already-failed attempt is dropped, not double-counted.
  bool finished = false;
  LatencyBreakdown bd;
  CycleBreakdown cycles;
  int64_t request_wire_bytes = 0;
  int64_t response_wire_bytes = 0;
  int64_t request_payload_bytes = 0;
  int64_t response_payload_bytes = 0;
  // Colocated fast path: the attempt skipped serialize + wire; the stack
  // cycles it would have paid accumulate here and surface on the span.
  bool colocated = false;
  double avoided_tax_cycles = 0;
  // Cycles this attempt ran on offload devices (client tx/rx + echoed server
  // share); 0 on the legacy and baseline paths.
  double device_cycles = 0;
};

Client::Client(RpcSystem* system, MachineId machine, const ClientOptions& options)
    : system_(system),
      machine_(machine),
      shard_(&system->ShardFor(machine)),
      machine_speed_(system->MachineSpeed(machine)),
      tx_pool_(&shard_->sim(),
               {.workers = options.tx_workers, .max_queue_depth = options.max_queue_depth}),
      rx_pool_(&shard_->sim(),
               {.workers = options.rx_workers, .max_queue_depth = options.max_queue_depth}),
      accel_pool_(&shard_->sim(), {.workers = options.accel_workers}),
      backoff_rng_(Mix64(Mix64(system->options().seed ^ 0xb0ffull) ^
                         static_cast<uint64_t>(machine))),
      retry_budget_(options.retry_budget),
      rx_processing_overhead_(options.rx_processing_overhead),
      colocated_bypass_base_(options.colocated_bypass),
      retries_counter_(&shard_->metrics.GetCounter("client.retries")),
      retry_exhausted_counter_(&shard_->metrics.GetCounter("client.retry_budget_exhausted")),
      queue_rejected_counter_(&shard_->metrics.GetCounter("client.queue_rejected")),
      attempt_timeout_counter_(&shard_->metrics.GetCounter("client.attempt_timeouts")),
      completions_ok_counter_(&shard_->metrics.GetCounter("client.completions_ok")),
      completions_err_counter_(&shard_->metrics.GetCounter("client.completions_err")),
      colocated_counter_(&shard_->metrics.GetCounter("client.colocated_calls")),
      tax_cycles_counter_(&shard_->metrics.GetCounter("client.tax_cycles")),
      avoided_tax_counter_(&shard_->metrics.GetCounter("client.avoided_tax_cycles")),
      device_cycles_counter_(&shard_->metrics.GetCounter("client.device_cycles")) {
  policy_version_seen_ = shard_->policy.version();
  const MethodPolicy fleet = shard_->policy.current().Resolve(-1, -1);
  retry_budget_.Reconfigure(fleet.retry_budget_max_tokens, fleet.retry_budget_refill);
}

MethodPolicy Client::ResolveCallPolicy(int32_t service_id, MethodId method) {
  const PolicyEngine& engine = shard_->policy;
  if (engine.version() != policy_version_seen_) {
    policy_version_seen_ = engine.version();
    // The retry budget is client-scoped, not method-scoped, so its shape
    // follows the fleet-wide defaults (service/method entries can't
    // meaningfully resize a shared bucket).
    const MethodPolicy fleet = engine.current().Resolve(-1, -1);
    retry_budget_.Reconfigure(fleet.retry_budget_max_tokens, fleet.retry_budget_refill);
  }
  return engine.current().Resolve(service_id, method);
}

Counter* Client::ProfileCounter(std::vector<Counter*>& cache, int32_t profile_id,
                                const char* suffix) {
  const size_t idx = static_cast<size_t>(profile_id);
  if (cache.size() <= idx) {
    cache.resize(system_->tax_profiles().size(), nullptr);
  }
  if (cache[idx] == nullptr) {
    const TaxProfile* profile = system_->TaxProfileById(profile_id);
    cache[idx] = &shard_->metrics.GetCounter("tax.profile." + profile->name + suffix);
  }
  return cache[idx];
}

void Client::CountCompletion(StatusCode code) {
  if (code == StatusCode::kOk) {
    completions_ok_counter_->Increment();
  } else {
    completions_err_counter_->Increment();
  }
}

void Client::Call(MachineId target, MethodId method, Payload request, const CallOptions& options,
                  CallCallback done) {
  ++calls_issued_;
  auto st = std::make_shared<CallState>();
  st->options = options;
  st->done = std::move(done);
  st->primary_target = target;
  st->method = method;
  st->request = std::move(request);
  st->trace_id = options.trace_id != 0 ? options.trace_id : shard_->tracer.NewTraceId();
  st->issue_time = shard_->sim().Now();

  // Managed policy resolution (docs/POLICY.md): retry pacing is owned by the
  // policy plane outright (a staged rollout of a bad backoff must land even
  // on calls with library defaults), the remaining knobs fill in only where
  // the caller/channel left them unset.
  const MethodPolicy policy = ResolveCallPolicy(st->options.service_id, method);
  if (policy.retry_backoff >= 0) {
    st->options.retry_backoff = policy.retry_backoff;
  }
  if (policy.retry_backoff_cap >= 0) {
    st->options.retry_backoff_cap = policy.retry_backoff_cap;
  }
  if (policy.max_retries >= 0 && st->options.max_retries == 0) {
    st->options.max_retries = static_cast<int>(policy.max_retries);
  }
  if (policy.attempt_timeout >= 0 && st->options.attempt_timeout == 0) {
    st->options.attempt_timeout = policy.attempt_timeout;
  }
  if (policy.default_deadline >= 0 && st->options.deadline == 0) {
    st->options.deadline = policy.default_deadline;
  }
  st->colocated_bypass =
      policy.colocated_bypass >= 0 ? policy.colocated_bypass != 0 : colocated_bypass_base_;
  // Offload profile (docs/TAX.md): resolved once at issue time so every
  // attempt of this call prices consistently; ids the catalog doesn't know
  // fall back to the legacy host pipeline.
  st->tax_profile = system_->TaxProfileById(policy.tax_profile) != nullptr ? policy.tax_profile : -1;

  // Deadline propagation: a child call never outlives its parent's budget.
  if (st->options.parent_deadline_time > 0) {
    const SimDuration remaining = st->options.parent_deadline_time - st->issue_time;
    if (remaining <= 0) {
      // Dead on arrival: the parent's deadline already expired, so no
      // downstream cycles are burned. Recorded as a zero-latency span.
      ++dead_on_arrival_;
      st->completed = true;
      st->completion_reason = StatusCode::kDeadlineExceeded;
      ++calls_completed_;
      CountCompletion(StatusCode::kDeadlineExceeded);
      Attempt att;
      att.span_id = shard_->tracer.NewSpanId();
      att.target = target;
      att.start = st->issue_time;
      RecordAttemptSpan(*st, att, StatusCode::kDeadlineExceeded);
      CallResult result;
      result.status = DeadlineExceededError("parent deadline already expired");
      result.trace_id = st->trace_id;
      result.span_id = att.span_id;
      st->done(result, Payload());
      return;
    }
    if (st->options.deadline == 0 || st->options.deadline > remaining) {
      st->options.deadline = remaining;
    }
  }

  StartAttempt(st, target);

  if (st->options.hedge_delay > 0 && st->options.hedge_target >= 0) {
    shard_->sim().Schedule(st->options.hedge_delay, [this, st]() {
      if (!st->completed && !st->hedge_launched) {
        st->hedge_launched = true;
        StartAttempt(st, st->options.hedge_target);
      }
    });
  }

  if (st->options.deadline > 0) {
    shard_->sim().Schedule(st->options.deadline, [this, st]() {
      if (st->completed) {
        return;
      }
      st->completed = true;
      st->completion_reason = StatusCode::kDeadlineExceeded;
      ++calls_completed_;
      CountCompletion(StatusCode::kDeadlineExceeded);
      CallResult result;
      result.status = DeadlineExceededError("call deadline expired");
      result.attempts = st->attempts_started;
      result.trace_id = st->trace_id;
      st->done(result, Payload());
    });
  }
}

void Client::StartAttempt(std::shared_ptr<CallState> st, MachineId target) {
  auto att = std::make_shared<Attempt>();
  att->span_id = shard_->tracer.NewSpanId();
  att->target = target;
  att->start = shard_->sim().Now();
  ++st->attempts_started;
  ++st->attempts_inflight;

  // Fail fast when the send queue is already over its bound: rejecting before
  // EncodeFrame keeps overload from burning encode cycles on doomed work.
  if (tx_pool_.WouldReject()) {
    ++queue_rejections_;
    queue_rejected_counter_->Increment();
    AttemptFinished(st, att, ResourceExhaustedError("client tx queue full"), Payload());
    return;
  }

  // Transport watchdog: a frame lost to a partition or a silently dead server
  // produces no reply event at all — without this, the attempt (and with it
  // the call, absent a deadline) would hang forever.
  if (st->options.attempt_timeout > 0) {
    shard_->sim().Schedule(st->options.attempt_timeout, [this, st, att]() {
      if (att->finished) {
        return;
      }
      ++attempt_timeouts_;
      attempt_timeout_counter_->Increment();
      AttemptFinished(st, att, UnavailableError("attempt transport timeout"), Payload());
    });
  }

  if (st->colocated_bypass && target == machine_) {
    StartColocatedAttempt(std::move(st), std::move(att));
    return;
  }

  const CycleCostModel& costs = system_->costs();
  const TaxProfile* profile = system_->TaxProfileById(st->tax_profile);
  WireFrame frame =
      EncodeFrame(st->request, system_->options().encryption_key, att->span_id, scratch_);
  CycleBreakdown tx_cost;
  SimDuration tx_dev_time = 0;
  if (profile == nullptr) {
    tx_cost = costs.SendSideCost(frame.payload_bytes, frame.wire_bytes);
  } else {
    // Profile-priced send pipeline: host cycles convert to tx service time as
    // usual; offloaded cycles become a device-queue hop before the wire.
    const ProfileCost pc = profile->MessageCost(
        costs, StageCostInput{.payload_bytes = frame.payload_bytes,
                              .wire_bytes = frame.wire_bytes,
                              .send = true});
    tx_cost = pc.host;
    att->device_cycles += pc.device_cycles;
    tx_dev_time = profile->DeviceTime(pc.device_cycles);
  }
  att->cycles.Accumulate(tx_cost);
  att->request_wire_bytes = frame.wire_bytes;
  att->request_payload_bytes = frame.payload_bytes;
  const SimDuration tx_time = costs.CyclesToDuration(tx_cost.TaxTotal(), machine_speed_);

  tx_pool_.Submit(tx_time, [this, st, att, tx_dev_time, frame = std::move(frame)](
                               SimDuration tx_wait, SimDuration tx_service) mutable {
    if (tx_wait == ServerResource::kRejected) {
      AttemptFinished(st, att, ResourceExhaustedError("client tx queue full"), Payload());
      return;
    }
    att->bd[RpcComponent::kClientSendQueue] = tx_wait;
    att->bd[RpcComponent::kRequestProcStack] = tx_service;
    auto launch = [this, st, att, frame = std::move(frame)]() mutable {
      const int64_t wire_bytes = frame.wire_bytes;
      shard_->fabric.Send(
          machine_, att->target, wire_bytes,
          [this, st, att, frame = std::move(frame)](SimDuration wire) mutable {
            // This delivery runs in the *target's* domain. Only immutable call
            // state may be read here; the attempt's mutable fields belong to
            // the client's domain, so the request-wire latency travels with
            // the request and comes back echoed in the reply (same-domain
            // also sets it now, preserving the legacy watchdog-span contents).
            if (system_->ShardOf(att->target) == shard_->id()) {
              att->bd[RpcComponent::kRequestWire] = wire;
            }
            Server* server = system_->ServerAt(att->target);
            if (server == nullptr) {
              FailAttemptFromTarget(st, att, wire,
                                    UnavailableError("no server at target machine"));
              return;
            }
            if (!server->up()) {
              // Connection refused: a crashed-but-known machine fails fast,
              // unlike a partitioned one (whose frames vanish silently).
              FailAttemptFromTarget(st, att, wire, UnavailableError("server down"));
              return;
            }
            IncomingRequest req;
            req.method = st->method;
            req.request_frame = std::move(frame);
            req.client_machine = machine_;
            req.deadline_time =
                st->options.deadline > 0 ? st->issue_time + st->options.deadline : 0;
            req.trace_id = st->trace_id;
            req.span_id = att->span_id;
            req.request_wire = wire;
            req.service_id = st->options.service_id;
            req.respond = [this, st, att](ServerReply reply) {
              OnReply(st, att, std::move(reply));
            };
            server->DeliverRequest(std::move(req));
          });
    };
    if (tx_dev_time > 0) {
      // Offload hop: the message occupies an accelerator engine (transfer +
      // device-clock execution) before hitting the wire; queueing delay at a
      // busy device lands in the request's proc-stack component.
      accel_pool_.Submit(tx_dev_time, [att, launch = std::move(launch)](
                                          SimDuration dev_wait, SimDuration dev_service) mutable {
        att->bd[RpcComponent::kRequestProcStack] += dev_wait + dev_service;
        launch();
      });
    } else {
      launch();
    }
  });
}

void Client::StartColocatedAttempt(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att) {
  ++colocated_calls_;
  colocated_counter_->Increment();
  att->colocated = true;
  const CycleCostModel& costs = system_->costs();
  const int64_t payload_bytes = st->request.SerializedSize();
  // Request direction: only library bookkeeping is charged; everything the
  // wire pipeline would have cost (against the estimated on-wire size) is
  // recorded as avoided tax instead.
  const CycleBreakdown tx_cost = costs.LocalDeliveryCost();
  att->cycles.Accumulate(tx_cost);
  att->request_payload_bytes = payload_bytes;
  att->avoided_tax_cycles +=
      AvoidedDirectionTax(costs, payload_bytes, EstimateWireBytes(st->request));
  const SimDuration tx_time = costs.CyclesToDuration(tx_cost.TaxTotal(), machine_speed_);

  tx_pool_.Submit(tx_time, [this, st, att, payload_bytes](SimDuration tx_wait,
                                                          SimDuration tx_service) {
    if (tx_wait == ServerResource::kRejected) {
      AttemptFinished(st, att, ResourceExhaustedError("client tx queue full"), Payload());
      return;
    }
    att->bd[RpcComponent::kClientSendQueue] = tx_wait;
    att->bd[RpcComponent::kRequestProcStack] = tx_service;
    // The hand-off stays an event (same machine, same shard) rather than an
    // inline call so the server pipeline observes the same scheduling
    // semantics as a delivered frame; kRequestWire stays 0 — no wire.
    shard_->sim().Schedule(0, [this, st, att, payload_bytes]() {
      Server* server = system_->ServerAt(att->target);
      if (server == nullptr) {
        AttemptFinished(st, att, UnavailableError("no server at target machine"), Payload());
        return;
      }
      if (!server->up()) {
        AttemptFinished(st, att, UnavailableError("server down"), Payload());
        return;
      }
      IncomingRequest req;
      req.method = st->method;
      req.request_frame.payload_bytes = payload_bytes;  // Accounting only; wire_bytes 0.
      req.client_machine = machine_;
      req.deadline_time = st->options.deadline > 0 ? st->issue_time + st->options.deadline : 0;
      req.trace_id = st->trace_id;
      req.span_id = att->span_id;
      req.service_id = st->options.service_id;
      req.colocated = true;
      // Hand-off by buffer: the request payload crosses to the server without
      // an encode (copied, not serialized — retries may still need it).
      req.local_payload = st->request;
      req.respond = [this, st, att](ServerReply reply) { OnReply(st, att, std::move(reply)); };
      server->DeliverRequest(std::move(req));
    });
  });
}

void Client::FailAttemptFromTarget(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att,
                                   SimDuration request_wire, Status status) {
  RpcSystem::ShardContext& target_shard = system_->ShardFor(att->target);
  if (target_shard.id() == shard_->id()) {
    // Same domain: complete inline, exactly the legacy immediate-failure path
    // (kRequestWire was already written by the delivery lambda).
    AttemptFinished(std::move(st), std::move(att), std::move(status), Payload());
    return;
  }
  // Cross-domain: the failure was discovered in the target's domain, where
  // the client's attempt state must not be touched. Route the completion back
  // to the client's domain through the mailbox, one minimum wire latency
  // later (>= the executor lookahead) — modeling the connection-refused
  // notification's return trip.
  const SimDuration back = target_shard.fabric.MinOneWayLatency(att->target, machine_, 0);
  target_shard.domain.PostRemote(
      shard_->id(), AddClamped(target_shard.sim().Now(), back),
      [this, st, att, request_wire, status = std::move(status)]() mutable {
        att->bd[RpcComponent::kRequestWire] = request_wire;
        AttemptFinished(std::move(st), std::move(att), std::move(status), Payload());
      });
}

void Client::OnReply(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att,
                     ServerReply reply) {
  if (att->finished) {
    return;  // The watchdog already failed this attempt; drop the late reply.
  }
  if (reply.request_wire > 0) {
    att->bd[RpcComponent::kRequestWire] = reply.request_wire;
  }
  att->bd[RpcComponent::kServerRecvQueue] = reply.recv_queue;
  att->bd[RpcComponent::kServerApp] = reply.app_time;
  att->bd[RpcComponent::kServerSendQueue] = reply.send_queue;
  att->bd[RpcComponent::kResponseProcStack] = reply.resp_proc;
  att->bd[RpcComponent::kResponseWire] = reply.resp_wire;
  att->cycles.Accumulate(reply.server_cycles);
  const bool streamed = reply.chunk_count > 0;
  att->response_wire_bytes =
      streamed ? reply.stream_wire_bytes : reply.response_frame.wire_bytes;
  att->response_payload_bytes =
      reply.response_frame.payload_bytes * std::max(reply.chunk_count, 1);

  const CycleCostModel& costs = system_->costs();
  const TaxProfile* profile = system_->TaxProfileById(st->tax_profile);
  CycleBreakdown rx_cost;
  double rx_device_cycles = 0;
  if (reply.colocated) {
    // Response direction of the fast path: bookkeeping only; the decode
    // pipeline the response skipped is recorded as avoided tax.
    rx_cost = costs.LocalDeliveryCost();
    att->avoided_tax_cycles += AvoidedDirectionTax(costs, reply.response_frame.payload_bytes,
                                                   EstimateWireBytes(reply.local_response));
  } else if (profile != nullptr) {
    const ProfileCost pc = profile->MessageCost(
        costs, StageCostInput{.payload_bytes = reply.response_frame.payload_bytes,
                              .wire_bytes = reply.response_frame.wire_bytes,
                              .send = false});
    rx_cost = pc.host;
    rx_device_cycles = pc.device_cycles;
  } else {
    rx_cost = costs.RecvSideCost(reply.response_frame.payload_bytes,
                                 reply.response_frame.wire_bytes);
  }
  if (streamed) {
    // Per-chunk receive costs: the client decodes every chunk.
    CycleBreakdown total;
    for (int c = 0; c < reply.chunk_count; ++c) {
      total.Accumulate(rx_cost);
    }
    rx_cost = total;
    rx_device_cycles *= reply.chunk_count;
  }
  att->device_cycles += rx_device_cycles + reply.device_cycles;
  const SimDuration rx_dev_time =
      profile != nullptr ? profile->DeviceTime(rx_device_cycles) : 0;
  const SimDuration rx_time =
      costs.CyclesToDuration(rx_cost.TaxTotal(), machine_speed_) + rx_processing_overhead_;

  auto deliver = [this, st, att, reply = std::move(reply), rx_cost, rx_time]() mutable {
    rx_pool_.Submit(rx_time, [this, st, att, reply = std::move(reply), rx_cost](
                                 SimDuration rx_wait, SimDuration rx_service) mutable {
      if (rx_wait == ServerResource::kRejected) {
        AttemptFinished(st, att, ResourceExhaustedError("client rx queue full"), Payload());
        return;
      }
      att->bd[RpcComponent::kClientRecvQueue] = rx_wait;
      att->bd[RpcComponent::kResponseProcStack] += rx_service;
      att->cycles.Accumulate(rx_cost);
      Payload response;
      Status status = reply.status;
      if (status.ok()) {
        if (reply.colocated) {
          // The response was never encoded: take the payload by buffer.
          response = std::move(reply.local_response);
        } else {
          Result<Payload> decoded =
              DecodeFrame(reply.response_frame, system_->options().encryption_key, scratch_);
          if (decoded.ok()) {
            response = std::move(decoded.value());
          } else {
            status = decoded.status();
          }
        }
      }
      AttemptFinished(st, att, std::move(status), std::move(response));
    });
  };
  if (rx_dev_time > 0) {
    // Receive-side offload hop (NIC/accelerator work before host rx): device
    // wait + execution land in the response's proc-stack component.
    accel_pool_.Submit(rx_dev_time, [att, deliver = std::move(deliver)](
                                        SimDuration dev_wait, SimDuration dev_service) mutable {
      att->bd[RpcComponent::kResponseProcStack] += dev_wait + dev_service;
      deliver();
    });
  } else {
    deliver();
  }
}

void Client::RecordAttemptSpan(const CallState& st, const Attempt& att, StatusCode code) {
  Span span;
  span.trace_id = st.trace_id;
  span.span_id = att.span_id;
  span.parent_span_id = st.options.parent_span_id;
  span.method_id = st.method;
  span.service_id = st.options.service_id;
  span.client_cluster = system_->topology().ClusterOf(machine_);
  span.server_cluster = system_->topology().ClusterOf(att.target);
  span.start_time = att.start;
  span.latency = att.bd;
  span.status = code;
  span.request_wire_bytes = att.request_wire_bytes;
  span.response_wire_bytes = att.response_wire_bytes;
  span.request_payload_bytes = att.request_payload_bytes;
  span.response_payload_bytes = att.response_payload_bytes;
  // GWP-style cost annotation on a deterministic subset of spans.
  const double p = system_->options().cpu_annotation_probability;
  span.has_cpu_annotation =
      static_cast<double>(Mix64(att.span_id ^ 0xc0c) >> 11) * 0x1.0p-53 < p;
  span.normalized_cpu_cycles =
      att.cycles.Total() / system_->costs().normalization_cycles;
  span.colocated = att.colocated;
  span.avoided_tax_cycles = att.avoided_tax_cycles;
  // Fleet tax accounting: paid stack cycles for every attempt, and for
  // bypassed attempts the tax the fast path saved — the fleet_study
  // "bypassed-tax fraction" is avoided / (paid + avoided).
  tax_cycles_counter_->Increment(att.cycles.TaxTotal());
  if (att.colocated) {
    avoided_tax_cycles_ += att.avoided_tax_cycles;
    avoided_tax_counter_->Increment(att.avoided_tax_cycles);
  }
  if (att.device_cycles > 0) {
    device_cycles_ += att.device_cycles;
    device_cycles_counter_->Increment(att.device_cycles);
  }
  if (st.tax_profile >= 0) {
    // Per-profile streamed tax counters (docs/TAX.md#per-profile-counters):
    // only profile-resolved calls touch these, so legacy registries are
    // byte-identical to pre-profile runs.
    ProfileCounter(profile_tax_counters_, st.tax_profile, ".tax_cycles")
        ->Increment(att.cycles.TaxTotal());
    if (att.device_cycles > 0) {
      ProfileCounter(profile_device_counters_, st.tax_profile, ".device_cycles")
          ->Increment(att.device_cycles);
    }
  }
  if (st.options.attempt_observer) {
    st.options.attempt_observer(att.target, code, att.bd.Total());
  }
  const bool kept = shard_->tracer.Record(span);
  if (kept && shard_->stream_sink != nullptr) {
    // The streaming pipeline taps exactly the kept (head-sampled) stream —
    // the same spans MergedSpans() sees — so streamed aggregates replay
    // bit-for-bit from the post-run merge (stream.h determinism rules).
    shard_->stream_sink->OnSpan(span);
  }
  if (system_->options().span_observer) {
    system_->options().span_observer(span);
  }
}

void Client::AttemptFinished(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att,
                             Status status, Payload response) {
  if (att->finished) {
    return;  // Already decided (transport watchdog); span recorded once.
  }
  att->finished = true;
  --st->attempts_inflight;
  StatusCode record_code = status.code();
  if (st->completed) {
    // The call already concluded without this attempt: a hedge loser is
    // CANCELLED; an arrival after the deadline is DEADLINE_EXCEEDED.
    record_code = st->completion_reason == StatusCode::kDeadlineExceeded
                      ? StatusCode::kDeadlineExceeded
                      : StatusCode::kCancelled;
    RecordAttemptSpan(*st, *att, record_code);
    wasted_cycles_ += att->cycles.Total();
    return;
  }
  RecordAttemptSpan(*st, *att, record_code);

  if (!status.ok() && st->attempts_inflight > 0) {
    // A sibling attempt (the hedge, or the primary the hedge covered for) is
    // still in flight: let its outcome decide the call instead of failing —
    // or retrying — while a live attempt may yet succeed.
    wasted_cycles_ += att->cycles.Total();
    return;
  }

  if (status.code() == StatusCode::kUnavailable &&
      st->retries_used < st->options.max_retries) {
    if (retry_budget_.TryConsume()) {
      ++st->retries_used;
      ++retries_attempted_;
      retries_counter_->Increment();
      wasted_cycles_ += att->cycles.Total();
      // Truncated exponential backoff with full jitter (avoids synchronized
      // retry storms when a backend goes away).
      const double ceiling = std::min<double>(
          static_cast<double>(st->options.retry_backoff) *
              std::pow(2.0, st->retries_used - 1),
          static_cast<double>(st->options.retry_backoff_cap));
      const SimDuration backoff =
          static_cast<SimDuration>(backoff_rng_.NextDouble() * ceiling);
      shard_->sim().Schedule(backoff, [this, st, target = att->target]() {
        if (!st->completed) {
          StartAttempt(st, target);
        }
      });
      return;
    }
    // Budget empty: the retry is suppressed and the call fails with the
    // underlying error — amplification stops exactly when the fleet is sick.
    ++retries_suppressed_;
    retry_exhausted_counter_->Increment();
  }

  st->completed = true;
  st->completion_reason = status.code();
  ++calls_completed_;
  CountCompletion(status.code());
  if (status.ok()) {
    retry_budget_.OnSuccess();
  }
  CallResult result;
  result.status = std::move(status);
  result.latency = att->bd;
  result.cycles = att->cycles;
  result.request_wire_bytes = att->request_wire_bytes;
  result.response_wire_bytes = att->response_wire_bytes;
  result.attempts = st->attempts_started;
  result.trace_id = st->trace_id;
  result.span_id = att->span_id;
  st->done(result, std::move(response));
}

Status Client::CheckpointTo(CheckpointWriter& w) const {
  if (calls_issued_ != calls_completed_) {
    return FailedPreconditionError("client has in-flight calls at checkpoint");
  }
  w.BeginSection("client");
  w.WriteI64(machine_);
  w.WriteDouble(machine_speed_);
  w.WriteI64(rx_processing_overhead_);
  WriteRngState(w, backoff_rng_);
  const RetryBudget::State budget = retry_budget_.SaveState();
  w.WriteBool(budget.enabled);
  w.WriteDouble(budget.tokens);
  w.WriteU64(budget.exhausted);
  w.WriteU64(calls_issued_);
  w.WriteU64(calls_completed_);
  w.WriteU64(retries_attempted_);
  w.WriteU64(retries_suppressed_);
  w.WriteU64(queue_rejections_);
  w.WriteU64(attempt_timeouts_);
  w.WriteU64(dead_on_arrival_);
  w.WriteDouble(wasted_cycles_);
  w.WriteBool(colocated_bypass_base_);
  w.WriteU64(policy_version_seen_);
  w.WriteU64(colocated_calls_);
  w.WriteDouble(avoided_tax_cycles_);
  w.WriteDouble(device_cycles_);
  w.EndSection();
  if (Status s = tx_pool_.CheckpointTo(w); !s.ok()) {
    return s;
  }
  if (Status s = rx_pool_.CheckpointTo(w); !s.ok()) {
    return s;
  }
  return accel_pool_.CheckpointTo(w);
}

Status Client::RestoreFrom(CheckpointReader& r) {
  if (calls_issued_ != calls_completed_) {
    return FailedPreconditionError("restore into a client with in-flight calls");
  }
  if (Status s = r.EnterSection("client"); !s.ok()) {
    return s;
  }
  const MachineId machine = r.ReadI64();
  const double machine_speed = r.ReadDouble();
  const SimDuration rx_processing_overhead = r.ReadI64();
  Rng backoff_rng(0);
  ReadRngState(r, backoff_rng);
  RetryBudget::State budget;
  budget.enabled = r.ReadBool();
  budget.tokens = r.ReadDouble();
  budget.exhausted = r.ReadU64();
  const uint64_t calls_issued = r.ReadU64();
  const uint64_t calls_completed = r.ReadU64();
  const uint64_t retries_attempted = r.ReadU64();
  const uint64_t retries_suppressed = r.ReadU64();
  const uint64_t queue_rejections = r.ReadU64();
  const uint64_t attempt_timeouts = r.ReadU64();
  const uint64_t dead_on_arrival = r.ReadU64();
  const double wasted_cycles = r.ReadDouble();
  const bool colocated_bypass_base = r.ReadBool();
  const uint64_t policy_version_seen = r.ReadU64();
  const uint64_t colocated_calls = r.ReadU64();
  const double avoided_tax_cycles = r.ReadDouble();
  const double device_cycles = r.ReadDouble();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (machine != machine_ || machine_speed != machine_speed_ ||
      rx_processing_overhead != rx_processing_overhead_ ||
      colocated_bypass_base != colocated_bypass_base_) {
    return FailedPreconditionError("client: checkpoint is for a different client configuration");
  }
  if (calls_issued != calls_completed) {
    return DataLossError("client: checkpoint recorded in-flight calls");
  }
  if (!retry_budget_.RestoreState(budget)) {
    return FailedPreconditionError("client: retry budget enablement mismatch");
  }
  backoff_rng_ = backoff_rng;
  calls_issued_ = calls_issued;
  calls_completed_ = calls_completed;
  retries_attempted_ = retries_attempted;
  retries_suppressed_ = retries_suppressed;
  queue_rejections_ = queue_rejections;
  attempt_timeouts_ = attempt_timeouts;
  dead_on_arrival_ = dead_on_arrival;
  wasted_cycles_ = wasted_cycles;
  colocated_calls_ = colocated_calls;
  avoided_tax_cycles_ = avoided_tax_cycles;
  device_cycles_ = device_cycles;
  // The engine is restored before the components (docs/POLICY.md): re-apply
  // the fleet-default budget shape for the current snapshot so the derived
  // budget configuration matches the checkpointed run. The saved version may
  // legitimately lag the engine's — a client that issued no calls after a
  // barrier swap never observed the new version — so no equality is required;
  // the next call resolves against the engine's current snapshot either way.
  policy_version_seen_ = policy_version_seen;
  const MethodPolicy fleet = shard_->policy.current().Resolve(-1, -1);
  retry_budget_.Reconfigure(fleet.retry_budget_max_tokens, fleet.retry_budget_refill);
  if (Status s = tx_pool_.RestoreFrom(r); !s.ok()) {
    return s;
  }
  if (Status s = rx_pool_.RestoreFrom(r); !s.ok()) {
    return s;
  }
  return accel_pool_.RestoreFrom(r);
}

}  // namespace rpcscope

// Channel: a client-side view of a replicated service.
//
// Production RPC stacks do not call machines, they call *services*: a channel
// owns the backend set, picks a target per call (the paper's §4.3 notes the
// fleet balancer is latency-aware, not CPU-aware), applies the service's
// default call policy (deadline, retries, hedging against a second backend),
// and keeps per-backend outstanding-call counts for least-loaded picking.
//
// Outlier ejection (docs/ROBUSTNESS.md): with ChannelOptions::outlier enabled
// the channel tracks per-backend success/latency over a rolling window,
// ejects backends whose failure (or slow-success) rate crosses the threshold
// for an exponentially backed-off window, then readmits them only after a
// single successful canary probe. This is what turns a crashed, partitioned,
// or gray-slow backend from a per-call tax into a one-time detection cost.
#ifndef RPCSCOPE_SRC_RPC_CHANNEL_H_
#define RPCSCOPE_SRC_RPC_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rpc/client.h"

namespace rpcscope {

enum class PickPolicy : int32_t {
  kRoundRobin = 0,
  kRandom = 1,
  // Least outstanding calls among two random backends (power of two choices).
  kLeastLoaded = 2,
  // Lowest base RTT from the client; ties broken round-robin. This is the
  // latency-aware policy the paper's fleet uses across clusters.
  kNearest = 3,
};

// Per-backend circuit breaking. A backend is kHealthy (picked normally),
// kEjected (receives no picks until its window expires), or kProbing (its
// ejection window expired and exactly one canary call is in flight; the
// canary's outcome decides readmission vs. re-ejection with longer backoff).
enum class BackendHealth : int32_t {
  kHealthy = 0,
  kEjected = 1,
  kProbing = 2,
};

struct OutlierEjectionOptions {
  bool enabled = false;
  // Rolling stats window (two half-windows) over which failure rates are
  // measured; samples older than a full window are forgotten.
  SimDuration stats_window = Seconds(1);
  // Minimum outcomes in the window before the ejection rule may fire (a
  // single failed call must not eject a backend).
  int64_t min_samples = 8;
  // Eject when bad outcomes / total outcomes reaches this fraction.
  double failure_rate_threshold = 0.5;
  // If > 0, a *successful* call slower than this counts as a bad outcome —
  // the gray-failure detector: a backend that answers, but 20x slower,
  // should be ejected just like one that errors.
  SimDuration latency_threshold = 0;
  // First ejection lasts base_ejection; each consecutive re-ejection
  // multiplies the window by ejection_backoff, capped at max_ejection.
  SimDuration base_ejection = Seconds(1);
  double ejection_backoff = 2.0;
  SimDuration max_ejection = Seconds(30);
};

struct ChannelOptions {
  PickPolicy policy = PickPolicy::kLeastLoaded;
  // Deterministic subsetting: each client deterministically restricts itself
  // to `subset_size` of the backends (0 = use all). Keeps per-server
  // connection counts bounded at fleet scale while spreading clients evenly
  // across backends.
  int subset_size = 0;
  // Defaults merged into every call (explicit CallOptions fields win).
  SimDuration default_deadline = 0;
  int default_max_retries = 0;
  // If > 0, hedge each call after this delay against a second pick.
  SimDuration hedge_delay = 0;
  OutlierEjectionOptions outlier;
  uint64_t seed = 0xc4a77e1;
  // Service this channel fronts, for policy-plane resolution (docs/POLICY.md):
  // the channel re-resolves its service-wide MethodPolicy from the shard's
  // PolicyEngine whenever the engine's snapshot version changes, and any
  // policy field left at its inherit sentinel falls back to the fields above.
  // -1 resolves only fleet-wide defaults.
  int32_t service_id = -1;
};

// RPCSCOPE_CHECKPOINTED(Channel::CheckpointTo, Channel::RestoreFrom)
class Channel {
 public:
  // `backends` must be non-empty; the channel keeps a reference to `client`.
  Channel(Client* client, std::string service_name, std::vector<MachineId> backends,
          const ChannelOptions& options);

  // Issues a call to a picked backend with the channel's defaults applied.
  void Call(MethodId method, Payload request, CallOptions options, CallCallback done);
  void Call(MethodId method, Payload request, CallCallback done) {
    Call(method, std::move(request), CallOptions{}, std::move(done));
  }

  // The backend the next kRoundRobin/kNearest pick would use (for tests).
  MachineId PeekTarget();

  const std::string& service_name() const { return service_name_; }
  // The active (post-subsetting) backend list under the policy in force.
  const std::vector<MachineId>& backends() const { return backends_; }
  // The full configured backend list, independent of subsetting.
  const std::vector<MachineId>& all_backends() const { return all_backends_; }
  int64_t outstanding(size_t backend_index) const {
    return outstanding_[active_[backend_index]];
  }

  // Ejection introspection (per backend index, post-subsetting). Health state
  // is keyed by the backend itself, not its subset slot, so it survives a
  // policy swap that reshapes the subset.
  BackendHealth health(size_t backend_index) const {
    return health_[active_[backend_index]].health;
  }
  uint64_t picks(size_t backend_index) const {
    return health_[active_[backend_index]].picks;
  }
  uint64_t ejections(size_t backend_index) const {
    return health_[active_[backend_index]].ejections;
  }
  uint64_t canary_probes(size_t backend_index) const {
    return health_[active_[backend_index]].canary_probes;
  }
  uint64_t readmissions(size_t backend_index) const {
    return health_[active_[backend_index]].readmissions;
  }
  // Snapshot version the channel's effective knobs were last resolved from.
  uint64_t policy_version_seen() const { return policy_version_seen_; }
  // Service-wide tax profile in force (ProfileCatalog id; -1 = legacy
  // pipeline). Introspection only — calls resolve their own per-method
  // profile at issue time (docs/TAX.md#assigning-profiles-through-the-policy-plane).
  int32_t tax_profile() const { return effective_tax_profile_; }

  // Checkpoint support (docs/ROBUSTNESS.md#checkpointrestore). Valid only at
  // a quiescent barrier: every outstanding count must be zero. Carries the
  // pick cursor, RNG stream, and full per-backend ejection state so resumed
  // picks and breaker decisions continue bit-for-bit.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  struct BackendState {
    BackendHealth health = BackendHealth::kHealthy;
    SimTime ejected_until = 0;
    int consecutive_ejections = 0;
    // Two half-window failure stats; rotated lazily on outcome arrival.
    int64_t cur_total = 0;
    int64_t cur_bad = 0;
    int64_t prev_total = 0;
    int64_t prev_bad = 0;
    SimTime half_window_start = 0;
    uint64_t picks = 0;
    uint64_t ejections = 0;
    uint64_t canary_probes = 0;
    uint64_t readmissions = 0;
  };

  // Re-resolves the effective knobs from the shard PolicyEngine when its
  // snapshot version changed since the last call (cheap no-op otherwise).
  // Called at the top of Call/PeekTarget, so a barrier swap takes effect on
  // the first pick after the barrier.
  void RefreshPolicy();
  // Applies the current snapshot unconditionally (construction + restore).
  void ApplyCurrentPolicy();
  // Rebuilds backends_/active_/nearest_order_ for the effective subset size.
  void RebuildActiveSet();

  // Picks return *positions* into the active view (backends_/active_);
  // per-backend state is reached through active_[position].
  size_t PickIndex(bool allow_canary);
  // The pre-ejection pick policies, unchanged (also the fast path when the
  // ejector is disabled or every backend is healthy).
  size_t PickAmongAll();
  size_t PickAmongEligible();
  bool IsBadAttempt(StatusCode code, SimDuration latency) const;
  // `index` is a *full* backend index (into all_backends_/health_): outcome
  // attribution must survive subset reshapes while the call was in flight.
  // Invoked once per attempt (via CallOptions::attempt_observer), so a
  // hedged call contributes a sample for each backend it actually touched.
  void OnAttemptOutcome(size_t index, bool canary, StatusCode code, SimDuration latency);
  void Eject(size_t index, SimTime now);

  Client* client_;  // NOLINT(detan-checkpoint-field) structural
  std::string service_name_;
  std::vector<MachineId> all_backends_;  // Full configured list, fixed order.
  // Active view under the policy in force: backends_[p] == all_backends_[active_[p]].
  std::vector<MachineId> backends_;  // NOLINT(detan-checkpoint-field) derived via RebuildActiveSet
  std::vector<size_t> active_;
  ChannelOptions options_;
  Rng rng_;
  size_t round_robin_next_ = 0;
  // Keyed by full backend index; sized to all_backends_. State persists
  // across policy-driven subset reshapes.
  std::vector<int64_t> outstanding_;
  std::vector<size_t> nearest_order_;  // Active positions sorted by base RTT.
  std::vector<BackendState> health_;
  // Healthy active positions, rebuilt per pick when ejections are active
  // (capacity reused across picks; no steady-state allocation).
  std::vector<size_t> eligible_;  // NOLINT(detan-checkpoint-field) contentless scratch
  // Set by PickIndex when the returned pick is a canary probe.
  bool picked_canary_ = false;

  // Effective knobs = policy resolve over constructor options (inherit
  // sentinels fall back to options_). Derived: recomputed from the restored
  // PolicyEngine on RestoreFrom, never serialized.
  uint64_t policy_version_seen_ = 0;
  PickPolicy effective_policy_ = PickPolicy::kLeastLoaded;  // NOLINT(detan-checkpoint-field) derived
  int effective_subset_size_ = 0;          // NOLINT(detan-checkpoint-field) derived
  SimDuration effective_deadline_ = 0;     // NOLINT(detan-checkpoint-field) derived
  int effective_max_retries_ = 0;          // NOLINT(detan-checkpoint-field) derived
  SimDuration effective_hedge_delay_ = 0;  // NOLINT(detan-checkpoint-field) derived
  bool effective_outlier_enabled_ = false;  // NOLINT(detan-checkpoint-field) derived
  int32_t effective_tax_profile_ = -1;      // NOLINT(detan-checkpoint-field) derived
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_CHANNEL_H_

// Channel: a client-side view of a replicated service.
//
// Production RPC stacks do not call machines, they call *services*: a channel
// owns the backend set, picks a target per call (the paper's §4.3 notes the
// fleet balancer is latency-aware, not CPU-aware), applies the service's
// default call policy (deadline, retries, hedging against a second backend),
// and keeps per-backend outstanding-call counts for least-loaded picking.
#ifndef RPCSCOPE_SRC_RPC_CHANNEL_H_
#define RPCSCOPE_SRC_RPC_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rpc/client.h"

namespace rpcscope {

enum class PickPolicy : int32_t {
  kRoundRobin = 0,
  kRandom = 1,
  // Least outstanding calls among two random backends (power of two choices).
  kLeastLoaded = 2,
  // Lowest base RTT from the client; ties broken round-robin. This is the
  // latency-aware policy the paper's fleet uses across clusters.
  kNearest = 3,
};

struct ChannelOptions {
  PickPolicy policy = PickPolicy::kLeastLoaded;
  // Deterministic subsetting: each client deterministically restricts itself
  // to `subset_size` of the backends (0 = use all). Keeps per-server
  // connection counts bounded at fleet scale while spreading clients evenly
  // across backends.
  int subset_size = 0;
  // Defaults merged into every call (explicit CallOptions fields win).
  SimDuration default_deadline = 0;
  int default_max_retries = 0;
  // If > 0, hedge each call after this delay against a second pick.
  SimDuration hedge_delay = 0;
  uint64_t seed = 0xc4a77e1;
};

class Channel {
 public:
  // `backends` must be non-empty; the channel keeps a reference to `client`.
  Channel(Client* client, std::string service_name, std::vector<MachineId> backends,
          const ChannelOptions& options);

  // Issues a call to a picked backend with the channel's defaults applied.
  void Call(MethodId method, Payload request, CallOptions options, CallCallback done);
  void Call(MethodId method, Payload request, CallCallback done) {
    Call(method, std::move(request), CallOptions{}, std::move(done));
  }

  // The backend the next kRoundRobin/kNearest pick would use (for tests).
  MachineId PeekTarget();

  const std::string& service_name() const { return service_name_; }
  const std::vector<MachineId>& backends() const { return backends_; }
  int64_t outstanding(size_t backend_index) const {
    return outstanding_[backend_index];
  }

 private:
  size_t PickIndex();

  Client* client_;
  std::string service_name_;
  std::vector<MachineId> backends_;
  ChannelOptions options_;
  Rng rng_;
  size_t round_robin_next_ = 0;
  std::vector<int64_t> outstanding_;
  std::vector<size_t> nearest_order_;  // Backend indexes sorted by base RTT.
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_CHANNEL_H_

// Shared client/server call types: options, results, and the server reply
// envelope that carries the server-side latency phases back to the client.
#ifndef RPCSCOPE_SRC_RPC_CALL_H_
#define RPCSCOPE_SRC_RPC_CALL_H_

#include <cstdint>
#include <functional>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/topology.h"
#include "src/rpc/codec.h"
#include "src/rpc/cost_model.h"
#include "src/rpc/payload.h"
#include "src/trace/span.h"

namespace rpcscope {

using MethodId = int32_t;

struct CallOptions {
  // Absolute budget for the call from issue time; 0 disables the deadline.
  SimDuration deadline = 0;

  // Request hedging (§4.4 attributes most Cancelled errors to hedging): if no
  // response arrives within hedge_delay, a second attempt is sent to
  // hedge_target; the first response wins and the loser is cancelled.
  SimDuration hedge_delay = 0;  // 0 disables hedging.
  MachineId hedge_target = -1;

  // Retries on UNAVAILABLE (e.g. no server at the target machine): truncated
  // exponential backoff with full jitter — attempt k waits
  // U(0, min(retry_backoff * 2^k, retry_backoff_cap)). Retries additionally
  // draw from the client's retry budget when one is configured
  // (ClientOptions::retry_budget), so a dead backend cannot trigger a
  // fleet-wide retry storm.
  int max_retries = 0;
  SimDuration retry_backoff = Millis(5);
  SimDuration retry_backoff_cap = Seconds(2);

  // Per-attempt transport watchdog: if an attempt has produced no reply
  // after this long (frame lost to a partition / packet loss, or a server
  // that died without a reset), the attempt fails with UNAVAILABLE so
  // retries and hedges can proceed instead of the call hanging until its
  // deadline (or forever). 0 disables the watchdog.
  SimDuration attempt_timeout = 0;

  // Deadline propagation: absolute deadline inherited from the parent call.
  // The effective deadline is clamped so this call never outlives the
  // parent's remaining budget; a call issued after the parent's deadline
  // fails immediately without burning downstream cycles. 0 = no parent
  // budget. ServerCall::ChildOptions() fills this in for nested calls.
  SimTime parent_deadline_time = 0;

  // Trace linkage; zero trace_id starts a new root trace.
  TraceId trace_id = 0;
  SpanId parent_span_id = 0;

  // Service the target method belongs to (recorded on spans; -1 = unknown).
  int32_t service_id = -1;

  // Per-attempt outcome observer, invoked once per attempt as its span is
  // recorded, with the attempt's own target, status, and latency. Channel
  // sets this for outlier ejection: the *call* outcome can't attribute health
  // (a hedge that rescues a call must not launder the primary backend's
  // failure into a success sample). Hedge losers report kCancelled.
  std::function<void(MachineId target, StatusCode code, SimDuration latency)>
      attempt_observer;
};

struct CallResult {
  Status status;
  LatencyBreakdown latency;
  CycleBreakdown cycles;  // Client + server stack cycles plus application cycles.
  int64_t request_wire_bytes = 0;
  int64_t response_wire_bytes = 0;
  int attempts = 0;
  TraceId trace_id = 0;
  SpanId span_id = 0;  // Span of the winning attempt.
};

using CallCallback = std::function<void(const CallResult& result, Payload response)>;

// Server-side phase durations reported back with every reply. The response
// travels as an encoded WireFrame; the client decodes it on its receive path.
struct ServerReply {
  Status status;
  WireFrame response_frame;
  // Server-streaming responses (§2.1 excludes these from Dapper sampling;
  // rpcscope implements them as an extension): number of chunks delivered and
  // the total on-wire bytes across all chunks. chunk_count == 0 means unary.
  int chunk_count = 0;
  int64_t stream_wire_bytes = 0;
  SimDuration recv_queue = 0;  // rx processing + wait for an app worker.
  SimDuration app_time = 0;
  SimDuration send_queue = 0;
  SimDuration resp_proc = 0;  // Server-side share of response proc+stack.
  SimDuration resp_wire = 0;
  // Echo of IncomingRequest::request_wire: the request's one-way wire latency
  // rides along with the reply so the client's attempt record is written only
  // in the client's own shard domain (never from the server's).
  SimDuration request_wire = 0;
  CycleBreakdown server_cycles;
  // Cycles the server ran on its offload accelerator for this call (rx + tx
  // sides; docs/TAX.md). 0 unless an offload profile was resolved. Rides the
  // reply so the client's attempt record owns the whole call's device total.
  double device_cycles = 0;
  // Colocated fast path (docs/POLICY.md#colocated-bypass): the response was
  // never encoded — local_response is the handler's payload handed back by
  // buffer, response_frame carries only the byte accounting (wire_bytes 0).
  bool colocated = false;
  Payload local_response;
};

using ServerResponder = std::function<void(ServerReply reply)>;

// A request as delivered to a server by the fabric (still encoded; the
// server's receive pipeline decodes it).
struct IncomingRequest {
  MethodId method = -1;
  WireFrame request_frame;
  MachineId client_machine = -1;
  SimTime deadline_time = 0;  // Absolute; 0 = none.
  TraceId trace_id = 0;
  SpanId span_id = 0;
  // One-way wire latency the request experienced; echoed back on the reply
  // (ServerReply::request_wire) for cross-domain-safe latency accounting.
  SimDuration request_wire = 0;
  // Service the method belongs to (-1 = unknown); lets the server resolve
  // per-service policy (shedding) without a reverse method registry.
  int32_t service_id = -1;
  // Colocated fast path: caller and callee share a MachineId, the request was
  // never encoded — local_payload is the request handed over by buffer and
  // request_frame carries only byte accounting (wire_bytes 0, crc unused).
  bool colocated = false;
  Payload local_payload;
  ServerResponder respond;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_CALL_H_

// RpcSystem: the shared substrate an RPC deployment runs on.
//
// Owns the topology, the shard domains, and the machine -> Server routing
// table. The fleet is partitioned by cluster into `num_shards` SimDomains
// (docs/PARALLEL.md); each shard owns its own simulator/event queue, fabric,
// RNG stream, trace collector, and metric registry, so a domain's round
// execution touches no other domain's state. Cross-shard RPC frames travel
// exclusively through the fabric, which posts them into the destination
// domain's mailbox under the executor's conservative lookahead.
//
// num_shards == 1 (the default) is bit-for-bit the legacy single-threaded
// configuration: one domain, seeds derived exactly as before, sim().Run()
// drives it. Servers and Clients are constructed against a system, pinned to
// the shard owning their machine, and must not outlive it.
#ifndef RPCSCOPE_SRC_RPC_RPC_SYSTEM_H_
#define RPCSCOPE_SRC_RPC_RPC_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/monitor/metrics.h"
#include "src/monitor/stream.h"
#include "src/net/fabric.h"
#include "src/net/topology.h"
#include "src/policy/policy.h"
#include "src/rpc/cost_model.h"
#include "src/rpc/stage_model.h"
#include "src/sim/domain.h"
#include "src/sim/lookahead.h"
#include "src/sim/simulator.h"
#include "src/trace/collector.h"

namespace rpcscope {

class Server;
struct Span;
class CheckpointWriter;
class CheckpointReader;

struct RpcSystemOptions {
  TopologyOptions topology;
  FabricOptions fabric;
  TraceCollector::Options tracing;
  CycleCostModel costs;
  uint64_t seed = 42;
  uint64_t encryption_key = 0x9a7bull;
  // Event-queue implementation for the simulator. kLadder is the production
  // default; kBinaryHeap is the reference for the cross-validation test and
  // bench_simcore (both produce bit-for-bit identical event streams).
  SimQueueKind sim_queue = SimQueueKind::kLadder;
  // Fraction of spans carrying CPU-cycle annotations (§4.2: not all samples
  // are annotated with cost information).
  double cpu_annotation_probability = 0.5;
  // Machine speed heterogeneity: speeds are uniform in [1-spread, 1+spread].
  double machine_speed_spread = 0.15;

  // Number of shard domains the fleet is partitioned into, by cluster:
  // ShardOf(machine) = floor(ClusterOf(machine) * num_shards / num_clusters),
  // i.e. contiguous cluster blocks aligned with the topology hierarchy (see
  // ShardOfCluster). Clamped to [1, num_clusters]. 1 keeps the legacy
  // single-domain configuration.
  int num_shards = 1;

  // Observer invoked for every span the stack produces (after sampling is
  // applied by the collector, independently of whether it was kept). Use it
  // to feed live monitoring (e.g. WindowedDistribution per service) without
  // retaining spans. Sharded runs invoke it concurrently from worker
  // threads: it must be thread-safe (or null) when num_shards > 1.
  std::function<void(const Span&)> span_observer;

  // Managed policy plane (src/policy/policy.h, docs/POLICY.md). The timeline's
  // initial snapshot is in force from time 0; staged snapshots are applied by
  // every shard's PolicyEngine at conservative-round barriers, so a hot-swap
  // is deterministic and bit-for-bit identical for any worker count. The
  // default (empty) timeline reproduces pre-policy behavior exactly: every
  // component falls back to its own constructor-time options.
  PolicyTimeline policy;

  // Hardware-offload tax profiles assignable through the policy plane
  // (docs/TAX.md): MethodPolicy::tax_profile indexes this catalog. An empty
  // catalog (the default) is replaced with BuiltinProfileCatalog() at
  // construction, so built-in profile ids are always resolvable; policies
  // that never set tax_profile keep the legacy host pipeline bit-for-bit.
  ProfileCatalog tax_profiles;

  // Streaming observability pipeline (src/monitor/stream.h). When
  // observability.streaming is true (the default), every shard gets a
  // ShardStreamSink tapping its kept-span stream, and the system owns an
  // ObservabilityHub fed at conservative-round barriers (and once more after
  // the run). Aggregates at the hub are bit-for-bit worker-count invariant
  // and identical to replaying MergedSpans() post-run.
  ObservabilityOptions observability;
};

// RPCSCOPE_CHECKPOINTED(RpcSystem::SerializeGlobal, RpcSystem::RestoreGlobal)
class RpcSystem {
 public:
  // Everything a shard domain owns. Components pinned to a shard (clients,
  // servers, fault events) go through their ShardContext, never through
  // another shard's — that isolation is what makes parallel rounds race-free
  // and deterministic.
  struct ShardContext {
    ShardContext(int id, int num_domains, SimQueueKind queue_kind, const Topology* topology,
                 const FabricOptions& fabric_options, const TraceCollector::Options& trace_options,
                 uint64_t rng_seed)
        : domain(id, num_domains, queue_kind),
          fabric(&domain.sim(), topology, fabric_options),
          tracer(trace_options),
          rng(rng_seed) {}

    Simulator& sim() { return domain.sim(); }
    int id() const { return domain.id(); }

    SimDomain domain;
    Fabric fabric;
    TraceCollector tracer;
    MetricRegistry metrics;
    Rng rng;
    // Shard-local view of the system's policy timeline. Advanced only at
    // barriers on the coordinator (RpcSystem::AdvancePolicies), read by this
    // shard's channels/clients/servers during round execution — the same
    // phase split that keeps sink flushes race-free.
    PolicyEngine policy;
    // Shard-local streaming sink (null when observability.streaming is off).
    // Written only from this shard's round execution; drained only at
    // barriers on the coordinator (RpcSystem::FlushObservability).
    std::unique_ptr<ShardStreamSink> stream_sink;
  };

  explicit RpcSystem(const RpcSystemOptions& options);

  // Legacy single-domain accessors: shard 0. Correct whenever num_shards == 1
  // (the default); sharded code paths must use ShardFor/shard instead.
  Simulator& sim() { return shards_[0]->sim(); }
  Fabric& fabric() { return shards_[0]->fabric; }
  TraceCollector& tracer() { return shards_[0]->tracer; }
  // Monarch-style live counters: every resilience decision (retry, budget
  // exhaustion, ejection, shed, injected fault) is counted so error mixes can
  // be measured under chaos. Components cache Counter pointers at
  // construction — GetCounter returns stable references — so the per-call
  // cost is a single add. Sharded runs count into their own shard's registry;
  // aggregate with MergedCounter/MergedDistribution.
  MetricRegistry& metrics() { return shards_[0]->metrics; }
  Rng& rng() { return shards_[0]->rng; }

  const Topology& topology() const { return topology_; }
  const CycleCostModel& costs() const { return options_.costs; }
  const RpcSystemOptions& options() const { return options_; }

  // Offload-profile catalog (never empty — see RpcSystemOptions::tax_profiles).
  const ProfileCatalog& tax_profiles() const { return options_.tax_profiles; }
  // nullptr for the inherit sentinel (-1) and unknown ids: callers fall back
  // to the legacy host pipeline.
  const TaxProfile* TaxProfileById(int32_t id) const { return options_.tax_profiles.Get(id); }

  // Shard-domain structure. Clusters are partitioned into contiguous blocks:
  // shard s owns clusters [ceil(s*C/N), ceil((s+1)*C/N)). Because cluster ids
  // are assigned hierarchically (continent-major), block boundaries coincide
  // with topology boundaries, so clusters that are physically close share a
  // shard and the cross-shard lookahead bounds stay wide — the key input to
  // the per-pair lookahead matrix (docs/PARALLEL.md).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardOfCluster(ClusterId cluster) const {
    return static_cast<int>(static_cast<int64_t>(cluster) * num_shards() /
                            topology_.num_clusters());
  }
  int ShardOf(MachineId machine) const { return ShardOfCluster(topology_.ClusterOf(machine)); }
  ShardContext& shard(int s) { return *shards_[static_cast<size_t>(s)]; }
  ShardContext& ShardFor(MachineId machine) { return shard(ShardOf(machine)); }
  // Global conservative lookahead: minimum cross-shard one-way propagation
  // latency over all cluster pairs in different shards (the matrix's smallest
  // off-diagonal entry). 0 when num_shards == 1. The executor itself uses the
  // full per-pair matrix, which is strictly wider for most pairs.
  SimDuration lookahead() const { return lookahead_; }
  // Per-shard-pair conservative bounds: entry (s, d) is the minimum one-way
  // propagation latency between any cluster of shard s and any cluster of
  // shard d. Empty when num_shards == 1.
  const LookaheadMatrix& lookahead_matrix() const { return lookahead_matrix_; }

  // Runs every shard domain to completion on `worker_threads` host threads
  // (conservative PDES, src/sim/parallel/). Returns total events executed.
  // For a fixed seed the result — digests, merged histograms, trace trees —
  // is bit-for-bit identical for any worker count. With num_shards == 1 this
  // is exactly sim().Run().
  uint64_t RunSharded(int worker_threads = 1);

  // Executor stats from the last RunSharded call (0 before any call;
  // single-domain runs report 1 round — the whole run is one uninterrupted
  // round on the executor's fast path).
  uint64_t last_rounds() const { return last_rounds_; }
  uint64_t last_cross_domain_events() const { return last_cross_domain_events_; }

  // Epoch-segment variant of RunSharded for checkpointed runs (docs/
  // ROBUSTNESS.md#checkpointrestore): identical execution, but the final
  // observability flush advances only to `flush_watermark` (the epoch end)
  // instead of kMaxSimTime, so hub windows spanning the boundary stay open
  // for the next segment. Pass kMaxSimTime on the last epoch to close out.
  uint64_t RunShardedSegment(int worker_threads, SimTime flush_watermark);

  // Re-synchronizes every shard clock to `barrier` after a segment drains
  // (docs/ROBUSTNESS.md#checkpointrestore). Cascades past the epoch end leave
  // shard clocks scattered beyond the boundary; the next segment's arrivals
  // and cross-shard deliveries start at the boundary, so without a resync a
  // behind-shard could address an ahead-shard's past. Requires quiescence
  // (fails with FailedPrecondition if any shard still has pending events).
  [[nodiscard]] Status ResyncShards(SimTime barrier);

  // Checkpoint support. SerializeShard writes one shard's substrate state —
  // simulator clock/digest, fabric, tracer, metric registry, shard RNG,
  // stream sink — as a sequence of sections; component state (servers,
  // clients, channels) is appended by the owning fleet layer into the same
  // writer. Valid only at a quiescent barrier (queues drained, outboxes
  // empty); fails with FailedPrecondition otherwise. SerializeGlobal writes
  // the cross-shard state: the observability hub and executor accumulators.
  [[nodiscard]] Status SerializeShard(int s, CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreShard(int s, CheckpointReader& r);
  [[nodiscard]] Status SerializeGlobal(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreGlobal(CheckpointReader& r);

  // The streaming aggregation plane; null when observability.streaming is
  // off. RunSharded feeds it at every round barrier and flushes it once more
  // (watermark kMaxSimTime) before returning, so after a run its aggregate
  // state equals ReplayIntoHub(MergedSpans(), ...) bit-for-bit.
  ObservabilityHub* hub() { return hub_.get(); }
  const ObservabilityHub* hub() const { return hub_.get(); }
  // Drains every shard sink into the hub in canonical shard order, then
  // advances the hub watermark (closing windows that ended at or before it).
  // Called from the executor's barrier hook; callers driving a shard's
  // simulator directly (legacy sim().Run()) may call it manually after the
  // run with watermark kMaxSimTime. No-op when streaming is off.
  void FlushObservability(SimTime watermark);

  // Applies every policy-timeline stage with at <= watermark on every shard's
  // engine (canonical shard order; coordinator-only, like FlushObservability).
  // Called from the executor's barrier hook and at segment/final flushes so
  // all shards swap at the same virtual-time barrier for any worker count.
  // No-op when the timeline has no stages.
  void AdvancePolicies(SimTime watermark);

  // Canonical cross-shard merges. Deterministic for a fixed seed regardless
  // of worker count; with num_shards == 1 they reduce to the legacy values.
  uint64_t TotalEventsExecuted() const;
  // FNV-1a fold of every shard's (event_digest, events_executed) in shard
  // order — the sharded analogue of Simulator::event_digest().
  uint64_t ShardedEventDigest() const;
  // All shards' spans, sorted by (start_time, trace_id, span_id). Record
  // order within one shard is deterministic but interleaving across shards is
  // not meaningful, hence the canonical sort.
  std::vector<Span> MergedSpans() const;
  // Sum of a counter across shard registries (0 where absent).
  double MergedCounter(const std::string& name) const;
  // Merge of a distribution across shard registries via LogHistogram::Merge
  // (layout equality CHECK-enforced). Default-layout empty result if absent.
  LogHistogram MergedDistribution(const std::string& name) const;

  // Per-machine relative CPU speed (deterministic; models CPU generations).
  double MachineSpeed(MachineId machine) const;

  // Server routing. RegisterServer replaces any previous registration. The
  // table is written only at Server construction/destruction (setup and
  // teardown, outside any run) — crash/restart fault events flip the Server's
  // own up-state, not this map — so sharded runs read it concurrently without
  // synchronization.
  void RegisterServer(MachineId machine, Server* server);
  void UnregisterServer(MachineId machine);
  Server* ServerAt(MachineId machine) const;

 private:
  RpcSystemOptions options_;
  Topology topology_;              // NOLINT(detan-checkpoint-field) structural
  SimDuration lookahead_ = 0;      // NOLINT(detan-checkpoint-field) derived from topology
  LookaheadMatrix lookahead_matrix_;  // NOLINT(detan-checkpoint-field) derived from topology
  std::vector<std::unique_ptr<ShardContext>> shards_;
  std::unique_ptr<ObservabilityHub> hub_;
  uint64_t last_rounds_ = 0;
  uint64_t last_cross_domain_events_ = 0;
  std::unordered_map<MachineId, Server*> servers_;  // NOLINT(detan-checkpoint-field) structural
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_RPC_SYSTEM_H_

// RpcSystem: the shared substrate an RPC deployment runs on.
//
// Owns the simulator, topology, fabric, trace collector, and cost model, and
// maintains the machine -> Server routing table. Servers and Clients are
// constructed against a system and must not outlive it.
#ifndef RPCSCOPE_SRC_RPC_RPC_SYSTEM_H_
#define RPCSCOPE_SRC_RPC_RPC_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/monitor/metrics.h"
#include "src/net/fabric.h"
#include "src/net/topology.h"
#include "src/rpc/cost_model.h"
#include "src/sim/simulator.h"
#include "src/trace/collector.h"

namespace rpcscope {

class Server;

struct RpcSystemOptions {
  TopologyOptions topology;
  FabricOptions fabric;
  TraceCollector::Options tracing;
  CycleCostModel costs;
  uint64_t seed = 42;
  uint64_t encryption_key = 0x9a7bull;
  // Event-queue implementation for the simulator. kLadder is the production
  // default; kBinaryHeap is the reference for the cross-validation test and
  // bench_simcore (both produce bit-for-bit identical event streams).
  SimQueueKind sim_queue = SimQueueKind::kLadder;
  // Fraction of spans carrying CPU-cycle annotations (§4.2: not all samples
  // are annotated with cost information).
  double cpu_annotation_probability = 0.5;
  // Machine speed heterogeneity: speeds are uniform in [1-spread, 1+spread].
  double machine_speed_spread = 0.15;

  // Observer invoked for every span the stack produces (after sampling is
  // applied by the collector, independently of whether it was kept). Use it
  // to feed live monitoring (e.g. WindowedDistribution per service) without
  // retaining spans.
  std::function<void(const Span&)> span_observer;
};

class RpcSystem {
 public:
  explicit RpcSystem(const RpcSystemOptions& options);

  Simulator& sim() { return sim_; }
  const Topology& topology() const { return topology_; }
  Fabric& fabric() { return fabric_; }
  TraceCollector& tracer() { return tracer_; }
  // Monarch-style live counters for the whole deployment: every resilience
  // decision (retry, budget exhaustion, ejection, shed, injected fault) is
  // counted here so error mixes can be measured under chaos. Components
  // cache Counter pointers at construction — GetCounter returns stable
  // references — so the per-call cost is a single add.
  MetricRegistry& metrics() { return metrics_; }
  const CycleCostModel& costs() const { return options_.costs; }
  const RpcSystemOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

  // Per-machine relative CPU speed (deterministic; models CPU generations).
  double MachineSpeed(MachineId machine) const;

  // Server routing. RegisterServer replaces any previous registration.
  void RegisterServer(MachineId machine, Server* server);
  void UnregisterServer(MachineId machine);
  Server* ServerAt(MachineId machine) const;

 private:
  RpcSystemOptions options_;
  Simulator sim_{options_.sim_queue};
  Topology topology_;
  Fabric fabric_;
  TraceCollector tracer_;
  MetricRegistry metrics_;
  Rng rng_;
  std::unordered_map<MachineId, Server*> servers_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_RPC_SYSTEM_H_

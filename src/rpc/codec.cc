#include "src/rpc/codec.h"

#include <cmath>
#include <utility>

#include "src/wire/checksum.h"
#include "src/wire/cipher.h"
#include "src/wire/compressor.h"

namespace rpcscope {

WireFrame EncodeFrame(const Payload& payload, uint64_t key, uint64_t nonce) {
  WireFrame frame;
  frame.nonce = nonce;
  frame.payload_bytes = payload.SerializedSize();
  if (payload.is_real()) {
    frame.real = true;
    std::vector<uint8_t> serialized = payload.message().Serialize();
    frame.body = RatelCompress(serialized);
    frame.crc = Crc32c(frame.body);
    StreamCipher cipher(key, nonce);
    cipher.Apply(frame.body);
    frame.wire_bytes = static_cast<int64_t>(frame.body.size()) + kFrameHeaderBytes;
  } else {
    frame.real = false;
    const double body = static_cast<double>(frame.payload_bytes) * payload.assumed_ratio();
    frame.wire_bytes = static_cast<int64_t>(std::llround(body)) + kFrameHeaderBytes;
  }
  return frame;
}

Result<Payload> DecodeFrame(const WireFrame& frame, uint64_t key) {
  if (!frame.real) {
    return Payload::Modeled(frame.payload_bytes);
  }
  std::vector<uint8_t> body = frame.body;
  StreamCipher cipher(key, frame.nonce);
  cipher.Apply(body);
  if (Crc32c(body) != frame.crc) {
    return Status(StatusCode::kDataLoss, "frame checksum mismatch");
  }
  Result<std::vector<uint8_t>> decompressed = RatelDecompress(body);
  if (!decompressed.ok()) {
    return decompressed.status();
  }
  Result<Message> message = Message::Parse(decompressed.value());
  if (!message.ok()) {
    return message.status();
  }
  return Payload::Real(std::move(message.value()));
}

}  // namespace rpcscope

#include "src/rpc/codec.h"

#include <cmath>
#include <utility>

#include "src/wire/checksum.h"
#include "src/wire/cipher.h"
#include "src/wire/compressor.h"

namespace rpcscope {

int64_t EstimateWireBytes(const Payload& payload) {
  const double body = static_cast<double>(payload.SerializedSize()) * payload.assumed_ratio();
  return static_cast<int64_t>(std::llround(body)) + kFrameHeaderBytes;
}

WireFrame EncodeFrame(const Payload& payload, uint64_t key, uint64_t nonce,
                      WireScratch& scratch) {
  WireFrame frame;
  frame.nonce = nonce;
  frame.payload_bytes = payload.SerializedSize();
  if (payload.is_real()) {
    frame.real = true;
    scratch.serialized.clear();
    scratch.serialized.reserve(payload.message().ByteSize());
    payload.message().SerializeTo(scratch.serialized);
    RatelCompress(scratch.serialized, scratch.lz, frame.body);
    frame.crc = Crc32c(frame.body);
    StreamCipher cipher(key, nonce);
    cipher.Apply(frame.body);
    frame.wire_bytes = static_cast<int64_t>(frame.body.size()) + kFrameHeaderBytes;
  } else {
    frame.real = false;
    const double body = static_cast<double>(frame.payload_bytes) * payload.assumed_ratio();
    frame.wire_bytes = static_cast<int64_t>(std::llround(body)) + kFrameHeaderBytes;
  }
  return frame;
}

WireFrame EncodeFrame(const Payload& payload, uint64_t key, uint64_t nonce) {
  WireScratch scratch;
  return EncodeFrame(payload, key, nonce, scratch);
}

Result<Payload> DecodeFrame(const WireFrame& frame, uint64_t key,
                            WireScratch& scratch) {
  if (!frame.real) {
    return Payload::Modeled(frame.payload_bytes);
  }
  scratch.decrypted.assign(frame.body.begin(), frame.body.end());
  StreamCipher cipher(key, frame.nonce);
  cipher.Apply(scratch.decrypted);
  if (Crc32c(scratch.decrypted) != frame.crc) {
    return Status(StatusCode::kDataLoss, "frame checksum mismatch");
  }
  Status decompressed = RatelDecompress(scratch.decrypted, scratch.decompressed);
  if (!decompressed.ok()) {
    return decompressed;
  }
  Result<Message> message = Message::Parse(scratch.decompressed);
  if (!message.ok()) {
    return message.status();
  }
  return Payload::Real(std::move(message.value()));
}

Result<Payload> DecodeFrame(const WireFrame& frame, uint64_t key) {
  WireScratch scratch;
  return DecodeFrame(frame, key, scratch);
}

}  // namespace rpcscope

#include "src/rpc/channel.h"

#include <algorithm>
#include <cassert>

namespace rpcscope {

Channel::Channel(Client* client, std::string service_name, std::vector<MachineId> backends,
                 const ChannelOptions& options)
    : client_(client),
      service_name_(std::move(service_name)),
      backends_(std::move(backends)),
      options_(options),
      rng_(options.seed),
      outstanding_(backends_.size(), 0) {
  assert(client != nullptr);
  assert(!backends_.empty());
  // Deterministic subsetting: shuffle the backend list with a client-derived
  // seed and keep the first subset_size entries. Distinct clients land on
  // distinct-but-evenly-spread subsets; the same client always gets the same
  // subset.
  if (options_.subset_size > 0 &&
      options_.subset_size < static_cast<int>(backends_.size())) {
    Rng shuffle_rng(Mix64(options_.seed ^ static_cast<uint64_t>(client_->machine())));
    for (size_t i = backends_.size(); i > 1; --i) {
      std::swap(backends_[i - 1], backends_[shuffle_rng.NextBounded(i)]);
    }
    backends_.resize(static_cast<size_t>(options_.subset_size));
    outstanding_.assign(backends_.size(), 0);
  }
  // Precompute the latency-aware order once: base RTTs are static.
  nearest_order_.resize(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    nearest_order_[i] = i;
  }
  const Topology& topo = client_->system().topology();
  const MachineId self = client_->machine();
  std::stable_sort(nearest_order_.begin(), nearest_order_.end(),
                   [&](size_t a, size_t b) {
                     return topo.BaseRtt(self, backends_[a]) < topo.BaseRtt(self, backends_[b]);
                   });
}

size_t Channel::PickIndex() {
  switch (options_.policy) {
    case PickPolicy::kRoundRobin:
      return round_robin_next_++ % backends_.size();
    case PickPolicy::kRandom:
      return rng_.NextBounded(backends_.size());
    case PickPolicy::kLeastLoaded: {
      const size_t a = rng_.NextBounded(backends_.size());
      const size_t b = rng_.NextBounded(backends_.size());
      return outstanding_[a] <= outstanding_[b] ? a : b;
    }
    case PickPolicy::kNearest:
      // Prefer the closest backend; spill to the next-closest when it has
      // twice the outstanding calls of the runner-up (coarse overload guard).
      for (size_t i = 0; i + 1 < nearest_order_.size(); ++i) {
        const size_t here = nearest_order_[i];
        const size_t next = nearest_order_[i + 1];
        if (outstanding_[here] <= 2 * outstanding_[next] + 4) {
          return here;
        }
      }
      return nearest_order_.back();
  }
  return 0;
}

MachineId Channel::PeekTarget() {
  if (options_.policy == PickPolicy::kRoundRobin) {
    return backends_[round_robin_next_ % backends_.size()];
  }
  if (options_.policy == PickPolicy::kNearest) {
    return backends_[nearest_order_.front()];
  }
  return backends_[0];
}

void Channel::Call(MethodId method, Payload request, CallOptions options, CallCallback done) {
  const size_t index = PickIndex();
  if (options.deadline == 0) {
    options.deadline = options_.default_deadline;
  }
  if (options.max_retries == 0) {
    options.max_retries = options_.default_max_retries;
  }
  if (options_.hedge_delay > 0 && options.hedge_delay == 0 && backends_.size() > 1) {
    options.hedge_delay = options_.hedge_delay;
    size_t alt = PickIndex();
    if (alt == index) {
      alt = (index + 1) % backends_.size();
    }
    options.hedge_target = backends_[alt];
  }
  ++outstanding_[index];
  client_->Call(backends_[index], method, std::move(request), options,
                [this, index, done = std::move(done)](const CallResult& result,
                                                      Payload response) {
                  --outstanding_[index];
                  done(result, std::move(response));
                });
}

}  // namespace rpcscope

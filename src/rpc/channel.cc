#include "src/rpc/channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/checkpoint/checkpoint.h"
#include "src/rpc/rpc_system.h"

namespace rpcscope {

Channel::Channel(Client* client, std::string service_name, std::vector<MachineId> backends,
                 const ChannelOptions& options)
    : client_(client),
      service_name_(std::move(service_name)),
      all_backends_(std::move(backends)),
      options_(options),
      rng_(options.seed),
      outstanding_(all_backends_.size(), 0),
      health_(all_backends_.size()) {
  assert(client != nullptr);
  assert(!all_backends_.empty());
  eligible_.reserve(all_backends_.size());
  ApplyCurrentPolicy();
}

void Channel::RefreshPolicy() {
  if (client_->shard_context().policy.version() == policy_version_seen_) {
    return;
  }
  ApplyCurrentPolicy();
}

void Channel::ApplyCurrentPolicy() {
  const PolicyEngine& engine = client_->shard_context().policy;
  const MethodPolicy p = engine.current().Resolve(options_.service_id, /*method_id=*/-1);
  policy_version_seen_ = engine.version();
  effective_policy_ =
      p.pick_policy >= 0 ? static_cast<PickPolicy>(p.pick_policy) : options_.policy;
  const int subset =
      p.subset_size >= 0 ? static_cast<int>(p.subset_size) : options_.subset_size;
  effective_deadline_ =
      p.default_deadline >= 0 ? p.default_deadline : options_.default_deadline;
  effective_max_retries_ =
      p.max_retries >= 0 ? static_cast<int>(p.max_retries) : options_.default_max_retries;
  effective_hedge_delay_ = p.hedge_delay >= 0 ? p.hedge_delay : options_.hedge_delay;
  effective_outlier_enabled_ =
      p.outlier_enabled >= 0 ? p.outlier_enabled != 0 : options_.outlier.enabled;
  effective_tax_profile_ = p.tax_profile;
  if (subset != effective_subset_size_ || backends_.empty()) {
    effective_subset_size_ = subset;
    RebuildActiveSet();
  }
}

void Channel::RebuildActiveSet() {
  const size_t n = all_backends_.size();
  active_.resize(n);
  std::iota(active_.begin(), active_.end(), size_t{0});
  // Deterministic subsetting: shuffle the backend indexes with a
  // client-derived seed and keep the first subset_size entries. Distinct
  // clients land on distinct-but-evenly-spread subsets; the same client
  // always gets the same subset — including after a checkpoint restore or a
  // policy swap back to the same subset size.
  if (effective_subset_size_ > 0 && effective_subset_size_ < static_cast<int>(n)) {
    Rng shuffle_rng(Mix64(options_.seed ^ static_cast<uint64_t>(client_->machine())));
    for (size_t i = n; i > 1; --i) {
      std::swap(active_[i - 1], active_[shuffle_rng.NextBounded(i)]);
    }
    active_.resize(static_cast<size_t>(effective_subset_size_));
  }
  backends_.clear();
  backends_.reserve(active_.size());
  for (size_t full : active_) {
    backends_.push_back(all_backends_[full]);
  }
  // Precompute the latency-aware order for the active view: base RTTs are
  // static, the view changes only on a policy swap.
  nearest_order_.resize(backends_.size());
  std::iota(nearest_order_.begin(), nearest_order_.end(), size_t{0});
  const Topology& topo = client_->system().topology();
  const MachineId self = client_->machine();
  std::stable_sort(nearest_order_.begin(), nearest_order_.end(),
                   [&](size_t a, size_t b) {
                     return topo.BaseRtt(self, backends_[a]) < topo.BaseRtt(self, backends_[b]);
                   });
}

size_t Channel::PickAmongAll() {
  switch (effective_policy_) {
    case PickPolicy::kRoundRobin:
      return round_robin_next_++ % backends_.size();
    case PickPolicy::kRandom:
      return rng_.NextBounded(backends_.size());
    case PickPolicy::kLeastLoaded: {
      const size_t a = rng_.NextBounded(backends_.size());
      const size_t b = rng_.NextBounded(backends_.size());
      return outstanding_[active_[a]] <= outstanding_[active_[b]] ? a : b;
    }
    case PickPolicy::kNearest:
      // Prefer the closest backend; spill to the next-closest when it has
      // twice the outstanding calls of the runner-up (coarse overload guard).
      for (size_t i = 0; i + 1 < nearest_order_.size(); ++i) {
        const size_t here = nearest_order_[i];
        const size_t next = nearest_order_[i + 1];
        if (outstanding_[active_[here]] <= 2 * outstanding_[active_[next]] + 4) {
          return here;
        }
      }
      return nearest_order_.back();
  }
  return 0;
}

size_t Channel::PickAmongEligible() {
  switch (effective_policy_) {
    case PickPolicy::kRoundRobin:
      return eligible_[round_robin_next_++ % eligible_.size()];
    case PickPolicy::kRandom:
      return eligible_[rng_.NextBounded(eligible_.size())];
    case PickPolicy::kLeastLoaded: {
      const size_t a = eligible_[rng_.NextBounded(eligible_.size())];
      const size_t b = eligible_[rng_.NextBounded(eligible_.size())];
      return outstanding_[active_[a]] <= outstanding_[active_[b]] ? a : b;
    }
    case PickPolicy::kNearest: {
      // Same spill rule, over the nearest ordering restricted to eligible
      // backends: compare each eligible backend against the next eligible one.
      size_t prev = backends_.size();  // Sentinel: no eligible seen yet.
      for (size_t i = 0; i < nearest_order_.size(); ++i) {
        const size_t pos = nearest_order_[i];
        if (health_[active_[pos]].health != BackendHealth::kHealthy) {
          continue;
        }
        if (prev != backends_.size() &&
            outstanding_[active_[prev]] <= 2 * outstanding_[active_[pos]] + 4) {
          return prev;
        }
        prev = pos;
      }
      return prev;
    }
  }
  return eligible_.front();
}

size_t Channel::PickIndex(bool allow_canary) {
  picked_canary_ = false;
  if (!effective_outlier_enabled_) {
    return PickAmongAll();
  }
  const SimTime now = client_->shard_context().sim().Now();
  // Expired ejection windows turn into canary probes: the lowest-position
  // candidate gets exactly one probe call (it is kProbing — ineligible for
  // normal picks — until the canary's outcome arrives).
  if (allow_canary) {
    for (size_t i = 0; i < backends_.size(); ++i) {
      BackendState& bs = health_[active_[i]];
      if (bs.health == BackendHealth::kEjected && now >= bs.ejected_until) {
        bs.health = BackendHealth::kProbing;
        ++bs.canary_probes;
        picked_canary_ = true;
        return i;
      }
    }
  }
  eligible_.clear();
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (health_[active_[i]].health == BackendHealth::kHealthy) {
      eligible_.push_back(i);
    }
  }
  if (eligible_.size() == backends_.size()) {
    return PickAmongAll();
  }
  if (eligible_.empty()) {
    // Fail open: with every backend ejected, picking an ejected backend
    // still beats failing every call locally (matches Envoy's max-ejection
    // escape hatch).
    return PickAmongAll();
  }
  return PickAmongEligible();
}

bool Channel::IsBadAttempt(StatusCode code, SimDuration latency) const {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
    case StatusCode::kUnknown:
    case StatusCode::kDataLoss:
      return true;
    default:
      break;
  }
  // Gray-failure detection: an answer that took too long is as bad as an
  // error for the caller's tail latency.
  return code == StatusCode::kOk && options_.outlier.latency_threshold > 0 &&
         latency > options_.outlier.latency_threshold;
}

void Channel::Eject(size_t index, SimTime now) {
  BackendState& bs = health_[index];
  bs.health = BackendHealth::kEjected;
  ++bs.ejections;
  const OutlierEjectionOptions& opts = options_.outlier;
  double duration = static_cast<double>(opts.base_ejection) *
                    std::pow(opts.ejection_backoff, bs.consecutive_ejections);
  duration = std::min(duration, static_cast<double>(opts.max_ejection));
  ++bs.consecutive_ejections;
  bs.ejected_until = now + static_cast<SimDuration>(duration);
  // The window that triggered the ejection has served its purpose; the
  // backend re-earns trust from scratch after readmission.
  bs.cur_total = bs.cur_bad = bs.prev_total = bs.prev_bad = 0;
}

void Channel::OnAttemptOutcome(size_t index, bool canary, StatusCode code,
                               SimDuration latency) {
  if (!effective_outlier_enabled_) {
    return;
  }
  BackendState& bs = health_[index];
  const SimTime now = client_->shard_context().sim().Now();
  const bool bad = IsBadAttempt(code, latency);
  if (canary) {
    // The single probe decides: healthy again, or back in the penalty box
    // with a longer window.
    if (bs.health != BackendHealth::kProbing) {
      return;  // A crash of this channel's bookkeeping path; be conservative.
    }
    if (bad) {
      Eject(index, now);
    } else {
      bs.health = BackendHealth::kHealthy;
      bs.consecutive_ejections = 0;
      bs.cur_total = bs.cur_bad = bs.prev_total = bs.prev_bad = 0;
      bs.half_window_start = now;
      ++bs.readmissions;
    }
    return;
  }
  if (bs.health != BackendHealth::kHealthy) {
    // Outcome of a call issued before the ejection (or during fail-open);
    // it must not perturb the probe protocol.
    return;
  }
  const SimDuration half = options_.outlier.stats_window / 2;
  if (now - bs.half_window_start >= half) {
    if (now - bs.half_window_start >= 2 * half) {
      bs.prev_total = bs.prev_bad = 0;  // Everything in the window is stale.
    } else {
      bs.prev_total = bs.cur_total;
      bs.prev_bad = bs.cur_bad;
    }
    bs.cur_total = bs.cur_bad = 0;
    bs.half_window_start = now;
  }
  ++bs.cur_total;
  if (bad) {
    ++bs.cur_bad;
  }
  const int64_t total = bs.cur_total + bs.prev_total;
  const int64_t bad_count = bs.cur_bad + bs.prev_bad;
  if (total >= options_.outlier.min_samples &&
      static_cast<double>(bad_count) >=
          options_.outlier.failure_rate_threshold * static_cast<double>(total)) {
    Eject(index, now);
  }
}

MachineId Channel::PeekTarget() {
  RefreshPolicy();
  if (effective_policy_ == PickPolicy::kRoundRobin) {
    return backends_[round_robin_next_ % backends_.size()];
  }
  if (effective_policy_ == PickPolicy::kNearest) {
    return backends_[nearest_order_.front()];
  }
  return backends_[0];
}

void Channel::Call(MethodId method, Payload request, CallOptions options, CallCallback done) {
  RefreshPolicy();
  const size_t index = PickIndex(/*allow_canary=*/true);
  const size_t full = active_[index];
  const bool canary = picked_canary_;
  ++health_[full].picks;
  if (options.service_id < 0) {
    options.service_id = options_.service_id;
  }
  if (options.deadline == 0) {
    options.deadline = effective_deadline_;
  }
  if (options.max_retries == 0) {
    options.max_retries = effective_max_retries_;
  }
  // A canary probe is never hedged: the probe exists to measure the probed
  // backend, and a hedge rescue would finish the call elsewhere, leaving the
  // probe outcome (kCancelled) unable to resolve the probing state.
  if (effective_hedge_delay_ > 0 && options.hedge_delay == 0 && backends_.size() > 1 &&
      !canary) {
    options.hedge_delay = effective_hedge_delay_;
    // The hedge alternate must not consume a canary slot: its outcome is not
    // attributed per-backend, so a probe launched here could never resolve.
    size_t alt = PickIndex(/*allow_canary=*/false);
    if (alt == index) {
      alt = (index + 1) % backends_.size();
    }
    options.hedge_target = backends_[alt];
  }
  ++outstanding_[full];
  // Health samples come from per-attempt outcomes, not the call outcome: a
  // hedge that rescues a call must still charge the primary backend for its
  // failure (and the hedge's own backend for its result). Attribution is by
  // the attempt's target machine so it survives subset reshapes mid-flight.
  options.attempt_observer = [this, canary, primary = backends_[index]](
                                 MachineId target, StatusCode code, SimDuration latency) {
    if (code == StatusCode::kCancelled) {
      return;  // An abandoned hedge loser was never answered: no signal.
    }
    for (size_t f = 0; f < all_backends_.size(); ++f) {
      if (all_backends_[f] == target) {
        OnAttemptOutcome(f, canary && target == primary, code, latency);
        return;
      }
    }
  };
  client_->Call(backends_[index], method, std::move(request), options,
                [this, full, done = std::move(done)](const CallResult& result,
                                                     Payload response) {
                  --outstanding_[full];
                  done(result, std::move(response));
                });
}

Status Channel::CheckpointTo(CheckpointWriter& w) const {
  for (int64_t n : outstanding_) {
    if (n != 0) {
      return FailedPreconditionError("channel has outstanding calls at checkpoint");
    }
  }
  if (picked_canary_) {
    return FailedPreconditionError("channel mid-pick at checkpoint");
  }
  w.BeginSection("channel");
  w.WriteString(service_name_);
  w.WriteU64(options_.seed);
  w.WriteU32(static_cast<uint32_t>(all_backends_.size()));
  for (MachineId backend : all_backends_) {
    w.WriteI64(backend);
  }
  // Active-view shape, for validation only: the view itself is derived by
  // re-resolving the restored PolicyEngine, never deserialized.
  w.WriteU32(static_cast<uint32_t>(active_.size()));
  w.WriteU32(static_cast<uint32_t>(nearest_order_.size()));
  w.WriteU64(policy_version_seen_);
  WriteRngState(w, rng_);
  w.WriteU64(round_robin_next_);
  for (const BackendState& b : health_) {
    w.WriteU32(static_cast<uint32_t>(b.health));
    w.WriteI64(b.ejected_until);
    w.WriteU32(static_cast<uint32_t>(b.consecutive_ejections));
    w.WriteI64(b.cur_total);
    w.WriteI64(b.cur_bad);
    w.WriteI64(b.prev_total);
    w.WriteI64(b.prev_bad);
    w.WriteI64(b.half_window_start);
    w.WriteU64(b.picks);
    w.WriteU64(b.ejections);
    w.WriteU64(b.canary_probes);
    w.WriteU64(b.readmissions);
  }
  w.EndSection();
  return Status::Ok();
}

Status Channel::RestoreFrom(CheckpointReader& r) {
  for (int64_t n : outstanding_) {
    if (n != 0) {
      return FailedPreconditionError("restore into a channel with outstanding calls");
    }
  }
  if (Status s = r.EnterSection("channel"); !s.ok()) {
    return s;
  }
  const std::string service_name = r.ReadString();
  const uint64_t seed = r.ReadU64();
  const uint32_t num_backends = r.ReadU32();
  std::vector<MachineId> backends;
  backends.reserve(num_backends);
  for (uint32_t i = 0; i < num_backends && r.status().ok(); ++i) {
    backends.push_back(r.ReadI64());
  }
  const uint32_t active_size = r.ReadU32();
  const uint32_t nearest_order_size = r.ReadU32();
  const uint64_t policy_version = r.ReadU64();
  Rng rng(0);
  ReadRngState(r, rng);
  const uint64_t round_robin_next = r.ReadU64();
  std::vector<BackendState> health(backends.size());
  for (BackendState& b : health) {
    const uint32_t h = r.ReadU32();
    if (r.status().ok() && h > static_cast<uint32_t>(BackendHealth::kProbing)) {
      (void)r.LeaveSection();
      return DataLossError("channel: invalid backend health state");
    }
    b.health = static_cast<BackendHealth>(h);
    b.ejected_until = r.ReadI64();
    b.consecutive_ejections = static_cast<int>(r.ReadU32());
    b.cur_total = r.ReadI64();
    b.cur_bad = r.ReadI64();
    b.prev_total = r.ReadI64();
    b.prev_bad = r.ReadI64();
    b.half_window_start = r.ReadI64();
    b.picks = r.ReadU64();
    b.ejections = r.ReadU64();
    b.canary_probes = r.ReadU64();
    b.readmissions = r.ReadU64();
  }
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (service_name != service_name_ || seed != options_.seed || backends != all_backends_ ||
      health.size() != health_.size()) {
    return FailedPreconditionError("channel: checkpoint is for a different channel configuration");
  }
  rng_ = rng;
  round_robin_next_ = static_cast<size_t>(round_robin_next);
  health_ = std::move(health);
  eligible_.clear();
  picked_canary_ = false;
  // The shard's PolicyEngine is restored before its components, so
  // re-resolving here lands on the engine's current snapshot. The checkpoint
  // may have been taken while this channel was still *stale* (no call since
  // the barrier swap, so it never re-resolved): in that case the eager
  // rebuild here is behaviorally identical to the lazy rebuild the
  // uninterrupted run performs on the next Call — the subset shuffle draws
  // from a constructor-seeded local RNG, not shard state. Only when the
  // checkpoint saw the same version must the recomputed shape match.
  ApplyCurrentPolicy();
  if (policy_version == policy_version_seen_ &&
      (active_size != active_.size() || nearest_order_size != nearest_order_.size())) {
    return FailedPreconditionError("channel: restored active view differs from checkpoint");
  }
  return Status::Ok();
}

}  // namespace rpcscope

// Pluggable per-stage RPC-tax cost models and hardware-offload profiles.
//
// The paper's headline result is the RPC "tax": the cycles every call burns
// in compression, serialization, encryption, checksumming, the network stack,
// and RPC library bookkeeping (Figs. 20/21). RPCAcc (arXiv 2411.07632) and
// NotNets (arXiv 2404.06581) ask what the fleet looks like when stages of
// that tax are offloaded to hardware or bypassed entirely. This module makes
// the question expressible: each tax stage is priced by a StageCostModel, a
// TaxProfile is a named bundle of stage models (one per tax category), and a
// ProfileCatalog names the bundles so the policy plane can assign them per
// service/method (MethodPolicy::tax_profile) and the analysis tooling can
// sweep them (examples/offload_whatif, rpcscope_analyze --analysis=offload).
//
// Determinism contract (docs/TAX.md): stage models are pure functions of
// their inputs — no RNG, no mutable state — and the `baseline` profile
// charges bit-for-bit the same doubles as CycleCostModel::SendSideCost/
// RecvSideCost, so runs that resolve no profile (or resolve `baseline`)
// reproduce pre-profile digests exactly.
#ifndef RPCSCOPE_SRC_RPC_STAGE_MODEL_H_
#define RPCSCOPE_SRC_RPC_STAGE_MODEL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"
#include "src/rpc/cost_model.h"

namespace rpcscope {

// One message direction through the tax pipeline.
struct StageCostInput {
  int64_t payload_bytes = 0;  // Serialized (pre-compression) size.
  int64_t wire_bytes = 0;     // On-wire (post-compression, framed) size.
  // Per-byte/per-packet discount for blob-style channels; multiplies into
  // the byte terms exactly as in CycleCostModel::SendSideCost.
  double byte_cost_scale = 1.0;
  bool send = true;  // Send side (serialize/compress) vs receive side.
  // Caller and callee share a locality domain: the same machine on the DES
  // fast path, the same cluster in the analytic sweep. Only bypass-style
  // profiles (notnets_colocated) read it.
  bool colocated = false;
};

// Where one stage's cycles land. Host cycles are the CPU tax (they convert
// to latency on the machine clock and feed the Fig. 20/21 accounting);
// device cycles execute on the offload device's clock, behind its queue.
struct StageCost {
  double host_cycles = 0;
  double device_cycles = 0;
};

// Prices one tax stage for one message. Implementations must be pure
// functions of (stage, in, base): profile resolution must not perturb RNG
// draws, event counts, or any other determinism-bearing state.
class StageCostModel {
 public:
  virtual ~StageCostModel() = default;
  virtual StageCost Cost(CycleCategory stage, const StageCostInput& in,
                         const CycleCostModel& base) const = 0;
};

// Host pipeline as-is: exactly the term CycleCostModel charges for the
// stage (delegates to CycleCostModel::StageCycles, which is what keeps the
// `baseline` profile bit-identical to the legacy path).
class HostStageModel : public StageCostModel {
 public:
  StageCost Cost(CycleCategory stage, const StageCostInput& in,
                 const CycleCostModel& base) const override;
};

// Scales the stage's fixed (per-message) and byte-dependent (per-byte +
// per-packet) terms independently: kernel-bypass netstacks slash the fixed
// and per-packet cost, on-NIC crypto zeroes the per-byte cost.
class ScaledStageModel : public StageCostModel {
 public:
  ScaledStageModel(double fixed_scale, double per_byte_scale)
      : fixed_scale_(fixed_scale), per_byte_scale_(per_byte_scale) {}
  StageCost Cost(CycleCategory stage, const StageCostInput& in,
                 const CycleCostModel& base) const override;

 private:
  double fixed_scale_;
  double per_byte_scale_;
};

// Offloads the stage to a PCIe-attached device (RPCAcc-style): the host pays
// only a descriptor/DMA setup cost, the stage's work runs on the device
// clock (scaled by the device's relative efficiency) behind the endpoint's
// accelerator queue (ServerResource).
class DeviceStageModel : public StageCostModel {
 public:
  DeviceStageModel(double host_fixed_cycles, double host_per_byte_cycles,
                   double device_cycle_scale)
      : host_fixed_cycles_(host_fixed_cycles),
        host_per_byte_cycles_(host_per_byte_cycles),
        device_cycle_scale_(device_cycle_scale) {}
  StageCost Cost(CycleCategory stage, const StageCostInput& in,
                 const CycleCostModel& base) const override;

 private:
  double host_fixed_cycles_;
  double host_per_byte_cycles_;
  double device_cycle_scale_;
};

// NotNets-style bypass: colocated messages skip the stage entirely (the
// saved cycles surface as avoided tax, reusing the colocated fast path's
// accounting); non-colocated messages pay the full host cost.
class BypassStageModel : public StageCostModel {
 public:
  StageCost Cost(CycleCategory stage, const StageCostInput& in,
                 const CycleCostModel& base) const override;
};

// The offload device behind DeviceStageModel stages: its clock converts
// offloaded cycles to occupancy time, and every message that touches it pays
// a fixed transfer latency (PCIe DMA round trip). The device *queue* is not
// modeled here — endpoints own a ServerResource accelerator pool, so queueing
// delay emerges from load exactly like every other pool in the stack.
struct DeviceModel {
  double cycles_per_second = 5.0e9;
  SimDuration transfer_latency = Micros(1);
};

// Aggregate cost of one message under a profile.
struct ProfileCost {
  CycleBreakdown host;       // Per-category host cycles (tax categories only).
  double device_cycles = 0;  // Total cycles moved to the offload device.
};

// A named bundle of stage models, one per tax category. Immutable once
// registered in a catalog; shared by pointer across shards, which is safe
// because stage models are stateless.
struct TaxProfile {
  std::string name;
  std::string summary;  // One line, shown by rpcscope_analyze --list-profiles.
  std::string source;   // Literature anchor (docs/TAX.md#built-in-profiles).
  std::array<std::shared_ptr<const StageCostModel>, kNumTaxCategories> stages;
  DeviceModel device;

  // Prices one message: every tax stage in category order. For the
  // `baseline` profile the resulting breakdown equals
  // CycleCostModel::SendSideCost/RecvSideCost bit-for-bit.
  ProfileCost MessageCost(const CycleCostModel& base, const StageCostInput& in) const;

  // Virtual time `device_cycles` of offloaded work occupies the device,
  // including the per-message transfer latency. 0 when no cycles offloaded.
  SimDuration DeviceTime(double device_cycles) const;
};

// Builds a profile whose six stages all use `model` (shared).
TaxProfile UniformProfile(std::string name, std::string summary, std::string source,
                          std::shared_ptr<const StageCostModel> model);

// Ordered, append-only registry of profiles. A profile's id is its index —
// the value MethodPolicy::tax_profile carries — so ids are stable for the
// lifetime of a catalog and across every shard of a system.
class ProfileCatalog {
 public:
  // Returns the new profile's id. Names must be unique (CHECKed).
  int32_t Register(TaxProfile profile);

  // nullptr for ids outside [0, size()) — callers treat that as "no profile"
  // (the legacy host pipeline).
  const TaxProfile* Get(int32_t id) const;
  const TaxProfile* Find(std::string_view name) const;
  int32_t IdOf(std::string_view name) const;  // -1 when absent.

  size_t size() const { return profiles_.size(); }
  bool empty() const { return profiles_.empty(); }
  const TaxProfile& at(size_t i) const { return *profiles_[i]; }

 private:
  std::vector<std::shared_ptr<const TaxProfile>> profiles_;
};

// Built-in profile names (ids in BuiltinProfileCatalog registration order).
inline constexpr std::string_view kProfileBaseline = "baseline";
inline constexpr std::string_view kProfileRpcAcc = "rpcacc";
inline constexpr std::string_view kProfileKernelBypass = "kernel_bypass";
inline constexpr std::string_view kProfileNicCrypto = "nic_crypto";
inline constexpr std::string_view kProfileNotnetsColocated = "notnets_colocated";

// The five built-in offload profiles (docs/TAX.md#built-in-profiles):
//   baseline           — host pipeline as calibrated; id 0.
//   rpcacc             — PCIe-attached RPC accelerator (arXiv 2411.07632):
//                        data-touching stages collapse to a descriptor/DMA
//                        transfer cost plus device-queue occupancy.
//   kernel_bypass      — DPDK-class userspace netstack: fixed and per-packet
//                        terms slashed, zero-copy per-byte cost.
//   nic_crypto         — inline NIC crypto/CRC engines: encryption and
//                        checksum per-byte cost ≈ 0, driver setup remains.
//   notnets_colocated  — network bypass for colocated callers
//                        (arXiv 2404.06581): colocated messages pay only RPC
//                        library bookkeeping.
ProfileCatalog BuiltinProfileCatalog();

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_STAGE_MODEL_H_

// CPU cycle cost model for RPC stack operations.
//
// Every stack stage charges cycles as fixed + per-byte terms; cycles convert
// to virtual time via the machine clock. Coefficient calibration, figure
// provenance, and the pluggable-stage contract live in docs/TAX.md.
#ifndef RPCSCOPE_SRC_RPC_COST_MODEL_H_
#define RPCSCOPE_SRC_RPC_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/common/time.h"

namespace rpcscope {

// Cycle-consuming categories of the RPC cycle tax (Fig. 20b), plus
// application cycles for totals.
enum class CycleCategory : int32_t {
  kCompression = 0,
  kNetworking = 1,     // Kernel/user network stack processing.
  kSerialization = 2,  // Marshal + unmarshal.
  kRpcLibrary = 3,     // Stub dispatch, channel bookkeeping.
  kEncryption = 4,
  kChecksum = 5,
  kApplication = 6,    // Handler cycles (not part of the tax).
};

constexpr int kNumCycleCategories = 7;
constexpr int kNumTaxCategories = 6;  // All but kApplication.

// Compile-time sync guards: the counts above, the tax-stage loops
// (`for i in [0, kNumTaxCategories)`), and the name table in cost_model.cc
// all assume kApplication is the last enumerator. Growing the enum without
// updating the constants (or vice versa) must not compile.
static_assert(static_cast<int32_t>(CycleCategory::kApplication) ==
                  kNumCycleCategories - 1,
              "kApplication must be the last CycleCategory and "
              "kNumCycleCategories must count every enumerator");
static_assert(kNumTaxCategories == kNumCycleCategories - 1,
              "every category except kApplication is a tax category");

std::string_view CycleCategoryName(CycleCategory c);

// Per-call cycle accounting.
struct CycleBreakdown {
  std::array<double, kNumCycleCategories> cycles{};

  double& operator[](CycleCategory c) { return cycles[static_cast<size_t>(c)]; }
  double operator[](CycleCategory c) const { return cycles[static_cast<size_t>(c)]; }

  double Total() const;
  double TaxTotal() const;  // Total minus application cycles.

  void Accumulate(const CycleBreakdown& other);
};

struct CycleCostModel {
  double cycles_per_second = 3.0e9;  // Machine clock for cycle -> time.

  // Serialization / parsing.
  double serialize_fixed = 280;
  double serialize_per_byte = 0.85;
  double parse_fixed = 330;
  double parse_per_byte = 1.0;

  // Compression (compress on send, decompress on receive).
  double compress_fixed = 250;
  double compress_per_byte = 5.0;
  double decompress_fixed = 150;
  double decompress_per_byte = 1.4;

  // Encryption (symmetric per direction; AES-NI-class throughput).
  double encrypt_per_byte = 0.25;
  double encrypt_fixed = 100;

  // Checksumming (hardware CRC32C-class).
  double checksum_per_byte = 0.04;

  // Network stack: per message plus per 1500-byte packet plus per byte.
  double netstack_fixed = 1100;
  double netstack_per_packet = 300;
  double netstack_per_byte = 0.45;

  // RPC library bookkeeping per call per side.
  double rpclib_fixed_per_side = 1800;

  // Normalization divisor converting raw cycles to the paper's
  // "normalized CPU cycles" unit (Fig. 21 plots most methods between
  // ~0.01 and ~10 in that unit).
  double normalization_cycles = 1.0e6;

  // Converts cycles to virtual time on a machine running at
  // `cycles_per_second * speed`, where speed captures per-machine
  // heterogeneity (CPU generations).
  SimDuration CyclesToDuration(double cycles, double speed = 1.0) const;

  // Stage costs used by the stack. `payload_bytes` is the uncompressed
  // serialized size; `wire_bytes` the post-compression on-wire size.
  // `byte_cost_scale` discounts the per-byte and per-packet terms for
  // blob-style channels (storage byte pipes use flat single-field payloads,
  // zero-copy paths, and NIC checksum offload — this is what lets Network
  // Disk carry the most bytes in the fleet at <2% of fleet cycles, Fig. 8).
  CycleBreakdown SendSideCost(int64_t payload_bytes, int64_t wire_bytes,
                              double byte_cost_scale = 1.0) const;
  CycleBreakdown RecvSideCost(int64_t payload_bytes, int64_t wire_bytes,
                              double byte_cost_scale = 1.0) const;

  // Per-stage view of the same pipeline: exactly the term SendSideCost (send
  // == true) or RecvSideCost (send == false) charges for `stage`, evaluated
  // with the same expressions so the doubles are bit-identical. This is the
  // hook pluggable stage models (src/rpc/stage_model.h) delegate to; the
  // aggregate costs above are implemented as a loop over StageCycles.
  // `stage` must be a tax category (not kApplication).
  double StageCycles(CycleCategory stage, bool send, int64_t payload_bytes,
                     int64_t wire_bytes, double byte_cost_scale = 1.0) const;

  // Splits StageCycles into its per-message part and its size-dependent part
  // (per-byte plus, for networking, per-packet). No bit-identity contract —
  // only scaling-style offload profiles use the split; for every stage
  // StageFixedCycles + StageByteCycles == StageCycles up to FP rounding.
  double StageFixedCycles(CycleCategory stage, bool send) const;
  double StageByteCycles(CycleCategory stage, bool send, int64_t payload_bytes,
                         int64_t wire_bytes, double byte_cost_scale = 1.0) const;

  // Cost of handing a payload to a colocated peer by shared buffer
  // (docs/POLICY.md#colocated-bypass): only the RPC library bookkeeping is
  // still charged per side — no serialize/compress/encrypt/checksum/netstack
  // work happens. The difference SendSideCost + RecvSideCost − 2 × this is
  // the per-direction "avoided tax" the tracer records on bypassed spans.
  CycleBreakdown LocalDeliveryCost() const;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_COST_MODEL_H_

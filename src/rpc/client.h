// Client: the caller side of the RPC stack.
//
// Implements the client pipeline stages (send queue, request proc+stack,
// receive queue, response proc+stack), deadlines, retries on UNAVAILABLE, and
// hedged requests. Every attempt is recorded as a Dapper span; hedge losers
// and post-deadline arrivals are recorded with CANCELLED / DEADLINE_EXCEEDED
// status so the error taxonomy (Fig. 23) and wasted-cycle accounting emerge
// from real mechanics.
//
// Resilience mechanics (docs/ROBUSTNESS.md): retries draw from a token-bucket
// RetryBudget refilled by successes, each attempt can run under a transport
// watchdog that converts lost frames into prompt UNAVAILABLEs, and nested
// calls inherit the remaining parent deadline (CallOptions::
// parent_deadline_time) so work past a dead deadline stops immediately.
#ifndef RPCSCOPE_SRC_RPC_CLIENT_H_
#define RPCSCOPE_SRC_RPC_CLIENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/monitor/metrics.h"
#include "src/rpc/call.h"
#include "src/rpc/codec.h"
#include "src/rpc/retry_budget.h"
#include "src/rpc/rpc_system.h"
#include "src/sim/server_resource.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

struct ClientOptions {
  int tx_workers = 2;
  int rx_workers = 2;
  // Engines on this machine's offload accelerator (docs/TAX.md). The device
  // queue exists only for calls whose resolved tax profile offloads stages
  // (DeviceStageModel); legacy and baseline-profile calls never touch it, so
  // the pool is inert — and digest-neutral — unless a profile routes work
  // through it.
  int accel_workers = 2;
  // Bound on the tx/rx pipeline queues. When set and exceeded the call fails
  // promptly with RESOURCE_EXHAUSTED (span recorded) before any encode
  // cycles are paid; 0 = unbounded.
  size_t max_queue_depth = 0;
  // Application-side response handling performed on the rx pool before the
  // caller's callback runs (deserialization into app structures, bookkeeping).
  // Under high per-client response rates this is what builds the Client Recv
  // Queue component.
  SimDuration rx_processing_overhead = 0;
  // Retry-storm protection (disabled by default; see RetryBudget).
  RetryBudget::Options retry_budget;
  // Colocated zero-copy fast path (docs/POLICY.md#colocated-bypass): calls
  // whose target is this client's own machine skip serialization and the
  // fabric entirely, handing the payload over by shared buffer and charging
  // only the RPC library bookkeeping per side. The bypassed stage costs are
  // recorded on the span as avoided tax. The policy plane can override this
  // per service/method (MethodPolicy::colocated_bypass).
  bool colocated_bypass = false;
};

// RPCSCOPE_CHECKPOINTED(Client::CheckpointTo, Client::RestoreFrom)
class Client {
 public:
  Client(RpcSystem* system, MachineId machine, const ClientOptions& options = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Issues an RPC to `method` on the server at `target`. `done` fires exactly
  // once, at completion (success, error, or deadline).
  void Call(MachineId target, MethodId method, Payload request, const CallOptions& options,
            CallCallback done);

  MachineId machine() const { return machine_; }
  RpcSystem& system() const { return *system_; }
  // The shard domain this client is pinned to (its machine's shard). All of
  // the client's timers, pools, spans, and counters live here.
  RpcSystem::ShardContext& shard_context() const { return *shard_; }
  uint64_t calls_issued() const { return calls_issued_; }
  uint64_t calls_completed() const { return calls_completed_; }
  // Cycles burned by attempts whose result was discarded (hedge losers,
  // post-deadline arrivals) — the "wasted cycles" of §4.4.
  double wasted_cycles() const { return wasted_cycles_; }

  // Resilience accounting.
  const RetryBudget& retry_budget() const { return retry_budget_; }
  uint64_t retries_attempted() const { return retries_attempted_; }
  uint64_t retries_suppressed() const { return retries_suppressed_; }
  uint64_t queue_rejections() const { return queue_rejections_; }
  uint64_t attempt_timeouts() const { return attempt_timeouts_; }
  uint64_t dead_on_arrival() const { return dead_on_arrival_; }

  // Colocated-bypass accounting: attempts that took the fast path, and the
  // stack cycles they would have paid had the call gone through the full
  // serialize/wire pipeline (the per-span avoided tax, summed).
  uint64_t colocated_calls() const { return colocated_calls_; }
  double avoided_tax_cycles() const { return avoided_tax_cycles_; }

  // Offload accounting (docs/TAX.md): cycles this client's calls ran on
  // accelerator devices — client tx/rx sides plus the server's echoed share —
  // attributed to the whole call like the rest of the attempt's cycle record.
  double device_cycles() const { return device_cycles_; }

  // Checkpoint support (docs/ROBUSTNESS.md#checkpointrestore). Valid only at
  // a quiescent barrier: no call may be in flight, so the tx/rx pools must be
  // idle. Serialize fails with FailedPrecondition otherwise; Restore applies
  // nothing on any validation or decode error.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  struct CallState;
  struct Attempt;

  void StartAttempt(std::shared_ptr<CallState> st, MachineId target);
  // Colocated fast path for an attempt whose target is this machine: no
  // encode, no fabric — the payload is handed to the local server by buffer
  // and only RPC library bookkeeping cycles are charged per side.
  void StartColocatedAttempt(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att);
  // Applies the fleet-default retry-budget shape once per policy version and
  // resolves the per-call policy for (service_id, method).
  MethodPolicy ResolveCallPolicy(int32_t service_id, MethodId method);
  // Fails an attempt from the frame-delivery path (no server / server down).
  // Runs in the *target's* domain: same-domain completes inline (legacy
  // behavior); cross-domain routes the failure back to the client's domain
  // through its mailbox, one minimum wire latency later.
  void FailAttemptFromTarget(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att,
                             SimDuration request_wire, Status status);
  void OnReply(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att, ServerReply reply);
  void AttemptFinished(std::shared_ptr<CallState> st, std::shared_ptr<Attempt> att,
                       Status status, Payload response);
  void RecordAttemptSpan(const CallState& st, const Attempt& att, StatusCode code);
  void CountCompletion(StatusCode code);
  // Lazily-cached per-profile tax counter ("tax.profile.<name><suffix>").
  // Lazy on purpose: runs that never resolve a profile create no counters,
  // keeping legacy registries (and their checkpoints) unchanged.
  Counter* ProfileCounter(std::vector<Counter*>& cache, int32_t profile_id, const char* suffix);

  RpcSystem* system_;  // NOLINT(detan-checkpoint-field) structural
  MachineId machine_;
  // Owning shard context; declared before the pools so they can bind to its
  // simulator during construction.
  RpcSystem::ShardContext* shard_;  // NOLINT(detan-checkpoint-field) structural
  double machine_speed_;
  ServerResource tx_pool_;
  ServerResource rx_pool_;
  // Offload-device queue (docs/TAX.md#device-queueing): messages whose
  // resolved profile moves stage cycles to a device occupy one of its engines
  // for transfer latency + device-clock execution time. Idle (no events, no
  // cycles) unless a profile offloads.
  ServerResource accel_pool_;
  // Seeded from the system seed and the machine id: distinct clients must
  // draw *different* full-jitter backoff sequences or a fleet of them
  // retries in lockstep — the thundering herd jitter exists to break.
  Rng backoff_rng_;
  RetryBudget retry_budget_;
  // Reused across every frame this client encodes/decodes; see WireScratch.
  WireScratch scratch_;  // NOLINT(detan-checkpoint-field) contentless scratch
  SimDuration rx_processing_overhead_ = 0;
  // Constructor-time bypass default; the policy plane's colocated_bypass
  // tri-state overrides it per call.
  bool colocated_bypass_base_ = false;
  // Policy version whose fleet defaults were last applied to the retry
  // budget. Re-applied (idempotently) after a checkpoint restore.
  uint64_t policy_version_seen_ = 0;
  uint64_t calls_issued_ = 0;
  uint64_t calls_completed_ = 0;
  uint64_t retries_attempted_ = 0;
  uint64_t retries_suppressed_ = 0;
  uint64_t queue_rejections_ = 0;
  uint64_t attempt_timeouts_ = 0;
  uint64_t dead_on_arrival_ = 0;
  uint64_t colocated_calls_ = 0;
  double wasted_cycles_ = 0;
  double avoided_tax_cycles_ = 0;
  double device_cycles_ = 0;
  // Cached registry counters (stable addresses; see RpcSystem::metrics()).
  // Restored through MetricRegistry::Restore, not here.
  Counter* retries_counter_;          // NOLINT(detan-checkpoint-field) structural
  Counter* retry_exhausted_counter_;  // NOLINT(detan-checkpoint-field) structural
  Counter* queue_rejected_counter_;   // NOLINT(detan-checkpoint-field) structural
  Counter* attempt_timeout_counter_;  // NOLINT(detan-checkpoint-field) structural
  Counter* completions_ok_counter_;   // NOLINT(detan-checkpoint-field) structural
  Counter* completions_err_counter_;  // NOLINT(detan-checkpoint-field) structural
  Counter* colocated_counter_;        // NOLINT(detan-checkpoint-field) structural
  Counter* tax_cycles_counter_;       // NOLINT(detan-checkpoint-field) structural
  Counter* avoided_tax_counter_;      // NOLINT(detan-checkpoint-field) structural
  Counter* device_cycles_counter_;    // NOLINT(detan-checkpoint-field) structural
  // Per-profile streamed tax counters, indexed by profile id; entries are
  // created on first use (see ProfileCounter).
  std::vector<Counter*> profile_tax_counters_;     // NOLINT(detan-checkpoint-field) structural
  std::vector<Counter*> profile_device_counters_;  // NOLINT(detan-checkpoint-field) structural
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_CLIENT_H_

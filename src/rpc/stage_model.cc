#include "src/rpc/stage_model.h"

#include <utility>

#include "src/common/check.h"

namespace rpcscope {

StageCost HostStageModel::Cost(CycleCategory stage, const StageCostInput& in,
                               const CycleCostModel& base) const {
  StageCost cost;
  cost.host_cycles =
      base.StageCycles(stage, in.send, in.payload_bytes, in.wire_bytes, in.byte_cost_scale);
  return cost;
}

StageCost ScaledStageModel::Cost(CycleCategory stage, const StageCostInput& in,
                                 const CycleCostModel& base) const {
  StageCost cost;
  cost.host_cycles =
      fixed_scale_ * base.StageFixedCycles(stage, in.send) +
      per_byte_scale_ * base.StageByteCycles(stage, in.send, in.payload_bytes, in.wire_bytes,
                                             in.byte_cost_scale);
  return cost;
}

StageCost DeviceStageModel::Cost(CycleCategory stage, const StageCostInput& in,
                                 const CycleCostModel& base) const {
  // Host side: post a descriptor and DMA the message; the stage's real work
  // becomes device occupancy, scaled by the engine's relative efficiency.
  const double wb = static_cast<double>(in.wire_bytes) * in.byte_cost_scale;
  StageCost cost;
  cost.host_cycles = host_fixed_cycles_ + host_per_byte_cycles_ * wb;
  cost.device_cycles =
      device_cycle_scale_ *
      base.StageCycles(stage, in.send, in.payload_bytes, in.wire_bytes, in.byte_cost_scale);
  return cost;
}

StageCost BypassStageModel::Cost(CycleCategory stage, const StageCostInput& in,
                                 const CycleCostModel& base) const {
  if (in.colocated) {
    return StageCost{};
  }
  StageCost cost;
  cost.host_cycles =
      base.StageCycles(stage, in.send, in.payload_bytes, in.wire_bytes, in.byte_cost_scale);
  return cost;
}

ProfileCost TaxProfile::MessageCost(const CycleCostModel& base, const StageCostInput& in) const {
  ProfileCost total;
  for (int i = 0; i < kNumTaxCategories; ++i) {
    const CycleCategory stage = static_cast<CycleCategory>(i);
    const StageCostModel* model = stages[static_cast<size_t>(i)].get();
    RPCSCOPE_CHECK(model != nullptr);
    const StageCost cost = model->Cost(stage, in, base);
    total.host[stage] = cost.host_cycles;
    total.device_cycles += cost.device_cycles;
  }
  return total;
}

SimDuration TaxProfile::DeviceTime(double device_cycles) const {
  if (device_cycles <= 0) {
    return 0;
  }
  return AddClamped(device.transfer_latency,
                    DurationFromSeconds(device_cycles / device.cycles_per_second));
}

TaxProfile UniformProfile(std::string name, std::string summary, std::string source,
                          std::shared_ptr<const StageCostModel> model) {
  TaxProfile profile;
  profile.name = std::move(name);
  profile.summary = std::move(summary);
  profile.source = std::move(source);
  for (auto& stage : profile.stages) {
    stage = model;
  }
  return profile;
}

int32_t ProfileCatalog::Register(TaxProfile profile) {
  RPCSCOPE_CHECK(!profile.name.empty());
  RPCSCOPE_CHECK(Find(profile.name) == nullptr);
  profiles_.push_back(std::make_shared<const TaxProfile>(std::move(profile)));
  return static_cast<int32_t>(profiles_.size()) - 1;
}

const TaxProfile* ProfileCatalog::Get(int32_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= profiles_.size()) {
    return nullptr;
  }
  return profiles_[static_cast<size_t>(id)].get();
}

const TaxProfile* ProfileCatalog::Find(std::string_view name) const {
  for (const auto& profile : profiles_) {
    if (profile->name == name) {
      return profile.get();
    }
  }
  return nullptr;
}

int32_t ProfileCatalog::IdOf(std::string_view name) const {
  for (size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i]->name == name) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

ProfileCatalog BuiltinProfileCatalog() {
  ProfileCatalog catalog;
  const auto host = std::make_shared<const HostStageModel>();

  // id 0: the calibrated host pipeline, bit-identical to the legacy path.
  catalog.Register(UniformProfile(
      std::string(kProfileBaseline), "host pipeline as calibrated (docs/TAX.md)",
      "SOSP'23 Figs. 20/21 calibration", host));

  // id 1: PCIe-attached RPC accelerator. The data-touching stages
  // (serialization, compression, encryption, checksum) collapse to a
  // descriptor/DMA cost on the host; their cycles run on a 5 GHz device
  // engine behind the endpoint's accelerator queue. Netstack and RPC-library
  // bookkeeping stay on the host.
  {
    TaxProfile rpcacc = UniformProfile(
        std::string(kProfileRpcAcc),
        "PCIe RPC accelerator: data-touching stages -> transfer cost + device queue",
        "RPCAcc, arXiv 2411.07632", host);
    const auto offload = std::make_shared<const DeviceStageModel>(
        /*host_fixed_cycles=*/120, /*host_per_byte_cycles=*/0.02,
        /*device_cycle_scale=*/1.0);
    for (CycleCategory stage :
         {CycleCategory::kSerialization, CycleCategory::kCompression,
          CycleCategory::kEncryption, CycleCategory::kChecksum}) {
      rpcacc.stages[static_cast<size_t>(stage)] = offload;
    }
    catalog.Register(std::move(rpcacc));
  }

  // id 2: DPDK-class userspace netstack. Syscall/interrupt fixed cost and
  // per-packet processing slashed, zero-copy trims the per-byte term; every
  // other stage unchanged.
  {
    TaxProfile bypass = UniformProfile(
        std::string(kProfileKernelBypass),
        "userspace netstack: fixed/per-packet terms slashed, zero-copy per-byte",
        "kernel-bypass stacks (eRPC/DPDK lineage)", host);
    bypass.stages[static_cast<size_t>(CycleCategory::kNetworking)] =
        std::make_shared<const ScaledStageModel>(/*fixed_scale=*/0.08,
                                                 /*per_byte_scale=*/0.3);
    catalog.Register(std::move(bypass));
  }

  // id 3: inline NIC crypto + CRC engines. Per-byte encryption and checksum
  // cost goes to ~0 as bytes are processed on the wire path; the fixed
  // driver/setup cost of encryption remains.
  {
    TaxProfile nic = UniformProfile(
        std::string(kProfileNicCrypto),
        "inline NIC crypto/CRC: encryption+checksum per-byte ~ 0",
        "on-NIC AES/CRC engines (IPsec/PSP-class offload)", host);
    const auto fixed_only =
        std::make_shared<const ScaledStageModel>(/*fixed_scale=*/1.0, /*per_byte_scale=*/0.0);
    nic.stages[static_cast<size_t>(CycleCategory::kEncryption)] = fixed_only;
    nic.stages[static_cast<size_t>(CycleCategory::kChecksum)] = fixed_only;
    catalog.Register(std::move(nic));
  }

  // id 4: NotNets-style network bypass for colocated caller/callee pairs:
  // colocated messages keep only RPC-library bookkeeping (the same shape as
  // the colocated fast path's LocalDeliveryCost); remote messages pay the
  // full host pipeline.
  {
    TaxProfile notnets = UniformProfile(
        std::string(kProfileNotnetsColocated),
        "network bypass for colocated pairs: only RPC-library cycles remain",
        "NotNets, arXiv 2404.06581",
        std::make_shared<const BypassStageModel>());
    notnets.stages[static_cast<size_t>(CycleCategory::kRpcLibrary)] = host;
    catalog.Register(std::move(notnets));
  }

  return catalog;
}

}  // namespace rpcscope

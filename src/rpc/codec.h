// On-wire encoding of RPC payloads: serialize -> compress -> encrypt -> frame.
//
// Real payloads go through the full byte pipeline (Message serialization,
// Ratel compression, stream-cipher encryption, CRC32C framing); modeled
// payloads compute the same sizes from the assumed compression ratio without
// materializing bytes. Frame layout:
//   [u8 flags][varint payload_bytes][varint body_len][u32 crc][u64 nonce][body]
#ifndef RPCSCOPE_SRC_RPC_CODEC_H_
#define RPCSCOPE_SRC_RPC_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/rpc/payload.h"

namespace rpcscope {

struct WireFrame {
  bool real = false;
  int64_t payload_bytes = 0;  // Uncompressed serialized size.
  int64_t wire_bytes = 0;     // Frame size on the wire (body + header).
  std::vector<uint8_t> body;  // Encrypted compressed bytes (real mode only).
  uint32_t crc = 0;
  uint64_t nonce = 0;
};

// Encodes a payload for transmission. `key` is the channel encryption key and
// `nonce` must be unique per message (the span id is used in practice).
WireFrame EncodeFrame(const Payload& payload, uint64_t key, uint64_t nonce);

// Decodes a frame back into a payload: decrypt, CRC-check, decompress, parse.
// Modeled frames decode to an equivalent modeled payload.
[[nodiscard]] Result<Payload> DecodeFrame(const WireFrame& frame, uint64_t key);

// Frame header overhead in bytes (flags + sizes + crc + nonce).
constexpr int64_t kFrameHeaderBytes = 24;

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_CODEC_H_

// On-wire encoding of RPC payloads: serialize -> compress -> encrypt -> frame.
//
// Real payloads go through the full byte pipeline (Message serialization,
// Ratel compression, stream-cipher encryption, CRC32C framing); modeled
// payloads compute the same sizes from the assumed compression ratio without
// materializing bytes. The codec produces *bytes and sizes* only; the cycle
// cost of each stage is charged separately by the tax pipeline, per the
// resolved stage-cost profile (src/rpc/stage_model.h, docs/TAX.md) — offload
// profiles reprice stages without changing what goes on the wire. Frame
// layout:
//   [u8 flags][varint payload_bytes][varint body_len][u32 crc][u64 nonce][body]
#ifndef RPCSCOPE_SRC_RPC_CODEC_H_
#define RPCSCOPE_SRC_RPC_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/rpc/payload.h"
#include "src/wire/compressor.h"

namespace rpcscope {

struct WireFrame {
  bool real = false;
  int64_t payload_bytes = 0;  // Uncompressed serialized size.
  int64_t wire_bytes = 0;     // Frame size on the wire (body + header).
  std::vector<uint8_t> body;  // Encrypted compressed bytes (real mode only).
  uint32_t crc = 0;
  uint64_t nonce = 0;
};

// Reusable per-endpoint working buffers for the encode/decode byte pipeline.
// Client and Server each own one and pass it to every frame they process, so
// steady-state serialization, compression, and decryption run entirely in
// recycled storage (docs/PERF.md). The simulation is single-threaded; one
// scratch per endpoint is safe because frames are encoded/decoded one at a
// time, never nested.
struct WireScratch {
  std::vector<uint8_t> serialized;    // Encode: pre-compression message bytes.
  std::vector<uint8_t> decrypted;     // Decode: body after the cipher pass.
  std::vector<uint8_t> decompressed;  // Decode: bytes handed to Message::Parse.
  RatelScratch lz;                    // Compressor hash-chain state (~256 KiB).
};

// Encodes a payload for transmission. `key` is the channel encryption key and
// `nonce` must be unique per message (the span id is used in practice).
// `scratch` holds the intermediate buffers; the returned frame owns only its
// final body bytes.
WireFrame EncodeFrame(const Payload& payload, uint64_t key, uint64_t nonce,
                      WireScratch& scratch);

// Convenience wrapper with throwaway scratch (cold paths, tests).
WireFrame EncodeFrame(const Payload& payload, uint64_t key, uint64_t nonce);

// Decodes a frame back into a payload: decrypt, CRC-check, decompress, parse.
// Modeled frames decode to an equivalent modeled payload.
[[nodiscard]] Result<Payload> DecodeFrame(const WireFrame& frame, uint64_t key,
                                          WireScratch& scratch);

// Convenience wrapper with throwaway scratch (cold paths, tests).
[[nodiscard]] Result<Payload> DecodeFrame(const WireFrame& frame, uint64_t key);

// Frame header overhead in bytes (flags + sizes + crc + nonce).
constexpr int64_t kFrameHeaderBytes = 24;

// What the payload would have cost on the wire had it been encoded, using the
// payload's assumed compression ratio (the same estimate the modeled encode
// path charges). The colocated fast path uses it to compute the avoided
// networking/checksum byte terms without running the pipeline it bypassed.
int64_t EstimateWireBytes(const Payload& payload);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_CODEC_H_

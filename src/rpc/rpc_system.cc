#include "src/rpc/rpc_system.h"

namespace rpcscope {

RpcSystem::RpcSystem(const RpcSystemOptions& options)
    : options_(options),
      topology_(options.topology),
      fabric_(&sim_, &topology_, options.fabric),
      tracer_(options.tracing),
      rng_(options.seed) {}

double RpcSystem::MachineSpeed(MachineId machine) const {
  const uint64_t h = Mix64(options_.seed ^ Mix64(static_cast<uint64_t>(machine) + 0x5eedUL));
  const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double spread = options_.machine_speed_spread;
  return 1.0 - spread + 2.0 * spread * frac;
}

void RpcSystem::RegisterServer(MachineId machine, Server* server) {
  servers_[machine] = server;
}

void RpcSystem::UnregisterServer(MachineId machine) { servers_.erase(machine); }

Server* RpcSystem::ServerAt(MachineId machine) const {
  auto it = servers_.find(machine);
  return it == servers_.end() ? nullptr : it->second;
}

}  // namespace rpcscope

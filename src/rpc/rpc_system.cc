#include "src/rpc/rpc_system.h"

#include <algorithm>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"
#include "src/sim/parallel/shard_executor.h"
#include "src/trace/span.h"

namespace rpcscope {

namespace {

// FNV-1a fold of one 64-bit word, byte by byte (same mix as the Simulator's
// event digest, so the sharded digest composes from the same primitive).
uint64_t FnvMix(uint64_t digest, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    digest ^= (word >> (8 * i)) & 0xff;
    digest *= kPrime;
  }
  return digest;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

}  // namespace

RpcSystem::RpcSystem(const RpcSystemOptions& options)
    : options_(options), topology_(options.topology) {
  const int num_shards = std::clamp(options.num_shards, 1, topology_.num_clusters());
  options_.num_shards = num_shards;
  RPCSCOPE_CHECK(options_.policy.Validate().ok());
  if (options_.tax_profiles.empty()) {
    options_.tax_profiles = BuiltinProfileCatalog();
  }

  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    // Shard 0 inherits the configured seeds unchanged so that a 1-shard
    // system reproduces the legacy event stream bit-for-bit; shards > 0 get
    // decorrelated streams via Mix64.
    FabricOptions fabric_options = options.fabric;
    if (s > 0) {
      fabric_options.seed = Mix64(options.fabric.seed + static_cast<uint64_t>(s));
    }
    TraceCollector::Options trace_options = options.tracing;
    // Disjoint id ranges per shard: ids stay fleet-unique with no cross-shard
    // coordination (Mix64 is a bijection; < 2^40 ids per shard).
    trace_options.id_offset = static_cast<uint64_t>(s) << 40;
    const uint64_t rng_seed =
        s == 0 ? options.seed : Mix64(options.seed + static_cast<uint64_t>(s));
    shards_.push_back(std::make_unique<ShardContext>(s, num_shards, options.sim_queue, &topology_,
                                                     fabric_options, trace_options, rng_seed));
    // Every shard engine walks the same system-owned timeline; the barriers
    // that advance the cursors use identical watermark sequences, so the
    // shards never disagree on the snapshot in force.
    shards_.back()->policy = PolicyEngine(&options_.policy);
  }

  if (num_shards > 1) {
    // Per-shard-pair conservative bounds: entry (s, d) is the minimum one-way
    // propagation latency (ClusterBaseRtt/2) over all cluster pairs with one
    // cluster in shard s and one in shard d — a strict lower bound on any
    // cross-shard frame latency, since serialization and congestion only ever
    // add to propagation. The contiguous block partition (ShardOfCluster)
    // keeps physically close clusters in the same shard, so most entries are
    // metro-or-wider distances instead of the global same-datacenter minimum.
    lookahead_matrix_ = LookaheadMatrix(num_shards, kMaxSimTime);
    for (ClusterId a = 0; a < topology_.num_clusters(); ++a) {
      const int sa = ShardOfCluster(a);
      for (ClusterId b = a + 1; b < topology_.num_clusters(); ++b) {
        const int sb = ShardOfCluster(b);
        if (sa == sb) {
          continue;
        }
        const SimDuration bound = topology_.ClusterBaseRtt(a, b) / 2;
        lookahead_matrix_.LowerTo(sa, sb, bound);
        lookahead_matrix_.LowerTo(sb, sa, bound);
      }
    }
    // Topology RTTs are not a metric (continent-pair distances are
    // independent), but the executor's cross-round safety needs the triangle
    // inequality: a shard can relay causality through a near neighbor faster
    // than its direct bound. The min-plus closure folds every relay path in.
    lookahead_matrix_.MinPlusClose();
    lookahead_ = lookahead_matrix_.MinOffDiagonal();
    RPCSCOPE_CHECK_LT(lookahead_, kMaxSimTime);
    RPCSCOPE_CHECK_GT(lookahead_, 0);

    for (auto& shard : shards_) {
      shard->fabric.BindDomain(
          &shard->domain,
          [this](MachineId machine) { return &shards_[static_cast<size_t>(ShardOf(machine))]->domain; },
          &lookahead_matrix_);
    }
  }

  if (options_.observability.streaming) {
    hub_ = std::make_unique<ObservabilityHub>(options_.observability);
    for (auto& shard : shards_) {
      shard->stream_sink = std::make_unique<ShardStreamSink>(options_.observability);
    }
  }
}

void RpcSystem::FlushObservability(SimTime watermark) {
  if (hub_ == nullptr) {
    return;
  }
  // Canonical shard order fixes the hub's ingest sequence independently of
  // which worker thread ran which shard; see stream.h determinism rules.
  for (auto& shard : shards_) {
    shard->stream_sink->FlushInto(*hub_, watermark);
  }
  hub_->AdvanceWatermark(watermark);
}

void RpcSystem::AdvancePolicies(SimTime watermark) {
  if (!options_.policy.has_stages()) {
    return;
  }
  for (auto& shard : shards_) {
    shard->policy.ApplyThrough(watermark);
  }
}

uint64_t RpcSystem::RunSharded(int worker_threads) {
  std::vector<SimDomain*> domains;
  domains.reserve(shards_.size());
  for (auto& shard : shards_) {
    domains.push_back(&shard->domain);
  }
  ShardExecutorOptions exec_options;
  exec_options.worker_threads = worker_threads;
  exec_options.lookahead = lookahead_;
  if (num_shards() > 1) {
    exec_options.lookahead_matrix = &lookahead_matrix_;
  }
  // Production runs never benefit from more workers than cores — extra
  // threads only add per-round wake/park latency. Determinism is unaffected.
  exec_options.clamp_workers_to_hardware = true;
  if (hub_ != nullptr || options_.policy.has_stages()) {
    // Policy swaps land before the flush so the barrier's watermark means the
    // same thing for both: everything at or before it ran under the old
    // snapshot, everything after runs under the new one.
    exec_options.barrier_hook = [this](SimTime round_end) {
      AdvancePolicies(round_end);
      FlushObservability(round_end);
    };
  }
  ShardExecutor executor(std::move(domains), exec_options);
  const uint64_t executed = executor.RunToCompletion();
  last_rounds_ = executor.rounds();
  last_cross_domain_events_ = executor.cross_domain_events();
  // Final flush: drains whatever the last partial round left in the sinks
  // (and, on the single-domain fast path, everything) and closes all windows.
  AdvancePolicies(kMaxSimTime);
  FlushObservability(kMaxSimTime);
  return executed;
}

uint64_t RpcSystem::RunShardedSegment(int worker_threads, SimTime flush_watermark) {
  std::vector<SimDomain*> domains;
  domains.reserve(shards_.size());
  for (auto& shard : shards_) {
    domains.push_back(&shard->domain);
  }
  ShardExecutorOptions exec_options;
  exec_options.worker_threads = worker_threads;
  exec_options.lookahead = lookahead_;
  if (num_shards() > 1) {
    exec_options.lookahead_matrix = &lookahead_matrix_;
  }
  exec_options.clamp_workers_to_hardware = true;
  if (hub_ != nullptr || options_.policy.has_stages()) {
    // Round watermarks clamp to the epoch end: the drain executes cascades
    // past the boundary, but the next epoch's arrivals (armed only up to that
    // boundary) may still add spans to any window at or past it. Only windows
    // before the boundary are final at the barrier, so that is the segment's
    // data-completeness watermark — and the clamp keeps the hub's watermark
    // monotonic across segments whether or not the process restarts between
    // them. The policy cursor clamps identically: a stage inside the drain
    // region past the epoch end must NOT apply this segment, or a run resumed
    // at the barrier (which replays that region in its next segment, under
    // the same clamp) would diverge from the uninterrupted run.
    exec_options.barrier_hook = [this, flush_watermark](SimTime round_end) {
      AdvancePolicies(std::min(round_end, flush_watermark));
      FlushObservability(std::min(round_end, flush_watermark));
    };
  }
  ShardExecutor executor(std::move(domains), exec_options);
  const uint64_t executed = executor.RunToCompletion();
  last_rounds_ = executor.rounds();
  last_cross_domain_events_ = executor.cross_domain_events();
  // Epoch-bounded flush: unlike RunSharded, windows past the epoch end stay
  // open — the next segment (or a resumed run) continues filling them. Pass
  // the epoch end itself; on the final segment callers pass kMaxSimTime to
  // close everything.
  AdvancePolicies(flush_watermark);
  FlushObservability(flush_watermark);
  return executed;
}

Status RpcSystem::ResyncShards(SimTime barrier) {
  for (auto& shard : shards_) {
    if (Status s = shard->sim().ResyncAt(barrier); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status RpcSystem::SerializeShard(int s, CheckpointWriter& w) const {
  const ShardContext& ctx = *shards_[static_cast<size_t>(s)];
  w.BeginSection("shard");
  w.WriteU32(static_cast<uint32_t>(s));
  w.WriteU32(static_cast<uint32_t>(num_shards()));
  WriteRngState(w, ctx.rng);
  w.WriteBool(ctx.stream_sink != nullptr);
  w.EndSection();
  if (Status st = ctx.domain.CheckpointTo(w); !st.ok()) {
    return st;
  }
  if (Status st = ctx.fabric.CheckpointTo(w); !st.ok()) {
    return st;
  }
  if (Status st = ctx.tracer.CheckpointTo(w); !st.ok()) {
    return st;
  }
  if (Status st = ctx.metrics.CheckpointTo(w); !st.ok()) {
    return st;
  }
  if (ctx.stream_sink != nullptr) {
    if (Status st = ctx.stream_sink->CheckpointTo(w); !st.ok()) {
      return st;
    }
  }
  return ctx.policy.CheckpointTo(w);
}

Status RpcSystem::RestoreShard(int s, CheckpointReader& r) {
  ShardContext& ctx = *shards_[static_cast<size_t>(s)];
  if (Status st = r.EnterSection("shard"); !st.ok()) {
    return st;
  }
  const uint32_t shard_id = r.ReadU32();
  const uint32_t shard_count = r.ReadU32();
  Rng rng(0);
  ReadRngState(r, rng);
  const bool has_sink = r.ReadBool();
  if (Status st = r.LeaveSection(); !st.ok()) {
    return st;
  }
  if (shard_id != static_cast<uint32_t>(s) ||
      shard_count != static_cast<uint32_t>(num_shards())) {
    return FailedPreconditionError("shard: checkpoint is for a different shard layout");
  }
  if (has_sink != (ctx.stream_sink != nullptr)) {
    return FailedPreconditionError("shard: streaming observability enablement mismatch");
  }
  ctx.rng = rng;
  if (Status st = ctx.domain.RestoreFrom(r); !st.ok()) {
    return st;
  }
  if (Status st = ctx.fabric.RestoreFrom(r); !st.ok()) {
    return st;
  }
  if (Status st = ctx.tracer.RestoreFrom(r); !st.ok()) {
    return st;
  }
  if (Status st = ctx.metrics.RestoreFrom(r); !st.ok()) {
    return st;
  }
  if (ctx.stream_sink != nullptr) {
    if (Status st = ctx.stream_sink->RestoreFrom(r); !st.ok()) {
      return st;
    }
  }
  return ctx.policy.RestoreFrom(r);
}

Status RpcSystem::SerializeGlobal(CheckpointWriter& w) const {
  w.BeginSection("rpc_system");
  w.WriteU64(options_.seed);
  w.WriteU32(static_cast<uint32_t>(shards_.size()));
  w.WriteU64(last_rounds_);
  w.WriteU64(last_cross_domain_events_);
  w.WriteBool(hub_ != nullptr);
  w.EndSection();
  if (hub_ != nullptr) {
    return hub_->CheckpointTo(w);
  }
  return Status::Ok();
}

Status RpcSystem::RestoreGlobal(CheckpointReader& r) {
  if (Status st = r.EnterSection("rpc_system"); !st.ok()) {
    return st;
  }
  const uint64_t seed = r.ReadU64();
  const uint32_t shard_count = r.ReadU32();
  const uint64_t last_rounds = r.ReadU64();
  const uint64_t last_cross_domain_events = r.ReadU64();
  const bool has_hub = r.ReadBool();
  if (Status st = r.LeaveSection(); !st.ok()) {
    return st;
  }
  if (seed != options_.seed || shard_count != shards_.size()) {
    return FailedPreconditionError("rpc_system: checkpoint is for a different configuration");
  }
  if (has_hub != (hub_ != nullptr)) {
    return FailedPreconditionError("rpc_system: observability hub enablement mismatch");
  }
  last_rounds_ = last_rounds;
  last_cross_domain_events_ = last_cross_domain_events;
  if (hub_ != nullptr) {
    return hub_->RestoreFrom(r);
  }
  return Status::Ok();
}

uint64_t RpcSystem::TotalEventsExecuted() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->domain.sim().events_executed();
  }
  return total;
}

uint64_t RpcSystem::ShardedEventDigest() const {
  uint64_t digest = kFnvOffset;
  for (const auto& shard : shards_) {
    digest = FnvMix(digest, shard->domain.sim().event_digest());
    digest = FnvMix(digest, shard->domain.sim().events_executed());
  }
  return digest;
}

std::vector<Span> RpcSystem::MergedSpans() const {
  std::vector<Span> merged;
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->tracer.spans().size();
  }
  merged.reserve(total);
  for (const auto& shard : shards_) {
    const std::vector<Span>& spans = shard->tracer.spans();
    merged.insert(merged.end(), spans.begin(), spans.end());
  }
  // Canonical order: virtual start time, then trace/span id as tiebreakers.
  // Ids are fleet-unique (per-shard id_offset ranges), so the order is total
  // and independent of shard interleaving or worker count.
  std::stable_sort(merged.begin(), merged.end(), [](const Span& a, const Span& b) {
    if (a.start_time != b.start_time) {
      return a.start_time < b.start_time;
    }
    if (a.trace_id != b.trace_id) {
      return a.trace_id < b.trace_id;
    }
    return a.span_id < b.span_id;
  });
  return merged;
}

double RpcSystem::MergedCounter(const std::string& name) const {
  double total = 0;
  for (const auto& shard : shards_) {
    const Counter* counter = shard->metrics.FindCounter(name);
    if (counter != nullptr) {
      total += counter->value();
    }
  }
  return total;
}

LogHistogram RpcSystem::MergedDistribution(const std::string& name) const {
  LogHistogram merged;
  bool first = true;
  for (const auto& shard : shards_) {
    const DistributionMetric* dist = shard->metrics.FindDistribution(name);
    if (dist == nullptr) {
      continue;
    }
    if (first) {
      merged = dist->histogram();
      first = false;
    } else {
      merged.Merge(dist->histogram());
    }
  }
  return merged;
}

double RpcSystem::MachineSpeed(MachineId machine) const {
  const uint64_t h = Mix64(options_.seed ^ Mix64(static_cast<uint64_t>(machine) + 0x5eedUL));
  const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double spread = options_.machine_speed_spread;
  return 1.0 - spread + 2.0 * spread * frac;
}

void RpcSystem::RegisterServer(MachineId machine, Server* server) {
  servers_[machine] = server;
}

void RpcSystem::UnregisterServer(MachineId machine) { servers_.erase(machine); }

Server* RpcSystem::ServerAt(MachineId machine) const {
  auto it = servers_.find(machine);
  return it == servers_.end() ? nullptr : it->second;
}

}  // namespace rpcscope

// Server: the callee side of the RPC stack.
//
// Pipeline per request (Fig. 9): the fabric delivers a frame; an I/O worker
// decrypts/parses it (Server Recv Queue time); the call waits for an
// application worker (also Server Recv Queue); the registered handler runs —
// holding its worker for the full, possibly asynchronous, handler duration —
// (Server Application); the response waits for a transmit worker (Server Send
// Queue), is serialized/compressed/encrypted (Response Proc+Net Stack), and
// returns over the fabric.
#ifndef RPCSCOPE_SRC_RPC_SERVER_H_
#define RPCSCOPE_SRC_RPC_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/rpc/call.h"
#include "src/rpc/codec.h"
#include "src/rpc/rpc_system.h"
#include "src/sim/server_resource.h"

namespace rpcscope {

class Server;

// Context handed to method handlers. Handlers must eventually call Finish()
// exactly once; they may first Compute() virtual work or issue child RPCs
// (via a Client bound to this server's machine, linked with trace_id/span_id).
class ServerCall {
 public:
  const Payload& request() const { return request_; }
  MethodId method() const { return method_; }
  MachineId client_machine() const { return client_machine_; }
  MachineId server_machine() const;
  SimTime deadline_time() const { return deadline_time_; }
  TraceId trace_id() const { return trace_id_; }
  SpanId span_id() const { return span_id_; }
  Simulator& sim();
  SimTime Now();

  // Performs `duration` of virtual application work, then invokes `then`.
  // The application worker remains held throughout.
  void Compute(SimDuration duration, std::function<void()> then);

  // Completes the call. Consumes the context's one completion.
  void Finish(Status status, Payload response);

  // Server-streaming completion: delivers `num_chunks` copies of `chunk`
  // back-to-back. Each chunk pays the full per-message stack cost (framing,
  // network stack, RPC library), which is what distinguishes a stream from
  // one large unary response of the same total size.
  void FinishStream(Status status, Payload chunk, int num_chunks);

 private:
  friend class Server;

  Server* server_ = nullptr;
  Payload request_;
  MethodId method_ = -1;
  MachineId client_machine_ = -1;
  SimTime deadline_time_ = 0;
  TraceId trace_id_ = 0;
  SpanId span_id_ = 0;
  SimTime app_start_ = 0;
  SimDuration recv_queue_ = 0;
  ServerResponder respond_;
  CycleBreakdown cycles_;
  bool finished_ = false;
  // Self-reference keeping the call alive until its response is on the wire;
  // cleared when the response path completes. A handler that never calls
  // Finish() leaks its call (contract violation).
  std::shared_ptr<ServerCall> self_;
};

using MethodHandler = std::function<void(std::shared_ptr<ServerCall> call)>;

// Maps an incoming request to a scheduling priority class (0 = high runs
// first, >0 = low). The default treats all requests equally (FIFO).
using RequestPriorityFn = std::function<int(const IncomingRequest&)>;

struct ServerOptions {
  int app_workers = 8;
  int io_workers = 2;
  RequestPriorityFn request_priority;  // Null => single FIFO class.
  size_t max_app_queue_depth = 0;  // 0 = unbounded.
  size_t max_io_queue_depth = 0;
  // Multiplies handler Compute() durations; models exogenous server slowdown
  // (CPU utilization, memory bandwidth pressure — §3.3.4).
  double app_speed_factor = 1.0;
  // Added to every app-worker grant; models scheduler wake-up delay (the
  // "long wakeup rate" exogenous variable of Table 2).
  SimDuration wakeup_latency = 0;
};

class Server {
 public:
  Server(RpcSystem* system, MachineId machine, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void RegisterMethod(MethodId method, std::string name, MethodHandler handler);
  bool HasMethod(MethodId method) const { return handlers_.contains(method); }

  // Entry point used by clients (via the fabric): runs the server pipeline
  // and eventually invokes request.respond exactly once.
  void DeliverRequest(IncomingRequest request);

  MachineId machine() const { return machine_; }
  RpcSystem& system() { return *system_; }
  double machine_speed() const { return machine_speed_; }
  const ServerOptions& options() const { return options_; }

  // Exogenous-state knobs (adjustable while running).
  void set_app_speed_factor(double f) { options_.app_speed_factor = f; }
  void set_wakeup_latency(SimDuration d) { options_.wakeup_latency = d; }

  // Utilization accounting.
  double AppUtilization(SimDuration elapsed);
  uint64_t requests_served() const { return requests_served_; }

 private:
  friend class ServerCall;

  void FinishCall(ServerCall* call, Status status, Payload response);
  void FinishStreamCall(ServerCall* call, Status status, Payload chunk, int num_chunks);

  RpcSystem* system_;
  MachineId machine_;
  ServerOptions options_;
  double machine_speed_;
  ServerResource rx_pool_;
  ServerResource app_pool_;
  ServerResource tx_pool_;
  // Reused across every frame this server encodes/decodes; see WireScratch.
  WireScratch scratch_;
  std::unordered_map<MethodId, MethodHandler> handlers_;
  std::unordered_map<MethodId, std::string> method_names_;
  uint64_t requests_served_ = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_SERVER_H_

// Server: the callee side of the RPC stack.
//
// Pipeline per request (Fig. 9): the fabric delivers a frame; an I/O worker
// decrypts/parses it (Server Recv Queue time); the call waits for an
// application worker (also Server Recv Queue); the registered handler runs —
// holding its worker for the full, possibly asynchronous, handler duration —
// (Server Application); the response waits for a transmit worker (Server Send
// Queue), is serialized/compressed/encrypted (Response Proc+Net Stack), and
// returns over the fabric.
//
// Fault semantics (docs/ROBUSTNESS.md): a server can Crash() and Restart().
// Crashing resets every pipeline pool (queued work is dropped), bumps the
// incarnation, and answers each registered in-flight call with UNAVAILABLE —
// the connection-reset a real client observes — so callers fail fast instead
// of hanging. Admission control (ServerOptions::shed_on_deadline) sheds
// requests whose remaining deadline cannot cover the expected app-queue wait.
#ifndef RPCSCOPE_SRC_RPC_SERVER_H_
#define RPCSCOPE_SRC_RPC_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/monitor/metrics.h"
#include "src/rpc/call.h"
#include "src/rpc/codec.h"
#include "src/rpc/rpc_system.h"
#include "src/sim/server_resource.h"

namespace rpcscope {

class Server;
class CheckpointWriter;
class CheckpointReader;

// Context handed to method handlers. Handlers must eventually call Finish()
// exactly once; they may first Compute() virtual work or issue child RPCs
// (via a Client bound to this server's machine, linked with trace_id/span_id).
class ServerCall {
 public:
  const Payload& request() const { return request_; }
  MethodId method() const { return method_; }
  MachineId client_machine() const { return client_machine_; }
  MachineId server_machine() const;
  SimTime deadline_time() const { return deadline_time_; }
  TraceId trace_id() const { return trace_id_; }
  SpanId span_id() const { return span_id_; }
  Simulator& sim();
  SimTime Now();

  // Pre-filled CallOptions for a child RPC issued from this handler: links
  // the child span into this trace and propagates the remaining parent
  // deadline so nested work is abandoned the moment the root budget dies.
  CallOptions ChildOptions() const;

  // Performs `duration` of virtual application work, then invokes `then`.
  // The application worker remains held throughout.
  void Compute(SimDuration duration, std::function<void()> then);

  // Completes the call. Consumes the context's one completion.
  void Finish(Status status, Payload response);

  // Server-streaming completion: delivers `num_chunks` copies of `chunk`
  // back-to-back. Each chunk pays the full per-message stack cost (framing,
  // network stack, RPC library), which is what distinguishes a stream from
  // one large unary response of the same total size.
  void FinishStream(Status status, Payload chunk, int num_chunks);

 private:
  friend class Server;

  struct InflightCall;

  Server* server_ = nullptr;
  Payload request_;
  MethodId method_ = -1;
  MachineId client_machine_ = -1;
  SimTime deadline_time_ = 0;
  TraceId trace_id_ = 0;
  SpanId span_id_ = 0;
  SimTime app_start_ = 0;
  SimDuration recv_queue_ = 0;
  std::shared_ptr<InflightCall> inflight_;
  CycleBreakdown cycles_;
  bool finished_ = false;
  // Self-reference keeping the call alive until its response is on the wire;
  // cleared when the response path completes. A handler that never calls
  // Finish() leaks its call (contract violation).
  std::shared_ptr<ServerCall> self_;
};

using MethodHandler = std::function<void(std::shared_ptr<ServerCall> call)>;

// Maps an incoming request to a scheduling priority class (0 = high runs
// first, >0 = low). The default treats all requests equally (FIFO).
using RequestPriorityFn = std::function<int(const IncomingRequest&)>;

struct ServerOptions {
  int app_workers = 8;
  int io_workers = 2;
  // Engines on this machine's offload accelerator (docs/TAX.md). Only used
  // by requests whose resolved tax profile offloads stages; inert otherwise.
  int accel_workers = 2;
  RequestPriorityFn request_priority;  // Null => single FIFO class.
  size_t max_app_queue_depth = 0;  // 0 = unbounded.
  size_t max_io_queue_depth = 0;
  // Multiplies handler Compute() durations; models exogenous server slowdown
  // (CPU utilization, memory bandwidth pressure — §3.3.4).
  double app_speed_factor = 1.0;
  // Added to every app-worker grant; models scheduler wake-up delay (the
  // "long wakeup rate" exogenous variable of Table 2).
  SimDuration wakeup_latency = 0;
  // Breakwater-style admission control: reject a request on arrival with
  // RESOURCE_EXHAUSTED when its remaining deadline cannot cover the expected
  // app-queue wait (queue_depth / workers * EWMA of handler time). Shedding
  // on arrival is strictly cheaper than accepting work that will be thrown
  // away at its deadline. Off by default.
  bool shed_on_deadline = false;
};

// RPCSCOPE_CHECKPOINTED(Server::CheckpointTo, Server::RestoreFrom)
class Server {
 public:
  Server(RpcSystem* system, MachineId machine, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void RegisterMethod(MethodId method, std::string name, MethodHandler handler);
  bool HasMethod(MethodId method) const { return handlers_.contains(method); }

  // Entry point used by clients (via the fabric): runs the server pipeline
  // and eventually invokes request.respond exactly once.
  void DeliverRequest(IncomingRequest request);

  // Fault hooks (FaultInjector). Crash() kills the process image: all queued
  // pipeline work is dropped, every registered in-flight call is answered
  // with UNAVAILABLE ("connection reset"), and the incarnation is bumped so
  // stale scheduled work from the previous life becomes a no-op. Restart()
  // brings the server back empty. Both are idempotent.
  void Crash();
  void Restart();
  bool up() const { return up_; }
  uint64_t incarnation() const { return incarnation_; }

  MachineId machine() const { return machine_; }
  RpcSystem& system() { return *system_; }
  // The shard domain this server is pinned to (its machine's shard). The
  // whole pipeline — pools, timers, counters, reply sends — runs here.
  RpcSystem::ShardContext& shard_context() const { return *shard_; }
  double machine_speed() const { return machine_speed_; }
  const ServerOptions& options() const { return options_; }

  // Exogenous-state knobs (adjustable while running).
  void set_app_speed_factor(double f) { options_.app_speed_factor = f; }
  void set_wakeup_latency(SimDuration d) { options_.wakeup_latency = d; }
  void set_shed_on_deadline(bool shed) { options_.shed_on_deadline = shed; }

  // Utilization accounting.
  double AppUtilization(SimDuration elapsed);
  uint64_t requests_served() const { return requests_served_; }
  uint64_t requests_shed() const { return requests_shed_; }
  uint64_t crash_killed_calls() const { return crash_killed_calls_; }
  // Cycles this server ran on its offload accelerator (docs/TAX.md); 0
  // unless requests resolved an offloading tax profile.
  double device_cycles() const { return device_cycles_; }

  // Checkpoint support (docs/ROBUSTNESS.md#checkpointrestore). Valid only at
  // a quiescent barrier: no request may be in flight, so the pipeline pools
  // must be idle and the in-flight registry empty. A *down* server is fine —
  // up_/incarnation_ are part of the state — its restart is re-armed from the
  // fault plan by the epoch driver. Serialize fails with FailedPrecondition
  // when non-quiescent; Restore applies nothing on error.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  friend class ServerCall;

  using InflightCall = ServerCall::InflightCall;

  void FinishCall(ServerCall* call, Status status, Payload response);
  void FinishStreamCall(ServerCall* call, Status status, Payload chunk, int num_chunks);

  // All response traffic funnels through here: marks the call responded,
  // drops it from the in-flight registry, and puts the reply on the wire.
  // A call that was already answered (by Crash()) is silently dropped.
  void RespondInflight(const std::shared_ptr<InflightCall>& fl, ServerReply reply,
                       int64_t wire_bytes);
  // Error path: encodes a small error frame and responds.
  void RespondError(const std::shared_ptr<InflightCall>& fl, const CycleBreakdown& cycles,
                    SimDuration recv_queue, Status status);

  void RegisterInflight(const std::shared_ptr<InflightCall>& fl);
  void UnregisterInflight(const std::shared_ptr<InflightCall>& fl);

  RpcSystem* system_;  // NOLINT(detan-checkpoint-field) structural
  MachineId machine_;
  // Owning shard context; declared before the pools so they can bind to its
  // simulator during construction.
  RpcSystem::ShardContext* shard_;  // NOLINT(detan-checkpoint-field) structural
  ServerOptions options_;
  double machine_speed_;
  ServerResource rx_pool_;
  ServerResource app_pool_;
  ServerResource tx_pool_;
  // Offload-device queue (docs/TAX.md#device-queueing): requests and replies
  // whose resolved profile moves stage cycles to a device occupy an engine
  // for transfer + device-clock execution. Idle unless a profile offloads.
  ServerResource accel_pool_;
  // Reused across every frame this server encodes/decodes; see WireScratch.
  WireScratch scratch_;  // NOLINT(detan-checkpoint-field) contentless scratch
  std::unordered_map<MethodId, MethodHandler> handlers_;
  std::unordered_map<MethodId, std::string> method_names_;
  // Every accepted request, from fabric delivery until its reply (or error)
  // is handed to the fabric. Unordered; erased by index swap in O(1).
  std::vector<std::shared_ptr<InflightCall>> inflight_;
  bool up_ = true;
  uint64_t incarnation_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t requests_shed_ = 0;
  uint64_t crash_killed_calls_ = 0;
  double device_cycles_ = 0;
  // EWMA of observed handler time, feeding the admission estimate.
  double app_time_ewma_ns_ = 0;
  // Cached registry counters (stable addresses; see RpcSystem::metrics()).
  // Restored through MetricRegistry::Restore, not here.
  Counter* shed_counter_;          // NOLINT(detan-checkpoint-field) structural
  Counter* crash_killed_counter_;  // NOLINT(detan-checkpoint-field) structural
  Counter* device_cycles_counter_;  // NOLINT(detan-checkpoint-field) structural
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_SERVER_H_

// Payload: what travels in an RPC request or response.
//
// Two fidelity modes share one type:
//  - Real: an actual Message; the stack serializes, compresses, encrypts and
//    checksums its bytes, so sizes, ratios, and cycle costs are measured.
//  - Modeled: only a size (plus an assumed compression ratio); the stack
//    charges the same cost formulas without touching bytes. Used for the
//    large parameter sweeps where regenerating gigabytes of payload would
//    dominate bench wall time without changing any figure.
#ifndef RPCSCOPE_SRC_RPC_PAYLOAD_H_
#define RPCSCOPE_SRC_RPC_PAYLOAD_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "src/wire/message.h"

namespace rpcscope {

class Payload {
 public:
  // Default: an empty modeled payload.
  Payload() = default;

  static Payload Real(Message message) {
    Payload p;
    p.message_ = std::move(message);
    return p;
  }

  static Payload Modeled(int64_t serialized_bytes, double assumed_compression_ratio = 0.65) {
    Payload p;
    p.modeled_bytes_ = serialized_bytes;
    p.assumed_ratio_ = assumed_compression_ratio;
    return p;
  }

  bool is_real() const { return message_.has_value(); }
  const Message& message() const { return *message_; }
  Message& message() { return *message_; }

  int64_t modeled_bytes() const { return modeled_bytes_; }
  double assumed_ratio() const { return assumed_ratio_; }

  // Uncompressed serialized size in bytes for either mode.
  int64_t SerializedSize() const {
    if (is_real()) {
      return static_cast<int64_t>(message_->ByteSize());
    }
    return modeled_bytes_;
  }

 private:
  std::optional<Message> message_;
  int64_t modeled_bytes_ = 0;
  double assumed_ratio_ = 0.65;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_PAYLOAD_H_

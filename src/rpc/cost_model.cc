#include "src/rpc/cost_model.h"

#include <cmath>

namespace rpcscope {

std::string_view CycleCategoryName(CycleCategory c) {
  switch (c) {
    case CycleCategory::kCompression:
      return "Compression";
    case CycleCategory::kNetworking:
      return "Networking";
    case CycleCategory::kSerialization:
      return "Serialization";
    case CycleCategory::kRpcLibrary:
      return "RPC Library";
    case CycleCategory::kEncryption:
      return "Encryption";
    case CycleCategory::kChecksum:
      return "Checksum";
    case CycleCategory::kApplication:
      return "Application";
  }
  return "invalid";
}

double CycleBreakdown::Total() const {
  double total = 0;
  for (double c : cycles) {
    total += c;
  }
  return total;
}

double CycleBreakdown::TaxTotal() const {
  return Total() - (*this)[CycleCategory::kApplication];
}

void CycleBreakdown::Accumulate(const CycleBreakdown& other) {
  for (size_t i = 0; i < cycles.size(); ++i) {
    cycles[i] += other.cycles[i];
  }
}

SimDuration CycleCostModel::CyclesToDuration(double cycles, double speed) const {
  if (cycles <= 0) {
    return 0;
  }
  const double seconds = cycles / (cycles_per_second * speed);
  return DurationFromSeconds(seconds);
}

double CycleCostModel::StageCycles(CycleCategory stage, bool send, int64_t payload_bytes,
                                   int64_t wire_bytes, double byte_cost_scale) const {
  // These expressions (association included) are the determinism contract:
  // SendSideCost/RecvSideCost charge exactly these doubles, and the baseline
  // stage model (stage_model.h) delegates here, so profile-resolved baseline
  // runs stay bit-identical to legacy runs. See docs/TAX.md#determinism.
  const double pb = static_cast<double>(payload_bytes) * byte_cost_scale;
  const double wb = static_cast<double>(wire_bytes) * byte_cost_scale;
  switch (stage) {
    case CycleCategory::kSerialization:
      return send ? serialize_fixed + serialize_per_byte * pb
                  : parse_fixed + parse_per_byte * pb;
    case CycleCategory::kCompression:
      return send ? compress_fixed + compress_per_byte * pb
                  : decompress_fixed + decompress_per_byte * pb;
    case CycleCategory::kEncryption:
      return encrypt_fixed + encrypt_per_byte * wb;
    case CycleCategory::kChecksum:
      return checksum_per_byte * wb;
    case CycleCategory::kNetworking: {
      const double packets = std::ceil(wb / 1500.0);
      return netstack_fixed + netstack_per_packet * packets + netstack_per_byte * wb;
    }
    case CycleCategory::kRpcLibrary:
      return rpclib_fixed_per_side;
    case CycleCategory::kApplication:
      return 0;  // Application cycles are charged by the handler, not the stack.
  }
  return 0;
}

double CycleCostModel::StageFixedCycles(CycleCategory stage, bool send) const {
  switch (stage) {
    case CycleCategory::kSerialization:
      return send ? serialize_fixed : parse_fixed;
    case CycleCategory::kCompression:
      return send ? compress_fixed : decompress_fixed;
    case CycleCategory::kEncryption:
      return encrypt_fixed;
    case CycleCategory::kChecksum:
      return 0;
    case CycleCategory::kNetworking:
      return netstack_fixed;
    case CycleCategory::kRpcLibrary:
      return rpclib_fixed_per_side;
    case CycleCategory::kApplication:
      return 0;
  }
  return 0;
}

double CycleCostModel::StageByteCycles(CycleCategory stage, bool send, int64_t payload_bytes,
                                       int64_t wire_bytes, double byte_cost_scale) const {
  const double pb = static_cast<double>(payload_bytes) * byte_cost_scale;
  const double wb = static_cast<double>(wire_bytes) * byte_cost_scale;
  switch (stage) {
    case CycleCategory::kSerialization:
      return (send ? serialize_per_byte : parse_per_byte) * pb;
    case CycleCategory::kCompression:
      return (send ? compress_per_byte : decompress_per_byte) * pb;
    case CycleCategory::kEncryption:
      return encrypt_per_byte * wb;
    case CycleCategory::kChecksum:
      return checksum_per_byte * wb;
    case CycleCategory::kNetworking:
      return netstack_per_packet * std::ceil(wb / 1500.0) + netstack_per_byte * wb;
    case CycleCategory::kRpcLibrary:
      return 0;
    case CycleCategory::kApplication:
      return 0;
  }
  return 0;
}

CycleBreakdown CycleCostModel::SendSideCost(int64_t payload_bytes, int64_t wire_bytes,
                                            double byte_cost_scale) const {
  CycleBreakdown b;
  for (int i = 0; i < kNumTaxCategories; ++i) {
    const CycleCategory stage = static_cast<CycleCategory>(i);
    b[stage] = StageCycles(stage, /*send=*/true, payload_bytes, wire_bytes, byte_cost_scale);
  }
  return b;
}

CycleBreakdown CycleCostModel::RecvSideCost(int64_t payload_bytes, int64_t wire_bytes,
                                            double byte_cost_scale) const {
  CycleBreakdown b;
  for (int i = 0; i < kNumTaxCategories; ++i) {
    const CycleCategory stage = static_cast<CycleCategory>(i);
    b[stage] = StageCycles(stage, /*send=*/false, payload_bytes, wire_bytes, byte_cost_scale);
  }
  return b;
}

CycleBreakdown CycleCostModel::LocalDeliveryCost() const {
  CycleBreakdown b;
  b[CycleCategory::kRpcLibrary] = rpclib_fixed_per_side;
  return b;
}

}  // namespace rpcscope

#include "src/rpc/cost_model.h"

#include <cmath>

namespace rpcscope {

std::string_view CycleCategoryName(CycleCategory c) {
  switch (c) {
    case CycleCategory::kCompression:
      return "Compression";
    case CycleCategory::kNetworking:
      return "Networking";
    case CycleCategory::kSerialization:
      return "Serialization";
    case CycleCategory::kRpcLibrary:
      return "RPC Library";
    case CycleCategory::kEncryption:
      return "Encryption";
    case CycleCategory::kChecksum:
      return "Checksum";
    case CycleCategory::kApplication:
      return "Application";
  }
  return "invalid";
}

double CycleBreakdown::Total() const {
  double total = 0;
  for (double c : cycles) {
    total += c;
  }
  return total;
}

double CycleBreakdown::TaxTotal() const {
  return Total() - (*this)[CycleCategory::kApplication];
}

void CycleBreakdown::Accumulate(const CycleBreakdown& other) {
  for (size_t i = 0; i < cycles.size(); ++i) {
    cycles[i] += other.cycles[i];
  }
}

SimDuration CycleCostModel::CyclesToDuration(double cycles, double speed) const {
  if (cycles <= 0) {
    return 0;
  }
  const double seconds = cycles / (cycles_per_second * speed);
  return DurationFromSeconds(seconds);
}

CycleBreakdown CycleCostModel::SendSideCost(int64_t payload_bytes, int64_t wire_bytes,
                                            double byte_cost_scale) const {
  const double pb = static_cast<double>(payload_bytes) * byte_cost_scale;
  const double wb = static_cast<double>(wire_bytes) * byte_cost_scale;
  const double packets = std::ceil(wb / 1500.0);
  CycleBreakdown b;
  b[CycleCategory::kSerialization] = serialize_fixed + serialize_per_byte * pb;
  b[CycleCategory::kCompression] = compress_fixed + compress_per_byte * pb;
  b[CycleCategory::kEncryption] = encrypt_fixed + encrypt_per_byte * wb;
  b[CycleCategory::kChecksum] = checksum_per_byte * wb;
  b[CycleCategory::kNetworking] = netstack_fixed + netstack_per_packet * packets +
                                  netstack_per_byte * wb;
  b[CycleCategory::kRpcLibrary] = rpclib_fixed_per_side;
  return b;
}

CycleBreakdown CycleCostModel::RecvSideCost(int64_t payload_bytes, int64_t wire_bytes,
                                            double byte_cost_scale) const {
  const double pb = static_cast<double>(payload_bytes) * byte_cost_scale;
  const double wb = static_cast<double>(wire_bytes) * byte_cost_scale;
  const double packets = std::ceil(wb / 1500.0);
  CycleBreakdown b;
  b[CycleCategory::kSerialization] = parse_fixed + parse_per_byte * pb;
  b[CycleCategory::kCompression] = decompress_fixed + decompress_per_byte * pb;
  b[CycleCategory::kEncryption] = encrypt_fixed + encrypt_per_byte * wb;
  b[CycleCategory::kChecksum] = checksum_per_byte * wb;
  b[CycleCategory::kNetworking] = netstack_fixed + netstack_per_packet * packets +
                                  netstack_per_byte * wb;
  b[CycleCategory::kRpcLibrary] = rpclib_fixed_per_side;
  return b;
}

CycleBreakdown CycleCostModel::LocalDeliveryCost() const {
  CycleBreakdown b;
  b[CycleCategory::kRpcLibrary] = rpclib_fixed_per_side;
  return b;
}

}  // namespace rpcscope

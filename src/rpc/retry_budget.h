// RetryBudget: a token bucket that keeps retries from becoming a storm.
//
// Retries amplify load exactly when the fleet can least afford it: a backend
// that starts failing makes every client send *more* traffic. The classic
// defense (gRPC's retry throttling, "RPC as a Managed System Service") is a
// per-client token bucket refilled by a fraction of *successful* calls:
// healthy traffic earns the right to retry, sustained failure drains it and
// retries stop, capping the amplification factor at ~1 + refill ratio.
#ifndef RPCSCOPE_SRC_RPC_RETRY_BUDGET_H_
#define RPCSCOPE_SRC_RPC_RETRY_BUDGET_H_

#include <cstdint>

namespace rpcscope {

// RPCSCOPE_CHECKPOINTED(SaveState, RestoreState)
class RetryBudget {
 public:
  // Configuration, not checkpointed state: RestoreState only validates the
  // enablement against a saved snapshot.
  struct Options {
    // Disabled by default: TryConsume() always succeeds (legacy unbudgeted
    // behavior). Enable per client via ClientOptions::retry_budget.
    bool enabled = false;
    // Tokens available before any call has succeeded (allows a burst of
    // retries at startup / after a quiet period).
    double initial_tokens = 10.0;
    double max_tokens = 100.0;
    // Tokens earned per successful call (~10% of successes fund retries).
    double refill_per_success = 0.1;
  };

  RetryBudget() = default;
  explicit RetryBudget(const Options& options)
      : options_(options), tokens_(options.initial_tokens) {}

  // A call completed successfully: refill the bucket.
  void OnSuccess() {
    if (!options_.enabled) {
      return;
    }
    tokens_ += options_.refill_per_success;
    if (tokens_ > options_.max_tokens) {
      tokens_ = options_.max_tokens;
    }
  }

  // Attempts to withdraw one token for a retry. Returns false (and counts an
  // exhaustion) when the bucket is empty; the caller must then fail the call
  // with the underlying error instead of retrying.
  bool TryConsume() {
    if (!options_.enabled) {
      return true;
    }
    if (tokens_ < 1.0) {
      ++exhausted_;
      return false;
    }
    tokens_ -= 1.0;
    return true;
  }

  // Applies a policy-plane override of the bucket's shape (docs/POLICY.md).
  // Negative arguments leave the corresponding knob unchanged; the current
  // level clamps down to a lowered cap immediately. Enablement never changes:
  // a budget the client did not configure stays disabled (fail-open, same as
  // every other policy fallback).
  void Reconfigure(double max_tokens, double refill_per_success) {
    if (max_tokens >= 0) {
      options_.max_tokens = max_tokens;
      if (tokens_ > options_.max_tokens) {
        tokens_ = options_.max_tokens;
      }
    }
    if (refill_per_success >= 0) {
      options_.refill_per_success = refill_per_success;
    }
  }

  bool enabled() const { return options_.enabled; }
  double tokens() const { return tokens_; }
  // Number of retries suppressed because the bucket was empty — the
  // "retry budget exhausted" metric of the resilience layer.
  uint64_t exhausted() const { return exhausted_; }

  // Checkpoint state: the mutable bucket level and exhaustion tally. The
  // `enabled` bit rides along purely so restore can confirm it lands on a
  // budget configured the same way.
  struct State {
    bool enabled = false;
    double tokens = 0;
    uint64_t exhausted = 0;
  };
  State SaveState() const { return State{options_.enabled, tokens_, exhausted_}; }
  bool RestoreState(const State& state) {
    if (state.enabled != options_.enabled) {
      return false;
    }
    tokens_ = state.tokens;
    exhausted_ = state.exhausted;
    return true;
  }

 private:
  Options options_;
  double tokens_ = 0;
  uint64_t exhausted_ = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_RPC_RETRY_BUDGET_H_

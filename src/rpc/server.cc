#include "src/rpc/server.h"

#include <cassert>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/rpc/codec.h"

namespace rpcscope {

// A request the server has accepted but not yet answered. Owns the encoded
// request (by value — the single allocation per delivered request) and the
// responder; `responded` flips exactly once, either on the normal reply path
// or when Crash() answers every registered call with UNAVAILABLE.
struct ServerCall::InflightCall {
  IncomingRequest req;
  // Recv-queue time known so far; reported on crash replies so the client's
  // latency breakdown stays meaningful even for killed calls.
  SimDuration recv_known = 0;
  size_t index = 0;  // Position in Server::inflight_ (swap-erase bookkeeping).
  bool responded = false;
  // Tax profile resolved once at delivery time (ProfileCatalog id; -1 = the
  // legacy pipeline) so rx and tx sides price consistently even if the policy
  // plane hot-swaps profiles at a barrier mid-call. See docs/TAX.md.
  int32_t tax_profile = -1;
  // Device cycles charged on the receive side; echoed back with the reply
  // (plus the tx side) so the client owns the whole call's device total.
  double rx_device_cycles = 0;
};

MachineId ServerCall::server_machine() const { return server_->machine(); }

Simulator& ServerCall::sim() { return server_->shard_context().sim(); }

SimTime ServerCall::Now() { return server_->shard_context().sim().Now(); }

CallOptions ServerCall::ChildOptions() const {
  CallOptions options;
  options.trace_id = trace_id_;
  options.parent_span_id = span_id_;
  options.parent_deadline_time = deadline_time_;
  return options;
}

void ServerCall::Compute(SimDuration duration, std::function<void()> then) {
  // Nominal work takes longer under exogenous slowdown and on slower machines.
  const double scale = server_->options().app_speed_factor / server_->machine_speed();
  const SimDuration scaled =
      static_cast<SimDuration>(static_cast<double>(duration) * scale);
  server_->shard_context().sim().Schedule(scaled, std::move(then));
}

void ServerCall::Finish(Status status, Payload response) {
  server_->FinishCall(this, std::move(status), std::move(response));
}

void ServerCall::FinishStream(Status status, Payload chunk, int num_chunks) {
  server_->FinishStreamCall(this, std::move(status), std::move(chunk), num_chunks);
}

Server::Server(RpcSystem* system, MachineId machine, const ServerOptions& options)
    : system_(system),
      machine_(machine),
      shard_(&system->ShardFor(machine)),
      options_(options),
      machine_speed_(system->MachineSpeed(machine)),
      rx_pool_(&shard_->sim(),
               {.workers = options.io_workers, .max_queue_depth = options.max_io_queue_depth}),
      app_pool_(&shard_->sim(),
                {.workers = options.app_workers, .max_queue_depth = options.max_app_queue_depth}),
      tx_pool_(&shard_->sim(),
               {.workers = options.io_workers, .max_queue_depth = options.max_io_queue_depth}),
      accel_pool_(&shard_->sim(), {.workers = options.accel_workers}),
      shed_counter_(&shard_->metrics.GetCounter("server.shed")),
      crash_killed_counter_(&shard_->metrics.GetCounter("server.crash_killed")),
      device_cycles_counter_(&shard_->metrics.GetCounter("server.device_cycles")) {
  system_->RegisterServer(machine_, this);
}

Server::~Server() { system_->UnregisterServer(machine_); }

void Server::RegisterMethod(MethodId method, std::string name, MethodHandler handler) {
  handlers_[method] = std::move(handler);
  method_names_[method] = std::move(name);
}

double Server::AppUtilization(SimDuration elapsed) {
  if (elapsed <= 0) {
    return 0.0;
  }
  return static_cast<double>(app_pool_.busy_time()) /
         (static_cast<double>(elapsed) * options_.app_workers);
}

void Server::RegisterInflight(const std::shared_ptr<InflightCall>& fl) {
  fl->index = inflight_.size();
  inflight_.push_back(fl);
}

void Server::UnregisterInflight(const std::shared_ptr<InflightCall>& fl) {
  const size_t i = fl->index;
  if (i >= inflight_.size() || inflight_[i] != fl) {
    return;  // Already detached (Crash() swapped the registry out wholesale).
  }
  if (i + 1 != inflight_.size()) {
    inflight_[i] = std::move(inflight_.back());
    inflight_[i]->index = i;
  }
  inflight_.pop_back();
}

void Server::RespondInflight(const std::shared_ptr<InflightCall>& fl, ServerReply reply,
                             int64_t wire_bytes) {
  if (fl->responded) {
    return;
  }
  fl->responded = true;
  UnregisterInflight(fl);
  auto respond = std::move(fl->req.respond);
  // Echo the request's wire latency so the client fills in its own latency
  // breakdown inside its own shard domain.
  reply.request_wire = fl->req.request_wire;
  if (fl->req.colocated) {
    // Colocated fast path: no fabric hop. The caller lives on this machine
    // (same shard domain); delivery is a zero-delay event and every wire
    // component stays zero.
    shard_->sim().Schedule(0, [reply = std::move(reply), respond = std::move(respond)]() mutable {
      respond(std::move(reply));
    });
    return;
  }
  shard_->fabric.Send(machine_, fl->req.client_machine, wire_bytes,
                      [reply = std::move(reply), respond = std::move(respond)](
                          SimDuration wire) mutable {
                        reply.resp_wire = wire;
                        respond(std::move(reply));
                      });
}

void Server::RespondError(const std::shared_ptr<InflightCall>& fl, const CycleBreakdown& cycles,
                          SimDuration recv_queue, Status status) {
  if (fl->responded) {
    return;
  }
  ServerReply reply;
  reply.status = std::move(status);
  reply.recv_queue = recv_queue;
  reply.server_cycles = cycles;
  // Device cycles already spent on the rx side still get accounted, even
  // though the error reply itself skips the send pipeline.
  reply.device_cycles = fl->rx_device_cycles;
  if (fl->req.colocated) {
    // Error replies to colocated calls stay off the wire too.
    reply.colocated = true;
    reply.local_response = Payload::Modeled(64);
    reply.response_frame.payload_bytes = 64;
    RespondInflight(fl, std::move(reply), 0);
    return;
  }
  WireFrame frame = EncodeFrame(Payload::Modeled(64), system_->options().encryption_key,
                                fl->req.span_id ^ 0x2, scratch_);
  reply.response_frame = frame;
  RespondInflight(fl, std::move(reply), frame.wire_bytes);
}

void Server::Crash() {
  if (!up_) {
    return;
  }
  up_ = false;
  ++incarnation_;
  // Queued pipeline work is dropped; in-flight pool completions from this
  // life are invalidated (epoch guard) so they can't corrupt the accounting
  // of the next incarnation.
  rx_pool_.Reset();
  app_pool_.Reset();
  tx_pool_.Reset();
  accel_pool_.Reset();
  // Answer every registered call with a connection reset. Swap the registry
  // out first: RespondInflight unregisters as it goes.
  std::vector<std::shared_ptr<InflightCall>> killed;
  killed.swap(inflight_);
  for (const auto& fl : killed) {
    ++crash_killed_calls_;
    crash_killed_counter_->Increment();
    RespondError(fl, CycleBreakdown(), fl->recv_known, UnavailableError("server crashed"));
  }
}

void Server::Restart() {
  if (up_) {
    return;
  }
  up_ = true;
  // A fresh process has no learned admission estimate.
  app_time_ewma_ns_ = 0;
}

void Server::DeliverRequest(IncomingRequest request) {
  auto fl = std::make_shared<InflightCall>();
  fl->req = std::move(request);
  RegisterInflight(fl);
  const CycleCostModel& costs = system_->costs();
  // Offload profile for this request, resolved once at delivery time so rx
  // and tx price under the same model even across a barrier policy swap
  // (docs/TAX.md#assigning-profiles-through-the-policy-plane). Resolve() is a
  // pure read of the current snapshot, so the extra call is deterministic.
  const int32_t profile_id =
      shard_->policy.current().Resolve(fl->req.service_id, fl->req.method).tax_profile;
  const TaxProfile* profile = system_->TaxProfileById(profile_id);
  fl->tax_profile = profile != nullptr ? profile_id : -1;
  // Colocated requests arrive by shared buffer: no decrypt/parse pipeline,
  // only the RPC library hand-off (the skipped stages are the client's
  // per-span avoided tax; docs/POLICY.md#colocated-bypass).
  CycleBreakdown rx_cost;
  SimDuration rx_dev_time = 0;
  if (fl->req.colocated) {
    rx_cost = costs.LocalDeliveryCost();
  } else if (profile != nullptr) {
    const ProfileCost pc = profile->MessageCost(
        costs, StageCostInput{.payload_bytes = fl->req.request_frame.payload_bytes,
                              .wire_bytes = fl->req.request_frame.wire_bytes,
                              .send = false});
    rx_cost = pc.host;
    fl->rx_device_cycles = pc.device_cycles;
    if (pc.device_cycles > 0) {
      device_cycles_ += pc.device_cycles;
      device_cycles_counter_->Increment(pc.device_cycles);
      rx_dev_time = profile->DeviceTime(pc.device_cycles);
    }
  } else {
    rx_cost = costs.RecvSideCost(fl->req.request_frame.payload_bytes,
                                 fl->req.request_frame.wire_bytes);
  }

  const SimDuration rx_time = costs.CyclesToDuration(rx_cost.TaxTotal(), machine_speed_);
  // With an offloading profile, the frame crosses the device (transfer +
  // device-clock execution, queued behind other offloaded work) before the
  // host-side rx pipeline; the device wait lands in the recv-queue component.
  auto ingest = [this, fl, rx_cost, rx_time](SimDuration dev_extra) {
    rx_pool_.Submit(rx_time, [this, fl, rx_cost, dev_extra](SimDuration rx_wait,
                                                           SimDuration rx_service) {
      if (rx_wait == ServerResource::kRejected) {
        RespondError(fl, rx_cost, 0, ResourceExhaustedError("server rx queue full"));
        return;
      }
      const SimDuration recv_so_far = dev_extra + rx_wait + rx_service;
      fl->recv_known = recv_so_far;
      // Breakwater-style admission control, applied at the moment the request
      // would join the app queue (where the depth it must wait behind is
      // known): if the caller's remaining budget cannot cover the expected
      // wait, shed now rather than time the request out after doing the work.
      bool shed_on_deadline = options_.shed_on_deadline;
      const MethodPolicy policy =
          shard_->policy.current().Resolve(fl->req.service_id, fl->req.method);
      if (policy.shed_on_deadline >= 0) {
        shed_on_deadline = policy.shed_on_deadline != 0;
      }
      if (shed_on_deadline && fl->req.deadline_time > 0 && app_time_ewma_ns_ > 0) {
        const double expected_wait_ns =
            static_cast<double>(app_pool_.queue_depth()) /
            static_cast<double>(options_.app_workers) * app_time_ewma_ns_;
        if (static_cast<double>(shard_->sim().Now()) + expected_wait_ns >
            static_cast<double>(fl->req.deadline_time)) {
          ++requests_shed_;
          shed_counter_->Increment();
          RespondError(fl, rx_cost, recv_so_far,
                       ResourceExhaustedError("server shed: deadline unmeetable"));
          return;
        }
      }
      const int priority =
          options_.request_priority ? options_.request_priority(fl->req) : 0;
      app_pool_.AcquireWithPriority(priority, [this, fl, rx_cost,
                                               recv_so_far](SimDuration app_wait) {
        if (app_wait == ServerResource::kRejected) {
          RespondError(fl, rx_cost, recv_so_far,
                       ResourceExhaustedError("server app queue full"));
          return;
        }
        // Scheduler wake-up delay before the handler actually starts running;
        // the worker is held throughout.
        const SimDuration wakeup = options_.wakeup_latency;
        shard_->sim().Schedule(wakeup, [this, fl, rx_cost, recv_so_far, app_wait, wakeup]() {
          if (fl->responded) {
            // The server crashed while this request waited for its wakeup: the
            // caller was already told UNAVAILABLE and the pools were reset, so
            // there is no worker to release and nothing left to do.
            return;
          }
          fl->recv_known = recv_so_far + app_wait + wakeup;
          // Deadline short-circuit: if the caller's budget already expired
          // while the request queued, don't burn handler cycles on a result
          // nobody will read (the client records DEADLINE_EXCEEDED).
          if (fl->req.deadline_time > 0 && shard_->sim().Now() > fl->req.deadline_time) {
            app_pool_.Release();
            RespondError(fl, rx_cost, recv_so_far + app_wait + wakeup,
                         DeadlineExceededError("deadline expired before handler start"));
            return;
          }
          Payload request_payload;
          if (fl->req.colocated) {
            // The payload was handed over by buffer; there is no frame to decode.
            request_payload = std::move(fl->req.local_payload);
          } else {
            Result<Payload> decoded =
                DecodeFrame(fl->req.request_frame, system_->options().encryption_key, scratch_);
            if (!decoded.ok()) {
              app_pool_.Release();
              RespondError(fl, rx_cost, recv_so_far + app_wait + wakeup, decoded.status());
              return;
            }
            request_payload = std::move(decoded.value());
          }
          auto call = std::make_shared<ServerCall>();
          call->server_ = this;
          call->request_ = std::move(request_payload);
          call->method_ = fl->req.method;
          call->client_machine_ = fl->req.client_machine;
          call->deadline_time_ = fl->req.deadline_time;
          call->trace_id_ = fl->req.trace_id;
          call->span_id_ = fl->req.span_id;
          call->app_start_ = shard_->sim().Now();
          call->recv_queue_ = recv_so_far + app_wait + wakeup;
          call->inflight_ = fl;
          call->cycles_ = rx_cost;
          call->self_ = call;
          auto it = handlers_.find(fl->req.method);
          if (it == handlers_.end()) {
            call->Finish(UnimplementedError("no such method"), Payload::Modeled(64));
            return;
          }
          it->second(call);
        });
      });
    });
  };
  if (rx_dev_time > 0) {
    accel_pool_.Submit(rx_dev_time, [ingest = std::move(ingest)](
                                        SimDuration dev_wait, SimDuration dev_service) mutable {
      ingest(dev_wait + dev_service);
    });
  } else {
    ingest(0);
  }
}

void Server::FinishCall(ServerCall* call, Status status, Payload response) {
  assert(!call->finished_);
  call->finished_ = true;
  std::shared_ptr<InflightCall> fl = call->inflight_;
  if (fl->responded) {
    // The server crashed under this handler: the caller already saw
    // UNAVAILABLE and the worker pool was reset. Drop the result.
    call->self_.reset();
    return;
  }
  const CycleCostModel& costs = system_->costs();
  const SimTime now = shard_->sim().Now();
  const SimDuration app_time = now - call->app_start_;
  // Cycles the handler actually executed on this machine.
  call->cycles_[CycleCategory::kApplication] +=
      ToSeconds(app_time) * costs.cycles_per_second * machine_speed_;
  app_pool_.Release();
  ++requests_served_;
  // Feed the admission estimate: EWMA of observed handler time.
  const double sample_ns = static_cast<double>(app_time);
  app_time_ewma_ns_ =
      app_time_ewma_ns_ == 0 ? sample_ns : 0.9 * app_time_ewma_ns_ + 0.1 * sample_ns;

  if (fl->req.colocated) {
    // Colocated fast path: the response is never serialized — it is handed
    // back by buffer. Only the library hand-off is charged; the skipped
    // encode/wire stages land on the client span as avoided tax.
    const CycleBreakdown tx_cost = costs.LocalDeliveryCost();
    call->cycles_.Accumulate(tx_cost);
    const SimDuration tx_time = costs.CyclesToDuration(tx_cost.TaxTotal(), machine_speed_);
    std::shared_ptr<ServerCall> self = call->self_;
    tx_pool_.Submit(
        tx_time, [this, self, fl, status = std::move(status), response = std::move(response),
                  app_time](SimDuration tx_wait, SimDuration tx_service) mutable {
          ServerReply reply;
          reply.status = std::move(status);
          reply.recv_queue = self->recv_queue_;
          reply.app_time = app_time;
          reply.send_queue = tx_wait == ServerResource::kRejected ? 0 : tx_wait;
          reply.resp_proc = tx_service;
          reply.server_cycles = self->cycles_;
          reply.colocated = true;
          reply.response_frame.payload_bytes = response.SerializedSize();
          reply.local_response = std::move(response);
          self->self_.reset();
          RespondInflight(fl, std::move(reply), 0);
        });
    return;
  }

  WireFrame frame =
      EncodeFrame(response, system_->options().encryption_key, call->span_id_ ^ 0x1, scratch_);
  // Price the send side under the profile resolved at delivery time (-1 =
  // legacy pipeline). Offloaded cycles run on the device after the tx worker
  // finishes the host-side share; the device wait lands in resp_proc.
  const TaxProfile* profile = system_->TaxProfileById(fl->tax_profile);
  CycleBreakdown tx_cost;
  double tx_device_cycles = 0;
  SimDuration tx_dev_time = 0;
  if (profile == nullptr) {
    tx_cost = costs.SendSideCost(frame.payload_bytes, frame.wire_bytes);
  } else {
    const ProfileCost pc = profile->MessageCost(
        costs, StageCostInput{.payload_bytes = frame.payload_bytes,
                              .wire_bytes = frame.wire_bytes,
                              .send = true});
    tx_cost = pc.host;
    tx_device_cycles = pc.device_cycles;
    if (pc.device_cycles > 0) {
      device_cycles_ += pc.device_cycles;
      device_cycles_counter_->Increment(pc.device_cycles);
      tx_dev_time = profile->DeviceTime(pc.device_cycles);
    }
  }
  call->cycles_.Accumulate(tx_cost);
  const SimDuration tx_time = costs.CyclesToDuration(tx_cost.TaxTotal(), machine_speed_);

  std::shared_ptr<ServerCall> self = call->self_;
  tx_pool_.Submit(
      tx_time, [this, self, fl, status = std::move(status), frame = std::move(frame), app_time,
                tx_device_cycles, tx_dev_time](SimDuration tx_wait, SimDuration tx_service) mutable {
        ServerReply reply;
        reply.status = std::move(status);
        reply.recv_queue = self->recv_queue_;
        reply.app_time = app_time;
        reply.send_queue = tx_wait == ServerResource::kRejected ? 0 : tx_wait;
        reply.resp_proc = tx_service;
        reply.server_cycles = self->cycles_;
        reply.device_cycles = fl->rx_device_cycles + tx_device_cycles;
        reply.response_frame = std::move(frame);
        const int64_t wire_bytes = reply.response_frame.wire_bytes;
        self->self_.reset();
        if (tx_dev_time > 0) {
          accel_pool_.Submit(tx_dev_time,
                             [this, fl, reply = std::move(reply), wire_bytes](
                                 SimDuration dev_wait, SimDuration dev_service) mutable {
                               reply.resp_proc += dev_wait + dev_service;
                               RespondInflight(fl, std::move(reply), wire_bytes);
                             });
          return;
        }
        RespondInflight(fl, std::move(reply), wire_bytes);
      });
}

void Server::FinishStreamCall(ServerCall* call, Status status, Payload chunk,
                              int num_chunks) {
  assert(!call->finished_);
  assert(num_chunks >= 1);
  call->finished_ = true;
  std::shared_ptr<InflightCall> fl = call->inflight_;
  if (fl->responded) {
    call->self_.reset();
    return;
  }
  const CycleCostModel& costs = system_->costs();
  const SimTime now = shard_->sim().Now();
  const SimDuration app_time = now - call->app_start_;
  call->cycles_[CycleCategory::kApplication] +=
      ToSeconds(app_time) * costs.cycles_per_second * machine_speed_;
  app_pool_.Release();
  ++requests_served_;
  const double sample_ns = static_cast<double>(app_time);
  app_time_ewma_ns_ =
      app_time_ewma_ns_ == 0 ? sample_ns : 0.9 * app_time_ewma_ns_ + 0.1 * sample_ns;

  // Every chunk is a full message: per-chunk framing/stack/library costs are
  // what make streams more expensive per byte than one big unary response.
  WireFrame frame =
      EncodeFrame(chunk, system_->options().encryption_key, call->span_id_ ^ 0x3, scratch_);
  // Each chunk is priced under the profile resolved at delivery time; with
  // an offloading profile every chunk crosses the device, so the stream's
  // device cycles scale with chunk count just like its host-side tax.
  const TaxProfile* profile = system_->TaxProfileById(fl->tax_profile);
  CycleBreakdown per_chunk;
  double per_chunk_device = 0;
  if (profile == nullptr) {
    per_chunk = costs.SendSideCost(frame.payload_bytes, frame.wire_bytes);
  } else {
    const ProfileCost pc = profile->MessageCost(
        costs, StageCostInput{.payload_bytes = frame.payload_bytes,
                              .wire_bytes = frame.wire_bytes,
                              .send = true});
    per_chunk = pc.host;
    per_chunk_device = pc.device_cycles;
  }
  CycleBreakdown tx_cost;
  double tx_device_cycles = 0;
  for (int c = 0; c < num_chunks; ++c) {
    tx_cost.Accumulate(per_chunk);
    tx_device_cycles += per_chunk_device;
  }
  SimDuration tx_dev_time = 0;
  if (tx_device_cycles > 0) {
    device_cycles_ += tx_device_cycles;
    device_cycles_counter_->Increment(tx_device_cycles);
    tx_dev_time = profile->DeviceTime(tx_device_cycles);
  }
  call->cycles_.Accumulate(tx_cost);
  // The tx worker is held for the whole stream (chunks go out back-to-back).
  const SimDuration tx_time = costs.CyclesToDuration(tx_cost.TaxTotal(), machine_speed_);
  const int64_t total_wire = frame.wire_bytes * num_chunks;

  std::shared_ptr<ServerCall> self = call->self_;
  tx_pool_.Submit(
      tx_time, [this, self, fl, status = std::move(status), frame = std::move(frame), app_time,
                num_chunks, total_wire, tx_device_cycles,
                tx_dev_time](SimDuration tx_wait, SimDuration tx_service) mutable {
        ServerReply reply;
        reply.status = std::move(status);
        reply.recv_queue = self->recv_queue_;
        reply.app_time = app_time;
        reply.send_queue = tx_wait == ServerResource::kRejected ? 0 : tx_wait;
        reply.resp_proc = tx_service;
        reply.server_cycles = self->cycles_;
        reply.device_cycles = fl->rx_device_cycles + tx_device_cycles;
        reply.response_frame = std::move(frame);
        reply.chunk_count = num_chunks;
        reply.stream_wire_bytes = total_wire;
        self->self_.reset();
        // The wire carries all chunks; bandwidth delay scales with the total.
        if (tx_dev_time > 0) {
          accel_pool_.Submit(tx_dev_time,
                             [this, fl, reply = std::move(reply), total_wire](
                                 SimDuration dev_wait, SimDuration dev_service) mutable {
                               reply.resp_proc += dev_wait + dev_service;
                               RespondInflight(fl, std::move(reply), total_wire);
                             });
          return;
        }
        RespondInflight(fl, std::move(reply), total_wire);
      });
}

Status Server::CheckpointTo(CheckpointWriter& w) const {
  if (!inflight_.empty()) {
    return FailedPreconditionError("server has in-flight calls at checkpoint");
  }
  w.BeginSection("server");
  w.WriteI64(machine_);
  w.WriteDouble(machine_speed_);
  // Exogenous knobs are mutated mid-run by fault events; the rest of the
  // options are construction-time configuration, written for validation.
  w.WriteU32(static_cast<uint32_t>(options_.app_workers));
  w.WriteU32(static_cast<uint32_t>(options_.io_workers));
  w.WriteDouble(options_.app_speed_factor);
  w.WriteI64(options_.wakeup_latency);
  w.WriteBool(options_.shed_on_deadline);
  w.WriteU32(static_cast<uint32_t>(handlers_.size()));
  w.WriteU32(static_cast<uint32_t>(method_names_.size()));
  w.WriteBool(up_);
  w.WriteU64(incarnation_);
  w.WriteU64(requests_served_);
  w.WriteU64(requests_shed_);
  w.WriteU64(crash_killed_calls_);
  w.WriteDouble(device_cycles_);
  w.WriteDouble(app_time_ewma_ns_);
  w.EndSection();
  if (Status s = rx_pool_.CheckpointTo(w); !s.ok()) {
    return s;
  }
  if (Status s = app_pool_.CheckpointTo(w); !s.ok()) {
    return s;
  }
  if (Status s = tx_pool_.CheckpointTo(w); !s.ok()) {
    return s;
  }
  return accel_pool_.CheckpointTo(w);
}

Status Server::RestoreFrom(CheckpointReader& r) {
  if (!inflight_.empty()) {
    return FailedPreconditionError("restore into a server with in-flight calls");
  }
  if (Status s = r.EnterSection("server"); !s.ok()) {
    return s;
  }
  const MachineId machine = r.ReadI64();
  const double machine_speed = r.ReadDouble();
  const uint32_t app_workers = r.ReadU32();
  const uint32_t io_workers = r.ReadU32();
  const double app_speed_factor = r.ReadDouble();
  const SimDuration wakeup_latency = r.ReadI64();
  const bool shed_on_deadline = r.ReadBool();
  const uint32_t num_handlers = r.ReadU32();
  const uint32_t num_method_names = r.ReadU32();
  const bool up = r.ReadBool();
  const uint64_t incarnation = r.ReadU64();
  const uint64_t requests_served = r.ReadU64();
  const uint64_t requests_shed = r.ReadU64();
  const uint64_t crash_killed_calls = r.ReadU64();
  const double device_cycles = r.ReadDouble();
  const double app_time_ewma_ns = r.ReadDouble();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (machine != machine_ || machine_speed != machine_speed_ ||
      app_workers != static_cast<uint32_t>(options_.app_workers) ||
      io_workers != static_cast<uint32_t>(options_.io_workers)) {
    return FailedPreconditionError("server: checkpoint is for a different server configuration");
  }
  if (num_handlers != handlers_.size() || num_method_names != method_names_.size()) {
    return FailedPreconditionError("server: registered method set mismatch");
  }
  options_.app_speed_factor = app_speed_factor;
  options_.wakeup_latency = wakeup_latency;
  options_.shed_on_deadline = shed_on_deadline;
  up_ = up;
  incarnation_ = incarnation;
  requests_served_ = requests_served;
  requests_shed_ = requests_shed;
  crash_killed_calls_ = crash_killed_calls;
  device_cycles_ = device_cycles;
  app_time_ewma_ns_ = app_time_ewma_ns;
  if (Status s = rx_pool_.RestoreFrom(r); !s.ok()) {
    return s;
  }
  if (Status s = app_pool_.RestoreFrom(r); !s.ok()) {
    return s;
  }
  if (Status s = tx_pool_.RestoreFrom(r); !s.ok()) {
    return s;
  }
  return accel_pool_.RestoreFrom(r);
}

}  // namespace rpcscope

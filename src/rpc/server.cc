#include "src/rpc/server.h"

#include <cassert>
#include <utility>

#include "src/rpc/codec.h"

namespace rpcscope {

MachineId ServerCall::server_machine() const { return server_->machine(); }

Simulator& ServerCall::sim() { return server_->system().sim(); }

SimTime ServerCall::Now() { return server_->system().sim().Now(); }

void ServerCall::Compute(SimDuration duration, std::function<void()> then) {
  // Nominal work takes longer under exogenous slowdown and on slower machines.
  const double scale = server_->options().app_speed_factor / server_->machine_speed();
  const SimDuration scaled =
      static_cast<SimDuration>(static_cast<double>(duration) * scale);
  server_->system().sim().Schedule(scaled, std::move(then));
}

void ServerCall::Finish(Status status, Payload response) {
  server_->FinishCall(this, std::move(status), std::move(response));
}

void ServerCall::FinishStream(Status status, Payload chunk, int num_chunks) {
  server_->FinishStreamCall(this, std::move(status), std::move(chunk), num_chunks);
}

Server::Server(RpcSystem* system, MachineId machine, const ServerOptions& options)
    : system_(system),
      machine_(machine),
      options_(options),
      machine_speed_(system->MachineSpeed(machine)),
      rx_pool_(&system->sim(),
               {.workers = options.io_workers, .max_queue_depth = options.max_io_queue_depth}),
      app_pool_(&system->sim(),
                {.workers = options.app_workers, .max_queue_depth = options.max_app_queue_depth}),
      tx_pool_(&system->sim(),
               {.workers = options.io_workers, .max_queue_depth = options.max_io_queue_depth}) {
  system_->RegisterServer(machine_, this);
}

Server::~Server() { system_->UnregisterServer(machine_); }

void Server::RegisterMethod(MethodId method, std::string name, MethodHandler handler) {
  handlers_[method] = std::move(handler);
  method_names_[method] = std::move(name);
}

double Server::AppUtilization(SimDuration elapsed) {
  if (elapsed <= 0) {
    return 0.0;
  }
  return static_cast<double>(app_pool_.busy_time()) /
         (static_cast<double>(elapsed) * options_.app_workers);
}

namespace {

// Sends an error reply straight back over the fabric (no payload pipeline).
void RespondWithError(RpcSystem* system, MachineId server_machine,
                      std::shared_ptr<IncomingRequest> req, CycleBreakdown cycles_so_far,
                      SimDuration recv_queue, Status status, WireScratch& scratch) {
  WireFrame frame = EncodeFrame(Payload::Modeled(64), system->options().encryption_key,
                                req->span_id ^ 0x2, scratch);
  ServerReply reply;
  reply.status = std::move(status);
  reply.recv_queue = recv_queue;
  reply.server_cycles = cycles_so_far;
  reply.response_frame = frame;
  auto respond = std::move(req->respond);
  system->fabric().Send(server_machine, req->client_machine, frame.wire_bytes,
                        [reply = std::move(reply), respond = std::move(respond)](
                            SimDuration wire) mutable {
                          reply.resp_wire = wire;
                          respond(std::move(reply));
                        });
}

}  // namespace

void Server::DeliverRequest(IncomingRequest request) {
  auto req = std::make_shared<IncomingRequest>(std::move(request));
  const CycleCostModel& costs = system_->costs();
  const CycleBreakdown rx_cost =
      costs.RecvSideCost(req->request_frame.payload_bytes, req->request_frame.wire_bytes);
  const SimDuration rx_time = costs.CyclesToDuration(rx_cost.TaxTotal(), machine_speed_);

  rx_pool_.Submit(rx_time, [this, req, rx_cost](SimDuration rx_wait, SimDuration rx_service) {
    if (rx_wait == ServerResource::kRejected) {
      RespondWithError(system_, machine_, req, rx_cost, 0,
                       ResourceExhaustedError("server rx queue full"), scratch_);
      return;
    }
    const SimDuration recv_so_far = rx_wait + rx_service;
    const int priority =
        options_.request_priority ? options_.request_priority(*req) : 0;
    app_pool_.AcquireWithPriority(priority, [this, req, rx_cost,
                                             recv_so_far](SimDuration app_wait) {
      if (app_wait == ServerResource::kRejected) {
        RespondWithError(system_, machine_, req, rx_cost, recv_so_far,
                         ResourceExhaustedError("server app queue full"), scratch_);
        return;
      }
      // Scheduler wake-up delay before the handler actually starts running;
      // the worker is held throughout.
      const SimDuration wakeup = options_.wakeup_latency;
      system_->sim().Schedule(wakeup, [this, req, rx_cost, recv_so_far, app_wait, wakeup]() {
        // Deadline short-circuit: if the caller's budget already expired while
        // the request queued, don't burn handler cycles on a result nobody
        // will read (the client records the span as DEADLINE_EXCEEDED).
        if (req->deadline_time > 0 && system_->sim().Now() > req->deadline_time) {
          app_pool_.Release();
          RespondWithError(system_, machine_, req, rx_cost, recv_so_far + app_wait + wakeup,
                           DeadlineExceededError("deadline expired before handler start"),
                           scratch_);
          return;
        }
        Result<Payload> decoded =
            DecodeFrame(req->request_frame, system_->options().encryption_key, scratch_);
        if (!decoded.ok()) {
          app_pool_.Release();
          RespondWithError(system_, machine_, req, rx_cost,
                           recv_so_far + app_wait + wakeup, decoded.status(), scratch_);
          return;
        }
        auto call = std::make_shared<ServerCall>();
        call->server_ = this;
        call->request_ = std::move(decoded.value());
        call->method_ = req->method;
        call->client_machine_ = req->client_machine;
        call->deadline_time_ = req->deadline_time;
        call->trace_id_ = req->trace_id;
        call->span_id_ = req->span_id;
        call->app_start_ = system_->sim().Now();
        call->recv_queue_ = recv_so_far + app_wait + wakeup;
        call->respond_ = std::move(req->respond);
        call->cycles_ = rx_cost;
        call->self_ = call;
        auto it = handlers_.find(req->method);
        if (it == handlers_.end()) {
          call->Finish(UnimplementedError("no such method"), Payload::Modeled(64));
          return;
        }
        it->second(call);
      });
    });
  });
}

void Server::FinishCall(ServerCall* call, Status status, Payload response) {
  assert(!call->finished_);
  call->finished_ = true;
  const CycleCostModel& costs = system_->costs();
  const SimTime now = system_->sim().Now();
  const SimDuration app_time = now - call->app_start_;
  // Cycles the handler actually executed on this machine.
  call->cycles_[CycleCategory::kApplication] +=
      ToSeconds(app_time) * costs.cycles_per_second * machine_speed_;
  app_pool_.Release();
  ++requests_served_;

  WireFrame frame =
      EncodeFrame(response, system_->options().encryption_key, call->span_id_ ^ 0x1, scratch_);
  const CycleBreakdown tx_cost = costs.SendSideCost(frame.payload_bytes, frame.wire_bytes);
  call->cycles_.Accumulate(tx_cost);
  const SimDuration tx_time = costs.CyclesToDuration(tx_cost.TaxTotal(), machine_speed_);

  std::shared_ptr<ServerCall> self = call->self_;
  tx_pool_.Submit(
      tx_time, [this, self, status = std::move(status), frame = std::move(frame), app_time](
                   SimDuration tx_wait, SimDuration tx_service) mutable {
        ServerReply reply;
        reply.status = std::move(status);
        reply.recv_queue = self->recv_queue_;
        reply.app_time = app_time;
        reply.send_queue = tx_wait == ServerResource::kRejected ? 0 : tx_wait;
        reply.resp_proc = tx_service;
        reply.server_cycles = self->cycles_;
        reply.response_frame = std::move(frame);
        const int64_t wire_bytes = reply.response_frame.wire_bytes;
        auto respond = std::move(self->respond_);
        self->self_.reset();
        system_->fabric().Send(
            machine_, self->client_machine_, wire_bytes,
            [reply = std::move(reply), respond = std::move(respond)](SimDuration wire) mutable {
              reply.resp_wire = wire;
              respond(std::move(reply));
            });
      });
}

void Server::FinishStreamCall(ServerCall* call, Status status, Payload chunk,
                              int num_chunks) {
  assert(!call->finished_);
  assert(num_chunks >= 1);
  call->finished_ = true;
  const CycleCostModel& costs = system_->costs();
  const SimTime now = system_->sim().Now();
  const SimDuration app_time = now - call->app_start_;
  call->cycles_[CycleCategory::kApplication] +=
      ToSeconds(app_time) * costs.cycles_per_second * machine_speed_;
  app_pool_.Release();
  ++requests_served_;

  // Every chunk is a full message: per-chunk framing/stack/library costs are
  // what make streams more expensive per byte than one big unary response.
  WireFrame frame =
      EncodeFrame(chunk, system_->options().encryption_key, call->span_id_ ^ 0x3, scratch_);
  const CycleBreakdown per_chunk = costs.SendSideCost(frame.payload_bytes, frame.wire_bytes);
  CycleBreakdown tx_cost;
  for (int c = 0; c < num_chunks; ++c) {
    tx_cost.Accumulate(per_chunk);
  }
  call->cycles_.Accumulate(tx_cost);
  // The tx worker is held for the whole stream (chunks go out back-to-back).
  const SimDuration tx_time = costs.CyclesToDuration(tx_cost.TaxTotal(), machine_speed_);
  const int64_t total_wire = frame.wire_bytes * num_chunks;

  std::shared_ptr<ServerCall> self = call->self_;
  tx_pool_.Submit(
      tx_time, [this, self, status = std::move(status), frame = std::move(frame), app_time,
                num_chunks, total_wire](SimDuration tx_wait, SimDuration tx_service) mutable {
        ServerReply reply;
        reply.status = std::move(status);
        reply.recv_queue = self->recv_queue_;
        reply.app_time = app_time;
        reply.send_queue = tx_wait == ServerResource::kRejected ? 0 : tx_wait;
        reply.resp_proc = tx_service;
        reply.server_cycles = self->cycles_;
        reply.response_frame = std::move(frame);
        reply.chunk_count = num_chunks;
        reply.stream_wire_bytes = total_wire;
        auto respond = std::move(self->respond_);
        self->self_.reset();
        // The wire carries all chunks; bandwidth delay scales with the total.
        system_->fabric().Send(
            machine_, self->client_machine_, total_wire,
            [reply = std::move(reply), respond = std::move(respond)](SimDuration wire) mutable {
              reply.resp_wire = wire;
              respond(std::move(reply));
            });
      });
}

}  // namespace rpcscope

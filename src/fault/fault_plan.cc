#include "src/fault/fault_plan.h"

namespace rpcscope {

Status FaultPlan::Validate() const {
  for (const CrashFault& c : crashes) {
    if (c.machine < 0) {
      return InvalidArgumentError("crash fault: machine must be >= 0");
    }
    if (c.at < 0) {
      return InvalidArgumentError("crash fault: crash time must be >= 0");
    }
    if (c.restart_at != 0 && c.restart_at <= c.at) {
      return InvalidArgumentError("crash fault: restart must come after the crash");
    }
  }
  for (const PartitionFault& p : partitions) {
    if (p.group_a.empty() || p.group_b.empty()) {
      return InvalidArgumentError("partition fault: both groups must be non-empty");
    }
    if (p.end <= p.start) {
      return InvalidArgumentError("partition fault: window must have end > start");
    }
  }
  for (const PacketLossFault& l : losses) {
    if (l.loss_probability < 0.0 || l.loss_probability > 1.0) {
      return InvalidArgumentError("packet loss fault: probability must be in [0, 1]");
    }
    if (l.end <= l.start) {
      return InvalidArgumentError("packet loss fault: window must have end > start");
    }
  }
  for (const GraySlowFault& g : gray_slowdowns) {
    if (g.machine < 0) {
      return InvalidArgumentError("gray-slow fault: machine must be >= 0");
    }
    if (g.factor < 1.0) {
      return InvalidArgumentError("gray-slow fault: factor must be >= 1");
    }
    if (g.end <= g.start) {
      return InvalidArgumentError("gray-slow fault: window must have end > start");
    }
  }
  return Status::Ok();
}

}  // namespace rpcscope

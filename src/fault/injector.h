// FaultInjector: executes a FaultPlan against a running RpcSystem.
//
// Crashes and gray-failure windows are scheduled as simulator events that
// call into the target Server; partitions and packet loss are enforced by
// installing the injector as the fabric's FabricInterceptor and window-
// checking each frame against the plan in virtual time. All loss randomness
// comes from one seeded stream whose draws happen only for frames matched by
// an active loss window, so a given (plan, workload, seed) triple replays
// bit-for-bit — chaos runs are debuggable, not merely repeatable on average.
#ifndef RPCSCOPE_SRC_FAULT_INJECTOR_H_
#define RPCSCOPE_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/fault/fault_plan.h"
#include "src/monitor/metrics.h"
#include "src/net/fabric.h"
#include "src/rpc/rpc_system.h"

namespace rpcscope {

class FaultInjector : public FabricInterceptor {
 public:
  struct Options {
    uint64_t seed = 0xfa017;
  };

  FaultInjector(RpcSystem* system, FaultPlan plan, const Options& options);
  FaultInjector(RpcSystem* system, FaultPlan plan);  // Default Options.
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Validates the plan, schedules every crash/restart/gray window on the
  // simulator, and installs the fabric hook. Call once, before (or during)
  // the run; faults whose time is already past fire immediately.
  [[nodiscard]] Status Arm();

  // FabricInterceptor: true = drop the frame (partition or packet loss).
  bool OnSend(MachineId src, MachineId dst, int64_t bytes) override;

  // Injection accounting (also mirrored into RpcSystem::metrics() under
  // fault.crashes / fault.restarts / fault.partition_drops / fault.loss_drops
  // / fault.gray_windows).
  uint64_t crashes_applied() const { return crashes_applied_; }
  uint64_t restarts_applied() const { return restarts_applied_; }
  uint64_t partition_drops() const { return partition_drops_; }
  uint64_t loss_drops() const { return loss_drops_; }
  uint64_t gray_windows_applied() const { return gray_windows_applied_; }

 private:
  // A partition with its groups sorted for binary-search membership tests.
  struct ArmedPartition {
    std::vector<MachineId> group_a;
    std::vector<MachineId> group_b;
    SimTime start = 0;
    SimTime end = 0;
  };

  void ScheduleCrash(const CrashFault& fault);
  void ScheduleGray(size_t gray_index);

  RpcSystem* system_;
  FaultPlan plan_;
  Options options_;
  Rng drop_rng_;
  bool armed_ = false;
  std::vector<ArmedPartition> armed_partitions_;
  // Original app_speed_factor per gray fault, captured at window start.
  std::vector<double> gray_saved_factor_;
  uint64_t crashes_applied_ = 0;
  uint64_t restarts_applied_ = 0;
  uint64_t partition_drops_ = 0;
  uint64_t loss_drops_ = 0;
  uint64_t gray_windows_applied_ = 0;
  Counter* crashes_counter_;
  Counter* restarts_counter_;
  Counter* partition_drops_counter_;
  Counter* loss_drops_counter_;
  Counter* gray_windows_counter_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FAULT_INJECTOR_H_

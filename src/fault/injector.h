// FaultInjector: executes a FaultPlan against a running RpcSystem.
//
// Crashes and gray-failure windows are scheduled as simulator events that
// call into the target Server; partitions and packet loss are enforced by
// installing the injector as the fabric's FabricInterceptor and window-
// checking each frame against the plan in virtual time. All loss randomness
// comes from seeded streams whose draws happen only for frames matched by
// an active loss window, so a given (plan, workload, seed) triple replays
// bit-for-bit — chaos runs are debuggable, not merely repeatable on average.
//
// Sharded runs: every fault event executes in the shard domain that owns its
// target machine, and every injector mutable (loss RNG, drop tallies, mirror
// counters) is per-shard — frames are intercepted in the *sender's* domain,
// so state is indexed by ShardOf(src) and no two domains ever touch the same
// slot. With one shard this reduces exactly to the legacy behavior (shard 0
// keeps the legacy RNG seed).
#ifndef RPCSCOPE_SRC_FAULT_INJECTOR_H_
#define RPCSCOPE_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/fault/fault_plan.h"
#include "src/monitor/metrics.h"
#include "src/net/fabric.h"
#include "src/rpc/rpc_system.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

// RPCSCOPE_CHECKPOINTED(FaultInjector::CheckpointTo, FaultInjector::RestoreFrom)
class FaultInjector : public FabricInterceptor {
 public:
  struct Options {
    uint64_t seed = 0xfa017;
  };

  FaultInjector(RpcSystem* system, FaultPlan plan, const Options& options);
  FaultInjector(RpcSystem* system, FaultPlan plan);  // Default Options.
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Validates the plan, schedules every crash/restart/gray window on the
  // owning shard's simulator, and installs the fabric hook on every shard.
  // Call once, before (or during) the run; faults whose time is already past
  // fire immediately.
  [[nodiscard]] Status Arm();

  // Epoch-gated arming for checkpointed runs (docs/ROBUSTNESS.md
  // #checkpointrestore): schedules only the fault events whose virtual time
  // falls in [armed-so-far, end) and remembers `end` as the new arming
  // watermark, so the event queue never holds timers beyond the current
  // epoch and drains to full quiescence at its boundary. First call performs
  // the one-time setup Arm() does (plan validation, partition tables, fabric
  // hook — partitions and losses are pure time-window checks on frames, so
  // they are installed whole upfront). Arm() == ArmThrough(kMaxSimTime).
  // Calls with `end` at or below the watermark are no-ops.
  [[nodiscard]] Status ArmThrough(SimTime end);

  // FabricInterceptor: true = drop the frame (partition or packet loss).
  // Runs in the sending machine's shard domain.
  bool OnSend(MachineId src, MachineId dst, int64_t bytes) override;

  // Injection accounting, summed across shards (also mirrored into each
  // shard's metrics registry under fault.crashes / fault.restarts /
  // fault.partition_drops / fault.loss_drops / fault.gray_windows;
  // RpcSystem::MergedCounter aggregates those).
  uint64_t crashes_applied() const { return Sum(crashes_applied_); }
  uint64_t restarts_applied() const { return Sum(restarts_applied_); }
  uint64_t partition_drops() const { return Sum(partition_drops_); }
  uint64_t loss_drops() const { return Sum(loss_drops_); }
  uint64_t gray_windows_applied() const { return Sum(gray_windows_applied_); }

  // Checkpoint support. Serializes the per-shard RNG streams, tallies, the
  // gray-window saved factors, and the arming watermark; the plan itself is
  // configuration (the resumed run constructs the injector from the same
  // plan — validated by fault counts) and mirror counters are restored
  // through each shard's MetricRegistry, never re-incremented here. Only
  // valid between epochs: no armed event may be pending.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  // A partition with its groups sorted for binary-search membership tests.
  struct ArmedPartition {
    std::vector<MachineId> group_a;
    std::vector<MachineId> group_b;
    SimTime start = 0;
    SimTime end = 0;
  };

  static uint64_t Sum(const std::vector<uint64_t>& per_shard);

  // One-time arming setup: plan validation, sorted partition tables, fabric
  // hook. Idempotent; shared by Arm()/ArmThrough()/Restore().
  [[nodiscard]] Status EnsureSetup();
  void ScheduleCrashEvent(const CrashFault& fault);
  void ScheduleRestartEvent(const CrashFault& fault);
  void ScheduleGrayStart(size_t gray_index);
  void ScheduleGrayEnd(size_t gray_index);

  RpcSystem* system_;  // NOLINT(detan-checkpoint-field) structural
  FaultPlan plan_;
  Options options_;
  // One loss-RNG stream per shard (drawn only in that shard's domain).
  // Shard 0 keeps the legacy seed so single-shard chaos replays unchanged.
  std::vector<Rng> drop_rngs_;
  bool armed_ = false;
  // Fault events with virtual time below this are scheduled already (or have
  // executed). Advanced by ArmThrough; kMaxSimTime after a legacy Arm().
  SimTime armed_through_ = kMinSimTime;
  std::vector<ArmedPartition> armed_partitions_;
  // Original app_speed_factor per gray fault, captured at window start.
  // Distinct faults may live in distinct shards; each touches only its own
  // element.
  std::vector<double> gray_saved_factor_;
  // Tallies indexed by shard; accessors sum them.
  std::vector<uint64_t> crashes_applied_;
  std::vector<uint64_t> restarts_applied_;
  std::vector<uint64_t> partition_drops_;
  std::vector<uint64_t> loss_drops_;
  std::vector<uint64_t> gray_windows_applied_;
  // Mirror counters, one per shard registry (stable addresses). Restored
  // through MetricRegistry::Restore, not here.
  std::vector<Counter*> crashes_counters_;          // NOLINT(detan-checkpoint-field) structural
  std::vector<Counter*> restarts_counters_;         // NOLINT(detan-checkpoint-field) structural
  std::vector<Counter*> partition_drops_counters_;  // NOLINT(detan-checkpoint-field) structural
  std::vector<Counter*> loss_drops_counters_;       // NOLINT(detan-checkpoint-field) structural
  std::vector<Counter*> gray_windows_counters_;     // NOLINT(detan-checkpoint-field) structural
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FAULT_INJECTOR_H_

// FaultInjector: executes a FaultPlan against a running RpcSystem.
//
// Crashes and gray-failure windows are scheduled as simulator events that
// call into the target Server; partitions and packet loss are enforced by
// installing the injector as the fabric's FabricInterceptor and window-
// checking each frame against the plan in virtual time. All loss randomness
// comes from seeded streams whose draws happen only for frames matched by
// an active loss window, so a given (plan, workload, seed) triple replays
// bit-for-bit — chaos runs are debuggable, not merely repeatable on average.
//
// Sharded runs: every fault event executes in the shard domain that owns its
// target machine, and every injector mutable (loss RNG, drop tallies, mirror
// counters) is per-shard — frames are intercepted in the *sender's* domain,
// so state is indexed by ShardOf(src) and no two domains ever touch the same
// slot. With one shard this reduces exactly to the legacy behavior (shard 0
// keeps the legacy RNG seed).
#ifndef RPCSCOPE_SRC_FAULT_INJECTOR_H_
#define RPCSCOPE_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/fault/fault_plan.h"
#include "src/monitor/metrics.h"
#include "src/net/fabric.h"
#include "src/rpc/rpc_system.h"

namespace rpcscope {

class FaultInjector : public FabricInterceptor {
 public:
  struct Options {
    uint64_t seed = 0xfa017;
  };

  FaultInjector(RpcSystem* system, FaultPlan plan, const Options& options);
  FaultInjector(RpcSystem* system, FaultPlan plan);  // Default Options.
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Validates the plan, schedules every crash/restart/gray window on the
  // owning shard's simulator, and installs the fabric hook on every shard.
  // Call once, before (or during) the run; faults whose time is already past
  // fire immediately.
  [[nodiscard]] Status Arm();

  // FabricInterceptor: true = drop the frame (partition or packet loss).
  // Runs in the sending machine's shard domain.
  bool OnSend(MachineId src, MachineId dst, int64_t bytes) override;

  // Injection accounting, summed across shards (also mirrored into each
  // shard's metrics registry under fault.crashes / fault.restarts /
  // fault.partition_drops / fault.loss_drops / fault.gray_windows;
  // RpcSystem::MergedCounter aggregates those).
  uint64_t crashes_applied() const { return Sum(crashes_applied_); }
  uint64_t restarts_applied() const { return Sum(restarts_applied_); }
  uint64_t partition_drops() const { return Sum(partition_drops_); }
  uint64_t loss_drops() const { return Sum(loss_drops_); }
  uint64_t gray_windows_applied() const { return Sum(gray_windows_applied_); }

 private:
  // A partition with its groups sorted for binary-search membership tests.
  struct ArmedPartition {
    std::vector<MachineId> group_a;
    std::vector<MachineId> group_b;
    SimTime start = 0;
    SimTime end = 0;
  };

  static uint64_t Sum(const std::vector<uint64_t>& per_shard);

  void ScheduleCrash(const CrashFault& fault);
  void ScheduleGray(size_t gray_index);

  RpcSystem* system_;
  FaultPlan plan_;
  Options options_;
  // One loss-RNG stream per shard (drawn only in that shard's domain).
  // Shard 0 keeps the legacy seed so single-shard chaos replays unchanged.
  std::vector<Rng> drop_rngs_;
  bool armed_ = false;
  std::vector<ArmedPartition> armed_partitions_;
  // Original app_speed_factor per gray fault, captured at window start.
  // Distinct faults may live in distinct shards; each touches only its own
  // element.
  std::vector<double> gray_saved_factor_;
  // Tallies indexed by shard; accessors sum them.
  std::vector<uint64_t> crashes_applied_;
  std::vector<uint64_t> restarts_applied_;
  std::vector<uint64_t> partition_drops_;
  std::vector<uint64_t> loss_drops_;
  std::vector<uint64_t> gray_windows_applied_;
  // Mirror counters, one per shard registry (stable addresses).
  std::vector<Counter*> crashes_counters_;
  std::vector<Counter*> restarts_counters_;
  std::vector<Counter*> partition_drops_counters_;
  std::vector<Counter*> loss_drops_counters_;
  std::vector<Counter*> gray_windows_counters_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FAULT_INJECTOR_H_

#include "src/fault/injector.h"

#include <algorithm>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"
#include "src/rpc/server.h"

namespace rpcscope {

namespace {

bool Contains(const std::vector<MachineId>& sorted, MachineId m) {
  return std::binary_search(sorted.begin(), sorted.end(), m);
}

}  // namespace

FaultInjector::FaultInjector(RpcSystem* system, FaultPlan plan, const Options& options)
    : system_(system), plan_(std::move(plan)), options_(options) {
  const int num_shards = system->num_shards();
  const uint64_t base_seed = Mix64(options.seed ^ system->options().seed);
  drop_rngs_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    // Shard 0 draws the legacy sequence; shards > 0 get decorrelated streams.
    drop_rngs_.emplace_back(s == 0 ? base_seed
                                   : Mix64(base_seed + static_cast<uint64_t>(s)));
  }
  const size_t n = static_cast<size_t>(num_shards);
  gray_saved_factor_.assign(plan_.gray_slowdowns.size(), 0.0);
  crashes_applied_.assign(n, 0);
  restarts_applied_.assign(n, 0);
  partition_drops_.assign(n, 0);
  loss_drops_.assign(n, 0);
  gray_windows_applied_.assign(n, 0);
  crashes_counters_.reserve(n);
  restarts_counters_.reserve(n);
  partition_drops_counters_.reserve(n);
  loss_drops_counters_.reserve(n);
  gray_windows_counters_.reserve(n);
  for (int s = 0; s < num_shards; ++s) {
    MetricRegistry& metrics = system->shard(s).metrics;
    crashes_counters_.push_back(&metrics.GetCounter("fault.crashes"));
    restarts_counters_.push_back(&metrics.GetCounter("fault.restarts"));
    partition_drops_counters_.push_back(&metrics.GetCounter("fault.partition_drops"));
    loss_drops_counters_.push_back(&metrics.GetCounter("fault.loss_drops"));
    gray_windows_counters_.push_back(&metrics.GetCounter("fault.gray_windows"));
  }
}

FaultInjector::FaultInjector(RpcSystem* system, FaultPlan plan)
    : FaultInjector(system, std::move(plan), Options{}) {}

FaultInjector::~FaultInjector() {
  for (int s = 0; s < system_->num_shards(); ++s) {
    Fabric& fabric = system_->shard(s).fabric;
    if (fabric.interceptor() == this) {
      fabric.set_interceptor(nullptr);
    }
  }
}

uint64_t FaultInjector::Sum(const std::vector<uint64_t>& per_shard) {
  uint64_t total = 0;
  for (uint64_t v : per_shard) {
    total += v;
  }
  return total;
}

void FaultInjector::ScheduleCrashEvent(const CrashFault& fault) {
  // The crash manipulates the target Server, so it must execute in the shard
  // domain that owns the machine.
  const MachineId machine = fault.machine;
  const size_t shard = static_cast<size_t>(system_->ShardOf(machine));
  Simulator& sim = system_->ShardFor(machine).sim();
  sim.ScheduleAt(std::max(fault.at, sim.Now()), [this, machine, shard]() {
    Server* server = system_->ServerAt(machine);
    if (server == nullptr || !server->up()) {
      return;
    }
    server->Crash();
    ++crashes_applied_[shard];
    crashes_counters_[shard]->Increment();
  });
}

void FaultInjector::ScheduleRestartEvent(const CrashFault& fault) {
  const MachineId machine = fault.machine;
  const size_t shard = static_cast<size_t>(system_->ShardOf(machine));
  Simulator& sim = system_->ShardFor(machine).sim();
  sim.ScheduleAt(std::max(fault.restart_at, sim.Now()), [this, machine, shard]() {
    Server* server = system_->ServerAt(machine);
    if (server == nullptr || server->up()) {
      return;
    }
    server->Restart();
    ++restarts_applied_[shard];
    restarts_counters_[shard]->Increment();
  });
}

void FaultInjector::ScheduleGrayStart(size_t gray_index) {
  const GraySlowFault& fault = plan_.gray_slowdowns[gray_index];
  const MachineId machine = fault.machine;
  const size_t shard = static_cast<size_t>(system_->ShardOf(machine));
  Simulator& sim = system_->ShardFor(machine).sim();
  const double factor = fault.factor;
  sim.ScheduleAt(std::max(fault.start, sim.Now()), [this, gray_index, machine, shard, factor]() {
    Server* server = system_->ServerAt(machine);
    if (server == nullptr) {
      return;
    }
    gray_saved_factor_[gray_index] = server->options().app_speed_factor;
    server->set_app_speed_factor(gray_saved_factor_[gray_index] * factor);
    ++gray_windows_applied_[shard];
    gray_windows_counters_[shard]->Increment();
  });
}

void FaultInjector::ScheduleGrayEnd(size_t gray_index) {
  const GraySlowFault& fault = plan_.gray_slowdowns[gray_index];
  const MachineId machine = fault.machine;
  Simulator& sim = system_->ShardFor(machine).sim();
  sim.ScheduleAt(std::max(fault.end, sim.Now()), [this, gray_index, machine]() {
    Server* server = system_->ServerAt(machine);
    if (server == nullptr || gray_saved_factor_[gray_index] == 0) {
      return;  // The start event never fired (no server then, either).
    }
    server->set_app_speed_factor(gray_saved_factor_[gray_index]);
  });
}

Status FaultInjector::EnsureSetup() {
  if (armed_) {
    return Status::Ok();
  }
  Status valid = plan_.Validate();
  if (!valid.ok()) {
    return valid;
  }
  armed_ = true;
  armed_partitions_.reserve(plan_.partitions.size());
  for (const PartitionFault& fault : plan_.partitions) {
    ArmedPartition armed;
    armed.group_a = fault.group_a;
    armed.group_b = fault.group_b;
    std::sort(armed.group_a.begin(), armed.group_a.end());
    std::sort(armed.group_b.begin(), armed.group_b.end());
    armed.start = fault.start;
    armed.end = fault.end;
    armed_partitions_.push_back(std::move(armed));
  }
  // Partitions and packet loss act on frames, so the injector hooks every
  // shard's fabric (crash replies included: a reset racing a partition is
  // lost). Frames are intercepted in the sender's domain. Pure time-window
  // checks, no scheduled events — safe to install whole even in epoch mode.
  if (!armed_partitions_.empty() || !plan_.losses.empty()) {
    for (int s = 0; s < system_->num_shards(); ++s) {
      system_->shard(s).fabric.set_interceptor(this);
    }
  }
  return Status::Ok();
}

Status FaultInjector::Arm() {
  if (armed_) {
    return InvalidArgumentError("fault injector already armed");
  }
  return ArmThrough(kMaxSimTime);
}

Status FaultInjector::ArmThrough(SimTime end) {
  if (Status s = EnsureSetup(); !s.ok()) {
    return s;
  }
  if (end <= armed_through_) {
    return Status::Ok();
  }
  const SimTime begin = armed_through_;
  const auto in_window = [begin, end](SimTime t) { return t >= begin && t < end; };
  for (const CrashFault& fault : plan_.crashes) {
    if (in_window(fault.at)) {
      ScheduleCrashEvent(fault);
    }
    if (fault.restart_at > fault.at && in_window(fault.restart_at)) {
      ScheduleRestartEvent(fault);
    }
  }
  for (size_t i = 0; i < plan_.gray_slowdowns.size(); ++i) {
    if (in_window(plan_.gray_slowdowns[i].start)) {
      ScheduleGrayStart(i);
    }
    if (in_window(plan_.gray_slowdowns[i].end)) {
      ScheduleGrayEnd(i);
    }
  }
  armed_through_ = end;
  return Status::Ok();
}

bool FaultInjector::OnSend(MachineId src, MachineId dst, int64_t /*bytes*/) {
  // Called from the sender's fabric: src's shard domain is executing, so only
  // that shard's clock, RNG stream, and tally slots are touched here.
  const size_t shard = static_cast<size_t>(system_->ShardOf(src));
  const SimTime now = system_->shard(static_cast<int>(shard)).sim().Now();
  for (const ArmedPartition& p : armed_partitions_) {
    if (now < p.start || now >= p.end) {
      continue;
    }
    if ((Contains(p.group_a, src) && Contains(p.group_b, dst)) ||
        (Contains(p.group_a, dst) && Contains(p.group_b, src))) {
      ++partition_drops_[shard];
      partition_drops_counters_[shard]->Increment();
      return true;
    }
  }
  for (const PacketLossFault& l : plan_.losses) {
    if (now < l.start || now >= l.end) {
      continue;
    }
    const bool forward = (l.src < 0 || l.src == src) && (l.dst < 0 || l.dst == dst);
    const bool reverse =
        l.bidirectional && (l.src < 0 || l.src == dst) && (l.dst < 0 || l.dst == src);
    if (!forward && !reverse) {
      continue;
    }
    // The RNG is drawn only for matched frames inside an active window, so
    // the draw sequence — and with it the whole run — is plan-deterministic.
    if (drop_rngs_[shard].NextDouble() < l.loss_probability) {
      ++loss_drops_[shard];
      loss_drops_counters_[shard]->Increment();
      return true;
    }
  }
  return false;
}

Status FaultInjector::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("fault_injector");
  w.WriteU64(options_.seed);
  w.WriteU32(static_cast<uint32_t>(plan_.crashes.size()));
  w.WriteU32(static_cast<uint32_t>(plan_.gray_slowdowns.size()));
  w.WriteU32(static_cast<uint32_t>(plan_.partitions.size()));
  w.WriteU32(static_cast<uint32_t>(plan_.losses.size()));
  w.WriteBool(armed_);
  w.WriteI64(armed_through_);
  w.WriteU32(static_cast<uint32_t>(armed_partitions_.size()));
  w.WriteU32(static_cast<uint32_t>(drop_rngs_.size()));
  for (const Rng& rng : drop_rngs_) {
    WriteRngState(w, rng);
  }
  for (double factor : gray_saved_factor_) {
    w.WriteDouble(factor);
  }
  for (const std::vector<uint64_t>* tally :
       {&crashes_applied_, &restarts_applied_, &partition_drops_, &loss_drops_,
        &gray_windows_applied_}) {
    for (uint64_t v : *tally) {
      w.WriteU64(v);
    }
  }
  w.EndSection();
  return Status::Ok();
}

Status FaultInjector::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("fault_injector"); !s.ok()) {
    return s;
  }
  const uint64_t seed = r.ReadU64();
  const uint32_t num_crashes = r.ReadU32();
  const uint32_t num_grays = r.ReadU32();
  const uint32_t num_partitions = r.ReadU32();
  const uint32_t num_losses = r.ReadU32();
  const bool armed = r.ReadBool();
  const SimTime armed_through = r.ReadI64();
  const uint32_t num_armed_partitions = r.ReadU32();
  const uint32_t num_shards = r.ReadU32();
  std::vector<Rng> rngs;
  rngs.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards && r.status().ok(); ++s) {
    Rng rng(0);
    ReadRngState(r, rng);
    rngs.push_back(rng);
  }
  std::vector<double> saved_factors(num_grays, 0.0);
  for (uint32_t i = 0; i < num_grays && r.status().ok(); ++i) {
    saved_factors[i] = r.ReadDouble();
  }
  std::vector<std::vector<uint64_t>> tallies(5, std::vector<uint64_t>(num_shards, 0));
  for (std::vector<uint64_t>& tally : tallies) {
    for (uint32_t s = 0; s < num_shards && r.status().ok(); ++s) {
      tally[s] = r.ReadU64();
    }
  }
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (seed != options_.seed || num_crashes != plan_.crashes.size() ||
      num_grays != plan_.gray_slowdowns.size() || num_partitions != plan_.partitions.size() ||
      num_losses != plan_.losses.size() || num_shards != drop_rngs_.size()) {
    return FailedPreconditionError("fault_injector: checkpoint is for a different fault plan");
  }
  if (armed) {
    // Rebuild the structural arming state (armed_, partition tables, fabric
    // hook) that the serialized run had; event timers are re-armed from the
    // plan by the epoch driver via ArmThrough, never from checkpoint bytes.
    if (Status s = EnsureSetup(); !s.ok()) {
      return s;
    }
    RPCSCOPE_DCHECK(armed_);
    if (num_armed_partitions != armed_partitions_.size()) {
      return DataLossError("fault_injector: armed partition count mismatch");
    }
  }
  armed_through_ = armed_through;
  drop_rngs_ = std::move(rngs);
  gray_saved_factor_ = std::move(saved_factors);
  crashes_applied_ = std::move(tallies[0]);
  restarts_applied_ = std::move(tallies[1]);
  partition_drops_ = std::move(tallies[2]);
  loss_drops_ = std::move(tallies[3]);
  gray_windows_applied_ = std::move(tallies[4]);
  return Status::Ok();
}

}  // namespace rpcscope

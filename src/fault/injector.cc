#include "src/fault/injector.h"

#include <algorithm>
#include <utility>

#include "src/rpc/server.h"

namespace rpcscope {

namespace {

bool Contains(const std::vector<MachineId>& sorted, MachineId m) {
  return std::binary_search(sorted.begin(), sorted.end(), m);
}

}  // namespace

FaultInjector::FaultInjector(RpcSystem* system, FaultPlan plan, const Options& options)
    : system_(system),
      plan_(std::move(plan)),
      options_(options),
      drop_rng_(Mix64(options.seed ^ system->options().seed)),
      crashes_counter_(&system->metrics().GetCounter("fault.crashes")),
      restarts_counter_(&system->metrics().GetCounter("fault.restarts")),
      partition_drops_counter_(&system->metrics().GetCounter("fault.partition_drops")),
      loss_drops_counter_(&system->metrics().GetCounter("fault.loss_drops")),
      gray_windows_counter_(&system->metrics().GetCounter("fault.gray_windows")) {}

FaultInjector::FaultInjector(RpcSystem* system, FaultPlan plan)
    : FaultInjector(system, std::move(plan), Options{}) {}

FaultInjector::~FaultInjector() {
  if (system_->fabric().interceptor() == this) {
    system_->fabric().set_interceptor(nullptr);
  }
}

void FaultInjector::ScheduleCrash(const CrashFault& fault) {
  Simulator& sim = system_->sim();
  const MachineId machine = fault.machine;
  sim.ScheduleAt(std::max(fault.at, sim.Now()), [this, machine]() {
    Server* server = system_->ServerAt(machine);
    if (server == nullptr || !server->up()) {
      return;
    }
    server->Crash();
    ++crashes_applied_;
    crashes_counter_->Increment();
  });
  if (fault.restart_at > fault.at) {
    sim.ScheduleAt(std::max(fault.restart_at, sim.Now()), [this, machine]() {
      Server* server = system_->ServerAt(machine);
      if (server == nullptr || server->up()) {
        return;
      }
      server->Restart();
      ++restarts_applied_;
      restarts_counter_->Increment();
    });
  }
}

void FaultInjector::ScheduleGray(size_t gray_index) {
  Simulator& sim = system_->sim();
  const GraySlowFault& fault = plan_.gray_slowdowns[gray_index];
  const MachineId machine = fault.machine;
  const double factor = fault.factor;
  sim.ScheduleAt(std::max(fault.start, sim.Now()), [this, gray_index, machine, factor]() {
    Server* server = system_->ServerAt(machine);
    if (server == nullptr) {
      return;
    }
    gray_saved_factor_[gray_index] = server->options().app_speed_factor;
    server->set_app_speed_factor(gray_saved_factor_[gray_index] * factor);
    ++gray_windows_applied_;
    gray_windows_counter_->Increment();
  });
  sim.ScheduleAt(std::max(fault.end, sim.Now()), [this, gray_index, machine]() {
    Server* server = system_->ServerAt(machine);
    if (server == nullptr || gray_saved_factor_[gray_index] == 0) {
      return;  // The start event never fired (no server then, either).
    }
    server->set_app_speed_factor(gray_saved_factor_[gray_index]);
  });
}

Status FaultInjector::Arm() {
  if (armed_) {
    return InvalidArgumentError("fault injector already armed");
  }
  Status valid = plan_.Validate();
  if (!valid.ok()) {
    return valid;
  }
  armed_ = true;

  for (const CrashFault& fault : plan_.crashes) {
    ScheduleCrash(fault);
  }
  gray_saved_factor_.assign(plan_.gray_slowdowns.size(), 0.0);
  for (size_t i = 0; i < plan_.gray_slowdowns.size(); ++i) {
    ScheduleGray(i);
  }
  armed_partitions_.reserve(plan_.partitions.size());
  for (const PartitionFault& fault : plan_.partitions) {
    ArmedPartition armed;
    armed.group_a = fault.group_a;
    armed.group_b = fault.group_b;
    std::sort(armed.group_a.begin(), armed.group_a.end());
    std::sort(armed.group_b.begin(), armed.group_b.end());
    armed.start = fault.start;
    armed.end = fault.end;
    armed_partitions_.push_back(std::move(armed));
  }
  // Partitions and packet loss act on frames, so the injector hooks the
  // fabric (crash replies included: a reset racing a partition is lost).
  if (!armed_partitions_.empty() || !plan_.losses.empty()) {
    system_->fabric().set_interceptor(this);
  }
  return Status::Ok();
}

bool FaultInjector::OnSend(MachineId src, MachineId dst, int64_t /*bytes*/) {
  const SimTime now = system_->sim().Now();
  for (const ArmedPartition& p : armed_partitions_) {
    if (now < p.start || now >= p.end) {
      continue;
    }
    if ((Contains(p.group_a, src) && Contains(p.group_b, dst)) ||
        (Contains(p.group_a, dst) && Contains(p.group_b, src))) {
      ++partition_drops_;
      partition_drops_counter_->Increment();
      return true;
    }
  }
  for (const PacketLossFault& l : plan_.losses) {
    if (now < l.start || now >= l.end) {
      continue;
    }
    const bool forward = (l.src < 0 || l.src == src) && (l.dst < 0 || l.dst == dst);
    const bool reverse =
        l.bidirectional && (l.src < 0 || l.src == dst) && (l.dst < 0 || l.dst == src);
    if (!forward && !reverse) {
      continue;
    }
    // The RNG is drawn only for matched frames inside an active window, so
    // the draw sequence — and with it the whole run — is plan-deterministic.
    if (drop_rng_.NextDouble() < l.loss_probability) {
      ++loss_drops_;
      loss_drops_counter_->Increment();
      return true;
    }
  }
  return false;
}

}  // namespace rpcscope

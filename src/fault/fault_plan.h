// FaultPlan: a declarative, replayable timeline of infrastructure faults.
//
// A plan is plain data — machine crashes/restarts, network partitions,
// per-path packet loss, and gray-failure slowdowns, each with virtual-time
// windows — validated up front and executed by the FaultInjector against a
// running RpcSystem. Because everything is scheduled on the simulator's
// virtual clock and all randomness comes from a seeded stream, the same plan
// against the same workload replays bit-for-bit (asserted via event digests).
#ifndef RPCSCOPE_SRC_FAULT_FAULT_PLAN_H_
#define RPCSCOPE_SRC_FAULT_FAULT_PLAN_H_

#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/topology.h"

namespace rpcscope {

// Kills the server process on `machine` at `at`: queued pipeline work is
// dropped and every in-flight call is answered with UNAVAILABLE (connection
// reset). If restart_at > at, the machine comes back empty at that instant;
// restart_at == 0 means it stays down.
struct CrashFault {
  MachineId machine = -1;
  SimTime at = 0;
  SimTime restart_at = 0;
};

// Full bidirectional partition between every machine in group_a and every
// machine in group_b during [start, end): frames silently vanish, exactly as
// a real partition looks to the endpoints (no resets — watchdogs fire).
struct PartitionFault {
  std::vector<MachineId> group_a;
  std::vector<MachineId> group_b;
  SimTime start = 0;
  SimTime end = 0;
};

// Random per-frame loss on a path during [start, end). src/dst of -1 are
// wildcards (any machine); bidirectional also matches the reverse path.
struct PacketLossFault {
  MachineId src = -1;
  MachineId dst = -1;
  double loss_probability = 0.0;
  SimTime start = 0;
  SimTime end = 0;
  bool bidirectional = true;
};

// Gray failure: `machine` keeps answering, but its application work runs
// `factor` times slower during [start, end) — the failure mode health checks
// miss and outlier ejection (latency_threshold) exists to catch.
struct GraySlowFault {
  MachineId machine = -1;
  double factor = 1.0;
  SimTime start = 0;
  SimTime end = 0;
};

struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<PartitionFault> partitions;
  std::vector<PacketLossFault> losses;
  std::vector<GraySlowFault> gray_slowdowns;

  // Structural validation (windows ordered, probabilities in range, machines
  // and factors sane). Does not check machines against a topology — plans
  // may be authored before deployment.
  [[nodiscard]] Status Validate() const;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_FAULT_FAULT_PLAN_H_

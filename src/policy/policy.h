// PolicyEngine: versioned, hot-swappable managed RPC policy.
//
// "Remote Procedure Call as a Managed System Service" (arXiv 2304.07349)
// argues that retries, load balancing, ejection, and shedding belong to a
// fleet-operated policy plane, not to per-application library config. This
// module is that plane for rpcscope: a PolicySnapshot is an immutable,
// versioned bundle of resilience knobs keyed by (service, method) with
// fleet-wide defaults; a PolicyTimeline is an authored sequence of snapshots
// at virtual times (a staged rollout, a canary, an A/B flip); a per-shard
// PolicyEngine walks the timeline at conservative-round barriers so every
// shard — and every worker-thread count — observes exactly the same snapshot
// for exactly the same events (docs/POLICY.md).
//
// Every MethodPolicy field is tri-state: the negative sentinel means
// "inherit" — from the service-wide entry, then the fleet defaults, then the
// consulting component's own constructor-time options. An empty snapshot
// therefore reproduces the pre-policy stack bit-for-bit: no extra RNG draws,
// no extra events, identical digests.
#ifndef RPCSCOPE_SRC_POLICY_POLICY_H_
#define RPCSCOPE_SRC_POLICY_POLICY_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

// One scope's policy overrides (fleet defaults, a service, or one method).
// Sentinels: every field < 0 inherits from the next-wider scope (and finally
// from the consulting component's constructor options). Non-negative values
// use the consuming option's own conventions (e.g. deadline 0 = "none",
// subset_size 0 = "all backends").
struct MethodPolicy {
  // Channel-level knobs (resolved per channel for its service).
  int32_t pick_policy = -1;           // PickPolicy enum value.
  int32_t subset_size = -1;           // 0 = all backends.
  SimDuration default_deadline = -1;  // 0 = no deadline.
  int32_t max_retries = -1;
  SimDuration hedge_delay = -1;       // 0 = hedging off.
  int32_t outlier_enabled = -1;       // 0 / 1.

  // Client-level knobs (resolved per call).
  SimDuration retry_backoff = -1;
  SimDuration retry_backoff_cap = -1;
  SimDuration attempt_timeout = -1;   // 0 = watchdog off.
  double retry_budget_max_tokens = -1;
  double retry_budget_refill = -1;
  // Colocated zero-copy fast path (docs/POLICY.md#colocated-bypass): when 1,
  // a call whose target resolves to the caller's own MachineId skips
  // serialization and the wire and hands the payload over by shared buffer.
  int32_t colocated_bypass = -1;      // 0 / 1.
  // Hardware-offload tax profile: an id into the system's ProfileCatalog
  // (docs/TAX.md#assigning-profiles-through-the-policy-plane). Resolved per
  // call on both endpoints; the inherit sentinel keeps the legacy host
  // pipeline, which is what preserves pre-profile digests bit-for-bit.
  int32_t tax_profile = -1;           // ProfileCatalog id.

  // Server-level knob (resolved per request).
  int32_t shed_on_deadline = -1;      // 0 / 1.

  // True when every field is the inherit sentinel.
  bool IsInherit() const;
  // Overlays `over` onto *this: fields `over` sets (>= 0) win.
  void MergeFrom(const MethodPolicy& over);
  // Folds every field into `digest` (FNV-1a; doubles as IEEE bit patterns).
  uint64_t ContentHash(uint64_t digest) const;
};

// An immutable, versioned policy bundle. Resolution precedence, narrowest
// wins: exact (service, method) entry > service-wide entry (method == -1) >
// fleet defaults. The ordered map keeps ContentHash and checkpoint layouts
// canonical.
struct PolicySnapshot {
  uint64_t version = 0;
  MethodPolicy defaults;
  // Key: (service_id, method_id); method_id == -1 covers the whole service.
  std::map<std::pair<int32_t, int32_t>, MethodPolicy> overrides;

  void SetOverride(int32_t service_id, int32_t method_id, const MethodPolicy& policy);
  // Merged view for one method: defaults, then service-wide, then exact.
  MethodPolicy Resolve(int32_t service_id, int32_t method_id) const;
  uint64_t ContentHash(uint64_t digest) const;
};

// One timeline step: `snapshot` becomes current at the first barrier whose
// watermark is >= `at`.
struct PolicyStage {
  SimTime at = 0;
  PolicySnapshot snapshot;
};

// The authored rollout plan: the initial snapshot (version 0) plus staged
// swaps at strictly increasing virtual times. Owned by RpcSystemOptions and
// immutable once the system is constructed; per-shard PolicyEngines only hold
// a pointer plus a cursor, which is what makes the swap deterministic and the
// engine trivially checkpointable.
struct PolicyTimeline {
  PolicySnapshot initial;
  std::vector<PolicyStage> stages;

  // Appends a stage; assigns version stages.size() + 1 when the snapshot's
  // version is 0 (the common authoring path).
  void AddStage(SimTime at, PolicySnapshot snapshot);
  bool has_stages() const { return !stages.empty(); }
  // Checks stage times are positive and strictly increasing.
  [[nodiscard]] Status Validate() const;
  // Identity of the whole plan (folds every snapshot + time). Used by
  // checkpoint config hashes: resuming under a different timeline must be
  // rejected, it would silently diverge.
  uint64_t ContentHash() const;
};

// Per-shard view onto a timeline. ApplyThrough is called only at
// conservative-round barriers (coordinator thread, workers parked) and at
// segment/final flushes, with the same watermark sequence for every
// worker-thread count — so current() is identical across shards and workers
// for every event. The engine's mutable state is one cursor; CheckpointTo/
// RestoreFrom carry it across kill-and-resume so a rollout in flight picks up
// exactly where it stopped.
// RPCSCOPE_CHECKPOINTED(PolicyEngine::CheckpointTo, PolicyEngine::RestoreFrom)
class PolicyEngine {
 public:
  PolicyEngine() = default;
  // `timeline` must outlive the engine (RpcSystem owns it in its options).
  explicit PolicyEngine(const PolicyTimeline* timeline) : timeline_(timeline) {}

  // The snapshot in force. With no timeline bound (or none applied yet) this
  // is the timeline's initial snapshot — or an empty all-inherit snapshot
  // when unbound.
  const PolicySnapshot& current() const;
  uint64_t version() const { return current().version; }
  size_t stages_applied() const { return applied_; }

  // Applies every not-yet-applied stage with at <= watermark. Watermarks must
  // be non-decreasing (barrier watermarks are).
  void ApplyThrough(SimTime watermark);

  // Checkpoint support: the cursor plus the timeline's content hash so a
  // restore under a different plan fails cleanly instead of diverging.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  const PolicyTimeline* timeline_ = nullptr;
  size_t applied_ = 0;  // Stages applied so far; current() is stages[applied_-1].
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_POLICY_POLICY_H_

#include "src/policy/policy.h"

#include <cstring>

#include "src/checkpoint/checkpoint.h"

namespace rpcscope {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvMix(uint64_t digest, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (i * 8)) & 0xff;
    digest *= kFnvPrime;
  }
  return digest;
}

uint64_t FnvMixDouble(uint64_t digest, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMix(digest, bits);
}

const PolicySnapshot& EmptySnapshot() {
  static const PolicySnapshot empty;
  return empty;
}

}  // namespace

bool MethodPolicy::IsInherit() const {
  return pick_policy < 0 && subset_size < 0 && default_deadline < 0 && max_retries < 0 &&
         hedge_delay < 0 && outlier_enabled < 0 && retry_backoff < 0 && retry_backoff_cap < 0 &&
         attempt_timeout < 0 && retry_budget_max_tokens < 0 && retry_budget_refill < 0 &&
         colocated_bypass < 0 && tax_profile < 0 && shed_on_deadline < 0;
}

void MethodPolicy::MergeFrom(const MethodPolicy& over) {
  if (over.pick_policy >= 0) pick_policy = over.pick_policy;
  if (over.subset_size >= 0) subset_size = over.subset_size;
  if (over.default_deadline >= 0) default_deadline = over.default_deadline;
  if (over.max_retries >= 0) max_retries = over.max_retries;
  if (over.hedge_delay >= 0) hedge_delay = over.hedge_delay;
  if (over.outlier_enabled >= 0) outlier_enabled = over.outlier_enabled;
  if (over.retry_backoff >= 0) retry_backoff = over.retry_backoff;
  if (over.retry_backoff_cap >= 0) retry_backoff_cap = over.retry_backoff_cap;
  if (over.attempt_timeout >= 0) attempt_timeout = over.attempt_timeout;
  if (over.retry_budget_max_tokens >= 0) retry_budget_max_tokens = over.retry_budget_max_tokens;
  if (over.retry_budget_refill >= 0) retry_budget_refill = over.retry_budget_refill;
  if (over.colocated_bypass >= 0) colocated_bypass = over.colocated_bypass;
  if (over.tax_profile >= 0) tax_profile = over.tax_profile;
  if (over.shed_on_deadline >= 0) shed_on_deadline = over.shed_on_deadline;
}

uint64_t MethodPolicy::ContentHash(uint64_t digest) const {
  digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(pick_policy)));
  digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(subset_size)));
  digest = FnvMix(digest, static_cast<uint64_t>(default_deadline));
  digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(max_retries)));
  digest = FnvMix(digest, static_cast<uint64_t>(hedge_delay));
  digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(outlier_enabled)));
  digest = FnvMix(digest, static_cast<uint64_t>(retry_backoff));
  digest = FnvMix(digest, static_cast<uint64_t>(retry_backoff_cap));
  digest = FnvMix(digest, static_cast<uint64_t>(attempt_timeout));
  digest = FnvMixDouble(digest, retry_budget_max_tokens);
  digest = FnvMixDouble(digest, retry_budget_refill);
  digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(colocated_bypass)));
  digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(tax_profile)));
  digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(shed_on_deadline)));
  return digest;
}

void PolicySnapshot::SetOverride(int32_t service_id, int32_t method_id,
                                 const MethodPolicy& policy) {
  overrides[{service_id, method_id}] = policy;
}

MethodPolicy PolicySnapshot::Resolve(int32_t service_id, int32_t method_id) const {
  MethodPolicy merged = defaults;
  auto service_wide = overrides.find({service_id, -1});
  if (service_wide != overrides.end()) merged.MergeFrom(service_wide->second);
  if (method_id >= 0) {
    auto exact = overrides.find({service_id, method_id});
    if (exact != overrides.end()) merged.MergeFrom(exact->second);
  }
  return merged;
}

uint64_t PolicySnapshot::ContentHash(uint64_t digest) const {
  digest = FnvMix(digest, version);
  digest = defaults.ContentHash(digest);
  digest = FnvMix(digest, overrides.size());
  // std::map iterates in key order, so the fold is canonical.
  for (const auto& [key, policy] : overrides) {
    digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(key.first)));
    digest = FnvMix(digest, static_cast<uint64_t>(static_cast<int64_t>(key.second)));
    digest = policy.ContentHash(digest);
  }
  return digest;
}

void PolicyTimeline::AddStage(SimTime at, PolicySnapshot snapshot) {
  if (snapshot.version == 0) snapshot.version = stages.size() + 1;
  stages.push_back(PolicyStage{at, std::move(snapshot)});
}

Status PolicyTimeline::Validate() const {
  SimTime prev = 0;
  for (const PolicyStage& stage : stages) {
    if (stage.at <= prev) {
      return InvalidArgumentError("policy stage times must be positive and strictly increasing");
    }
    prev = stage.at;
  }
  return Status::Ok();
}

uint64_t PolicyTimeline::ContentHash() const {
  uint64_t digest = kFnvOffset;
  digest = initial.ContentHash(digest);
  digest = FnvMix(digest, stages.size());
  for (const PolicyStage& stage : stages) {
    digest = FnvMix(digest, static_cast<uint64_t>(stage.at));
    digest = stage.snapshot.ContentHash(digest);
  }
  return digest;
}

const PolicySnapshot& PolicyEngine::current() const {
  if (timeline_ == nullptr) return EmptySnapshot();
  if (applied_ == 0) return timeline_->initial;
  return timeline_->stages[applied_ - 1].snapshot;
}

void PolicyEngine::ApplyThrough(SimTime watermark) {
  if (timeline_ == nullptr) return;
  while (applied_ < timeline_->stages.size() && timeline_->stages[applied_].at <= watermark) {
    ++applied_;
  }
}

Status PolicyEngine::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("policy_engine");
  uint64_t timeline_hash = timeline_ != nullptr ? timeline_->ContentHash() : 0;
  w.WriteU64(timeline_hash);
  w.WriteU64(static_cast<uint64_t>(applied_));
  w.WriteU64(version());
  w.EndSection();
  return Status::Ok();
}

Status PolicyEngine::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("policy_engine"); !s.ok()) return s;
  uint64_t timeline_hash = r.ReadU64();
  uint64_t applied = r.ReadU64();
  uint64_t saved_version = r.ReadU64();
  if (Status s = r.LeaveSection(); !s.ok()) return s;
  uint64_t expected_hash = timeline_ != nullptr ? timeline_->ContentHash() : 0;
  if (timeline_hash != expected_hash) {
    return FailedPreconditionError("policy engine restore under a different policy timeline");
  }
  size_t stage_count = timeline_ != nullptr ? timeline_->stages.size() : 0;
  if (applied > stage_count) {
    return DataLossError("policy engine checkpoint cursor exceeds timeline stage count");
  }
  applied_ = static_cast<size_t>(applied);
  if (saved_version != version()) {
    return DataLossError("policy engine checkpoint version mismatch after cursor restore");
  }
  return Status::Ok();
}

}  // namespace rpcscope

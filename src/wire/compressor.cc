#include "src/wire/compressor.h"

#include <algorithm>
#include <cstring>

#include "src/wire/varint.h"

namespace rpcscope {

namespace {

constexpr uint8_t kStoredBlock = 0;
constexpr uint8_t kLzBlock = 1;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 15;

inline uint32_t HashFour(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void WriteStoredBlock(const std::vector<uint8_t>& input, std::vector<uint8_t>& out) {
  out.clear();
  out.reserve(input.size() + 10);
  out.push_back(kStoredBlock);
  PutVarint64(out, input.size());
  out.insert(out.end(), input.begin(), input.end());
}

}  // namespace

void RatelCompress(const std::vector<uint8_t>& input, RatelScratch& scratch,
                   std::vector<uint8_t>& out) {
  out.clear();
  out.reserve(input.size() / 2 + 16);
  out.push_back(kLzBlock);
  PutVarint64(out, input.size());

  if (input.size() < kMinMatch + 4) {
    WriteStoredBlock(input, out);
    return;
  }

  // Generation-tagged hash slots: a slot belongs to this call only if its
  // high 32 bits match the current generation, so reusing the table costs one
  // counter bump, not a 256 KiB clear. Positions occupy the low 32 bits
  // (inputs here are messages, far below 4 GiB).
  constexpr size_t kHashSize = size_t{1} << kHashBits;
  if (scratch.slots.size() != kHashSize || scratch.generation == UINT32_MAX) {
    scratch.slots.assign(kHashSize, 0);
    scratch.generation = 0;
  }
  ++scratch.generation;
  const uint64_t gen_tag = uint64_t{scratch.generation} << 32;
  uint64_t* const slots = scratch.slots.data();
  const uint8_t* data = input.data();
  const size_t n = input.size();
  size_t pos = 0;
  size_t literal_start = 0;

  auto flush_literals = [&](size_t end) {
    PutVarint64(out, (end - literal_start) << 1);  // LSB 0 => literal run.
    out.insert(out.end(), data + literal_start, data + end);
  };

  while (pos + kMinMatch <= n) {
    const uint32_t h = HashFour(data + pos);
    const uint64_t slot = slots[h];
    const int64_t candidate =
        (slot >> 32) == scratch.generation ? static_cast<int64_t>(slot & 0xffffffff) : -1;
    slots[h] = gen_tag | static_cast<uint32_t>(pos);
    if (candidate >= 0 && pos - static_cast<size_t>(candidate) <= kMaxOffset &&
        std::memcmp(data + candidate, data + pos, kMinMatch) == 0) {
      // Extend the match.
      size_t len = kMinMatch;
      const size_t cand = static_cast<size_t>(candidate);
      while (pos + len < n && data[cand + len] == data[pos + len]) {
        ++len;
      }
      flush_literals(pos);
      PutVarint64(out, ((len - kMinMatch) << 1) | 1);  // LSB 1 => match.
      PutVarint64(out, pos - cand);
      // Insert hash entries inside the match so later data can reference it.
      const size_t insert_end = std::min(pos + len, n - kMinMatch);
      for (size_t i = pos + 1; i < insert_end; ++i) {
        slots[HashFour(data + i)] = gen_tag | static_cast<uint32_t>(i);
      }
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literals(n);

  if (out.size() >= input.size() + 1 + VarintSize(input.size())) {
    // Incompressible: fall back to a stored block.
    WriteStoredBlock(input, out);
  }
}

std::vector<uint8_t> RatelCompress(const std::vector<uint8_t>& input) {
  RatelScratch scratch;
  std::vector<uint8_t> out;
  RatelCompress(input, scratch, out);
  return out;
}

Status RatelDecompress(const std::vector<uint8_t>& block, std::vector<uint8_t>& out) {
  out.clear();
  if (block.empty()) {
    return InvalidArgumentError("empty block");
  }
  const uint8_t kind = block[0];
  size_t pos = 1;
  uint64_t original_size;
  if (!GetVarint64(block, pos, original_size)) {
    return InternalError("corrupt block header");
  }
  // The declared size is attacker-controlled: cap it absolutely, reserve
  // conservatively, and let the per-token bounds below keep the output from
  // ever exceeding the declaration.
  constexpr uint64_t kMaxBlockBytes = uint64_t{1} << 30;
  if (original_size > kMaxBlockBytes) {
    return InvalidArgumentError("declared size exceeds the 1 GiB block limit");
  }
  out.reserve(static_cast<size_t>(std::min<uint64_t>(original_size, 1 << 20)));

  if (kind == kStoredBlock) {
    if (block.size() - pos != original_size) {
      return InternalError("stored block size mismatch");
    }
    out.insert(out.end(), block.begin() + static_cast<int64_t>(pos), block.end());
    return Status::Ok();
  }
  if (kind != kLzBlock) {
    return InvalidArgumentError("unknown block kind");
  }

  while (pos < block.size()) {
    uint64_t token;
    if (!GetVarint64(block, pos, token)) {
      return InternalError("corrupt token");
    }
    if ((token & 1) == 0) {
      const uint64_t run = token >> 1;
      if (pos + run > block.size() || out.size() + run > original_size) {
        return InternalError("literal run overflows block");
      }
      out.insert(out.end(), block.begin() + static_cast<int64_t>(pos),
                 block.begin() + static_cast<int64_t>(pos + run));
      pos += run;
    } else {
      const uint64_t len = (token >> 1) + kMinMatch;
      uint64_t offset;
      if (!GetVarint64(block, pos, offset)) {
        return InternalError("corrupt match offset");
      }
      if (offset == 0 || offset > out.size()) {
        return InternalError("match offset out of range");
      }
      if (out.size() + len > original_size) {
        return InternalError("match overflows declared size");
      }
      // Byte-at-a-time copy supports overlapping matches (RLE-style).
      size_t src = out.size() - offset;
      for (uint64_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    }
  }
  if (out.size() != original_size) {
    return InternalError("decompressed size mismatch");
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> RatelDecompress(const std::vector<uint8_t>& block) {
  std::vector<uint8_t> out;
  Status status = RatelDecompress(block, out);
  if (!status.ok()) {
    return status;
  }
  return out;
}

double CompressionRatio(size_t original, size_t compressed) {
  if (original == 0) {
    return 1.0;
  }
  return static_cast<double>(compressed) / static_cast<double>(original);
}

}  // namespace rpcscope

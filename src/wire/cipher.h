// Stream cipher for RPC payload encryption.
//
// NOT cryptographically secure: this is a cost-model stand-in for the
// ChaCha20-class ciphers the production stack uses. It is a keyed
// xoshiro256** keystream XOR, which (a) is byte-for-byte reversible,
// (b) touches every payload byte exactly once like a real stream cipher, and
// (c) gives the cycle meter a realistic per-byte cost shape.
#ifndef RPCSCOPE_SRC_WIRE_CIPHER_H_
#define RPCSCOPE_SRC_WIRE_CIPHER_H_

#include <cstdint>
#include <vector>

namespace rpcscope {

class StreamCipher {
 public:
  // Key + per-message nonce select the keystream.
  StreamCipher(uint64_t key, uint64_t nonce);

  // XORs the keystream over `data` in place. Calling twice with a cipher
  // constructed from the same (key, nonce) restores the original bytes.
  void Apply(std::vector<uint8_t>& data);

 private:
  uint64_t s_[4];
  uint64_t NextBlock();
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_WIRE_CIPHER_H_

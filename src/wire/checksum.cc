#include "src/wire/checksum.h"

#include <array>

namespace rpcscope {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // CRC32C reflected polynomial.

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size) {
  const auto& table = Table();
  uint32_t crc = 0xffffffff;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xff];
  }
  return crc ^ 0xffffffff;
}

uint32_t Crc32c(const std::vector<uint8_t>& data) { return Crc32c(data.data(), data.size()); }

}  // namespace rpcscope

#include "src/wire/cipher.h"

#include <cstddef>

#include "src/common/rng.h"

namespace rpcscope {

StreamCipher::StreamCipher(uint64_t key, uint64_t nonce) {
  uint64_t sm = key ^ Mix64(nonce);
  for (auto& lane : s_) {
    lane = SplitMix64(sm);
  }
}

uint64_t StreamCipher::NextBlock() {
  auto rotl = [](uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void StreamCipher::Apply(std::vector<uint8_t>& data) {
  size_t i = 0;
  while (i + 8 <= data.size()) {
    const uint64_t ks = NextBlock();
    for (int b = 0; b < 8; ++b) {
      data[i + static_cast<size_t>(b)] ^= static_cast<uint8_t>(ks >> (8 * b));
    }
    i += 8;
  }
  if (i < data.size()) {
    const uint64_t ks = NextBlock();
    int b = 0;
    for (; i < data.size(); ++i, ++b) {
      data[i] ^= static_cast<uint8_t>(ks >> (8 * b));
    }
  }
}

}  // namespace rpcscope

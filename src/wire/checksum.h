// CRC32C (Castagnoli) checksum, table-driven software implementation.
// Used to frame-check every RPC message on the simulated wire.
#ifndef RPCSCOPE_SRC_WIRE_CHECKSUM_H_
#define RPCSCOPE_SRC_WIRE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rpcscope {

uint32_t Crc32c(const uint8_t* data, size_t size);
uint32_t Crc32c(const std::vector<uint8_t>& data);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_WIRE_CHECKSUM_H_

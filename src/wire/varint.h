// Varint and zigzag codecs (protobuf-compatible encoding rules).
#ifndef RPCSCOPE_SRC_WIRE_VARINT_H_
#define RPCSCOPE_SRC_WIRE_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rpcscope {

// Appends the LEB128 varint encoding of `value` to `out`.
void PutVarint64(std::vector<uint8_t>& out, uint64_t value);

// Decodes a varint starting at `pos`; advances `pos` past it. Returns false on
// truncation or overlong (>10 byte) encodings. Ignoring the result means
// consuming an undefined `value`, hence [[nodiscard]].
[[nodiscard]] bool GetVarint64(const std::vector<uint8_t>& buf, size_t& pos, uint64_t& value);

// Number of bytes PutVarint64 will emit.
size_t VarintSize(uint64_t value);

// Zigzag mapping for signed values.
constexpr uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
constexpr int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_WIRE_VARINT_H_

// LZ-style block compressor ("Ratel": an LZ4-family format).
//
// Compression is the single largest RPC cycle-tax component in the study
// (3.1% of all fleet cycles, Fig. 20b), so the stack compresses real bytes
// with a real algorithm: greedy hash-chain LZ with 64 KiB windows, emitting
// (literal-run, match) token pairs. Ratios and byte counts feed both the
// latency model (bytes on the wire) and the cycle model (cycles/byte).
#ifndef RPCSCOPE_SRC_WIRE_COMPRESSOR_H_
#define RPCSCOPE_SRC_WIRE_COMPRESSOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace rpcscope {

// Compresses `input` into a self-describing block. Always succeeds; for
// incompressible input the output is |input| + small header (a stored block).
std::vector<uint8_t> RatelCompress(const std::vector<uint8_t>& input);

// Decompresses a block produced by RatelCompress. Fails on corrupt input.
[[nodiscard]] Result<std::vector<uint8_t>> RatelDecompress(const std::vector<uint8_t>& block);

// Ratio helper: compressed size / original size (1.0 for empty input).
double CompressionRatio(size_t original, size_t compressed);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_WIRE_COMPRESSOR_H_

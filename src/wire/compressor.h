// LZ-style block compressor ("Ratel": an LZ4-family format).
//
// Compression is the single largest RPC cycle-tax component in the study
// (3.1% of all fleet cycles, Fig. 20b), so the stack compresses real bytes
// with a real algorithm: greedy hash-chain LZ with 64 KiB windows, emitting
// (literal-run, match) token pairs. Ratios and byte counts feed both the
// latency model (bytes on the wire) and the cycle model (cycles/byte).
#ifndef RPCSCOPE_SRC_WIRE_COMPRESSOR_H_
#define RPCSCOPE_SRC_WIRE_COMPRESSOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace rpcscope {

// Reusable compression state. The hash table is ~256 KiB; hot paths (the
// codec encodes a frame per RPC attempt) hold one of these and reuse it so
// per-message compression is allocation-free in steady state. Slots are
// generation-tagged ((generation << 32) | position), so reuse costs a single
// counter bump instead of a 256 KiB clear per message.
struct RatelScratch {
  std::vector<uint64_t> slots;
  uint32_t generation = 0;
};

// Compresses `input` into a self-describing block, replacing the contents of
// `out`. Always succeeds; for incompressible input the output is |input| +
// small header (a stored block). `scratch` is reset internally and may be
// reused across calls.
void RatelCompress(const std::vector<uint8_t>& input, RatelScratch& scratch,
                   std::vector<uint8_t>& out);

// Convenience wrapper allocating fresh scratch and output (cold paths, tests).
std::vector<uint8_t> RatelCompress(const std::vector<uint8_t>& input);

// Decompresses a block produced by RatelCompress into `out` (contents
// replaced). Fails on corrupt input.
[[nodiscard]] Status RatelDecompress(const std::vector<uint8_t>& block,
                                     std::vector<uint8_t>& out);

// Convenience wrapper returning a fresh vector (cold paths, tests).
[[nodiscard]] Result<std::vector<uint8_t>> RatelDecompress(const std::vector<uint8_t>& block);

// Ratio helper: compressed size / original size (1.0 for empty input).
double CompressionRatio(size_t original, size_t compressed);

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_WIRE_COMPRESSOR_H_

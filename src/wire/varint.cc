#include "src/wire/varint.h"

#include "src/common/check.h"

namespace rpcscope {

void PutVarint64(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

bool GetVarint64(const std::vector<uint8_t>& buf, size_t& pos, uint64_t& value) {
  RPCSCOPE_DCHECK_LE(pos, buf.size()) << "varint cursor past end of buffer";
  uint64_t result = 0;
  int shift = 0;
  size_t p = pos;
  while (p < buf.size() && shift < 64) {
    const uint8_t byte = buf[p++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      pos = p;
      value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

size_t VarintSize(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace rpcscope

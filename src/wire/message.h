// Schema-lite message model with a protobuf-style wire encoding.
//
// RPC payloads in rpcscope are real byte sequences: a Message is a tree of
// tagged fields (varints, doubles, bytes, nested messages) that serializes to
// the familiar tag/wire-type format and parses back. The fleet model
// generates messages whose serialized sizes follow the paper's per-method
// size distributions (Fig. 6) and whose byte content has tunable redundancy so
// the compressor does real work (Fig. 20's 3.1% compression cycles).
#ifndef RPCSCOPE_SRC_WIRE_MESSAGE_H_
#define RPCSCOPE_SRC_WIRE_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace rpcscope {

enum class WireType : uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kBytes = 2,
  kMessage = 3,  // Length-delimited like kBytes, but parsed recursively.
};

class Message {
 public:
  struct Field {
    uint32_t tag = 0;
    WireType type = WireType::kVarint;
    uint64_t varint = 0;
    double fixed64 = 0;
    std::string bytes;
    std::unique_ptr<Message> child;

    Field() = default;
    Field(const Field& other);
    Field& operator=(const Field& other);
    Field(Field&&) = default;
    Field& operator=(Field&&) = default;
  };

  Message() = default;
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
  Message(Message&&) = default;
  Message& operator=(Message&&) = default;

  void AddVarint(uint32_t tag, uint64_t value);
  void AddDouble(uint32_t tag, double value);
  void AddBytes(uint32_t tag, std::string value);
  void AddMessage(uint32_t tag, Message child);

  const std::vector<Field>& fields() const { return fields_; }
  size_t field_count() const { return fields_.size(); }

  // First field with the given tag, or nullptr.
  const Field* FindField(uint32_t tag) const;

  // Serialized size in bytes (computed without serializing).
  size_t ByteSize() const;

  // Appends the encoding to `out`.
  void SerializeTo(std::vector<uint8_t>& out) const;
  std::vector<uint8_t> Serialize() const;

  // Parses an encoding produced by SerializeTo. Unknown wire types or
  // truncated input yield an error.
  [[nodiscard]] static Result<Message> Parse(const std::vector<uint8_t>& buf);
  [[nodiscard]] static Result<Message> ParseRange(const std::vector<uint8_t>& buf, size_t begin,
                                                  size_t end);

  // Structural equality (field order matters, as on the wire).
  bool Equals(const Message& other) const;

  // Generates a message whose serialized size is close to `target_bytes`.
  // `redundancy` in [0,1] controls byte-level compressibility of string
  // fields (0 = random bytes, 1 = highly repetitive).
  static Message GeneratePayload(Rng& rng, size_t target_bytes, double redundancy);

 private:
  std::vector<Field> fields_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_WIRE_MESSAGE_H_

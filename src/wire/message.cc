#include "src/wire/message.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/wire/varint.h"

namespace rpcscope {

namespace {

constexpr uint64_t MakeKey(uint32_t tag, WireType type) {
  return (static_cast<uint64_t>(tag) << 3) | static_cast<uint64_t>(type);
}

}  // namespace

Message::Field::Field(const Field& other)
    : tag(other.tag),
      type(other.type),
      varint(other.varint),
      fixed64(other.fixed64),
      bytes(other.bytes),
      child(other.child ? std::make_unique<Message>(*other.child) : nullptr) {}

Message::Field& Message::Field::operator=(const Field& other) {
  if (this != &other) {
    tag = other.tag;
    type = other.type;
    varint = other.varint;
    fixed64 = other.fixed64;
    bytes = other.bytes;
    child = other.child ? std::make_unique<Message>(*other.child) : nullptr;
  }
  return *this;
}

void Message::AddVarint(uint32_t tag, uint64_t value) {
  Field f;
  f.tag = tag;
  f.type = WireType::kVarint;
  f.varint = value;
  fields_.push_back(std::move(f));
}

void Message::AddDouble(uint32_t tag, double value) {
  Field f;
  f.tag = tag;
  f.type = WireType::kFixed64;
  f.fixed64 = value;
  fields_.push_back(std::move(f));
}

void Message::AddBytes(uint32_t tag, std::string value) {
  Field f;
  f.tag = tag;
  f.type = WireType::kBytes;
  f.bytes = std::move(value);
  fields_.push_back(std::move(f));
}

void Message::AddMessage(uint32_t tag, Message child) {
  Field f;
  f.tag = tag;
  f.type = WireType::kMessage;
  f.child = std::make_unique<Message>(std::move(child));
  fields_.push_back(std::move(f));
}

const Message::Field* Message::FindField(uint32_t tag) const {
  for (const Field& f : fields_) {
    if (f.tag == tag) {
      return &f;
    }
  }
  return nullptr;
}

size_t Message::ByteSize() const {
  size_t total = 0;
  for (const Field& f : fields_) {
    total += VarintSize(MakeKey(f.tag, f.type));
    switch (f.type) {
      case WireType::kVarint:
        total += VarintSize(f.varint);
        break;
      case WireType::kFixed64:
        total += 8;
        break;
      case WireType::kBytes:
        total += VarintSize(f.bytes.size()) + f.bytes.size();
        break;
      case WireType::kMessage: {
        const size_t child_size = f.child->ByteSize();
        total += VarintSize(child_size) + child_size;
        break;
      }
    }
  }
  return total;
}

void Message::SerializeTo(std::vector<uint8_t>& out) const {
  for (const Field& f : fields_) {
    PutVarint64(out, MakeKey(f.tag, f.type));
    switch (f.type) {
      case WireType::kVarint:
        PutVarint64(out, f.varint);
        break;
      case WireType::kFixed64: {
        uint64_t bits;
        std::memcpy(&bits, &f.fixed64, sizeof(bits));
        for (int i = 0; i < 8; ++i) {
          out.push_back(static_cast<uint8_t>(bits >> (8 * i)));
        }
        break;
      }
      case WireType::kBytes:
        PutVarint64(out, f.bytes.size());
        out.insert(out.end(), f.bytes.begin(), f.bytes.end());
        break;
      case WireType::kMessage:
        PutVarint64(out, f.child->ByteSize());
        f.child->SerializeTo(out);
        break;
    }
  }
}

std::vector<uint8_t> Message::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(ByteSize());
  SerializeTo(out);
  return out;
}

Result<Message> Message::ParseRange(const std::vector<uint8_t>& buf, size_t begin, size_t end) {
  // Malformed *content* inside [begin, end) is a Status; a cursor outside the
  // buffer is a caller bug that would read out of bounds, so it fails fast.
  RPCSCOPE_CHECK_LE(begin, end) << "inverted parse range";
  RPCSCOPE_CHECK_LE(end, buf.size()) << "parse range beyond buffer";
  Message msg;
  size_t pos = begin;
  while (pos < end) {
    uint64_t key;
    if (!GetVarint64(buf, pos, key) || pos > end) {
      return InternalError("truncated field key");
    }
    const uint32_t tag = static_cast<uint32_t>(key >> 3);
    const uint8_t type_bits = static_cast<uint8_t>(key & 0x7);
    if (type_bits > static_cast<uint8_t>(WireType::kMessage)) {
      return InvalidArgumentError("unknown wire type");
    }
    const WireType type = static_cast<WireType>(type_bits);
    switch (type) {
      case WireType::kVarint: {
        uint64_t v;
        if (!GetVarint64(buf, pos, v) || pos > end) {
          return InternalError("truncated varint field");
        }
        msg.AddVarint(tag, v);
        break;
      }
      case WireType::kFixed64: {
        if (pos + 8 > end) {
          return InternalError("truncated fixed64 field");
        }
        uint64_t bits = 0;
        for (int i = 0; i < 8; ++i) {
          bits |= static_cast<uint64_t>(buf[pos + static_cast<size_t>(i)]) << (8 * i);
        }
        pos += 8;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        msg.AddDouble(tag, d);
        break;
      }
      case WireType::kBytes: {
        uint64_t len;
        // `end - pos` avoids the overflow in `pos + len` for adversarial
        // lengths near 2^64.
        if (!GetVarint64(buf, pos, len) || len > end - pos) {
          return InternalError("truncated bytes field");
        }
        msg.AddBytes(tag, std::string(buf.begin() + static_cast<int64_t>(pos),
                                      buf.begin() + static_cast<int64_t>(pos + len)));
        pos += len;
        break;
      }
      case WireType::kMessage: {
        uint64_t len;
        if (!GetVarint64(buf, pos, len) || len > end - pos) {
          return InternalError("truncated submessage");
        }
        Result<Message> child = ParseRange(buf, pos, pos + len);
        if (!child.ok()) {
          return child.status();
        }
        msg.AddMessage(tag, std::move(child.value()));
        pos += len;
        break;
      }
    }
  }
  return msg;
}

Result<Message> Message::Parse(const std::vector<uint8_t>& buf) {
  return ParseRange(buf, 0, buf.size());
}

bool Message::Equals(const Message& other) const {
  if (fields_.size() != other.fields_.size()) {
    return false;
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    const Field& a = fields_[i];
    const Field& b = other.fields_[i];
    if (a.tag != b.tag || a.type != b.type) {
      return false;
    }
    switch (a.type) {
      case WireType::kVarint:
        if (a.varint != b.varint) {
          return false;
        }
        break;
      case WireType::kFixed64:
        if (a.fixed64 != b.fixed64) {
          return false;
        }
        break;
      case WireType::kBytes:
        if (a.bytes != b.bytes) {
          return false;
        }
        break;
      case WireType::kMessage:
        if (!a.child->Equals(*b.child)) {
          return false;
        }
        break;
    }
  }
  return true;
}

Message Message::GeneratePayload(Rng& rng, size_t target_bytes, double redundancy) {
  Message msg;
  uint32_t tag = 1;
  // Small header-like scalar fields first.
  msg.AddVarint(tag++, rng.NextUint64() & 0xffffff);
  msg.AddVarint(tag++, rng.NextUint64() & 0xffff);
  size_t used = msg.ByteSize();
  if (target_bytes <= used) {
    return msg;
  }
  // Fill the remainder with string fields whose content compressibility is
  // controlled by `redundancy`: each byte is either drawn fresh or copied
  // from a short sliding window, producing LZ-matchable runs.
  size_t remaining = target_bytes - used;
  while (remaining > 0) {
    // Chunk fields at ~8 KiB to mimic repeated sub-records.
    const size_t overhead = 4;  // tag + length estimate
    const size_t chunk =
        remaining > 8192 + overhead ? 8192 : (remaining > overhead ? remaining - overhead : 1);
    std::string data(chunk, '\0');
    size_t i = 0;
    while (i < chunk) {
      // With probability `redundancy`, copy a contiguous run from earlier in
      // the buffer (an LZ-matchable repeat); otherwise emit fresh bytes.
      if (i >= 64 && rng.NextBool(redundancy)) {
        size_t len = 8 + rng.NextBounded(57);  // 8..64 byte repeats.
        len = std::min(len, chunk - i);
        const size_t src = rng.NextBounded(i - len + 1);
        for (size_t k = 0; k < len; ++k) {
          data[i + k] = data[src + k];
        }
        i += len;
      } else {
        data[i++] = static_cast<char>('a' + rng.NextBounded(26));
      }
    }
    msg.AddBytes(tag++, std::move(data));
    const size_t now_used = msg.ByteSize();
    if (now_used >= target_bytes) {
      break;
    }
    remaining = target_bytes - now_used;
  }
  return msg;
}

}  // namespace rpcscope

// TraceStore: persisted, queryable span storage.
//
// Dapper separates collection from analysis: traces are written once and
// queried many times. TraceStore holds spans with by-method / by-service /
// by-trace indexes and serializes to a compact varint-encoded binary format
// so a bench run's spans can be written to disk and re-analyzed without
// re-simulating.
#ifndef RPCSCOPE_SRC_TRACE_STORAGE_H_
#define RPCSCOPE_SRC_TRACE_STORAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/trace/span.h"

namespace rpcscope {

// Binary codec for span batches. The format is self-describing:
//   [magic "RSPN"][varint version][varint count][span records...]
// Each span record encodes its fields as varints (durations as ns, doubles
// as IEEE-754 bit patterns).
std::vector<uint8_t> SerializeSpans(const std::vector<Span>& spans);
[[nodiscard]] Result<std::vector<Span>> DeserializeSpans(const std::vector<uint8_t>& bytes);

// Incremental decoder over a serialized span batch: yields one span at a
// time, so streaming consumers (rpcscope_analyze --analysis=stream, the
// ObservabilityHub replay path) aggregate a batch of any size with O(1) span
// memory instead of materializing the whole vector. DeserializeSpans is this
// reader run to exhaustion.
class SpanReader {
 public:
  // Validates magic and version; the buffer must outlive the reader.
  [[nodiscard]] static Result<SpanReader> Open(const std::vector<uint8_t>& bytes);

  // Spans declared by the batch header / not yet read.
  uint64_t count() const { return count_; }
  uint64_t remaining() const { return count_ - read_; }

  // Decodes the next span into `span`. Returns true on success, false at
  // end-of-batch (after verifying no trailing bytes follow the last record);
  // a truncated or corrupt record is an error Status.
  [[nodiscard]] Result<bool> Next(Span& span);

 private:
  SpanReader(const std::vector<uint8_t>* bytes, size_t pos, uint64_t count, uint64_t version)
      : bytes_(bytes), pos_(pos), count_(count), version_(version) {}

  const std::vector<uint8_t>* bytes_;
  size_t pos_;
  uint64_t count_;
  // Batch format version; v1 records lack the colocated-bypass fields and
  // decode with their defaults.
  uint64_t version_;
  uint64_t read_ = 0;
};

class TraceStore {
 public:
  void Add(const Span& span);
  void AddAll(const std::vector<Span>& spans);

  const std::vector<Span>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }

  // Index lookups; returned pointers are invalidated by Add.
  std::vector<const Span*> ByMethod(int32_t method_id) const;
  std::vector<const Span*> ByService(int32_t service_id) const;
  std::vector<const Span*> ByTrace(TraceId trace_id) const;

  // Spans with start_time in [begin, end).
  std::vector<const Span*> InTimeRange(SimTime begin, SimTime end) const;

  // Disk round trip (binary format above).
  [[nodiscard]] Status SaveToFile(const std::string& path) const;
  [[nodiscard]] static Result<TraceStore> LoadFromFile(const std::string& path);

 private:
  std::vector<Span> spans_;
  std::unordered_map<int32_t, std::vector<size_t>> by_method_;
  std::unordered_map<int32_t, std::vector<size_t>> by_service_;
  std::unordered_map<TraceId, std::vector<size_t>> by_trace_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_TRACE_STORAGE_H_

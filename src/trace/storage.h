// TraceStore: persisted, queryable span storage.
//
// Dapper separates collection from analysis: traces are written once and
// queried many times. TraceStore holds spans with by-method / by-service /
// by-trace indexes and serializes to a compact varint-encoded binary format
// so a bench run's spans can be written to disk and re-analyzed without
// re-simulating.
#ifndef RPCSCOPE_SRC_TRACE_STORAGE_H_
#define RPCSCOPE_SRC_TRACE_STORAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/trace/span.h"

namespace rpcscope {

// Binary codec for span batches. The format is self-describing:
//   [magic "RSPN"][varint version][varint count][span records...]
// Each span record encodes its fields as varints (durations as ns, doubles
// as IEEE-754 bit patterns).
std::vector<uint8_t> SerializeSpans(const std::vector<Span>& spans);
[[nodiscard]] Result<std::vector<Span>> DeserializeSpans(const std::vector<uint8_t>& bytes);

class TraceStore {
 public:
  void Add(const Span& span);
  void AddAll(const std::vector<Span>& spans);

  const std::vector<Span>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }

  // Index lookups; returned pointers are invalidated by Add.
  std::vector<const Span*> ByMethod(int32_t method_id) const;
  std::vector<const Span*> ByService(int32_t service_id) const;
  std::vector<const Span*> ByTrace(TraceId trace_id) const;

  // Spans with start_time in [begin, end).
  std::vector<const Span*> InTimeRange(SimTime begin, SimTime end) const;

  // Disk round trip (binary format above).
  [[nodiscard]] Status SaveToFile(const std::string& path) const;
  [[nodiscard]] static Result<TraceStore> LoadFromFile(const std::string& path);

 private:
  std::vector<Span> spans_;
  std::unordered_map<int32_t, std::vector<size_t>> by_method_;
  std::unordered_map<int32_t, std::vector<size_t>> by_service_;
  std::unordered_map<TraceId, std::vector<size_t>> by_trace_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_TRACE_STORAGE_H_

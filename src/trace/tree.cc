#include "src/trace/tree.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"

namespace rpcscope {

TraceForest::TraceForest(const std::vector<Span>& spans) {
  // Index spans by id and group by trace.
  std::unordered_map<SpanId, size_t> by_span_id;
  by_span_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    by_span_id.emplace(spans[i].span_id, i);
  }

  // children[i] lists indexes of spans whose parent is spans[i].
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (s.parent_span_id == 0) {
      roots.push_back(i);
      continue;
    }
    auto it = by_span_id.find(s.parent_span_id);
    if (it == by_span_id.end() || it->second == i) {
      roots.push_back(i);  // Orphan: treat as root.
    } else {
      children[it->second].push_back(i);
    }
  }

  span_shapes_.resize(spans.size());
  std::vector<bool> visited(spans.size(), false);
  // Ordered by trace_id so the flatten below emits trace_shapes_ in its
  // final order directly — no hash-order intermediate, no post-sort.
  std::map<TraceId, TraceShape> traces;

  // Iterative DFS per root: compute depth on the way down, descendant counts
  // on the way back up (post-order).
  std::vector<std::pair<size_t, int64_t>> stack;  // (index, depth)
  std::vector<size_t> order;
  for (size_t root : roots) {
    stack.clear();
    order.clear();
    stack.push_back({root, 0});
    int64_t max_depth = 0;
    std::unordered_map<int64_t, int64_t> width_at_depth;
    while (!stack.empty()) {
      auto [idx, depth] = stack.back();
      stack.pop_back();
      order.push_back(idx);
      visited[idx] = true;
      span_shapes_[idx].span_index = idx;
      span_shapes_[idx].ancestors = depth;
      max_depth = std::max(max_depth, depth);
      ++width_at_depth[depth];
      for (size_t child : children[idx]) {
        stack.push_back({child, depth + 1});
      }
    }
    // Post-order descendant accumulation: process in reverse DFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      int64_t desc = 0;
      for (size_t child : children[*it]) {
        desc += 1 + span_shapes_[child].descendants;
      }
      span_shapes_[*it].descendants = desc;
    }
    TraceShape& shape = traces[spans[root].trace_id];
    shape.trace_id = spans[root].trace_id;
    shape.total_spans += static_cast<int64_t>(order.size());
    shape.max_depth = std::max(shape.max_depth, max_depth);
    for (const auto& [depth, width] : width_at_depth) {
      shape.max_width = std::max(shape.max_width, width);
    }
  }

  // Acyclicity: every span must be reachable from some root. A span left
  // unvisited sits on a parent-link cycle (a -> b -> a), which would silently
  // drop it — and its whole subtree — from every descendant/ancestor
  // statistic. Collectors can only create such spans by corrupting ids, so
  // treat it as a fatal invariant rather than partial-trace noise.
  for (size_t i = 0; i < spans.size(); ++i) {
    RPCSCOPE_CHECK(visited[i]) << "span index " << i << " (span_id=" << spans[i].span_id
                               << ") unreachable from any root: parent-link cycle";
  }

  trace_shapes_.reserve(traces.size());
  for (auto& [id, shape] : traces) {
    trace_shapes_.push_back(shape);
  }
}

}  // namespace rpcscope

// TraceCollector: the Dapper-like trace sink.
//
// Collects spans with probabilistic head sampling (a root's sampling decision
// propagates to the whole tree via the trace id, as in Dapper). Stores spans
// in memory; analyses read them back as a flat view or assembled trees.
#ifndef RPCSCOPE_SRC_TRACE_COLLECTOR_H_
#define RPCSCOPE_SRC_TRACE_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/trace/span.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

// RPCSCOPE_CHECKPOINTED(CheckpointTo, RestoreFrom)
class TraceCollector {
 public:
  // Configuration, not checkpointed state: RestoreFrom validates the saved
  // sampling setup against it instead of overwriting it.
  struct Options {
    double sampling_probability = 1.0;  // Head-based, per trace id.
    uint64_t seed = 0xdadbeef;
    // Offset added to the id counter before mixing. Sharded runs give each
    // shard-local collector a disjoint offset range (shard << 40) so ids are
    // fleet-unique without cross-shard coordination; Mix64 is a bijection, so
    // distinct counter values can never collide. 0 keeps legacy ids.
    uint64_t id_offset = 0;
  };

  TraceCollector() : TraceCollector(Options{}) {}
  explicit TraceCollector(const Options& options);

  // Whether a trace id is selected for collection (deterministic per id).
  [[nodiscard]] bool IsSampled(TraceId trace_id) const;

  // Records the span if its trace is sampled. Returns true if kept.
  bool Record(const Span& span);

  // Allocates fresh trace/span ids (never zero).
  TraceId NewTraceId();
  SpanId NewSpanId();

  const std::vector<Span>& spans() const { return spans_; }
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return dropped_; }

  // Drop-aware estimate of the realized sampling fraction: kept / offered
  // record attempts (1.0 before anything was offered). Span-weighted, unlike
  // options().sampling_probability which is the configured per-*trace* rate:
  // a deep trace contributes its whole span count to one keep/drop decision,
  // so the two differ whenever trace depth correlates with the sampling hash.
  // Analyses that scale counts up by the sampling rate should divide by this,
  // not by the configured probability.
  double ObservedKeepFraction() const;

  void Clear();

  // Checkpoint support: collected spans (as an RSPN codec blob, reusing
  // src/trace/storage.h), the id counter, and keep/drop tallies. Restore
  // re-validates sampling options via the derived threshold and replaces any
  // existing contents wholesale.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  // No PRNG state: the keep decision is a stateless hash of the trace id
  // (Mix64(id ^ seed)), NOT a random draw, so every shard-local collector in
  // a sharded run — which all share the same `seed` — makes the identical
  // decision for a distributed trace's id without any coordination (Dapper's
  // head-sampling propagation). Per-shard randomness lives in the ids
  // themselves via disjoint id_offset ranges.
  Options options_;
  uint64_t sample_threshold_;  // Trace kept iff Mix64(id ^ seed) < threshold.
  std::vector<Span> spans_;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_TRACE_COLLECTOR_H_

#include "src/trace/span.h"

namespace rpcscope {

std::string_view RpcComponentName(RpcComponent c) {
  switch (c) {
    case RpcComponent::kClientSendQueue:
      return "Client Send Queue";
    case RpcComponent::kRequestProcStack:
      return "Request Proc+Net Stack";
    case RpcComponent::kRequestWire:
      return "Request Network Wire";
    case RpcComponent::kServerRecvQueue:
      return "Server Recv Queue";
    case RpcComponent::kServerApp:
      return "Server Application";
    case RpcComponent::kServerSendQueue:
      return "Server Send Queue";
    case RpcComponent::kResponseProcStack:
      return "Resp Proc+Net Stack";
    case RpcComponent::kResponseWire:
      return "Resp Network Wire";
    case RpcComponent::kClientRecvQueue:
      return "Client Recv Queue";
  }
  return "invalid";
}

SimDuration LatencyBreakdown::Total() const {
  SimDuration total = 0;
  for (SimDuration d : components) {
    total += d;
  }
  return total;
}

SimDuration LatencyBreakdown::Tax() const {
  return Total() - (*this)[RpcComponent::kServerApp];
}

SimDuration LatencyBreakdown::WireTotal() const {
  return (*this)[RpcComponent::kRequestWire] + (*this)[RpcComponent::kResponseWire];
}

SimDuration LatencyBreakdown::ProcStackTotal() const {
  return (*this)[RpcComponent::kRequestProcStack] + (*this)[RpcComponent::kResponseProcStack];
}

SimDuration LatencyBreakdown::QueueTotal() const {
  return (*this)[RpcComponent::kClientSendQueue] + (*this)[RpcComponent::kServerRecvQueue] +
         (*this)[RpcComponent::kServerSendQueue] + (*this)[RpcComponent::kClientRecvQueue];
}

}  // namespace rpcscope

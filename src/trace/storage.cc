#include "src/trace/storage.h"

#include <cstdio>
#include <cstring>

#include "src/wire/varint.h"

namespace rpcscope {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'P', 'N'};
// v2 appends the colocated-bypass fields (flag + avoided tax cycles) to each
// record; v1 batches remain readable, decoding those fields as their defaults.
constexpr uint64_t kVersion = 2;

void PutDouble(std::vector<uint8_t>& out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutVarint64(out, bits);
}

bool GetDouble(const std::vector<uint8_t>& buf, size_t& pos, double& value) {
  uint64_t bits;
  if (!GetVarint64(buf, pos, bits)) {
    return false;
  }
  std::memcpy(&value, &bits, sizeof(value));
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeSpans(const std::vector<Span>& spans) {
  std::vector<uint8_t> out;
  out.reserve(spans.size() * 64 + 16);
  out.insert(out.end(), kMagic, kMagic + 4);
  PutVarint64(out, kVersion);
  PutVarint64(out, spans.size());
  for (const Span& s : spans) {
    PutVarint64(out, s.trace_id);
    PutVarint64(out, s.span_id);
    PutVarint64(out, s.parent_span_id);
    PutVarint64(out, ZigzagEncode(s.method_id));
    PutVarint64(out, ZigzagEncode(s.service_id));
    PutVarint64(out, ZigzagEncode(s.client_cluster));
    PutVarint64(out, ZigzagEncode(s.server_cluster));
    PutVarint64(out, ZigzagEncode(s.start_time));
    for (SimDuration d : s.latency.components) {
      PutVarint64(out, ZigzagEncode(d));
    }
    PutVarint64(out, static_cast<uint64_t>(s.status));
    PutVarint64(out, ZigzagEncode(s.request_payload_bytes));
    PutVarint64(out, ZigzagEncode(s.response_payload_bytes));
    PutVarint64(out, ZigzagEncode(s.request_wire_bytes));
    PutVarint64(out, ZigzagEncode(s.response_wire_bytes));
    PutVarint64(out, s.has_cpu_annotation ? 1 : 0);
    PutDouble(out, s.normalized_cpu_cycles);
    PutVarint64(out, s.colocated ? 1 : 0);
    PutDouble(out, s.avoided_tax_cycles);
  }
  return out;
}

Result<SpanReader> SpanReader::Open(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return InvalidArgumentError("not a span batch (bad magic)");
  }
  size_t pos = 4;
  uint64_t version, count;
  if (!GetVarint64(bytes, pos, version) || version < 1 || version > kVersion) {
    return InvalidArgumentError("unsupported span batch version");
  }
  if (!GetVarint64(bytes, pos, count)) {
    return InternalError("truncated span count");
  }
  return SpanReader(&bytes, pos, count, version);
}

Result<bool> SpanReader::Next(Span& span) {
  const std::vector<uint8_t>& bytes = *bytes_;
  if (read_ == count_) {
    if (pos_ != bytes.size()) {
      return InternalError("trailing bytes after span batch");
    }
    return false;
  }
  Span s;
  uint64_t u = 0;
  auto get_u64 = [&](uint64_t& v) { return GetVarint64(bytes, pos_, v); };
  auto get_i64 = [&](int64_t& v) {
    uint64_t raw;
    if (!GetVarint64(bytes, pos_, raw)) {
      return false;
    }
    v = ZigzagDecode(raw);
    return true;
  };
  int64_t i64 = 0;
  if (!get_u64(s.trace_id) || !get_u64(s.span_id) || !get_u64(s.parent_span_id)) {
    return InternalError("truncated span ids");
  }
  if (!get_i64(i64)) {
    return InternalError("truncated method id");
  }
  s.method_id = static_cast<int32_t>(i64);
  if (!get_i64(i64)) {
    return InternalError("truncated service id");
  }
  s.service_id = static_cast<int32_t>(i64);
  if (!get_i64(i64)) {
    return InternalError("truncated client cluster");
  }
  s.client_cluster = static_cast<ClusterId>(i64);
  if (!get_i64(i64)) {
    return InternalError("truncated server cluster");
  }
  s.server_cluster = static_cast<ClusterId>(i64);
  if (!get_i64(s.start_time)) {
    return InternalError("truncated start time");
  }
  for (SimDuration& d : s.latency.components) {
    if (!get_i64(d)) {
      return InternalError("truncated latency component");
    }
  }
  if (!get_u64(u)) {
    return InternalError("truncated status");
  }
  if (u > 16) {
    return InvalidArgumentError("invalid status code");
  }
  s.status = static_cast<StatusCode>(u);
  if (!get_i64(s.request_payload_bytes) || !get_i64(s.response_payload_bytes) ||
      !get_i64(s.request_wire_bytes) || !get_i64(s.response_wire_bytes)) {
    return InternalError("truncated byte counts");
  }
  if (!get_u64(u)) {
    return InternalError("truncated annotation flag");
  }
  s.has_cpu_annotation = u != 0;
  if (!GetDouble(bytes, pos_, s.normalized_cpu_cycles)) {
    return InternalError("truncated cycle annotation");
  }
  if (version_ >= 2) {
    if (!get_u64(u)) {
      return InternalError("truncated colocated flag");
    }
    s.colocated = u != 0;
    if (!GetDouble(bytes, pos_, s.avoided_tax_cycles)) {
      return InternalError("truncated avoided tax");
    }
  }
  ++read_;
  span = s;
  return true;
}

Result<std::vector<Span>> DeserializeSpans(const std::vector<uint8_t>& bytes) {
  Result<SpanReader> reader = SpanReader::Open(bytes);
  if (!reader.ok()) {
    return reader.status();
  }
  std::vector<Span> spans;
  spans.reserve(reader.value().count());
  Span span;
  for (;;) {
    Result<bool> more = reader.value().Next(span);
    if (!more.ok()) {
      return more.status();
    }
    if (!more.value()) {
      return spans;
    }
    spans.push_back(span);
  }
}

void TraceStore::Add(const Span& span) {
  const size_t index = spans_.size();
  spans_.push_back(span);
  by_method_[span.method_id].push_back(index);
  by_service_[span.service_id].push_back(index);
  by_trace_[span.trace_id].push_back(index);
}

void TraceStore::AddAll(const std::vector<Span>& spans) {
  for (const Span& s : spans) {
    Add(s);
  }
}

namespace {

std::vector<const Span*> Resolve(const std::vector<Span>& spans,
                                 const std::unordered_map<int32_t, std::vector<size_t>>& index,
                                 int32_t key) {
  std::vector<const Span*> out;
  auto it = index.find(key);
  if (it != index.end()) {
    out.reserve(it->second.size());
    for (size_t i : it->second) {
      out.push_back(&spans[i]);
    }
  }
  return out;
}

}  // namespace

std::vector<const Span*> TraceStore::ByMethod(int32_t method_id) const {
  return Resolve(spans_, by_method_, method_id);
}

std::vector<const Span*> TraceStore::ByService(int32_t service_id) const {
  return Resolve(spans_, by_service_, service_id);
}

std::vector<const Span*> TraceStore::ByTrace(TraceId trace_id) const {
  std::vector<const Span*> out;
  auto it = by_trace_.find(trace_id);
  if (it != by_trace_.end()) {
    for (size_t i : it->second) {
      out.push_back(&spans_[i]);
    }
  }
  return out;
}

std::vector<const Span*> TraceStore::InTimeRange(SimTime begin, SimTime end) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.start_time >= begin && s.start_time < end) {
      out.push_back(&s);
    }
  }
  return out;
}

Status TraceStore::SaveToFile(const std::string& path) const {
  const std::vector<uint8_t> bytes = SerializeSpans(spans_);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InternalError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

Result<TraceStore> TraceStore::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return InternalError("short read from " + path);
  }
  Result<std::vector<Span>> spans = DeserializeSpans(bytes);
  if (!spans.ok()) {
    return spans.status();
  }
  TraceStore store;
  store.AddAll(spans.value());
  return store;
}

}  // namespace rpcscope

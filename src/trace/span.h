// Dapper-style spans and the paper's nine-component RPC latency breakdown.
//
// Fig. 9 of the paper decomposes RPC completion time (RCT) into nine stages;
// everything except Server Application is the "RPC latency tax". Every RPC in
// rpcscope — whether executed through the DES stack or emitted by the
// model-driven fleet path — is recorded as a Span carrying this breakdown.
#ifndef RPCSCOPE_SRC_TRACE_SPAN_H_
#define RPCSCOPE_SRC_TRACE_SPAN_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/topology.h"

namespace rpcscope {

// The nine latency components of Fig. 9, in pipeline order.
enum class RpcComponent : int32_t {
  kClientSendQueue = 0,
  kRequestProcStack = 1,  // Request RPC processing + network stack.
  kRequestWire = 2,       // Request network wire (propagation + queuing).
  kServerRecvQueue = 3,   // Includes decrypt/parse of the request.
  kServerApp = 4,         // Handler execution, including nested RPC time.
  kServerSendQueue = 5,
  kResponseProcStack = 6,
  kResponseWire = 7,
  kClientRecvQueue = 8,
};

constexpr int kNumRpcComponents = 9;

std::string_view RpcComponentName(RpcComponent c);

// Per-RPC latency breakdown. Components are durations in virtual time.
struct LatencyBreakdown {
  std::array<SimDuration, kNumRpcComponents> components{};

  SimDuration& operator[](RpcComponent c) { return components[static_cast<size_t>(c)]; }
  SimDuration operator[](RpcComponent c) const { return components[static_cast<size_t>(c)]; }

  // RPC completion time: the sum of all components.
  SimDuration Total() const;

  // The RPC latency tax: everything except server application time.
  SimDuration Tax() const;

  // Tax components grouped as in Fig. 10b: network wire, RPC proc + network
  // stack, and queuing.
  SimDuration WireTotal() const;
  SimDuration ProcStackTotal() const;
  SimDuration QueueTotal() const;
};

using TraceId = uint64_t;
using SpanId = uint64_t;

// One RPC invocation as recorded by the tracing service.
// RPCSCOPE_CHECKPOINTED(SerializeSpans, SpanReader::Next)
struct Span {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_span_id = 0;  // 0 for root RPCs.
  int32_t method_id = -1;
  int32_t service_id = -1;
  ClusterId client_cluster = -1;
  ClusterId server_cluster = -1;
  SimTime start_time = 0;
  LatencyBreakdown latency;
  StatusCode status = StatusCode::kOk;
  // Serialized (pre-compression) payload sizes — what Fig. 6 measures.
  int64_t request_payload_bytes = 0;
  int64_t response_payload_bytes = 0;
  // On-wire (post-compression, framed) sizes — what Fig. 8b's bytes count.
  int64_t request_wire_bytes = 0;
  int64_t response_wire_bytes = 0;
  // GWP-style cost annotation: normalized CPU cycles consumed by this call
  // (only meaningful when has_cpu_annotation — not all samples carry it,
  // mirroring §4.2's note that not all traces have cost information).
  bool has_cpu_annotation = false;
  double normalized_cpu_cycles = 0;
  // Colocated zero-copy fast path (docs/POLICY.md#colocated-bypass): the call
  // skipped serialization and the wire; avoided_tax_cycles is what the
  // bypassed stages would have cost — the per-span "avoided tax".
  bool colocated = false;
  double avoided_tax_cycles = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_TRACE_SPAN_H_

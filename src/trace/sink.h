// TraceSink: where a shard's kept spans go.
//
// The Dapper pipeline separates *collection* (head-sampled span capture on
// the machine that observed the RPC) from *aggregation* (the fleet-wide
// analysis plane). TraceSink is that seam: anything that wants the kept span
// stream — the streaming observability pipeline (src/monitor/stream.h), a
// test harness, a file writer — implements OnSpan and is fed each span
// exactly once, in the shard's deterministic record order, immediately after
// the TraceCollector's sampling decision keeps it.
//
// Implementations are shard-local and single-threaded: a sink instance is
// only ever invoked from the shard domain that owns it, so no implementation
// needs (or is allowed) host-thread synchronization. Cross-shard movement of
// sink contents happens exclusively at conservative-round barriers, on the
// coordinator thread (docs/OBSERVABILITY.md).
#ifndef RPCSCOPE_SRC_TRACE_SINK_H_
#define RPCSCOPE_SRC_TRACE_SINK_H_

#include "src/trace/span.h"

namespace rpcscope {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Receives one kept span. Must not re-enter the RPC stack.
  virtual void OnSpan(const Span& span) = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_TRACE_SINK_H_

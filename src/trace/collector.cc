#include "src/trace/collector.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace rpcscope {

TraceCollector::TraceCollector(const Options& options) : options_(options) {
  const double p = std::clamp(options.sampling_probability, 0.0, 1.0);
  if (p >= 1.0) {
    sample_threshold_ = UINT64_MAX;
  } else {
    // Threshold = round-down of p * 2^64, computed in 2^53 space: the naive
    // static_cast<uint64_t>(p * 2^64) is undefined behavior whenever the
    // double product rounds up to exactly 2^64 (any p within half an ulp of
    // 1.0, e.g. nextafter(1.0, 0.0)). floor(p * 2^53) < 2^53 holds for all
    // p < 1 except that same half-ulp rounding case, which the guard maps to
    // keep-everything; shifting by 11 scales the 53-bit threshold to the full
    // 64-bit hash range with < 2^-53 relative error in the keep probability.
    const double scaled = std::floor(p * 9007199254740992.0);  // p * 2^53.
    sample_threshold_ =
        scaled >= 9007199254740992.0 ? UINT64_MAX : static_cast<uint64_t>(scaled) << 11;
  }
}

bool TraceCollector::IsSampled(TraceId trace_id) const {
  if (sample_threshold_ == UINT64_MAX) {
    return true;
  }
  return Mix64(trace_id ^ options_.seed) < sample_threshold_;
}

bool TraceCollector::Record(const Span& span) {
  if (!IsSampled(span.trace_id)) {
    ++dropped_;
    return false;
  }
  spans_.push_back(span);
  ++recorded_;
  return true;
}

TraceId TraceCollector::NewTraceId() {
  // Ids are both unique and well-distributed so that sampling by hash works.
  return Mix64(options_.id_offset + next_id_++) | 1;
}

SpanId TraceCollector::NewSpanId() { return Mix64(0x5eed ^ (options_.id_offset + next_id_++)) | 1; }

double TraceCollector::ObservedKeepFraction() const {
  const uint64_t offered = recorded_ + dropped_;
  return offered == 0 ? 1.0
                      : static_cast<double>(recorded_) / static_cast<double>(offered);
}

void TraceCollector::Clear() {
  spans_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace rpcscope

#include "src/trace/collector.h"

#include <algorithm>
#include <cmath>

namespace rpcscope {

TraceCollector::TraceCollector(const Options& options) : options_(options), rng_(options.seed) {
  const double p = std::clamp(options.sampling_probability, 0.0, 1.0);
  if (p >= 1.0) {
    sample_threshold_ = UINT64_MAX;
  } else {
    sample_threshold_ = static_cast<uint64_t>(p * 1.8446744073709552e19);
  }
}

bool TraceCollector::IsSampled(TraceId trace_id) const {
  if (sample_threshold_ == UINT64_MAX) {
    return true;
  }
  return Mix64(trace_id ^ options_.seed) < sample_threshold_;
}

bool TraceCollector::Record(const Span& span) {
  if (!IsSampled(span.trace_id)) {
    ++dropped_;
    return false;
  }
  spans_.push_back(span);
  ++recorded_;
  return true;
}

TraceId TraceCollector::NewTraceId() {
  // Ids are both unique and well-distributed so that sampling by hash works.
  return Mix64(options_.id_offset + next_id_++) | 1;
}

SpanId TraceCollector::NewSpanId() { return Mix64(0x5eed ^ (options_.id_offset + next_id_++)) | 1; }

void TraceCollector::Clear() {
  spans_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace rpcscope

#include "src/trace/collector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/rng.h"
#include "src/trace/storage.h"

namespace rpcscope {

TraceCollector::TraceCollector(const Options& options) : options_(options) {
  const double p = std::clamp(options.sampling_probability, 0.0, 1.0);
  if (p >= 1.0) {
    sample_threshold_ = UINT64_MAX;
  } else {
    // Threshold = round-down of p * 2^64, computed in 2^53 space: the naive
    // static_cast<uint64_t>(p * 2^64) is undefined behavior whenever the
    // double product rounds up to exactly 2^64 (any p within half an ulp of
    // 1.0, e.g. nextafter(1.0, 0.0)). floor(p * 2^53) < 2^53 holds for all
    // p < 1 except that same half-ulp rounding case, which the guard maps to
    // keep-everything; shifting by 11 scales the 53-bit threshold to the full
    // 64-bit hash range with < 2^-53 relative error in the keep probability.
    const double scaled = std::floor(p * 9007199254740992.0);  // p * 2^53.
    sample_threshold_ =
        scaled >= 9007199254740992.0 ? UINT64_MAX : static_cast<uint64_t>(scaled) << 11;
  }
}

bool TraceCollector::IsSampled(TraceId trace_id) const {
  if (sample_threshold_ == UINT64_MAX) {
    return true;
  }
  return Mix64(trace_id ^ options_.seed) < sample_threshold_;
}

bool TraceCollector::Record(const Span& span) {
  if (!IsSampled(span.trace_id)) {
    ++dropped_;
    return false;
  }
  spans_.push_back(span);
  ++recorded_;
  return true;
}

TraceId TraceCollector::NewTraceId() {
  // Ids are both unique and well-distributed so that sampling by hash works.
  return Mix64(options_.id_offset + next_id_++) | 1;
}

SpanId TraceCollector::NewSpanId() { return Mix64(0x5eed ^ (options_.id_offset + next_id_++)) | 1; }

double TraceCollector::ObservedKeepFraction() const {
  const uint64_t offered = recorded_ + dropped_;
  return offered == 0 ? 1.0
                      : static_cast<double>(recorded_) / static_cast<double>(offered);
}

void TraceCollector::Clear() {
  spans_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

Status TraceCollector::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("trace_collector");
  w.WriteU64(sample_threshold_);  // Derived from options_; revalidated on restore.
  w.WriteU64(options_.id_offset);
  w.WriteU64(recorded_);
  w.WriteU64(dropped_);
  w.WriteU64(next_id_);
  w.WriteBytes(SerializeSpans(spans_));
  w.EndSection();
  return Status::Ok();
}

Status TraceCollector::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("trace_collector"); !s.ok()) {
    return s;
  }
  const uint64_t sample_threshold = r.ReadU64();
  const uint64_t id_offset = r.ReadU64();
  const uint64_t recorded = r.ReadU64();
  const uint64_t dropped = r.ReadU64();
  const uint64_t next_id = r.ReadU64();
  const std::vector<uint8_t> span_blob = r.ReadBytes();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (sample_threshold != sample_threshold_ || id_offset != options_.id_offset) {
    return FailedPreconditionError(
        "checkpoint trace-collector sampling/id configuration does not match this run");
  }
  if (next_id == 0) {
    return DataLossError("trace-collector id counter is zero");
  }
  Result<std::vector<Span>> spans = DeserializeSpans(span_blob);
  if (!spans.ok()) {
    return spans.status();
  }
  spans_ = std::move(spans).value();
  recorded_ = recorded;
  dropped_ = dropped;
  next_id_ = next_id;
  return Status::Ok();
}

}  // namespace rpcscope

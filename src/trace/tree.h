// Trace-tree assembly and shape statistics (descendants / ancestors).
//
// §2.4 of the paper characterizes nested RPC call graphs by the number of
// descendants (the scale of distributed computation below a call) and the
// number of ancestors (return distance to the root). TraceForest assembles
// collected spans into trees and computes both per span.
#ifndef RPCSCOPE_SRC_TRACE_TREE_H_
#define RPCSCOPE_SRC_TRACE_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/span.h"

namespace rpcscope {

struct SpanShape {
  size_t span_index = 0;    // Index into the input span vector.
  int64_t descendants = 0;  // Spans strictly below this one in its tree.
  int64_t ancestors = 0;    // Depth: hops from this span up to the root.
};

struct TraceShape {
  TraceId trace_id = 0;
  int64_t total_spans = 0;
  int64_t max_depth = 0;     // Longest root-to-leaf ancestor count.
  int64_t max_width = 0;     // Largest number of spans at a single depth.
};

class TraceForest {
 public:
  // Builds the forest. Spans whose parent is missing from the collection are
  // treated as roots (Dapper shows the same artifact with partial traces).
  explicit TraceForest(const std::vector<Span>& spans);

  const std::vector<SpanShape>& span_shapes() const { return span_shapes_; }
  const std::vector<TraceShape>& trace_shapes() const { return trace_shapes_; }

 private:
  std::vector<SpanShape> span_shapes_;
  std::vector<TraceShape> trace_shapes_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_TRACE_TREE_H_

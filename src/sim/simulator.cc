#include "src/sim/simulator.h"

#include <utility>

namespace rpcscope {

void Simulator::Schedule(SimDuration delay, Callback fn) {
  if (delay < 0) {
    delay = 0;
  }
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

uint64_t Simulator::Run() {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    // The callback may schedule more events; copy out before popping.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  events_executed_ += executed;
  return executed;
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  events_executed_ += executed;
  return executed;
}

}  // namespace rpcscope

#include "src/sim/simulator.h"

#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"

namespace rpcscope {

namespace {

// FNV-1a fold of one 64-bit word, byte by byte.
uint64_t FnvMix(uint64_t digest, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    digest ^= (word >> (8 * i)) & 0xff;
    digest *= kPrime;
  }
  return digest;
}

}  // namespace

void Simulator::Schedule(SimDuration delay, Callback fn) {
  RPCSCOPE_DCHECK_GE(delay, 0) << "negative delay; release builds clamp to zero";
  if (delay < 0) {
    delay = 0;
  }
  // AddClamped saturates at the end of virtual time: a caller passing an
  // "effectively forever" delay must not wrap into the past (which release
  // builds would then silently clamp to now, firing the event immediately).
  ScheduleAt(AddClamped(now_, delay), std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  RPCSCOPE_DCHECK_GE(when, now_) << "scheduling in the past; release builds clamp to now";
  if (when < now_) {
    when = now_;
  }
  QueuePush(SimEvent{when, next_seq_++, std::move(fn)});
}

SimEvent Simulator::PopEvent() {
  SimEvent ev = queue_kind_ == SimQueueKind::kLadder ? ladder_.PopFront() : heap_.PopFront();
  // The virtual clock never moves backwards, and the queue hands out events in
  // strict (time, seq) order. A violation here means the queue or an event
  // mutation corrupted the schedule — every downstream latency number would be
  // wrong, so fail fast in all build types.
  RPCSCOPE_CHECK_GE(ev.time, now_) << "virtual clock would move backwards";
  if (any_executed_) {
    RPCSCOPE_CHECK(ev.time > last_time_ || (ev.time == last_time_ && ev.seq > last_seq_))
        << "event (time=" << ev.time << ", seq=" << ev.seq << ") out of order after (time="
        << last_time_ << ", seq=" << last_seq_ << ")";
  }
  last_time_ = ev.time;
  last_seq_ = ev.seq;
  any_executed_ = true;
  event_digest_ = FnvMix(FnvMix(event_digest_, static_cast<uint64_t>(ev.time)), ev.seq);
  now_ = ev.time;
  return ev;
}

uint64_t Simulator::Run() {
  uint64_t executed = 0;
  while (!QueueEmpty()) {
    SimEvent ev = PopEvent();
    ev.fn();
    ++executed;
  }
  events_executed_ += executed;
  return executed;
}

uint64_t Simulator::RunBefore(SimTime until) {
  uint64_t executed = 0;
  while (!QueueEmpty() && QueuePeekTime() < until) {
    SimEvent ev = PopEvent();
    ev.fn();
    ++executed;
  }
  events_executed_ += executed;
  return executed;
}

Status Simulator::CheckpointTo(CheckpointWriter& w) const {
  if (!ladder_.Empty() || !heap_.Empty()) {
    return FailedPreconditionError(
        "simulator queue not drained: checkpoints are only taken at quiescent "
        "barriers (events hold closures and cannot be persisted)");
  }
  w.BeginSection("sim");
  w.WriteU8(static_cast<uint8_t>(queue_kind_));
  w.WriteI64(now_);
  w.WriteU64(next_seq_);
  w.WriteU64(events_executed_);
  w.WriteU64(event_digest_);
  w.WriteI64(last_time_);
  w.WriteU64(last_seq_);
  w.WriteBool(any_executed_);
  w.EndSection();
  return Status::Ok();
}

Status Simulator::RestoreFrom(CheckpointReader& r) {
  if (!ladder_.Empty() || !heap_.Empty()) {
    return FailedPreconditionError("restore into a simulator with pending events");
  }
  if (Status s = r.EnterSection("sim"); !s.ok()) {
    return s;
  }
  const auto kind = static_cast<SimQueueKind>(r.ReadU8());
  const SimTime now = r.ReadI64();
  const uint64_t next_seq = r.ReadU64();
  const uint64_t events_executed = r.ReadU64();
  const uint64_t event_digest = r.ReadU64();
  const SimTime last_time = r.ReadI64();
  const uint64_t last_seq = r.ReadU64();
  const bool any_executed = r.ReadBool();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (kind != queue_kind_) {
    return FailedPreconditionError(
        "checkpoint was taken with a different simulator queue kind");
  }
  if (now < 0 || next_seq < events_executed) {
    return DataLossError("simulator checkpoint state is inconsistent");
  }
  now_ = now;
  next_seq_ = next_seq;
  events_executed_ = events_executed;
  event_digest_ = event_digest;
  last_time_ = last_time;
  last_seq_ = last_seq;
  any_executed_ = any_executed;
  return Status::Ok();
}

Status Simulator::ResyncAt(SimTime barrier) {
  if (!ladder_.Empty() || !heap_.Empty()) {
    return FailedPreconditionError(
        "simulator queue not drained: barrier resync requires quiescence");
  }
  if (barrier < 0) {
    return InvalidArgumentError("barrier resync to a negative time");
  }
  now_ = barrier;
  // The ordering bookkeeping restarts from the barrier: the next event popped
  // starts a fresh (time, seq) chain, and the ladder's pop floor (stuck at the
  // pre-resync clock) is discarded with the ladder itself. Sequence counter
  // and digest carry forward — the digest must keep folding the same global
  // stream whether or not the run was segmented.
  last_time_ = 0;
  last_seq_ = 0;
  any_executed_ = false;
  ladder_ = LadderEventQueue();
  heap_ = BinaryHeapEventQueue();
  return Status::Ok();
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!QueueEmpty() && QueuePeekTime() <= until) {
    SimEvent ev = PopEvent();
    ev.fn();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  events_executed_ += executed;
  return executed;
}

}  // namespace rpcscope

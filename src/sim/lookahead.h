// Per-domain-pair conservative lookahead bounds for the shard executor.
//
// A LookaheadMatrix entry At(src, dst) is a strict lower bound on the
// virtual-time latency of any event domain `src` can cause in domain `dst`,
// measured from the sender's clock at post time. The conservative-PDES round
// loop (src/sim/parallel/shard_executor.h) turns these bounds into per-domain
// execution horizons:
//
//   horizon[i] = min( min over senders s != i of (next_event_time[s] + At(s, i)),
//                     next_event_time[i] + min over s of (At(i, s) + At(s, i)) )
//
// which is strictly wider than the legacy global-minimum horizon whenever the
// bounds are non-uniform — distant shard pairs stop throttling each other to
// the closest pair's bound (docs/PARALLEL.md). For those horizons to be safe
// the matrix must satisfy the triangle inequality (causality relays through
// intermediate domains): build it by folding raw pair distances in with
// LowerTo, then call MinPlusClose before handing it to the executor.
//
// The matrix is plain data computed once before a run (RpcSystem derives it
// from topology distances between the clusters of each shard pair); nothing
// here touches host threads.
#ifndef RPCSCOPE_SRC_SIM_LOOKAHEAD_H_
#define RPCSCOPE_SRC_SIM_LOOKAHEAD_H_

#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace rpcscope {

class LookaheadMatrix {
 public:
  LookaheadMatrix() = default;

  // n x n matrix with every off-diagonal entry set to `uniform` (diagonal
  // entries are 0 and never consulted: a domain does not bound itself).
  explicit LookaheadMatrix(int n, SimDuration uniform = 0)
      : n_(n), bounds_(static_cast<size_t>(n) * static_cast<size_t>(n), uniform) {
    RPCSCOPE_CHECK_GE(n, 0);
    for (int i = 0; i < n; ++i) {
      bounds_[Index(i, i)] = 0;
    }
  }

  int size() const { return n_; }
  bool empty() const { return n_ == 0; }

  SimDuration At(int src, int dst) const { return bounds_[Index(src, dst)]; }

  void Set(int src, int dst, SimDuration bound) {
    RPCSCOPE_DCHECK_GE(bound, 0);
    bounds_[Index(src, dst)] = bound;
  }

  // Lowers the (src, dst) bound to `bound` if it is smaller — the natural
  // operation when folding a min over topology pairs into the matrix.
  void LowerTo(int src, int dst, SimDuration bound) {
    RPCSCOPE_DCHECK_GE(bound, 0);
    SimDuration& slot = bounds_[Index(src, dst)];
    if (bound < slot) {
      slot = bound;
    }
  }

  // Replaces every bound with the min-plus (all-pairs shortest path) closure:
  // At(s, d) <= At(s, k) + At(k, d) for every relay k. The executor's
  // cross-round safety induction needs this triangle inequality — a domain
  // whose own horizon was set by a near neighbor can relay causality onward
  // after only At(x, s) + At(s, d) of virtual time, so a direct bound larger
  // than that is unsound no matter how slow the direct link is. Topology
  // distances are not a metric (continent-pair RTTs are independent draws),
  // so builders must call this after folding in the raw pair bounds.
  // Closure only ever lowers entries, so every per-link latency CHECK that
  // held before still holds after.
  void MinPlusClose() {
    for (int k = 0; k < n_; ++k) {
      for (int s = 0; s < n_; ++s) {
        for (int d = 0; d < n_; ++d) {
          LowerTo(s, d, AddClamped(At(s, k), At(k, d)));
        }
      }
    }
  }

  // True when every bound already satisfies the triangle inequality (i.e.
  // MinPlusClose would change nothing). The executor CHECKs this up front.
  bool SatisfiesTriangleInequality() const {
    for (int k = 0; k < n_; ++k) {
      for (int s = 0; s < n_; ++s) {
        for (int d = 0; d < n_; ++d) {
          if (At(s, d) > AddClamped(At(s, k), At(k, d))) {
            return false;
          }
        }
      }
    }
    return true;
  }

  // The global conservative lookahead: the smallest off-diagonal bound. This
  // is what the pre-matrix executor used for every pair; keeping it exposed
  // lets callers compare the two schemes and gives model code a single
  // "minimum cross-shard latency" figure. kMaxSimTime when n < 2.
  SimDuration MinOffDiagonal() const {
    SimDuration min_bound = kMaxSimTime;
    for (int s = 0; s < n_; ++s) {
      for (int d = 0; d < n_; ++d) {
        if (s != d && At(s, d) < min_bound) {
          min_bound = At(s, d);
        }
      }
    }
    return min_bound;
  }

 private:
  size_t Index(int src, int dst) const {
    RPCSCOPE_DCHECK_GE(src, 0);
    RPCSCOPE_DCHECK_LT(src, n_);
    RPCSCOPE_DCHECK_GE(dst, 0);
    RPCSCOPE_DCHECK_LT(dst, n_);
    return static_cast<size_t>(src) * static_cast<size_t>(n_) + static_cast<size_t>(dst);
  }

  int n_ = 0;
  std::vector<SimDuration> bounds_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_LOOKAHEAD_H_

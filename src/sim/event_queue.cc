#include "src/sim/event_queue.h"

namespace rpcscope {

const SimEvent& LadderEventQueue::Front() {
  RPCSCOPE_DCHECK(size_ > 0) << "Front() on an empty ladder queue";
  for (;;) {
    if (cur_ < kNumBuckets) {
      std::vector<SimEvent>& bucket = buckets_[cur_];
      if (!cur_sorted_) {
        if (bucket.size() > kSplitOccupancy && shift_ > 0 && TryRebalance()) {
          // Too dense to drain as one sorted run, and narrowing actually
          // separates the events: redistribute before committing to the
          // O(n log n) sort. The loop re-enters with the (much smaller) new
          // current bucket.
          continue;
        }
        // First visit to this bucket in the current window: sort once, then
        // drain front-to-back. cur_pos_ is 0 here (consumed prefixes only
        // exist after sorting). Buckets fill in seq order, so same-time
        // clusters — the common dense case — arrive already sorted and the
        // O(n) check skips the sort.
        if (!std::is_sorted(bucket.begin(), bucket.end(),
                            event_queue_internal::ExecutesBefore{})) {
          std::sort(bucket.begin(), bucket.end(), event_queue_internal::ExecutesBefore{});
        }
        cur_sorted_ = true;
      }
      const bool in_bucket = cur_pos_ < bucket.size();
      if (!side_.empty() &&
          (!in_bucket || event_queue_internal::ExecutesBefore{}(side_.front(),
                                                               bucket[cur_pos_]))) {
        front_in_side_ = true;
        return side_.front();
      }
      if (in_bucket) {
        front_in_side_ = false;
        return bucket[cur_pos_];
      }
      // Bucket exhausted and the side heap has nothing earlier (it only ever
      // holds events at or before the current bucket's span, so it is empty
      // here): release the consumed events — capacity is retained, so
      // steady-state windows never reallocate — and step forward.
      bucket.clear();
      cur_pos_ = 0;
      cur_sorted_ = false;
      ++cur_;
      continue;
    }
    // Window exhausted with events still pending: they are all in overflow.
    RPCSCOPE_DCHECK(side_.empty()) << "side events survived past the window";
    RebuildWindow();
  }
}

bool LadderEventQueue::TryRebalance() {
  std::vector<SimEvent>& dense = buckets_[cur_];
  // Narrowing only separates events with distinct times. A bucket of pure
  // ties (same timestamp, different seq) stays one bucket at any width — the
  // caller sorts it once instead, which is also what prevents a livelock of
  // narrow (rebalance) / widen (rebuild) cycles chasing an unsplittable tie.
  SimTime bmin = dense.front().time;
  SimTime bmax = bmin;
  for (const SimEvent& ev : dense) {
    bmin = std::min(bmin, ev.time);
    bmax = std::max(bmax, ev.time);
  }
  const uint64_t span = static_cast<uint64_t>(bmax - bmin);
  if (span == 0) {
    return false;
  }
  // Narrow until the observed span spreads to ~kTargetOccupancy events per
  // bucket (the span covers `occupancy` events, so it should cover
  // occupancy / kTargetOccupancy buckets at the new width).
  const size_t occupancy = dense.size();
  int new_shift = shift_ - 1;
  while (new_shift > 0 && (span >> new_shift) * kTargetOccupancy < occupancy) {
    --new_shift;
  }
  // Tie-heavy clusters make the occupancy target unreachable (a cluster stays
  // one bucket at any width), so the loop above can over-narrow. Keep the
  // window at least ~8x the observed span: the cluster's successor events are
  // scheduled a few spans ahead and must stay in-window, not round-trip
  // through the overflow heap.
  while (new_shift < shift_ - 1 &&
         (uint64_t{kNumBuckets} << new_shift) < 8 * span) {
    ++new_shift;
  }
  shift_ = new_shift;

  // Anchor the narrowed window at the earliest pending event, not at floor_:
  // after a long empty gap (a timer wave 5 ms out) the dense cluster sits far
  // from the last popped time, and a narrow window anchored at floor_ could
  // not contain it — every event would bounce back to overflow and the next
  // rebuild would widen again, forever. The side heap may hold events even
  // earlier than the dense bucket; they re-bucket with everything else.
  SimTime anchor = bmin;
  if (!side_.empty()) {
    anchor = std::min(anchor, side_.front().time);
  }

  // Gather every in-window event. The current bucket is unvisited here
  // (cur_pos_ == 0), and the side heap's events re-bucket like any other.
  rebalance_scratch_.clear();
  for (size_t i = cur_; i < kNumBuckets; ++i) {
    for (SimEvent& ev : buckets_[i]) {
      rebalance_scratch_.push_back(std::move(ev));
    }
    buckets_[i].clear();
  }
  for (SimEvent& ev : side_) {
    rebalance_scratch_.push_back(std::move(ev));
  }
  side_.clear();

  win_start_ = anchor;
  cur_ = 0;
  cur_pos_ = 0;
  cur_sorted_ = false;
  drained_in_window_ = 0;
  for (SimEvent& ev : rebalance_scratch_) {
    RPCSCOPE_DCHECK_GE(ev.time, win_start_) << "pending event before the pop floor";
    const uint64_t idx = static_cast<uint64_t>(ev.time - win_start_) >> shift_;
    if (idx >= kNumBuckets) {
      overflow_.push_back(std::move(ev));
      std::push_heap(overflow_.begin(), overflow_.end(),
                     event_queue_internal::ExecutesAfter{});
    } else {
      buckets_[idx].push_back(std::move(ev));
    }
  }
  rebalance_scratch_.clear();

  // The re-anchored window can extend past the *old* window's end (it starts
  // at the dense cluster, not at the old origin), into the range earlier
  // pushes sent to overflow. Pull every overflow event that now lands
  // in-window into its bucket — left in the heap it would only surface at the
  // next rebuild, after later in-window events: out of order.
  while (!overflow_.empty()) {
    const SimTime t = overflow_.front().time;
    RPCSCOPE_DCHECK_GE(t, win_start_) << "overflow event before the window start";
    const uint64_t idx = static_cast<uint64_t>(t - win_start_) >> shift_;
    if (idx >= kNumBuckets) {
      break;  // Heap order: everything behind the front is even later.
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), event_queue_internal::ExecutesAfter{});
    buckets_[idx].push_back(std::move(overflow_.back()));
    overflow_.pop_back();
  }
  return true;
}

void LadderEventQueue::RebuildWindow() {
  RPCSCOPE_DCHECK(!overflow_.empty()) << "rebuild with no pending events";

  // Widen when the finished window was mostly empty buckets: each rebuild
  // advanced virtual time too little for the cursor-scan cost it paid.
  // (Narrowing is TryRebalance's job — it sees actual bucket occupancy, which
  // distinguishes genuinely dense windows from tie clusters that no width can
  // split.)
  if (drained_in_window_ < kNumBuckets / 8 && shift_ < kMaxShift) {
    ++shift_;
  }
  drained_in_window_ = 0;

  // Re-anchor at the last popped time: every pending and future event is at
  // or after it, so bucket deltas stay non-negative. Widen until the earliest
  // pending event fits the window, guaranteeing progress.
  win_start_ = floor_;
  const SimTime min_time = overflow_.front().time;
  while ((static_cast<uint64_t>(min_time - win_start_) >> shift_) >= kNumBuckets &&
         shift_ < kMaxShift) {
    ++shift_;
  }
  cur_ = 0;
  cur_pos_ = 0;
  cur_sorted_ = false;

  // Pull every overflow event that now lands in the window into its bucket.
  while (!overflow_.empty()) {
    const uint64_t idx = static_cast<uint64_t>(overflow_.front().time - win_start_) >> shift_;
    if (idx >= kNumBuckets) {
      break;  // Heap order: everything behind the front is even later.
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), event_queue_internal::ExecutesAfter{});
    buckets_[idx].push_back(std::move(overflow_.back()));
    overflow_.pop_back();
  }
}

}  // namespace rpcscope

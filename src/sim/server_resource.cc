#include "src/sim/server_resource.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace rpcscope {

ServerResource::ServerResource(Simulator* sim, const Options& options)
    : sim_(sim), options_(options), last_change_(sim->Now()) {
  RPCSCOPE_CHECK(sim != nullptr);
  RPCSCOPE_CHECK_GT(options.workers, 0);
}

void ServerResource::UpdateBusyTime() {
  const SimTime now = sim_->Now();
  RPCSCOPE_DCHECK_GE(now, last_change_) << "busy-time accounting saw the clock move backwards";
  busy_time_ += static_cast<SimDuration>(busy_workers_) * (now - last_change_);
  last_change_ = now;
}

SimDuration ServerResource::busy_time() {
  UpdateBusyTime();
  return busy_time_;
}

void ServerResource::AcquireWithPriority(int priority, Grant on_grant) {
  if (WouldReject()) {
    ++jobs_rejected_;
    on_grant(kRejected);
    return;
  }
  Job job{sim_->Now(), std::move(on_grant)};
  if (busy_workers_ < options_.workers) {
    GrantJob(std::move(job));
  } else {
    (priority <= 0 ? queue_ : low_queue_).push_back(std::move(job));
  }
}

void ServerResource::GrantJob(Job job) {
  // Worker-pool accounting: a grant must take a free worker, and a job can
  // never have waited a negative amount of virtual time.
  RPCSCOPE_CHECK_LT(busy_workers_, options_.workers) << "grant with no free worker";
  UpdateBusyTime();
  ++busy_workers_;
  const SimDuration queue_delay = sim_->Now() - job.enqueue_time;
  RPCSCOPE_CHECK_GE(queue_delay, 0) << "job granted before it was enqueued";
  job.on_grant(queue_delay);
}

void ServerResource::Release() {
  RPCSCOPE_CHECK_GT(busy_workers_, 0) << "Release() without a matching grant";
  UpdateBusyTime();
  --busy_workers_;
  ++jobs_completed_;
  std::deque<Job>& next_queue = !queue_.empty() ? queue_ : low_queue_;
  if (!next_queue.empty() && busy_workers_ < options_.workers) {
    Job next = std::move(next_queue.front());
    next_queue.pop_front();
    GrantJob(std::move(next));
  }
}

void ServerResource::Reset() {
  UpdateBusyTime();
  jobs_dropped_ += queue_.size() + low_queue_.size();
  queue_.clear();
  low_queue_.clear();
  busy_workers_ = 0;
  ++epoch_;
}

void ServerResource::Submit(SimDuration service_time, Completion done) {
  const SimDuration scaled =
      static_cast<SimDuration>(std::llround(static_cast<double>(service_time) * speed_factor_));
  Acquire([this, scaled, done = std::move(done)](SimDuration queue_delay) mutable {
    if (queue_delay == kRejected) {
      done(kRejected, 0);
      return;
    }
    const uint64_t epoch = epoch_;
    sim_->Schedule(scaled, [this, epoch, queue_delay, scaled, done = std::move(done)]() {
      // A Reset() (machine crash) between grant and completion freed this
      // worker already; the job it was running died with the machine.
      if (epoch != epoch_) {
        return;
      }
      Release();
      done(queue_delay, scaled);
    });
  });
}

}  // namespace rpcscope

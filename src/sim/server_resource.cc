#include "src/sim/server_resource.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"

namespace rpcscope {

ServerResource::ServerResource(Simulator* sim, const Options& options)
    : sim_(sim), options_(options), last_change_(sim->Now()) {
  RPCSCOPE_CHECK(sim != nullptr);
  RPCSCOPE_CHECK_GT(options.workers, 0);
}

void ServerResource::UpdateBusyTime() {
  const SimTime now = sim_->Now();
  if (busy_workers_ == 0) {
    // An idle stretch contributes nothing, so last_change_ can jump straight
    // to now — including backwards: a barrier resync (Simulator::ResyncAt)
    // rewinds the clock below the last drain-cascade Release, and the next
    // epoch's first grant may execute before that old timestamp.
    last_change_ = now;
    return;
  }
  RPCSCOPE_DCHECK_GE(now, last_change_) << "busy-time accounting saw the clock move backwards";
  busy_time_ += static_cast<SimDuration>(busy_workers_) * (now - last_change_);
  last_change_ = now;
}

SimDuration ServerResource::busy_time() {
  UpdateBusyTime();
  return busy_time_;
}

void ServerResource::AcquireWithPriority(int priority, Grant on_grant) {
  if (WouldReject()) {
    ++jobs_rejected_;
    on_grant(kRejected);
    return;
  }
  Job job{sim_->Now(), std::move(on_grant)};
  if (busy_workers_ < options_.workers) {
    GrantJob(std::move(job));
  } else {
    (priority <= 0 ? queue_ : low_queue_).push_back(std::move(job));
  }
}

void ServerResource::GrantJob(Job job) {
  // Worker-pool accounting: a grant must take a free worker, and a job can
  // never have waited a negative amount of virtual time.
  RPCSCOPE_CHECK_LT(busy_workers_, options_.workers) << "grant with no free worker";
  UpdateBusyTime();
  ++busy_workers_;
  const SimDuration queue_delay = sim_->Now() - job.enqueue_time;
  RPCSCOPE_CHECK_GE(queue_delay, 0) << "job granted before it was enqueued";
  job.on_grant(queue_delay);
}

void ServerResource::Release() {
  RPCSCOPE_CHECK_GT(busy_workers_, 0) << "Release() without a matching grant";
  UpdateBusyTime();
  --busy_workers_;
  ++jobs_completed_;
  std::deque<Job>& next_queue = !queue_.empty() ? queue_ : low_queue_;
  if (!next_queue.empty() && busy_workers_ < options_.workers) {
    Job next = std::move(next_queue.front());
    next_queue.pop_front();
    GrantJob(std::move(next));
  }
}

void ServerResource::Reset() {
  UpdateBusyTime();
  jobs_dropped_ += queue_.size() + low_queue_.size();
  queue_.clear();
  low_queue_.clear();
  busy_workers_ = 0;
  ++epoch_;
}

void ServerResource::Submit(SimDuration service_time, Completion done) {
  const SimDuration scaled =
      static_cast<SimDuration>(std::llround(static_cast<double>(service_time) * speed_factor_));
  Acquire([this, scaled, done = std::move(done)](SimDuration queue_delay) mutable {
    if (queue_delay == kRejected) {
      done(kRejected, 0);
      return;
    }
    const uint64_t epoch = epoch_;
    sim_->Schedule(scaled, [this, epoch, queue_delay, scaled, done = std::move(done)]() {
      // A Reset() (machine crash) between grant and completion freed this
      // worker already; the job it was running died with the machine.
      if (epoch != epoch_) {
        return;
      }
      Release();
      done(queue_delay, scaled);
    });
  });
}

Status ServerResource::CheckpointTo(CheckpointWriter& w) const {
  if (busy_workers_ != 0 || !queue_.empty() || !low_queue_.empty()) {
    return FailedPreconditionError(
        "server resource busy at checkpoint: queued jobs hold callbacks and "
        "cannot be persisted");
  }
  // last_change_ may exceed the (resynced) clock here: the pool's final
  // Release of the drain can land past the epoch boundary. With zero busy
  // workers the value is inert — restore clamps it to the restored clock.
  w.BeginSection("server_resource");
  w.WriteU32(static_cast<uint32_t>(options_.workers));
  w.WriteU64(options_.max_queue_depth);
  w.WriteDouble(speed_factor_);
  w.WriteU64(jobs_completed_);
  w.WriteU64(jobs_rejected_);
  w.WriteU64(jobs_dropped_);
  w.WriteU64(epoch_);
  w.WriteI64(busy_time_);
  w.WriteI64(last_change_);
  w.EndSection();
  return Status::Ok();
}

Status ServerResource::RestoreFrom(CheckpointReader& r) {
  if (busy_workers_ != 0 || !queue_.empty() || !low_queue_.empty()) {
    return FailedPreconditionError("restore into a busy server resource");
  }
  if (Status s = r.EnterSection("server_resource"); !s.ok()) {
    return s;
  }
  const auto workers = static_cast<int>(r.ReadU32());
  const uint64_t max_queue_depth = r.ReadU64();
  const double speed_factor = r.ReadDouble();
  const uint64_t jobs_completed = r.ReadU64();
  const uint64_t jobs_rejected = r.ReadU64();
  const uint64_t jobs_dropped = r.ReadU64();
  const uint64_t epoch = r.ReadU64();
  const SimDuration busy_time = r.ReadI64();
  const SimTime last_change = r.ReadI64();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (workers != options_.workers || max_queue_depth != options_.max_queue_depth) {
    return FailedPreconditionError(
        "checkpoint server-resource shape does not match this configuration");
  }
  if (busy_time < 0) {
    return DataLossError("server-resource busy accounting is negative");
  }
  speed_factor_ = speed_factor;
  jobs_completed_ = jobs_completed;
  jobs_rejected_ = jobs_rejected;
  jobs_dropped_ = jobs_dropped;
  epoch_ = epoch;
  busy_time_ = busy_time;
  // The snapshot's last_change can sit past the barrier (final drain Release);
  // it is inert while idle, so pin it at the restored clock to keep the
  // accounting's monotonic fast path intact.
  last_change_ = std::min(last_change, sim_->Now());
  return Status::Ok();
}

}  // namespace rpcscope

// Discrete-event simulation engine.
//
// The fleet substrate runs entirely on virtual time: events carry a callback
// and execute in (time, insertion-sequence) order, making every run
// deterministic for a fixed seed. The engine is single-threaded on purpose —
// concurrency in the modeled system (server worker pools, network links) is
// expressed as resources over virtual time, not as host threads.
#ifndef RPCSCOPE_SRC_SIM_SIMULATOR_H_
#define RPCSCOPE_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/time.h"

namespace rpcscope {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` after the current time (delay >= 0; negative
  // delays are clamped to zero).
  void Schedule(SimDuration delay, Callback fn);

  // Schedules `fn` at an absolute time (clamped to now if in the past).
  void ScheduleAt(SimTime when, Callback fn);

  // Runs until the event queue drains. Returns the number of events executed.
  uint64_t Run();

  // Runs events with time <= until (events exactly at `until` execute).
  // Advances Now() to `until` even if the queue drains earlier.
  uint64_t RunUntil(SimTime until);

  uint64_t RunFor(SimDuration duration) { return RunUntil(now_ + duration); }

  bool empty() const { return queue_.empty(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_SIMULATOR_H_

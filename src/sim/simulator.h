// Discrete-event simulation engine.
//
// The fleet substrate runs entirely on virtual time: events carry a callback
// and execute in (time, insertion-sequence) order, making every run
// deterministic for a fixed seed. The engine is single-threaded on purpose —
// concurrency in the modeled system (server worker pools, network links) is
// expressed as resources over virtual time, not as host threads.
#ifndef RPCSCOPE_SRC_SIM_SIMULATOR_H_
#define RPCSCOPE_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace rpcscope {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` after the current time (delay >= 0). A
  // negative delay is a caller bug: debug builds DCHECK-fail on it, release
  // builds clamp it to zero and continue.
  void Schedule(SimDuration delay, Callback fn);

  // Schedules `fn` at an absolute time. Scheduling in the past is a caller
  // bug: debug builds DCHECK-fail, release builds clamp to now.
  void ScheduleAt(SimTime when, Callback fn);

  // Runs until the event queue drains. Returns the number of events executed.
  uint64_t Run();

  // Runs events with time <= until (events exactly at `until` execute).
  // Advances Now() to `until` even if the queue drains earlier.
  uint64_t RunUntil(SimTime until);

  uint64_t RunFor(SimDuration duration) { return RunUntil(now_ + duration); }

  bool empty() const { return queue_.empty(); }
  uint64_t events_executed() const { return events_executed_; }

  // Order-sensitive digest of every (time, seq) pair executed so far (FNV-1a
  // over the event stream). Two runs of the same seeded workload must produce
  // identical digests; the determinism regression test and the CI smoke test
  // diff this value across runs.
  uint64_t event_digest() const { return event_digest_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Pops the front event, advances the clock (checking monotonicity and
  // (time, seq) ordering), and folds the event into the digest.
  Event PopEvent();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t event_digest_ = 14695981039346656037ull;  // FNV-1a offset basis.
  // (time, seq) of the most recently executed event, for ordering checks.
  SimTime last_time_ = 0;
  uint64_t last_seq_ = 0;
  bool any_executed_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_SIMULATOR_H_

// Discrete-event simulation engine.
//
// The fleet substrate runs entirely on virtual time: events carry a callback
// and execute in (time, insertion-sequence) order, making every run
// deterministic for a fixed seed. The engine is single-threaded on purpose —
// concurrency in the modeled system (server worker pools, network links) is
// expressed as resources over virtual time, not as host threads.
//
// Hot-path design (docs/PERF.md): callbacks are SimCallback (inline storage,
// pooled arena for large captures) and the pending-event set lives in a
// ladder/calendar queue by default, so steady-state Schedule/dispatch is
// allocation-free and mostly O(1). The seed binary-heap queue remains
// available as SimQueueKind::kBinaryHeap; both produce bit-for-bit identical
// event streams, which the cross-validation test enforces via event_digest().
#ifndef RPCSCOPE_SRC_SIM_SIMULATOR_H_
#define RPCSCOPE_SRC_SIM_SIMULATOR_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sim/callback.h"
#include "src/sim/event_queue.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

// RPCSCOPE_CHECKPOINTED(CheckpointTo, RestoreFrom)
class Simulator {
 public:
  using Callback = SimCallback;

  explicit Simulator(SimQueueKind queue_kind = SimQueueKind::kLadder)
      : queue_kind_(queue_kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }
  SimQueueKind queue_kind() const { return queue_kind_; }

  // Schedules `fn` to run `delay` after the current time (delay >= 0). A
  // negative delay is a caller bug: debug builds DCHECK-fail on it, release
  // builds clamp it to zero and continue. `now + delay` saturates at the end
  // of virtual time instead of wrapping.
  void Schedule(SimDuration delay, Callback fn);

  // Schedules `fn` at an absolute time. Scheduling in the past is a caller
  // bug: debug builds DCHECK-fail, release builds clamp to now.
  void ScheduleAt(SimTime when, Callback fn);

  // Runs until the event queue drains. Returns the number of events executed.
  uint64_t Run();

  // Runs events with time <= until (events exactly at `until` execute).
  // Advances Now() to `until` even if the queue drains earlier.
  uint64_t RunUntil(SimTime until);

  // Runs events with time strictly < until (events exactly at `until` do NOT
  // execute). Unlike RunUntil, does not advance Now() past the last executed
  // event: the conservative-PDES round loop (src/sim/parallel/) needs the
  // clock to stay at the last local event so that messages arriving exactly
  // at the round boundary can still be scheduled without clamping.
  uint64_t RunBefore(SimTime until);

  // Timestamp of the earliest pending event, or kMaxSimTime when the queue is
  // empty. The shard executor uses this to size adaptive rounds.
  SimTime NextEventTime() { return QueueEmpty() ? kMaxSimTime : QueuePeekTime(); }

  // RunUntil(now + duration), saturating instead of wrapping on overflow.
  uint64_t RunFor(SimDuration duration) { return RunUntil(AddClamped(now_, duration)); }

  bool empty() const { return QueueEmpty(); }
  uint64_t events_executed() const { return events_executed_; }

  // Order-sensitive digest of every (time, seq) pair executed so far (FNV-1a
  // over the event stream). Two runs of the same seeded workload must produce
  // identical digests; the determinism regression test, the CI smoke test,
  // and the ladder-vs-heap cross-validation test diff this value.
  uint64_t event_digest() const { return event_digest_; }

  // Checkpoint support (src/checkpoint/). The event queue holds closures and
  // cannot be persisted, so both directions require a drained queue: the
  // clock, sequence counter, and digest serialize, and schedulers re-arm
  // their own future events after Restore. Serialize fails if any event is
  // pending; Restore fails on a queue-kind mismatch (a checkpoint belongs to
  // one run configuration) or a pre-populated queue.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

  // Re-synchronizes the clock at a quiescent epoch barrier
  // (docs/ROBUSTNESS.md#checkpointrestore). A drained segment leaves each
  // shard's clock at its own last cascade event — past the barrier on busy
  // shards — which would force the next epoch's cross-shard deliveries into
  // their receivers' past. With the queue empty the clock can simply be set
  // to the common barrier time: the ladder is rebuilt (its pop floor is as
  // stale as the clock) and the executed-order bookkeeping restarts, while
  // the sequence counter and digest continue. Fails if events are pending.
  [[nodiscard]] Status ResyncAt(SimTime barrier);

 private:
  // Queue operations dispatch on queue_kind_: one perfectly-predicted branch
  // per op, which keeps both implementations first-class (the reference heap
  // must stay runnable for cross-validation and benchmarking).
  void QueuePush(SimEvent ev) {
    if (queue_kind_ == SimQueueKind::kLadder) {
      ladder_.Push(std::move(ev));
    } else {
      heap_.Push(std::move(ev));
    }
  }
  bool QueueEmpty() const {
    return queue_kind_ == SimQueueKind::kLadder ? ladder_.Empty() : heap_.Empty();
  }
  SimTime QueuePeekTime() {
    return queue_kind_ == SimQueueKind::kLadder ? ladder_.PeekTime() : heap_.PeekTime();
  }

  // Pops the front event, advances the clock (checking monotonicity and
  // (time, seq) ordering), and folds the event into the digest.
  SimEvent PopEvent();

  SimQueueKind queue_kind_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t event_digest_ = 14695981039346656037ull;  // FNV-1a offset basis.
  // (time, seq) of the most recently executed event, for ordering checks.
  SimTime last_time_ = 0;
  uint64_t last_seq_ = 0;
  bool any_executed_ = false;
  LadderEventQueue ladder_;
  BinaryHeapEventQueue heap_;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_SIMULATOR_H_

// ServerResource: a pool of worker threads over virtual time.
//
// Models the server side of an RPC task: jobs (requests) arrive, wait in a
// bounded FIFO run queue until a worker is free, execute for their service
// duration, and complete. Queueing delay therefore *emerges* from load rather
// than being sampled from a distribution — this is what lets the service-
// specific studies (Figs. 14–18) show realistic utilization-driven tails.
#ifndef RPCSCOPE_SRC_SIM_SERVER_RESOURCE_H_
#define RPCSCOPE_SRC_SIM_SERVER_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace rpcscope {

class CheckpointWriter;
class CheckpointReader;

// RPCSCOPE_CHECKPOINTED(CheckpointTo, RestoreFrom)
class ServerResource {
 public:
  // Completion callback: (queue_delay, service_time) in virtual time.
  using Completion = std::function<void(SimDuration queue_delay, SimDuration service_time)>;

  struct Options {
    int workers = 4;
    // Jobs beyond this queue depth are rejected (completion is invoked with
    // queue_delay = kRejected). 0 means unbounded.
    size_t max_queue_depth = 0;
  };

  static constexpr SimDuration kRejected = -1;

  ServerResource(Simulator* sim, const Options& options);

  // Submits a job with the given service duration. The completion callback
  // fires when the job finishes (or immediately with kRejected on overload).
  void Submit(SimDuration service_time, Completion done);

  // Manual occupancy: waits for a free worker, then invokes `on_grant` with
  // the queueing delay. The caller must call Release() exactly once when its
  // work completes (workers model synchronous request threads, so a handler
  // holds one for its full — possibly dynamically determined — duration).
  // On overload, on_grant fires immediately with kRejected and no worker is
  // held (do not call Release()).
  using Grant = std::function<void(SimDuration queue_delay)>;
  void Acquire(Grant on_grant) { AcquireWithPriority(0, std::move(on_grant)); }
  // Priority scheduling (Shinjuku/Caladan-style short-job isolation, §5.2):
  // lower `priority` runs first; FIFO within a priority class. Only classes
  // 0 and 1 are distinguished; anything > 0 is "low".
  void AcquireWithPriority(int priority, Grant on_grant);
  void Release();

  // True if a Submit()/Acquire() issued right now would be rejected for
  // exceeding max_queue_depth. Lets callers fail fast before paying
  // per-attempt costs (encode cycles) for work that cannot be accepted.
  bool WouldReject() const {
    return options_.max_queue_depth != 0 && busy_workers_ >= options_.workers &&
           QueuedJobs() >= options_.max_queue_depth;
  }

  // Crash support: drops every queued job (their callbacks are destroyed,
  // never invoked), frees all workers, and invalidates in-flight Submit()
  // completions — when their scheduled events fire against a newer epoch
  // they become no-ops instead of corrupting the worker accounting. Busy
  // time accrued up to the reset instant is retained. Callers that hold a
  // worker via Acquire() must not call Release() across a Reset(); guard
  // with epoch().
  void Reset();
  uint64_t epoch() const { return epoch_; }
  uint64_t jobs_dropped() const { return jobs_dropped_; }

  // Scales the service time of *future* jobs (models exogenous slowdown such
  // as high CPU utilization or memory-bandwidth contention).
  void set_speed_factor(double factor) { speed_factor_ = factor; }
  double speed_factor() const { return speed_factor_; }

  int workers() const { return options_.workers; }
  int busy_workers() const { return busy_workers_; }
  size_t queue_depth() const { return queue_.size(); }
  uint64_t jobs_completed() const { return jobs_completed_; }
  uint64_t jobs_rejected() const { return jobs_rejected_; }

  // Cumulative busy worker-time up to the current simulation instant, for
  // utilization accounting: utilization = busy_time / (elapsed * workers).
  SimDuration busy_time();

  // Checkpoint support. Requires full quiescence (no busy workers, empty run
  // queues): queued jobs hold callbacks and cannot be persisted. Counters,
  // speed factor, crash epoch, and busy-time accounting serialize; Restore
  // re-validates the structural options instead of restoring them.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  struct Job {
    SimTime enqueue_time;
    Grant on_grant;
  };

  void GrantJob(Job job);
  size_t QueuedJobs() const { return queue_.size() + low_queue_.size(); }

  Simulator* sim_;  // NOLINT(detan-checkpoint-field) structural
  Options options_;
  double speed_factor_ = 1.0;
  int busy_workers_ = 0;
  std::deque<Job> queue_;      // Priority class 0 (default).
  std::deque<Job> low_queue_;  // Priority classes > 0.
  uint64_t jobs_completed_ = 0;
  uint64_t jobs_rejected_ = 0;
  uint64_t jobs_dropped_ = 0;
  // Bumped by Reset(); scheduled completions from older epochs are stale.
  uint64_t epoch_ = 0;
  // Time-weighted busy accounting: busy_time_ is up to date as of last_change_.
  SimDuration busy_time_ = 0;
  SimTime last_change_ = 0;

  void UpdateBusyTime();
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_SERVER_RESOURCE_H_

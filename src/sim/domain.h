// A shard domain: one Simulator plus outboxes for cross-domain events.
//
// The parallel runtime (src/sim/parallel/shard_executor.h) partitions the
// fleet into N domains and runs them in barrier-synchronized rounds. Within a
// round each domain executes only its own events; anything that must happen
// in *another* domain (an RPC frame crossing the shard boundary, a fault
// event targeting a remote machine) is deposited into the sender's outbox via
// PostRemote and transferred by the executor at the next barrier.
//
// Domains are plain single-threaded objects: all thread coordination lives in
// the executor. Model code never touches host threads (the rpcscope-raw-thread
// lint rule enforces this).
#ifndef RPCSCOPE_SRC_SIM_DOMAIN_H_
#define RPCSCOPE_SRC_SIM_DOMAIN_H_

#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/callback.h"
#include "src/sim/simulator.h"

namespace rpcscope {

class ShardExecutor;

// RPCSCOPE_CHECKPOINTED(CheckpointTo, RestoreFrom)
class SimDomain {
 public:
  // An event bound for another domain: `fn` must be scheduled there at `when`.
  // The conservative-lookahead contract guarantees `when` lands at or beyond
  // the end of the round in which it was posted, so the destination has not
  // yet simulated past it.
  struct RemoteEvent {
    SimTime when;
    SimCallback fn;
  };

  SimDomain(int id, int num_domains, SimQueueKind queue_kind = SimQueueKind::kLadder)
      : id_(id),
        num_domains_(num_domains),
        sim_(queue_kind),
        outbox_(static_cast<size_t>(num_domains)) {
    RPCSCOPE_CHECK_GE(id, 0);
    RPCSCOPE_CHECK_LT(id, num_domains);
  }
  SimDomain(const SimDomain&) = delete;
  SimDomain& operator=(const SimDomain&) = delete;

  int id() const { return id_; }
  int num_domains() const { return num_domains_; }
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  // Deposits an event for domain `dst` at absolute time `when`. Called from
  // inside this domain's round execution; the executor drains outboxes at the
  // barrier in canonical (source domain, post order) so the destination's
  // sequence assignment is independent of worker-thread count.
  void PostRemote(int dst, SimTime when, SimCallback fn) {
    RPCSCOPE_DCHECK_GE(dst, 0);
    RPCSCOPE_DCHECK_LT(dst, num_domains_);
    RPCSCOPE_CHECK(dst != id_) << "PostRemote to own domain; use sim().ScheduleAt";
    outbox_[static_cast<size_t>(dst)].push_back(RemoteEvent{when, std::move(fn)});
    outbox_dirty_ = true;
    ++remote_posted_;
  }

  // Total cross-domain events posted so far (for stats/tests).
  uint64_t remote_posted() const { return remote_posted_; }

  // Checkpoint support. Like Simulator's pair, both directions require
  // quiescence: every outbox must be drained (closures cannot be persisted)
  // and the embedded simulator's queue empty. id_/num_domains_ are structural
  // configuration, re-validated rather than restored.
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  friend class ShardExecutor;

  int id_;
  int num_domains_;
  Simulator sim_;
  // outbox_[d] holds events bound for domain d, in post order.
  std::vector<std::vector<RemoteEvent>> outbox_;
  // Set by PostRemote, cleared by the executor's barrier drain. Lets the
  // coordinator skip domains that posted nothing this round instead of
  // walking num_domains^2 outbox vectors every barrier. Only ever touched by
  // the thread currently running this domain or by the quiescent-phase
  // coordinator, so it needs no synchronization of its own.
  bool outbox_dirty_ = false;
  uint64_t remote_posted_ = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_DOMAIN_H_

// Event queues for the discrete-event simulator.
//
// Both queues hand out events in exact (time, insertion-sequence) order — the
// order the determinism digest folds — and differ only in cost profile:
//
//  - LadderEventQueue (the default): a two-level ladder/calendar queue. A
//    window of near-future buckets gives O(1) insertion and amortized O(1)
//    extraction for the dominant case (events scheduled microseconds ahead);
//    a min-heap overflow holds far-future events until the window advances
//    over them. Bucket width adapts to the observed event density two ways:
//    gradually at window rebuilds, and immediately (multiplicatively) when the
//    cursor reaches a bucket crowded enough that per-bucket sorting would be
//    doing the heap's job. Pushes that land at or behind the cursor go to a
//    small side heap instead of re-sorting the drained bucket, so no push
//    ever pays more than O(log side) regardless of bucket occupancy.
//  - BinaryHeapEventQueue: the classic binary min-heap the seed simulator
//    used. Kept as the reference implementation: the cross-validation test
//    and bench_simcore run both and require bit-for-bit identical execution.
//
// Neither queue allocates per event in steady state: events embed a
// SimCallback (inline storage / pooled captures) and bucket vectors retain
// their capacity across windows.
#ifndef RPCSCOPE_SRC_SIM_EVENT_QUEUE_H_
#define RPCSCOPE_SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/callback.h"

namespace rpcscope {

struct SimEvent {
  SimTime time = 0;
  uint64_t seq = 0;
  SimCallback fn;
};

// Which event queue a Simulator runs on. kLadder is the production default;
// kBinaryHeap is the reference for cross-validation and benchmarking.
enum class SimQueueKind : uint8_t {
  kLadder = 0,
  kBinaryHeap = 1,
};

namespace event_queue_internal {

// "a executes after b": orders a max-heap whose front is the earliest event.
struct ExecutesAfter {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

// "(time, seq) of a before b": sort order within a ladder bucket.
struct ExecutesBefore {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }
};

}  // namespace event_queue_internal

class BinaryHeapEventQueue {
 public:
  void Push(SimEvent ev) {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), event_queue_internal::ExecutesAfter{});
  }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // Time of the earliest event. Requires !Empty().
  SimTime PeekTime() { return heap_.front().time; }

  // Removes and returns the earliest event. Requires !Empty().
  SimEvent PopFront() {
    std::pop_heap(heap_.begin(), heap_.end(), event_queue_internal::ExecutesAfter{});
    SimEvent ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

 private:
  std::vector<SimEvent> heap_;
};

class LadderEventQueue {
 public:
  void Push(SimEvent ev) {
    // Every pushed event satisfies ev.time >= the simulator clock >= floor_,
    // but not necessarily >= win_start_: a rebalance may anchor the window at
    // a pending cluster ahead of the clock, and RunUntil can then schedule
    // into the gap before it.
    RPCSCOPE_DCHECK_GE(ev.time, floor_) << "event scheduled before the pop floor";
    const int64_t delta = ev.time - win_start_;
    ++size_;
    if (delta >= 0) {
      const uint64_t idx = static_cast<uint64_t>(delta) >> shift_;
      if (idx >= kNumBuckets) {
        overflow_.push_back(std::move(ev));
        std::push_heap(overflow_.begin(), overflow_.end(),
                       event_queue_internal::ExecutesAfter{});
        return;
      }
      if (idx > cur_ || (idx == cur_ && !cur_sorted_)) {
        buckets_[idx].push_back(std::move(ev));
        return;
      }
    }
    // Before the window, behind the drain position (the cursor peeked past
    // empty buckets and the clock advanced), or inside the bucket being
    // drained. The side heap keeps these ordered without re-sorting or
    // shifting the drained bucket; Front() merges the two streams.
    side_.push_back(std::move(ev));
    std::push_heap(side_.begin(), side_.end(), event_queue_internal::ExecutesAfter{});
  }

  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }

  // Time of the earliest event; advances the internal cursor to it (cheap and
  // idempotent). Requires !Empty().
  SimTime PeekTime() { return Front().time; }

  // Removes and returns the earliest event. Requires !Empty().
  SimEvent PopFront() {
    Front();  // Position the cursor and decide which stream is earliest.
    SimEvent ev;
    if (front_in_side_) {
      std::pop_heap(side_.begin(), side_.end(), event_queue_internal::ExecutesAfter{});
      ev = std::move(side_.back());
      side_.pop_back();
    } else {
      ev = std::move(buckets_[cur_][cur_pos_]);
      ++cur_pos_;
    }
    --size_;
    ++drained_in_window_;
    floor_ = ev.time;
    return ev;
  }

  // Current bucket-width exponent (bucket spans 1 << shift ns); for tests.
  int width_shift() const { return shift_; }

 private:
  static constexpr size_t kBucketBits = 9;
  static constexpr size_t kNumBuckets = size_t{1} << kBucketBits;  // 512
  // Width starts at 4.1us (2 ms window): wide enough that typical RPC-stack
  // delays land in-window, and density adaptation takes it from there.
  static constexpr int kInitialShift = 12;
  // At shift 55 the window spans > 2^63 ns, so any representable event time
  // lands in-window and RebuildWindow always makes progress.
  static constexpr int kMaxShift = 55;
  // A bucket the cursor is about to sort that holds more than kSplitOccupancy
  // events triggers an immediate Rebalance targeting ~kTargetOccupancy per
  // bucket, so density spikes never degrade into one giant sorted bucket.
  static constexpr size_t kSplitOccupancy = 64;
  static constexpr size_t kTargetOccupancy = 8;

  // Earliest pending event; positions the cursor on it and records whether it
  // lives in the side heap or the current bucket. Requires size_ > 0.
  const SimEvent& Front();

  // Narrows the bucket width and redistributes every in-window event so the
  // dense current bucket spreads to ~kTargetOccupancy events per bucket.
  // Returns false (no change) when the bucket is pure timestamp ties, which
  // no width can separate.
  bool TryRebalance();
  void RebuildWindow();

  std::array<std::vector<SimEvent>, kNumBuckets> buckets_;
  // Min-heap (via ExecutesAfter) of events beyond the current window.
  std::vector<SimEvent> overflow_;
  // Min-heap of events at or behind the cursor; merged with the current
  // bucket by Front(). Always drained before the cursor advances.
  std::vector<SimEvent> side_;
  // Reused gather buffer for Rebalance (capacity retained across calls).
  std::vector<SimEvent> rebalance_scratch_;
  SimTime win_start_ = 0;  // Inclusive start of the bucket window.
  SimTime floor_ = 0;      // Time of the most recently popped event.
  int shift_ = kInitialShift;
  size_t cur_ = 0;        // Bucket the cursor drains next.
  size_t cur_pos_ = 0;    // Next undrained element of buckets_[cur_].
  bool cur_sorted_ = false;
  bool front_in_side_ = false;  // Set by Front(): where the earliest event is.
  size_t size_ = 0;
  size_t drained_in_window_ = 0;  // Pops since the last window rebuild.
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_EVENT_QUEUE_H_

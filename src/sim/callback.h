// SimCallback: the event callback type for the simulation hot path.
//
// Every simulated RPC expends dozens of scheduler events, so the per-event
// callback must not cost a heap allocation the way std::function does for
// captures beyond ~16 bytes. SimCallback stores small callables inline
// (kInlineBytes of small-buffer storage, covering the common capture shapes:
// a couple of pointers, a shared_ptr or two, a wrapped std::function) and
// spills large captures to a pooled size-class arena whose blocks are
// recycled, so steady-state scheduling performs zero allocations either way.
//
// Differences from std::function, on purpose:
//  - move-only (the scheduler never copies events, and move-only captures
//    such as moved-in scratch buffers are welcome);
//  - no small-capture copyability requirement;
//  - invoking an empty SimCallback is a CHECK failure, not std::bad_function_call.
#ifndef RPCSCOPE_SRC_SIM_CALLBACK_H_
#define RPCSCOPE_SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/check.h"

namespace rpcscope {

namespace callback_internal {

// Recycling arena for callable captures too large for inline storage. Blocks
// are bucketed into power-of-two size classes and pushed onto per-class free
// lists on destruction, so after warm-up no dispatch path touches malloc.
// Single-threaded by design, like the simulator it serves.
class CapturePool {
 public:
  // Allocates a block with at least `bytes` usable bytes, max_align aligned.
  static void* Alloc(size_t bytes);
  // Returns a block obtained from Alloc to its size-class free list (or to
  // the system allocator when the class's list is at capacity).
  static void Free(void* block);
  // Number of blocks currently parked on free lists (for tests).
  static size_t FreeListBlocks();
};

}  // namespace callback_internal

class SimCallback {
 public:
  // Inline capture budget. 48 bytes fits the dominant schedule sites (a
  // this-pointer plus two shared_ptrs, or a moved-in std::function plus a
  // word) while keeping sizeof(SimCallback) at 56 so a queue event with
  // (time, seq) stays within a single 72-byte slab.
  static constexpr size_t kInlineBytes = 48;

  SimCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SimCallback>>>
  SimCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      void* block = callback_internal::CapturePool::Alloc(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      *reinterpret_cast<void**>(storage_) = block;
      ops_ = &kPooledOps<Fn>;
    }
  }

  SimCallback(SimCallback&& other) noexcept { MoveFrom(other); }

  SimCallback& operator=(SimCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SimCallback(const SimCallback&) = delete;
  SimCallback& operator=(const SimCallback&) = delete;

  ~SimCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    RPCSCOPE_DCHECK(ops_ != nullptr) << "invoking an empty SimCallback";
    ops_->invoke(storage_);
  }

  // True if the capture spilled to the pooled arena (for tests and benches).
  bool is_pooled() const { return ops_ != nullptr && ops_->pooled; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into `to` from `from` and destroys the source capture.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage);
    bool pooled;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      +[](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      +[](void* from, void* to) noexcept {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      +[](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
      false,
  };

  template <typename Fn>
  static constexpr Ops kPooledOps = {
      +[](void* storage) { (*static_cast<Fn*>(*reinterpret_cast<void**>(storage)))(); },
      +[](void* from, void* to) noexcept {
        // The capture stays in its pooled block; only the pointer relocates.
        *reinterpret_cast<void**>(to) = *reinterpret_cast<void**>(from);
      },
      +[](void* storage) {
        void* block = *reinterpret_cast<void**>(storage);
        static_cast<Fn*>(block)->~Fn();
        callback_internal::CapturePool::Free(block);
      },
      true,
  };

  void MoveFrom(SimCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_CALLBACK_H_

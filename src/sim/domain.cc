#include "src/sim/domain.h"

#include <string>

#include "src/checkpoint/checkpoint.h"

namespace rpcscope {

Status SimDomain::CheckpointTo(CheckpointWriter& w) const {
  for (const std::vector<RemoteEvent>& box : outbox_) {
    if (!box.empty()) {
      return FailedPreconditionError(
          "domain " + std::to_string(id_) +
          " has undrained outbox entries: checkpoints are only taken at barriers");
    }
  }
  if (outbox_dirty_) {
    return FailedPreconditionError("domain outbox dirty flag set at checkpoint");
  }
  w.BeginSection("domain");
  w.WriteU32(static_cast<uint32_t>(id_));
  w.WriteU32(static_cast<uint32_t>(num_domains_));
  w.WriteU64(remote_posted_);
  w.EndSection();
  return sim_.CheckpointTo(w);
}

Status SimDomain::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("domain"); !s.ok()) {
    return s;
  }
  const auto id = static_cast<int>(r.ReadU32());
  const auto num_domains = static_cast<int>(r.ReadU32());
  const uint64_t remote_posted = r.ReadU64();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (id != id_ || num_domains != num_domains_) {
    return FailedPreconditionError(
        "checkpoint domain (" + std::to_string(id) + "/" + std::to_string(num_domains) +
        ") does not match this topology (" + std::to_string(id_) + "/" +
        std::to_string(num_domains_) + ")");
  }
  for (const std::vector<RemoteEvent>& box : outbox_) {
    if (!box.empty() || outbox_dirty_) {
      return FailedPreconditionError("restore into a domain with pending outbox events");
    }
  }
  remote_posted_ = remote_posted;
  return sim_.RestoreFrom(r);
}

}  // namespace rpcscope

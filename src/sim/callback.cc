#include "src/sim/callback.h"

#include <cstdint>
#include <cstdlib>

namespace rpcscope {
namespace callback_internal {

namespace {

// Size classes: 64, 128, 256, 512, 1024, 2048 usable bytes. Larger captures
// (pathological; nothing in the stack gets close) bypass the pool.
constexpr size_t kNumClasses = 6;
constexpr size_t kMinClassBytes = 64;
constexpr size_t kMaxClassBytes = kMinClassBytes << (kNumClasses - 1);
// Per-class cap on parked blocks, bounding idle pool memory at ~8 MiB total
// while comfortably covering the deepest event backlogs the benches reach.
constexpr size_t kMaxFreePerClass = 2048;

// Every block starts with a header recording its size class so Free() can
// route it back without a size parameter. The header is max_align-sized to
// keep the usable region max_align aligned.
struct alignas(std::max_align_t) BlockHeader {
  uint32_t size_class;  // kNumClasses means "unpooled, straight to free()".
};

struct FreeList {
  // Freed blocks are chained through their usable region (they hold no live
  // capture, so the bytes are ours).
  void* head = nullptr;
  size_t count = 0;
};

struct PoolState {
  FreeList free_lists[kNumClasses];

  // Runs at thread exit (worker threads in src/sim/parallel/) and at process
  // exit (main thread). Without this, blocks parked on an exiting worker's
  // free lists are orphaned — LeakSanitizer flags them because the chain's
  // anchor dies with the thread_local.
  ~PoolState() {
    for (FreeList& list : free_lists) {
      void* block = list.head;
      while (block != nullptr) {
        void* next = *static_cast<void**>(block);
        std::free(static_cast<BlockHeader*>(block) - 1);
        block = next;
      }
      list.head = nullptr;
      list.count = 0;
    }
  }
};

PoolState& State() {
  // Each simulator is single-threaded, but shard domains run on worker
  // threads side by side (src/sim/parallel/), so the pool must be per-thread.
  static thread_local PoolState state;  // NOLINT(rpcscope-raw-thread)
  return state;
}

size_t ClassFor(size_t bytes) {
  size_t cls = 0;
  size_t cap = kMinClassBytes;
  while (cap < bytes) {
    cap <<= 1;
    ++cls;
  }
  return cls;
}

}  // namespace

void* CapturePool::Alloc(size_t bytes) {
  if (bytes > kMaxClassBytes) {
    auto* header = static_cast<BlockHeader*>(std::malloc(sizeof(BlockHeader) + bytes));
    RPCSCOPE_CHECK(header != nullptr) << "callback capture allocation failed";
    header->size_class = kNumClasses;
    return header + 1;
  }
  const size_t cls = ClassFor(bytes);
  FreeList& list = State().free_lists[cls];
  if (list.head != nullptr) {
    void* block = list.head;
    list.head = *static_cast<void**>(block);
    --list.count;
    return block;
  }
  const size_t usable = kMinClassBytes << cls;
  auto* header = static_cast<BlockHeader*>(std::malloc(sizeof(BlockHeader) + usable));
  RPCSCOPE_CHECK(header != nullptr) << "callback capture allocation failed";
  header->size_class = static_cast<uint32_t>(cls);
  return header + 1;
}

void CapturePool::Free(void* block) {
  BlockHeader* header = static_cast<BlockHeader*>(block) - 1;
  const uint32_t cls = header->size_class;
  if (cls >= kNumClasses) {
    std::free(header);
    return;
  }
  FreeList& list = State().free_lists[cls];
  if (list.count >= kMaxFreePerClass) {
    std::free(header);
    return;
  }
  *static_cast<void**>(block) = list.head;
  list.head = block;
  ++list.count;
}

size_t CapturePool::FreeListBlocks() {
  size_t total = 0;
  for (const FreeList& list : State().free_lists) {
    total += list.count;
  }
  return total;
}

}  // namespace callback_internal
}  // namespace rpcscope

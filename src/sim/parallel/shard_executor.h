// Conservative-PDES executor for shard domains (Chandy–Misra style).
//
// The executor advances N SimDomains in barrier-synchronized rounds. Each
// round:
//
//   1. m = min over domains of NextEventTime(); stop when every queue is
//      drained (m == kMaxSimTime).
//   2. round_end = m + lookahead, where lookahead is the minimum latency any
//      cross-domain interaction can have (the topology's minimum cross-shard
//      wire latency — serialization and congestion only ever add to it).
//   3. Every domain executes its local events with time strictly < round_end,
//      in parallel on the worker pool.
//   4. Barrier. The coordinator drains all cross-domain outboxes sequentially
//      in canonical (source domain, post order), scheduling each event into
//      its destination. The lookahead contract guarantees every transferred
//      event lands at or beyond round_end (CHECK-enforced), i.e. in the
//      destination's future.
//
// Determinism: a domain's round execution is self-contained (own queue, own
// RNG streams, own collectors), so which host thread runs it is irrelevant;
// outbox drain order is fixed by domain ids, so destination event sequence
// numbers are identical for any worker count. For a fixed seed the merged
// event digest, histograms, and trace trees are bit-for-bit identical for 1,
// 2, or 8 workers — the parallel_test ctest enforces this, including under
// TSan.
//
// This directory is the only place in src/ where host threads, mutexes, and
// atomics are allowed (rpcscope-raw-thread lint rule); model code stays in
// virtual time.
#ifndef RPCSCOPE_SRC_SIM_PARALLEL_SHARD_EXECUTOR_H_
#define RPCSCOPE_SRC_SIM_PARALLEL_SHARD_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/time.h"
#include "src/sim/domain.h"

namespace rpcscope {

struct ShardExecutorOptions {
  // Host worker threads. Clamped to [1, num domains]. 1 runs the same round
  // loop inline (useful for debugging and as the determinism reference).
  int worker_threads = 1;
  // Conservative lookahead: a strict lower bound on the virtual-time latency
  // of any cross-domain event, measured from the sender's clock. Must be > 0
  // when there is more than one domain.
  SimDuration lookahead = 0;
  // Invoked on the coordinator thread after each round's outbox drain, with
  // that round's end time. At this point every domain has executed all its
  // events with time < round_end and every future event (local or transferred)
  // is at >= round_end, so round_end is a safe streaming watermark: state
  // observed across all domains now is final for times below it. Workers are
  // quiescent during the call, so the hook may read any domain. Runs in the
  // same sequence for every worker-thread count (round boundaries depend only
  // on event times). Not invoked on the single-domain fast path, which has no
  // rounds — owners flush once after RunToCompletion instead (see
  // RpcSystem::RunSharded).
  std::function<void(SimTime round_end)> barrier_hook;
};

class ShardExecutor {
 public:
  // `domains` must stay alive for the executor's lifetime; domain i must have
  // id i.
  ShardExecutor(std::vector<SimDomain*> domains, ShardExecutorOptions options);

  // Runs all domains to completion (every queue drained). Returns the total
  // number of events executed across domains. With a single domain this is
  // exactly domains[0]->sim().Run(). Note one edge: events scheduled exactly
  // at kMaxSimTime are never executed (a round can never extend past the end
  // of virtual time); nothing in the model schedules there.
  uint64_t RunToCompletion();

  uint64_t rounds() const { return rounds_; }
  uint64_t cross_domain_events() const { return cross_domain_events_; }

 private:
  uint64_t RunSequential();
  uint64_t RunThreaded();
  // Transfers every outbox entry into its destination queue, canonical order.
  uint64_t DrainOutboxes(SimTime round_end);
  // Non-const: peeking the ladder queue may rebalance it.
  SimTime MinNextEventTime();

  std::vector<SimDomain*> domains_;
  ShardExecutorOptions options_;
  uint64_t rounds_ = 0;
  uint64_t cross_domain_events_ = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_PARALLEL_SHARD_EXECUTOR_H_

// Conservative-PDES executor for shard domains (Chandy–Misra style).
//
// The executor advances N SimDomains in barrier-synchronized rounds. Each
// round the coordinator:
//
//   1. Reads every domain's NextEventTime(); stops when every queue is
//      drained (global min == kMaxSimTime).
//   2. Computes a per-domain horizon from the lookahead matrix:
//        horizon[i] = min( min over s != i of (next[s] + lookahead[s][i]),
//                          next[i] + echo[i] )
//      where echo[i] = min over s of lookahead[i][s] + lookahead[s][i].
//      Every future event delivered to i is caused by some event currently
//      in a queue: chains starting at s != i accumulate at least
//      lookahead[s][i] of latency on the way (the matrix is min-plus closed,
//      so relays through intermediaries are covered), and chains starting in
//      i's own queue must travel a full round trip before they can return.
//      So every domain may safely execute all local events with time
//      strictly < its horizon.
//      Because horizons are recomputed from the post-round queue states, one
//      barrier jumps as far as the bounds allow — batching what the legacy
//      global-min scheme (round_end = global_min + global_lookahead) split
//      into many short rounds. A drained or far-ahead sender stops throttling
//      everyone else entirely (its contribution saturates toward
//      kMaxSimTime).
//   3. Executes the active domains — those with an event below their horizon —
//      in parallel on the worker pool, as one contiguous range of the active
//      list per worker. Domains with nothing to do are not touched at all.
//   4. Barrier. The coordinator drains the dirty cross-domain outboxes
//      sequentially in canonical (source domain, post order), scheduling each
//      event into its destination. The lookahead contract guarantees every
//      transferred event lands at or beyond the *destination's* horizon
//      (CHECK-enforced), i.e. in the destination's future.
//
// Determinism: a domain's round execution is self-contained (own queue, own
// RNG streams, own collectors), so which host thread runs it is irrelevant;
// horizons depend only on event timestamps, and outbox drain order is fixed
// by domain ids, so destination event sequence numbers are identical for any
// worker count. For a fixed seed the merged event digest, histograms, and
// trace trees are bit-for-bit identical for 1, 2, or 8 workers — the
// parallel_test ctest enforces this, including under TSan.
//
// Coordination is spin-free: workers park on a generation-counted condition
// variable between rounds and are woken once per round; nothing busy-waits,
// so oversubscribed hosts lose only wake/park latency, never burned cores.
//
// This directory is the only place in src/ where host threads, mutexes, and
// atomics are allowed (rpcscope-raw-thread lint rule); model code stays in
// virtual time.
#ifndef RPCSCOPE_SRC_SIM_PARALLEL_SHARD_EXECUTOR_H_
#define RPCSCOPE_SRC_SIM_PARALLEL_SHARD_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/time.h"
#include "src/sim/domain.h"
#include "src/sim/lookahead.h"

namespace rpcscope {

struct ShardExecutorOptions {
  // Host worker threads. Clamped to [1, num domains]. 1 runs the same round
  // loop inline (useful for debugging and as the determinism reference).
  int worker_threads = 1;
  // Additionally clamp worker_threads to the host's hardware concurrency.
  // Extra workers on a saturated host add wake/park latency per round and can
  // never add parallelism, so production runs (RpcSystem::RunSharded) enable
  // this; determinism tests leave it off to exercise real thread interleaving
  // even on small hosts. Never changes results — only which host threads run.
  bool clamp_workers_to_hardware = false;
  // Uniform conservative lookahead: a strict lower bound on the virtual-time
  // latency of any cross-domain event, measured from the sender's clock. Used
  // only when `lookahead_matrix` is null (the executor then builds a uniform
  // matrix from it). Must be > 0 when there is more than one domain.
  SimDuration lookahead = 0;
  // Per-pair lower bounds (src/sim/lookahead.h). When set, it must be sized
  // to the domain count, with every off-diagonal entry > 0, must satisfy the
  // triangle inequality (CHECKed; call MinPlusClose() after building it from
  // raw distances), and must outlive the executor. Preferred over the
  // scalar: non-uniform bounds widen per-domain horizons and collapse the
  // round count (docs/PARALLEL.md).
  const LookaheadMatrix* lookahead_matrix = nullptr;
  // Invoked on the coordinator thread after each round's outbox drain, with
  // that round's safe watermark: the minimum horizon over all domains. At
  // this point every domain has executed all its events below its own horizon
  // and every future event (local or transferred) is at >= the watermark, so
  // state observed across all domains now is final for times below it.
  // Watermarks are strictly increasing round over round. Workers are
  // quiescent during the call, so the hook may read any domain. Runs in the
  // same sequence for every worker-thread count (horizons depend only on
  // event times). Not invoked on the single-domain fast path, which has no
  // rounds — owners flush once after RunToCompletion instead (see
  // RpcSystem::RunSharded).
  std::function<void(SimTime watermark)> barrier_hook;
};

class ShardExecutor {
 public:
  // `domains` must stay alive for the executor's lifetime; domain i must have
  // id i.
  ShardExecutor(std::vector<SimDomain*> domains, ShardExecutorOptions options);

  // Runs all domains to completion (every queue drained). Returns the total
  // number of events executed across domains. With a single domain this is
  // exactly domains[0]->sim().Run(). Note one edge: events scheduled exactly
  // at kMaxSimTime are never executed (a horizon can never extend past the
  // end of virtual time); nothing in the model schedules there.
  uint64_t RunToCompletion();

  // Barrier rounds driven. The single-domain fast path reports 1: the whole
  // run is one uninterrupted round, so events-per-round style derived metrics
  // stay meaningful across shard counts.
  uint64_t rounds() const { return rounds_; }
  uint64_t cross_domain_events() const { return cross_domain_events_; }
  // (domain, round) pairs skipped because the domain had no event below its
  // horizon — barrier work the per-domain horizons avoided entirely.
  uint64_t idle_domain_rounds() const { return idle_domain_rounds_; }
  // Worker threads actually used (after both clamps).
  int effective_workers() const { return effective_workers_; }

 private:
  uint64_t RunSequential();
  uint64_t RunThreaded();
  // Peeks every domain and fills next_times_/horizons_/active_. Returns false
  // when every queue is drained (the run is complete).
  bool PlanRound();
  // Transfers every outbox entry into its destination queue, canonical order,
  // visiting only domains whose dirty flag is set.
  uint64_t DrainOutboxes();

  std::vector<SimDomain*> domains_;
  ShardExecutorOptions options_;
  // Uniform fallback built from options_.lookahead when no matrix is given;
  // matrix_ always points at the bounds in use.
  LookaheadMatrix uniform_matrix_;
  const LookaheadMatrix* matrix_ = nullptr;
  // Cheapest round trip out of and back into each domain (see PlanRound).
  std::vector<SimDuration> echo_;
  int effective_workers_ = 1;

  // Round plan, coordinator-written between barriers.
  std::vector<SimTime> next_times_;
  std::vector<SimTime> horizons_;
  std::vector<int> active_;  // Domain ids with an event below their horizon.
  SimTime watermark_ = kMinSimTime;

  uint64_t rounds_ = 0;
  uint64_t cross_domain_events_ = 0;
  uint64_t idle_domain_rounds_ = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_SIM_PARALLEL_SHARD_EXECUTOR_H_

#include "src/sim/parallel/shard_executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/check.h"

namespace rpcscope {

ShardExecutor::ShardExecutor(std::vector<SimDomain*> domains, ShardExecutorOptions options)
    : domains_(std::move(domains)), options_(options) {
  RPCSCOPE_CHECK(!domains_.empty());
  for (size_t i = 0; i < domains_.size(); ++i) {
    RPCSCOPE_CHECK(domains_[i] != nullptr);
    RPCSCOPE_CHECK_EQ(domains_[i]->id(), static_cast<int>(i))
        << "domain ids must match their index";
  }
  if (domains_.size() > 1) {
    RPCSCOPE_CHECK_GT(options_.lookahead, 0)
        << "multi-domain execution needs a positive conservative lookahead";
  }
  options_.worker_threads =
      std::clamp(options_.worker_threads, 1, static_cast<int>(domains_.size()));
}

SimTime ShardExecutor::MinNextEventTime() {
  SimTime m = kMaxSimTime;
  for (SimDomain* d : domains_) {
    m = std::min(m, d->sim().NextEventTime());
  }
  return m;
}

uint64_t ShardExecutor::DrainOutboxes(SimTime round_end) {
  uint64_t transferred = 0;
  // Canonical order: source domain id, then destination id, then post order.
  // This fixes the destination's sequence-number assignment independently of
  // which worker thread ran which domain, which is what makes the merged
  // event stream bit-identical across worker counts.
  for (SimDomain* src : domains_) {
    for (size_t d = 0; d < src->outbox_.size(); ++d) {
      std::vector<SimDomain::RemoteEvent>& box = src->outbox_[d];
      if (box.empty()) {
        continue;
      }
      SimDomain* dst = domains_[d];
      for (SimDomain::RemoteEvent& ev : box) {
        // The conservative-lookahead contract: a cross-domain event posted
        // during this round cannot land before round_end. A violation means
        // some path undercut the advertised minimum latency — the destination
        // may already have simulated past `when`, so fail fast.
        RPCSCOPE_CHECK_GE(ev.when, round_end)
            << "cross-domain event violates conservative lookahead";
        dst->sim().ScheduleAt(ev.when, std::move(ev.fn));
        ++transferred;
      }
      box.clear();
    }
  }
  cross_domain_events_ += transferred;
  return transferred;
}

uint64_t ShardExecutor::RunToCompletion() {
  if (domains_.size() == 1) {
    // Single domain: no rounds, no barriers — exactly the legacy Run() path.
    return domains_[0]->sim().Run();
  }
  return options_.worker_threads == 1 ? RunSequential() : RunThreaded();
}

uint64_t ShardExecutor::RunSequential() {
  uint64_t total = 0;
  for (;;) {
    const SimTime m = MinNextEventTime();
    if (m == kMaxSimTime) {
      break;
    }
    const SimTime round_end = AddClamped(m, options_.lookahead);
    for (SimDomain* d : domains_) {
      total += d->sim().RunBefore(round_end);
    }
    ++rounds_;
    DrainOutboxes(round_end);
    if (options_.barrier_hook) {
      options_.barrier_hook(round_end);
    }
  }
  return total;
}

uint64_t ShardExecutor::RunThreaded() {
  // Persistent worker pool, round-scoped work distribution. The calling
  // thread is worker 0; `extra` helpers are spawned once and woken per round.
  // Happens-before edges: round_end and the claim index are published under
  // `mu` before workers wake; all RunBefore results are visible to the
  // coordinator once `remaining` reaches 0 under `mu`.
  struct Shared {
    std::mutex mu;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    uint64_t generation = 0;
    SimTime round_end = 0;
    int remaining = 0;
    bool stop = false;
    std::atomic<size_t> next_domain{0};
    std::atomic<uint64_t> executed{0};
  } shared;

  auto run_round = [this, &shared](SimTime round_end) {
    uint64_t local = 0;
    for (size_t i = shared.next_domain.fetch_add(1, std::memory_order_relaxed);
         i < domains_.size();
         i = shared.next_domain.fetch_add(1, std::memory_order_relaxed)) {
      local += domains_[i]->sim().RunBefore(round_end);
    }
    shared.executed.fetch_add(local, std::memory_order_relaxed);
  };

  const int extra = options_.worker_threads - 1;
  std::vector<std::thread> helpers;
  helpers.reserve(static_cast<size_t>(extra));
  for (int t = 0; t < extra; ++t) {
    helpers.emplace_back([&shared, &run_round] {
      uint64_t seen = 0;
      for (;;) {
        SimTime round_end;
        {
          std::unique_lock<std::mutex> lock(shared.mu);
          shared.work_cv.wait(lock,
                              [&shared, seen] { return shared.stop || shared.generation != seen; });
          if (shared.stop) {
            return;
          }
          seen = shared.generation;
          round_end = shared.round_end;
        }
        run_round(round_end);
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          if (--shared.remaining == 0) {
            shared.done_cv.notify_one();
          }
        }
      }
    });
  }

  for (;;) {
    const SimTime m = MinNextEventTime();
    if (m == kMaxSimTime) {
      break;
    }
    const SimTime round_end = AddClamped(m, options_.lookahead);
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      shared.round_end = round_end;
      shared.next_domain.store(0, std::memory_order_relaxed);
      shared.remaining = extra + 1;
      ++shared.generation;
    }
    shared.work_cv.notify_all();
    run_round(round_end);
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      --shared.remaining;
      shared.done_cv.wait(lock, [&shared] { return shared.remaining == 0; });
    }
    ++rounds_;
    DrainOutboxes(round_end);
    if (options_.barrier_hook) {
      // Workers are parked on work_cv here, so the hook sees quiescent
      // domains; everything it reads was published by the remaining==0
      // handshake above.
      options_.barrier_hook(round_end);
    }
  }

  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.stop = true;
  }
  shared.work_cv.notify_all();
  for (std::thread& t : helpers) {
    t.join();
  }
  return shared.executed.load(std::memory_order_relaxed);
}

}  // namespace rpcscope

#include "src/sim/parallel/shard_executor.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/check.h"

namespace rpcscope {

ShardExecutor::ShardExecutor(std::vector<SimDomain*> domains, ShardExecutorOptions options)
    : domains_(std::move(domains)), options_(std::move(options)) {
  RPCSCOPE_CHECK(!domains_.empty());
  const int n = static_cast<int>(domains_.size());
  for (int i = 0; i < n; ++i) {
    RPCSCOPE_CHECK(domains_[static_cast<size_t>(i)] != nullptr);
    RPCSCOPE_CHECK_EQ(domains_[static_cast<size_t>(i)]->id(), i)
        << "domain ids must match their index";
  }
  if (options_.lookahead_matrix != nullptr) {
    RPCSCOPE_CHECK_EQ(options_.lookahead_matrix->size(), n)
        << "lookahead matrix must be sized to the domain count";
    // The safety induction across rounds relays through intermediate domains:
    // a domain whose horizon was set by a near neighbor may forward causality
    // onward after At(x, s) + At(s, d) of virtual time. Direct bounds that
    // exceed such relay paths would let a destination simulate past an event
    // still in flight — reject them up front (builders fix this with
    // LookaheadMatrix::MinPlusClose).
    RPCSCOPE_CHECK(options_.lookahead_matrix->SatisfiesTriangleInequality())
        << "lookahead matrix must satisfy the triangle inequality; "
           "call MinPlusClose() after construction";
    matrix_ = options_.lookahead_matrix;
  } else {
    if (n > 1) {
      RPCSCOPE_CHECK_GT(options_.lookahead, 0)
          << "multi-domain execution needs a positive conservative lookahead";
    }
    uniform_matrix_ = LookaheadMatrix(n, options_.lookahead);
    matrix_ = &uniform_matrix_;
  }
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) {
        // A zero bound would stall the round loop: the horizon of d would
        // never exceed s's next event time, so d could never execute past it.
        RPCSCOPE_CHECK_GT(matrix_->At(s, d), 0)
            << "off-diagonal lookahead bound must be positive (" << s << " -> " << d << ")";
      }
    }
  }
  effective_workers_ = std::clamp(options_.worker_threads, 1, n);
  if (options_.clamp_workers_to_hardware) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) {
      effective_workers_ = std::min(effective_workers_, static_cast<int>(hw));
    }
  }
  // echo[i]: the fastest a domain's own causality can boomerang back at it
  // through any peer — min over s of L[i][s] + L[s][i]. The horizon must
  // include nt[i] + echo[i]: an idle peer contributes kMaxSimTime through the
  // sender terms, but i itself can wake that peer with a message and receive
  // a reply one round trip later, so i may never outrun its own next event by
  // more than the cheapest round trip. kMaxSimTime when n == 1 (never used —
  // single-domain runs take the fast path).
  echo_.resize(domains_.size(), kMaxSimTime);
  for (int i = 0; i < n; ++i) {
    for (int s = 0; s < n; ++s) {
      if (s != i) {
        echo_[static_cast<size_t>(i)] =
            std::min(echo_[static_cast<size_t>(i)],
                     AddClamped(matrix_->At(i, s), matrix_->At(s, i)));
      }
    }
  }
  next_times_.resize(domains_.size());
  horizons_.resize(domains_.size());
  active_.reserve(domains_.size());
}

bool ShardExecutor::PlanRound() {
  const int n = static_cast<int>(domains_.size());
  SimTime global_min = kMaxSimTime;
  for (int i = 0; i < n; ++i) {
    next_times_[static_cast<size_t>(i)] = domains_[static_cast<size_t>(i)]->sim().NextEventTime();
    global_min = std::min(global_min, next_times_[static_cast<size_t>(i)]);
  }
  if (global_min == kMaxSimTime) {
    return false;  // Every queue drained: the run is complete.
  }
  // horizon[i] = min( min over senders s != i of (next[s] + L[s][i]),
  //                   next[i] + echo[i] ).
  // O(n^2) with n = shard count (tens, not thousands); drained senders
  // contribute kMaxSimTime via the saturating add and stop constraining
  // anyone. The echo term caps how far i can outrun its own queue: any
  // future message into i is caused by some currently-queued event, and a
  // chain that starts at i's own queue must travel a full round trip before
  // it can come back (the sender terms cover chains starting elsewhere,
  // via the matrix's min-plus closure).
  active_.clear();
  SimTime watermark = kMaxSimTime;
  for (int i = 0; i < n; ++i) {
    SimTime h = AddClamped(next_times_[static_cast<size_t>(i)], echo_[static_cast<size_t>(i)]);
    for (int s = 0; s < n; ++s) {
      if (s == i) {
        continue;
      }
      h = std::min(h, AddClamped(next_times_[static_cast<size_t>(s)], matrix_->At(s, i)));
    }
    horizons_[static_cast<size_t>(i)] = h;
    watermark = std::min(watermark, h);
    if (next_times_[static_cast<size_t>(i)] < h) {
      active_.push_back(i);
    } else {
      ++idle_domain_rounds_;
    }
  }
  watermark_ = watermark;
  // Progress guarantee: the domain holding the global-min event has horizon
  // >= global_min + min(smallest pair bound, its echo) > its own next event
  // time, so it is always active. An empty active list would mean a
  // deadlocked round loop.
  RPCSCOPE_CHECK(!active_.empty()) << "conservative round planned no work";
  return true;
}

uint64_t ShardExecutor::DrainOutboxes() {
  uint64_t transferred = 0;
  // Canonical order: source domain id, then destination id, then post order.
  // This fixes the destination's sequence-number assignment independently of
  // which worker thread ran which domain, which is what makes the merged
  // event stream bit-identical across worker counts. The dirty flag lets the
  // coordinator skip sources that posted nothing this round without scanning
  // their num_domains outbox vectors.
  for (SimDomain* src : domains_) {
    if (!src->outbox_dirty_) {
      continue;
    }
    src->outbox_dirty_ = false;
    for (size_t d = 0; d < src->outbox_.size(); ++d) {
      std::vector<SimDomain::RemoteEvent>& box = src->outbox_[d];
      if (box.empty()) {
        continue;
      }
      SimDomain* dst = domains_[d];
      for (SimDomain::RemoteEvent& ev : box) {
        // The conservative-lookahead contract: a cross-domain event posted
        // during this round cannot land before the *destination's* horizon.
        // A violation means some path undercut the advertised per-pair
        // minimum latency — the destination may already have simulated past
        // `when`, so fail fast.
        RPCSCOPE_CHECK_GE(ev.when, horizons_[d])
            << "cross-domain event violates conservative lookahead";
        dst->sim().ScheduleAt(ev.when, std::move(ev.fn));
        ++transferred;
      }
      box.clear();
    }
  }
  cross_domain_events_ += transferred;
  return transferred;
}

uint64_t ShardExecutor::RunToCompletion() {
  if (domains_.size() == 1) {
    // Single domain: no barriers — exactly the legacy Run() path. Reported as
    // one round so per-round derived stats stay meaningful across shard
    // counts.
    rounds_ = 1;
    return domains_[0]->sim().Run();
  }
  return effective_workers_ == 1 ? RunSequential() : RunThreaded();
}

uint64_t ShardExecutor::RunSequential() {
  uint64_t total = 0;
  while (PlanRound()) {
    for (int i : active_) {
      total += domains_[static_cast<size_t>(i)]->sim().RunBefore(horizons_[static_cast<size_t>(i)]);
    }
    ++rounds_;
    DrainOutboxes();
    if (options_.barrier_hook) {
      options_.barrier_hook(watermark_);
    }
  }
  return total;
}

uint64_t ShardExecutor::RunThreaded() {
  // Persistent worker pool, spin-free: helpers park on a generation-counted
  // condition variable between rounds and are woken once per round, so an
  // oversubscribed host pays wake/park latency but never burns a core.
  // Work is handed out as one contiguous slice of the active list per worker
  // (precomputed by the coordinator), so there is no shared claim counter to
  // bounce between caches mid-round and each worker touches a disjoint,
  // contiguous range of domains. The calling thread is worker 0.
  //
  // Happens-before edges: the round plan (horizons_, active_, range bounds)
  // is published under `mu` before the generation bump that wakes helpers;
  // all RunBefore effects are visible to the coordinator once `remaining`
  // reaches 0 under `mu`.
  struct Shared {
    std::mutex mu;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    uint64_t generation = 0;
    int remaining = 0;
    bool stop = false;
    uint64_t executed = 0;  // Merged per-worker totals; guarded by mu.
  } shared;

  const int workers = effective_workers_;
  // range_begin[w] .. range_begin[w+1] indexes worker w's slice of active_
  // for the current round. Written by the coordinator under mu.
  std::vector<size_t> range_begin(static_cast<size_t>(workers) + 1, 0);

  auto run_range = [this](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t k = begin; k < end; ++k) {
      const size_t i = static_cast<size_t>(active_[k]);
      local += domains_[i]->sim().RunBefore(horizons_[i]);
    }
    return local;
  };

  const int extra = workers - 1;
  std::vector<std::thread> helpers;
  helpers.reserve(static_cast<size_t>(extra));
  for (int t = 0; t < extra; ++t) {
    const size_t w = static_cast<size_t>(t) + 1;
    helpers.emplace_back([&shared, &range_begin, &run_range, w] {
      uint64_t seen = 0;
      for (;;) {
        size_t begin;
        size_t end;
        {
          std::unique_lock<std::mutex> lock(shared.mu);
          shared.work_cv.wait(lock,
                              [&shared, seen] { return shared.stop || shared.generation != seen; });
          if (shared.stop) {
            return;
          }
          seen = shared.generation;
          begin = range_begin[w];
          end = range_begin[w + 1];
        }
        const uint64_t local = run_range(begin, end);
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          shared.executed += local;
          if (--shared.remaining == 0) {
            shared.done_cv.notify_one();
          }
        }
      }
    });
  }

  while (PlanRound()) {
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      const size_t n_active = active_.size();
      for (int w = 0; w <= workers; ++w) {
        range_begin[static_cast<size_t>(w)] =
            n_active * static_cast<size_t>(w) / static_cast<size_t>(workers);
      }
      shared.remaining = workers;
      ++shared.generation;
    }
    shared.work_cv.notify_all();
    const uint64_t local = run_range(range_begin[0], range_begin[1]);
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.executed += local;
      --shared.remaining;
      shared.done_cv.wait(lock, [&shared] { return shared.remaining == 0; });
    }
    ++rounds_;
    DrainOutboxes();
    if (options_.barrier_hook) {
      // Workers are parked on work_cv here, so the hook sees quiescent
      // domains; everything it reads was published by the remaining==0
      // handshake above.
      options_.barrier_hook(watermark_);
    }
  }

  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.stop = true;
  }
  shared.work_cv.notify_all();
  for (std::thread& t : helpers) {
    t.join();
  }
  return shared.executed;
}

}  // namespace rpcscope

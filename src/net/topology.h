// Fleet topology: continents → metros → datacenters → clusters → machines.
//
// The study's geographic effects (Fig. 19's staircase of cross-cluster
// latencies, the ~200 ms max WAN RTT in §3.2) are driven entirely by where the
// client and server sit in this hierarchy. Pairwise base RTTs are derived
// deterministically from the pair's distance class plus a hash of the pair, so
// a given topology always yields the same wire latencies.
#ifndef RPCSCOPE_SRC_NET_TOPOLOGY_H_
#define RPCSCOPE_SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace rpcscope {

using ClusterId = int32_t;
using MachineId = int64_t;  // Globally unique; cluster-local index recoverable.

enum class DistanceClass : int32_t {
  kSameMachine = 0,
  kSameCluster = 1,
  kSameDatacenter = 2,   // Different cluster, same building.
  kSameMetro = 3,        // Different datacenter, same metro area.
  kSameContinent = 4,    // Different metro, same continent.
  kIntercontinental = 5,
};

std::string_view DistanceClassName(DistanceClass dc);

struct TopologyOptions {
  int continents = 4;
  int metros_per_continent = 4;
  int datacenters_per_metro = 2;
  int clusters_per_datacenter = 3;
  int machines_per_cluster = 64;
  uint64_t seed = 0x70706f;  // Perturbs pairwise RTTs within their class band.
};

class Topology {
 public:
  explicit Topology(const TopologyOptions& options);

  int num_clusters() const { return static_cast<int>(cluster_metro_.size()); }
  int num_machines() const { return num_clusters() * options_.machines_per_cluster; }
  int machines_per_cluster() const { return options_.machines_per_cluster; }

  // Machine <-> (cluster, local index) mapping.
  MachineId MachineAt(ClusterId cluster, int local_index) const;
  ClusterId ClusterOf(MachineId machine) const;
  int LocalIndexOf(MachineId machine) const;

  int MetroOf(ClusterId cluster) const { return cluster_metro_[static_cast<size_t>(cluster)]; }
  int DatacenterOf(ClusterId cluster) const {
    return cluster_datacenter_[static_cast<size_t>(cluster)];
  }
  int ContinentOfMetro(int metro) const { return metro_continent_[static_cast<size_t>(metro)]; }

  DistanceClass Distance(MachineId a, MachineId b) const;
  DistanceClass ClusterDistance(ClusterId a, ClusterId b) const;

  // Base round-trip propagation time between two machines: the class band's
  // midpoint perturbed deterministically by the (cluster-pair, seed) hash.
  // Symmetric: BaseRtt(a, b) == BaseRtt(b, a).
  SimDuration BaseRtt(MachineId a, MachineId b) const;
  SimDuration ClusterBaseRtt(ClusterId a, ClusterId b) const;

 private:
  TopologyOptions options_;
  std::vector<int> cluster_metro_;        // cluster -> metro
  std::vector<int> cluster_datacenter_;   // cluster -> datacenter (global id)
  std::vector<int> metro_continent_;      // metro -> continent
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_NET_TOPOLOGY_H_

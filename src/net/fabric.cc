#include "src/net/fabric.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace rpcscope {

Fabric::Fabric(Simulator* sim, const Topology* topology, const FabricOptions& options)
    : sim_(sim), topology_(topology), options_(options), rng_(options.seed) {
  assert(sim != nullptr);
  assert(topology != nullptr);
}

SimDuration Fabric::MinOneWayLatency(MachineId src, MachineId dst, int64_t bytes) const {
  const DistanceClass dc = topology_->Distance(src, dst);
  const bool wan = dc >= DistanceClass::kSameContinent;
  const double bw = wan ? options_.wan_bytes_per_second : options_.lan_bytes_per_second;
  const SimDuration propagation = topology_->BaseRtt(src, dst) / 2;
  const SimDuration serialization =
      DurationFromSeconds(static_cast<double>(bytes) / bw);
  return propagation + serialization;
}

SimDuration Fabric::SampleOneWayLatency(MachineId src, MachineId dst, int64_t bytes) {
  SimDuration latency = MinOneWayLatency(src, dst, bytes);
  if (rng_.NextBool(options_.congestion_probability)) {
    const DistanceClass dc = topology_->Distance(src, dst);
    const bool wan = dc >= DistanceClass::kSameContinent;
    double mean = static_cast<double>(options_.congestion_mean);
    if (wan) {
      mean *= options_.wan_congestion_multiplier;
    }
    latency += static_cast<SimDuration>(std::llround(rng_.NextExponential(mean)));
  }
  return latency;
}

void Fabric::Send(MachineId src, MachineId dst, int64_t bytes, Delivery on_delivered) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  // Fault hook: one perfectly-predicted branch when no injector is armed.
  if (interceptor_ != nullptr && interceptor_->OnSend(src, dst, bytes)) {
    ++frames_dropped_;
    return;  // The frame is lost; on_delivered is destroyed unfired.
  }
  const SimDuration latency = SampleOneWayLatency(src, dst, bytes);
  if (home_ != nullptr) {
    SimDomain* remote = domain_resolver_(dst);
    if (remote->id() != home_->id()) {
      // Cross-shard delivery: hand the frame to the destination domain via
      // the outbox. The latency sample must honor the executor's per-pair
      // lookahead bound — if this fires, the shard mapping put two machines
      // closer together than the advertised minimum for this domain pair.
      RPCSCOPE_CHECK_GE(latency, lookahead_->At(home_->id(), remote->id()))
          << "cross-domain frame undercuts the conservative lookahead";
      home_->PostRemote(remote->id(), AddClamped(sim_->Now(), latency),
                        [latency, done = std::move(on_delivered)]() { done(latency); });
      return;
    }
  }
  sim_->Schedule(latency, [latency, done = std::move(on_delivered)]() { done(latency); });
}

void Fabric::BindDomain(SimDomain* home, std::function<SimDomain*(MachineId)> resolver,
                        const LookaheadMatrix* lookahead) {
  RPCSCOPE_CHECK(home != nullptr);
  RPCSCOPE_CHECK(resolver != nullptr);
  RPCSCOPE_CHECK(lookahead != nullptr);
  RPCSCOPE_CHECK_GT(lookahead->size(), home->id());
  home_ = home;
  domain_resolver_ = std::move(resolver);
  lookahead_ = lookahead;
}

}  // namespace rpcscope

#include "src/net/fabric.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "src/checkpoint/checkpoint.h"
#include "src/common/check.h"

namespace rpcscope {

Fabric::Fabric(Simulator* sim, const Topology* topology, const FabricOptions& options)
    : sim_(sim), topology_(topology), options_(options), rng_(options.seed) {
  assert(sim != nullptr);
  assert(topology != nullptr);
}

SimDuration Fabric::MinOneWayLatency(MachineId src, MachineId dst, int64_t bytes) const {
  const DistanceClass dc = topology_->Distance(src, dst);
  const bool wan = dc >= DistanceClass::kSameContinent;
  const double bw = wan ? options_.wan_bytes_per_second : options_.lan_bytes_per_second;
  const SimDuration propagation = topology_->BaseRtt(src, dst) / 2;
  const SimDuration serialization =
      DurationFromSeconds(static_cast<double>(bytes) / bw);
  return propagation + serialization;
}

SimDuration Fabric::SampleOneWayLatency(MachineId src, MachineId dst, int64_t bytes) {
  SimDuration latency = MinOneWayLatency(src, dst, bytes);
  if (rng_.NextBool(options_.congestion_probability)) {
    const DistanceClass dc = topology_->Distance(src, dst);
    const bool wan = dc >= DistanceClass::kSameContinent;
    double mean = static_cast<double>(options_.congestion_mean);
    if (wan) {
      mean *= options_.wan_congestion_multiplier;
    }
    latency += static_cast<SimDuration>(std::llround(rng_.NextExponential(mean)));
  }
  return latency;
}

void Fabric::Send(MachineId src, MachineId dst, int64_t bytes, Delivery on_delivered) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  // Fault hook: one perfectly-predicted branch when no injector is armed.
  if (interceptor_ != nullptr && interceptor_->OnSend(src, dst, bytes)) {
    ++frames_dropped_;
    return;  // The frame is lost; on_delivered is destroyed unfired.
  }
  const SimDuration latency = SampleOneWayLatency(src, dst, bytes);
  if (home_ != nullptr) {
    SimDomain* remote = domain_resolver_(dst);
    if (remote->id() != home_->id()) {
      // Cross-shard delivery: hand the frame to the destination domain via
      // the outbox. The latency sample must honor the executor's per-pair
      // lookahead bound — if this fires, the shard mapping put two machines
      // closer together than the advertised minimum for this domain pair.
      RPCSCOPE_CHECK_GE(latency, lookahead_->At(home_->id(), remote->id()))
          << "cross-domain frame undercuts the conservative lookahead";
      home_->PostRemote(remote->id(), AddClamped(sim_->Now(), latency),
                        [latency, done = std::move(on_delivered)]() { done(latency); });
      return;
    }
  }
  sim_->Schedule(latency, [latency, done = std::move(on_delivered)]() { done(latency); });
}

void Fabric::BindDomain(SimDomain* home, std::function<SimDomain*(MachineId)> resolver,
                        const LookaheadMatrix* lookahead) {
  RPCSCOPE_CHECK(home != nullptr);
  RPCSCOPE_CHECK(resolver != nullptr);
  RPCSCOPE_CHECK(lookahead != nullptr);
  RPCSCOPE_CHECK_GT(lookahead->size(), home->id());
  home_ = home;
  domain_resolver_ = std::move(resolver);
  lookahead_ = lookahead;
}

Status Fabric::CheckpointTo(CheckpointWriter& w) const {
  w.BeginSection("fabric");
  WriteRngState(w, rng_);
  w.WriteU64(options_.seed);
  w.WriteU64(messages_sent_);
  w.WriteI64(bytes_sent_);
  w.WriteU64(frames_dropped_);
  w.EndSection();
  return Status::Ok();
}

Status Fabric::RestoreFrom(CheckpointReader& r) {
  if (Status s = r.EnterSection("fabric"); !s.ok()) {
    return s;
  }
  Rng rng(0);
  ReadRngState(r, rng);
  const uint64_t seed = r.ReadU64();
  const uint64_t messages_sent = r.ReadU64();
  const int64_t bytes_sent = r.ReadI64();
  const uint64_t frames_dropped = r.ReadU64();
  if (Status s = r.LeaveSection(); !s.ok()) {
    return s;
  }
  if (seed != options_.seed) {
    return FailedPreconditionError("checkpoint fabric seed does not match this run");
  }
  rng_ = rng;
  messages_sent_ = messages_sent;
  bytes_sent_ = bytes_sent;
  frames_dropped_ = frames_dropped;
  return Status::Ok();
}

}  // namespace rpcscope

// Fabric: message delivery over the simulated network.
//
// One-way delivery latency =
//   propagation (BaseRtt/2 from the topology)
// + serialization (bytes / per-path bandwidth; WAN paths are slower)
// + congestion (with probability p_congestion, an exponential extra delay —
//   the paper finds congestion still impacts the WAN tail, §3.2/§5.1).
//
// The fabric is where "RPC Network Wire" latency (Fig. 9) comes from.
#ifndef RPCSCOPE_SRC_NET_FABRIC_H_
#define RPCSCOPE_SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/net/topology.h"
#include "src/sim/domain.h"
#include "src/sim/lookahead.h"
#include "src/sim/simulator.h"

namespace rpcscope {

struct FabricOptions {
  // Within-datacenter NIC-limited bandwidth.
  double lan_bytes_per_second = 12.5e9;  // 100 Gbps.
  // Effective per-flow WAN bandwidth (shared long-haul links).
  double wan_bytes_per_second = 1.25e9;  // 10 Gbps.
  // Probability that a message hits a congested queue.
  double congestion_probability = 0.03;
  // Mean of the exponential extra delay when congested, scaled by distance:
  // LAN paths see this mean; WAN paths see wan_congestion_multiplier x it.
  SimDuration congestion_mean = Micros(150);
  double wan_congestion_multiplier = 400.0;  // WAN congestion is tens of ms.
  uint64_t seed = 0xfab;
};

// Hook consulted once per frame before delivery is scheduled. Used by the
// fault-injection layer (src/fault) to model partitions and packet loss
// without the fabric depending on it. Implementations must be deterministic
// (seeded Rng, virtual time only) — the fabric sits on the hot path and every
// drop decision feeds the event digest.
class FabricInterceptor {
 public:
  virtual ~FabricInterceptor() = default;

  // Returns true to drop the frame: it is never delivered and the sender is
  // not notified (lost frames surface via client-side watchdogs/deadlines).
  virtual bool OnSend(MachineId src, MachineId dst, int64_t bytes) = 0;
};

// RPCSCOPE_CHECKPOINTED(CheckpointTo, RestoreFrom)
class Fabric {
 public:
  using Delivery = std::function<void(SimDuration wire_latency)>;

  Fabric(Simulator* sim, const Topology* topology, const FabricOptions& options);

  // Sends `bytes` from `src` to `dst`; invokes `on_delivered` at arrival with
  // the one-way wire latency actually experienced.
  void Send(MachineId src, MachineId dst, int64_t bytes, Delivery on_delivered);

  // Computes a one-way latency sample without scheduling (used by the
  // model-driven fleet path and by tests).
  SimDuration SampleOneWayLatency(MachineId src, MachineId dst, int64_t bytes);

  // Deterministic minimum (no congestion) one-way latency for a path.
  SimDuration MinOneWayLatency(MachineId src, MachineId dst, int64_t bytes) const;

  // Multi-domain routing (sharded runs only): after binding, Send() routes a
  // frame whose destination machine lives in a different shard domain through
  // `home`'s outbox instead of the local event queue — the fabric is the only
  // inter-domain edge. `resolver` maps a machine to its owning domain;
  // `lookahead` holds the executor's per-domain-pair conservative bounds,
  // which every cross-domain latency sample must respect (CHECK-enforced:
  // propagation is bounded below by the topology and serialization/congestion
  // only add). The matrix must be sized so that every domain the resolver can
  // return is in range, and must outlive the fabric.
  void BindDomain(SimDomain* home, std::function<SimDomain*(MachineId)> resolver,
                  const LookaheadMatrix* lookahead);

  // Installs (or clears, with nullptr) the fault-injection hook. The
  // interceptor must outlive the fabric or be cleared before destruction.
  void set_interceptor(FabricInterceptor* interceptor) { interceptor_ = interceptor; }
  FabricInterceptor* interceptor() const { return interceptor_; }

  // messages_sent/bytes_sent count send *attempts*; frames_dropped counts the
  // subset the interceptor swallowed (partition or packet loss).
  uint64_t messages_sent() const { return messages_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  uint64_t frames_dropped() const { return frames_dropped_; }

  // Checkpoint support: the congestion RNG stream and traffic counters are
  // the only mutable state (topology, routing bindings, and the interceptor
  // are structural and re-established by reconstruction).
  [[nodiscard]] Status CheckpointTo(CheckpointWriter& w) const;
  [[nodiscard]] Status RestoreFrom(CheckpointReader& r);

 private:
  // Structural members (suppressed below) are wired by the constructor and
  // BindDomain on both the fresh-run and restore paths; only the RNG stream
  // and counters carry run state.
  Simulator* sim_;                // NOLINT(detan-checkpoint-field) structural
  const Topology* topology_;      // NOLINT(detan-checkpoint-field) structural
  FabricOptions options_;
  Rng rng_;
  SimDomain* home_ = nullptr;     // NOLINT(detan-checkpoint-field) structural
  std::function<SimDomain*(MachineId)> domain_resolver_;  // NOLINT(detan-checkpoint-field) structural
  const LookaheadMatrix* lookahead_ = nullptr;    // NOLINT(detan-checkpoint-field) structural
  FabricInterceptor* interceptor_ = nullptr;      // NOLINT(detan-checkpoint-field) structural
  uint64_t messages_sent_ = 0;
  int64_t bytes_sent_ = 0;
  uint64_t frames_dropped_ = 0;
};

}  // namespace rpcscope

#endif  // RPCSCOPE_SRC_NET_FABRIC_H_

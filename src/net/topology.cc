#include "src/net/topology.h"

#include <algorithm>
#include <cassert>

#include "src/common/rng.h"

namespace rpcscope {

namespace {

struct RttBand {
  SimDuration lo;
  SimDuration hi;
};

// Round-trip propagation bands per distance class. Calibrated so the longest
// WAN RTT is ~200 ms (§3.2) and same-cluster RPCs see tens of microseconds.
RttBand BandFor(DistanceClass dc) {
  switch (dc) {
    case DistanceClass::kSameMachine:
      return {Micros(2), Micros(6)};
    case DistanceClass::kSameCluster:
      return {Micros(20), Micros(80)};
    case DistanceClass::kSameDatacenter:
      return {Micros(100), Micros(500)};
    case DistanceClass::kSameMetro:
      return {Micros(600), Millis(4)};
    case DistanceClass::kSameContinent:
      return {Millis(5), Millis(60)};
    case DistanceClass::kIntercontinental:
      return {Millis(60), Millis(200)};
  }
  return {Micros(20), Micros(80)};
}

}  // namespace

std::string_view DistanceClassName(DistanceClass dc) {
  switch (dc) {
    case DistanceClass::kSameMachine:
      return "same-machine";
    case DistanceClass::kSameCluster:
      return "same-cluster";
    case DistanceClass::kSameDatacenter:
      return "same-datacenter";
    case DistanceClass::kSameMetro:
      return "same-metro";
    case DistanceClass::kSameContinent:
      return "same-continent";
    case DistanceClass::kIntercontinental:
      return "intercontinental";
  }
  return "invalid";
}

Topology::Topology(const TopologyOptions& options) : options_(options) {
  assert(options.continents > 0);
  assert(options.metros_per_continent > 0);
  assert(options.datacenters_per_metro > 0);
  assert(options.clusters_per_datacenter > 0);
  assert(options.machines_per_cluster > 0);
  int metro_id = 0;
  int dc_id = 0;
  for (int cont = 0; cont < options.continents; ++cont) {
    for (int m = 0; m < options.metros_per_continent; ++m, ++metro_id) {
      metro_continent_.push_back(cont);
      for (int d = 0; d < options.datacenters_per_metro; ++d, ++dc_id) {
        for (int c = 0; c < options.clusters_per_datacenter; ++c) {
          cluster_metro_.push_back(metro_id);
          cluster_datacenter_.push_back(dc_id);
        }
      }
    }
  }
}

MachineId Topology::MachineAt(ClusterId cluster, int local_index) const {
  assert(cluster >= 0 && cluster < num_clusters());
  assert(local_index >= 0 && local_index < options_.machines_per_cluster);
  return static_cast<MachineId>(cluster) * options_.machines_per_cluster + local_index;
}

ClusterId Topology::ClusterOf(MachineId machine) const {
  return static_cast<ClusterId>(machine / options_.machines_per_cluster);
}

int Topology::LocalIndexOf(MachineId machine) const {
  return static_cast<int>(machine % options_.machines_per_cluster);
}

DistanceClass Topology::ClusterDistance(ClusterId a, ClusterId b) const {
  if (a == b) {
    return DistanceClass::kSameCluster;
  }
  const size_t ia = static_cast<size_t>(a);
  const size_t ib = static_cast<size_t>(b);
  if (cluster_datacenter_[ia] == cluster_datacenter_[ib]) {
    return DistanceClass::kSameDatacenter;
  }
  if (cluster_metro_[ia] == cluster_metro_[ib]) {
    return DistanceClass::kSameMetro;
  }
  if (metro_continent_[static_cast<size_t>(cluster_metro_[ia])] ==
      metro_continent_[static_cast<size_t>(cluster_metro_[ib])]) {
    return DistanceClass::kSameContinent;
  }
  return DistanceClass::kIntercontinental;
}

DistanceClass Topology::Distance(MachineId a, MachineId b) const {
  if (a == b) {
    return DistanceClass::kSameMachine;
  }
  return ClusterDistance(ClusterOf(a), ClusterOf(b));
}

SimDuration Topology::ClusterBaseRtt(ClusterId a, ClusterId b) const {
  const DistanceClass dc = ClusterDistance(a, b);
  const RttBand band = BandFor(dc);
  // Deterministic, symmetric perturbation within the band.
  const uint64_t lo_id = static_cast<uint64_t>(std::min(a, b));
  const uint64_t hi_id = static_cast<uint64_t>(std::max(a, b));
  const uint64_t h = Mix64(options_.seed ^ Mix64((lo_id << 32) | hi_id));
  const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
  return band.lo +
         static_cast<SimDuration>(frac * static_cast<double>(band.hi - band.lo));
}

SimDuration Topology::BaseRtt(MachineId a, MachineId b) const {
  if (a == b) {
    const RttBand band = BandFor(DistanceClass::kSameMachine);
    return (band.lo + band.hi) / 2;
  }
  const ClusterId ca = ClusterOf(a);
  const ClusterId cb = ClusterOf(b);
  if (ca == cb) {
    const RttBand band = BandFor(DistanceClass::kSameCluster);
    const uint64_t lo_id = static_cast<uint64_t>(std::min(a, b));
    const uint64_t hi_id = static_cast<uint64_t>(std::max(a, b));
    const uint64_t h = Mix64(options_.seed ^ Mix64(lo_id * 0x9e37 + hi_id));
    const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
    return band.lo +
           static_cast<SimDuration>(frac * static_cast<double>(band.hi - band.lo));
  }
  return ClusterBaseRtt(ca, cb);
}

}  // namespace rpcscope

# Empty dependencies file for fig23_errors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig23_errors.dir/fig23_errors.cc.o"
  "CMakeFiles/fig23_errors.dir/fig23_errors.cc.o.d"
  "fig23_errors"
  "fig23_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig10_tax.
# This may be replaced when dependencies are built.

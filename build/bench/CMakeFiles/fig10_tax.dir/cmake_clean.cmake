file(REMOVE_RECURSE
  "CMakeFiles/fig10_tax.dir/fig10_tax.cc.o"
  "CMakeFiles/fig10_tax.dir/fig10_tax.cc.o.d"
  "fig10_tax"
  "fig10_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

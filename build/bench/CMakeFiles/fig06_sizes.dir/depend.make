# Empty dependencies file for fig06_sizes.
# This may be replaced when dependencies are built.

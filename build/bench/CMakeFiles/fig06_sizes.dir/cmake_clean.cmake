file(REMOVE_RECURSE
  "CMakeFiles/fig06_sizes.dir/fig06_sizes.cc.o"
  "CMakeFiles/fig06_sizes.dir/fig06_sizes.cc.o.d"
  "fig06_sizes"
  "fig06_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

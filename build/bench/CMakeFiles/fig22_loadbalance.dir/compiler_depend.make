# Empty compiler generated dependencies file for fig22_loadbalance.
# This may be replaced when dependencies are built.

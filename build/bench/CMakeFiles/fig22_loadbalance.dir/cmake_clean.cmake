file(REMOVE_RECURSE
  "CMakeFiles/fig22_loadbalance.dir/fig22_loadbalance.cc.o"
  "CMakeFiles/fig22_loadbalance.dir/fig22_loadbalance.cc.o.d"
  "fig22_loadbalance"
  "fig22_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ext_minifleet.dir/ext_minifleet.cc.o"
  "CMakeFiles/ext_minifleet.dir/ext_minifleet.cc.o.d"
  "ext_minifleet"
  "ext_minifleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_minifleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

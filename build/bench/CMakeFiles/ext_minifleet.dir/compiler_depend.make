# Empty compiler generated dependencies file for ext_minifleet.
# This may be replaced when dependencies are built.

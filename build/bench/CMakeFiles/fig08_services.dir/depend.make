# Empty dependencies file for fig08_services.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_services.dir/fig08_services.cc.o"
  "CMakeFiles/fig08_services.dir/fig08_services.cc.o.d"
  "fig08_services"
  "fig08_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig03_popularity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig03_popularity.dir/fig03_popularity.cc.o"
  "CMakeFiles/fig03_popularity.dir/fig03_popularity.cc.o.d"
  "fig03_popularity"
  "fig03_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

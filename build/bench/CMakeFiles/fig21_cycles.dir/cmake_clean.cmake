file(REMOVE_RECURSE
  "CMakeFiles/fig21_cycles.dir/fig21_cycles.cc.o"
  "CMakeFiles/fig21_cycles.dir/fig21_cycles.cc.o.d"
  "fig21_cycles"
  "fig21_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

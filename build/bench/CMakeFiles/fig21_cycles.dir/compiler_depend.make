# Empty compiler generated dependencies file for fig21_cycles.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_taxratio.dir/fig11_taxratio.cc.o"
  "CMakeFiles/fig11_taxratio.dir/fig11_taxratio.cc.o.d"
  "fig11_taxratio"
  "fig11_taxratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_taxratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig11_taxratio.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig19_crosscluster.
# This may be replaced when dependencies are built.

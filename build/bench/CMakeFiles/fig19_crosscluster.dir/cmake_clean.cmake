file(REMOVE_RECURSE
  "CMakeFiles/fig19_crosscluster.dir/fig19_crosscluster.cc.o"
  "CMakeFiles/fig19_crosscluster.dir/fig19_crosscluster.cc.o.d"
  "fig19_crosscluster"
  "fig19_crosscluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_crosscluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig05_ancestors.
# This may be replaced when dependencies are built.

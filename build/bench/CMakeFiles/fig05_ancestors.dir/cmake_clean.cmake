file(REMOVE_RECURSE
  "CMakeFiles/fig05_ancestors.dir/fig05_ancestors.cc.o"
  "CMakeFiles/fig05_ancestors.dir/fig05_ancestors.cc.o.d"
  "fig05_ancestors"
  "fig05_ancestors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ancestors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_hedging.dir/ablation_hedging.cc.o"
  "CMakeFiles/ablation_hedging.dir/ablation_hedging.cc.o.d"
  "ablation_hedging"
  "ablation_hedging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hedging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

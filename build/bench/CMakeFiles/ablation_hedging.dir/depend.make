# Empty dependencies file for ablation_hedging.
# This may be replaced when dependencies are built.

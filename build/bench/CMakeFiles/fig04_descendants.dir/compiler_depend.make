# Empty compiler generated dependencies file for fig04_descendants.
# This may be replaced when dependencies are built.

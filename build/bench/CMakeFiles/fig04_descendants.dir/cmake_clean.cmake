file(REMOVE_RECURSE
  "CMakeFiles/fig04_descendants.dir/fig04_descendants.cc.o"
  "CMakeFiles/fig04_descendants.dir/fig04_descendants.cc.o.d"
  "fig04_descendants"
  "fig04_descendants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_descendants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig15_whatif.dir/fig15_whatif.cc.o"
  "CMakeFiles/fig15_whatif.dir/fig15_whatif.cc.o.d"
  "fig15_whatif"
  "fig15_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

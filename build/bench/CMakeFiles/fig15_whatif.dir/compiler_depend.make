# Empty compiler generated dependencies file for fig15_whatif.
# This may be replaced when dependencies are built.

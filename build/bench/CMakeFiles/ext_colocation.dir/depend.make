# Empty dependencies file for ext_colocation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig16_clusters.dir/fig16_clusters.cc.o"
  "CMakeFiles/fig16_clusters.dir/fig16_clusters.cc.o.d"
  "fig16_clusters"
  "fig16_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig16_clusters.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_scheduling.dir/ext_scheduling.cc.o"
  "CMakeFiles/ext_scheduling.dir/ext_scheduling.cc.o.d"
  "ext_scheduling"
  "ext_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

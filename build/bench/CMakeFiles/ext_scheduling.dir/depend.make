# Empty dependencies file for ext_scheduling.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig20_cycletax.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig20_cycletax.dir/fig20_cycletax.cc.o"
  "CMakeFiles/fig20_cycletax.dir/fig20_cycletax.cc.o.d"
  "fig20_cycletax"
  "fig20_cycletax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_cycletax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig17_exogenous.dir/fig17_exogenous.cc.o"
  "CMakeFiles/fig17_exogenous.dir/fig17_exogenous.cc.o.d"
  "fig17_exogenous"
  "fig17_exogenous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_exogenous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig17_exogenous.
# This may be replaced when dependencies are built.

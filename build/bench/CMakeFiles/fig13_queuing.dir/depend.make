# Empty dependencies file for fig13_queuing.
# This may be replaced when dependencies are built.

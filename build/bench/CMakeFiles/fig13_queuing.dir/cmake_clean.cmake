file(REMOVE_RECURSE
  "CMakeFiles/fig13_queuing.dir/fig13_queuing.cc.o"
  "CMakeFiles/fig13_queuing.dir/fig13_queuing.cc.o.d"
  "fig13_queuing"
  "fig13_queuing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_queuing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig18_diurnal.cc" "bench/CMakeFiles/fig18_diurnal.dir/fig18_diurnal.cc.o" "gcc" "bench/CMakeFiles/fig18_diurnal.dir/fig18_diurnal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpcscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/rpcscope_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rpcscope_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rpcscope_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/rpcscope_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpcscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/rpcscope_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig18_diurnal.dir/fig18_diurnal.cc.o"
  "CMakeFiles/fig18_diurnal.dir/fig18_diurnal.cc.o.d"
  "fig18_diurnal"
  "fig18_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

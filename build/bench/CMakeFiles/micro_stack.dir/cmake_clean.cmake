file(REMOVE_RECURSE
  "CMakeFiles/micro_stack.dir/micro_stack.cc.o"
  "CMakeFiles/micro_stack.dir/micro_stack.cc.o.d"
  "micro_stack"
  "micro_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

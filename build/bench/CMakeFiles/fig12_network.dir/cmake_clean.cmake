file(REMOVE_RECURSE
  "CMakeFiles/fig12_network.dir/fig12_network.cc.o"
  "CMakeFiles/fig12_network.dir/fig12_network.cc.o.d"
  "fig12_network"
  "fig12_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_network.
# This may be replaced when dependencies are built.

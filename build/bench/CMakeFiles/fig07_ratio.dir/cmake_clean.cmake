file(REMOVE_RECURSE
  "CMakeFiles/fig07_ratio.dir/fig07_ratio.cc.o"
  "CMakeFiles/fig07_ratio.dir/fig07_ratio.cc.o.d"
  "fig07_ratio"
  "fig07_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig07_ratio.
# This may be replaced when dependencies are built.

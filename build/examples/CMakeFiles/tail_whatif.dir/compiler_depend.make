# Empty compiler generated dependencies file for tail_whatif.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tail_whatif.dir/tail_whatif.cpp.o"
  "CMakeFiles/tail_whatif.dir/tail_whatif.cpp.o.d"
  "tail_whatif"
  "tail_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for storage_stack.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/storage_stack.dir/storage_stack.cpp.o"
  "CMakeFiles/storage_stack.dir/storage_stack.cpp.o.d"
  "storage_stack"
  "storage_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

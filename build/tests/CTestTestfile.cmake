# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;29;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(wire_test "/root/repo/build/tests/wire_test")
set_tests_properties(wire_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;35;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rpc_test "/root/repo/build/tests/rpc_test")
set_tests_properties(rpc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;44;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;54;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(monitor_test "/root/repo/build/tests/monitor_test")
set_tests_properties(monitor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;59;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(profile_test "/root/repo/build/tests/profile_test")
set_tests_properties(profile_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;65;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;69;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fleet_test "/root/repo/build/tests/fleet_test")
set_tests_properties(fleet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;77;rpcscope_add_test;/root/repo/tests/CMakeLists.txt;0;")

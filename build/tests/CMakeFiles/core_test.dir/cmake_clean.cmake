file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/analyses_test.cc.o"
  "CMakeFiles/core_test.dir/core/analyses_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/method_stats_test.cc.o"
  "CMakeFiles/core_test.dir/core/method_stats_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/plot_test.cc.o"
  "CMakeFiles/core_test.dir/core/plot_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/report_test.cc.o"
  "CMakeFiles/core_test.dir/core/report_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/study_analyses_test.cc.o"
  "CMakeFiles/core_test.dir/core/study_analyses_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

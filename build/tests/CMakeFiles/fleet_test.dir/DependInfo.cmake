
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fleet/call_graph_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/call_graph_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/call_graph_test.cc.o.d"
  "/root/repo/tests/fleet/cluster_state_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/cluster_state_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/cluster_state_test.cc.o.d"
  "/root/repo/tests/fleet/fleet_sampler_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/fleet_sampler_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/fleet_sampler_test.cc.o.d"
  "/root/repo/tests/fleet/growth_model_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/growth_model_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/growth_model_test.cc.o.d"
  "/root/repo/tests/fleet/load_balancer_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/load_balancer_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/load_balancer_test.cc.o.d"
  "/root/repo/tests/fleet/method_catalog_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/method_catalog_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/method_catalog_test.cc.o.d"
  "/root/repo/tests/fleet/mini_fleet_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/mini_fleet_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/mini_fleet_test.cc.o.d"
  "/root/repo/tests/fleet/service_catalog_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/service_catalog_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/service_catalog_test.cc.o.d"
  "/root/repo/tests/fleet/service_study_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/service_study_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/service_study_test.cc.o.d"
  "/root/repo/tests/fleet/workload_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet/workload_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/rpcscope_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/rpcscope_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpcscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rpcscope_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rpcscope_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/rpcscope_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rpcscope_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fleet_test.dir/fleet/call_graph_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/call_graph_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/cluster_state_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/cluster_state_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/fleet_sampler_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/fleet_sampler_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/growth_model_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/growth_model_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/load_balancer_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/load_balancer_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/method_catalog_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/method_catalog_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/mini_fleet_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/mini_fleet_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/service_catalog_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/service_catalog_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/service_study_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/service_study_test.cc.o.d"
  "CMakeFiles/fleet_test.dir/fleet/workload_test.cc.o"
  "CMakeFiles/fleet_test.dir/fleet/workload_test.cc.o.d"
  "fleet_test"
  "fleet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rpc_test.dir/rpc/channel_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/channel_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/codec_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/codec_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/cost_model_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/cost_model_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/end_to_end_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/end_to_end_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/robustness_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/robustness_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/streaming_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/streaming_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/system_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/system_test.cc.o.d"
  "rpc_test"
  "rpc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/wire_test.dir/wire/checksum_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/checksum_test.cc.o.d"
  "CMakeFiles/wire_test.dir/wire/cipher_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/cipher_test.cc.o.d"
  "CMakeFiles/wire_test.dir/wire/compressor_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/compressor_test.cc.o.d"
  "CMakeFiles/wire_test.dir/wire/fuzz_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/fuzz_test.cc.o.d"
  "CMakeFiles/wire_test.dir/wire/message_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/message_test.cc.o.d"
  "CMakeFiles/wire_test.dir/wire/varint_test.cc.o"
  "CMakeFiles/wire_test.dir/wire/varint_test.cc.o.d"
  "wire_test"
  "wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

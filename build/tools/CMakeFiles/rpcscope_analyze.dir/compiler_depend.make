# Empty compiler generated dependencies file for rpcscope_analyze.
# This may be replaced when dependencies are built.

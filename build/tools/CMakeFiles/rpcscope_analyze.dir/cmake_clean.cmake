file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_analyze.dir/rpcscope_analyze.cc.o"
  "CMakeFiles/rpcscope_analyze.dir/rpcscope_analyze.cc.o.d"
  "rpcscope_analyze"
  "rpcscope_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rpcscope_fleetgen.
# This may be replaced when dependencies are built.

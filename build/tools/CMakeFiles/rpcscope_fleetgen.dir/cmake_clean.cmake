file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_fleetgen.dir/rpcscope_fleetgen.cc.o"
  "CMakeFiles/rpcscope_fleetgen.dir/rpcscope_fleetgen.cc.o.d"
  "rpcscope_fleetgen"
  "rpcscope_fleetgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_fleetgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_wire.dir/checksum.cc.o"
  "CMakeFiles/rpcscope_wire.dir/checksum.cc.o.d"
  "CMakeFiles/rpcscope_wire.dir/cipher.cc.o"
  "CMakeFiles/rpcscope_wire.dir/cipher.cc.o.d"
  "CMakeFiles/rpcscope_wire.dir/compressor.cc.o"
  "CMakeFiles/rpcscope_wire.dir/compressor.cc.o.d"
  "CMakeFiles/rpcscope_wire.dir/message.cc.o"
  "CMakeFiles/rpcscope_wire.dir/message.cc.o.d"
  "CMakeFiles/rpcscope_wire.dir/varint.cc.o"
  "CMakeFiles/rpcscope_wire.dir/varint.cc.o.d"
  "librpcscope_wire.a"
  "librpcscope_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

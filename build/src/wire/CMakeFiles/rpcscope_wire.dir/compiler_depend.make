# Empty compiler generated dependencies file for rpcscope_wire.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librpcscope_wire.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/checksum.cc" "src/wire/CMakeFiles/rpcscope_wire.dir/checksum.cc.o" "gcc" "src/wire/CMakeFiles/rpcscope_wire.dir/checksum.cc.o.d"
  "/root/repo/src/wire/cipher.cc" "src/wire/CMakeFiles/rpcscope_wire.dir/cipher.cc.o" "gcc" "src/wire/CMakeFiles/rpcscope_wire.dir/cipher.cc.o.d"
  "/root/repo/src/wire/compressor.cc" "src/wire/CMakeFiles/rpcscope_wire.dir/compressor.cc.o" "gcc" "src/wire/CMakeFiles/rpcscope_wire.dir/compressor.cc.o.d"
  "/root/repo/src/wire/message.cc" "src/wire/CMakeFiles/rpcscope_wire.dir/message.cc.o" "gcc" "src/wire/CMakeFiles/rpcscope_wire.dir/message.cc.o.d"
  "/root/repo/src/wire/varint.cc" "src/wire/CMakeFiles/rpcscope_wire.dir/varint.cc.o" "gcc" "src/wire/CMakeFiles/rpcscope_wire.dir/varint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

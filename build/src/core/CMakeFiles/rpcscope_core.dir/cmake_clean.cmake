file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_core.dir/fleet_analyses.cc.o"
  "CMakeFiles/rpcscope_core.dir/fleet_analyses.cc.o.d"
  "CMakeFiles/rpcscope_core.dir/method_stats.cc.o"
  "CMakeFiles/rpcscope_core.dir/method_stats.cc.o.d"
  "CMakeFiles/rpcscope_core.dir/plot.cc.o"
  "CMakeFiles/rpcscope_core.dir/plot.cc.o.d"
  "CMakeFiles/rpcscope_core.dir/report.cc.o"
  "CMakeFiles/rpcscope_core.dir/report.cc.o.d"
  "CMakeFiles/rpcscope_core.dir/study_analyses.cc.o"
  "CMakeFiles/rpcscope_core.dir/study_analyses.cc.o.d"
  "CMakeFiles/rpcscope_core.dir/tree_analyses.cc.o"
  "CMakeFiles/rpcscope_core.dir/tree_analyses.cc.o.d"
  "librpcscope_core.a"
  "librpcscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

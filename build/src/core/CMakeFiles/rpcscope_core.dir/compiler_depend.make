# Empty compiler generated dependencies file for rpcscope_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librpcscope_core.a"
)

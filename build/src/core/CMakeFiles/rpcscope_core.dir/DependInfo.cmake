
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fleet_analyses.cc" "src/core/CMakeFiles/rpcscope_core.dir/fleet_analyses.cc.o" "gcc" "src/core/CMakeFiles/rpcscope_core.dir/fleet_analyses.cc.o.d"
  "/root/repo/src/core/method_stats.cc" "src/core/CMakeFiles/rpcscope_core.dir/method_stats.cc.o" "gcc" "src/core/CMakeFiles/rpcscope_core.dir/method_stats.cc.o.d"
  "/root/repo/src/core/plot.cc" "src/core/CMakeFiles/rpcscope_core.dir/plot.cc.o" "gcc" "src/core/CMakeFiles/rpcscope_core.dir/plot.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/rpcscope_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/rpcscope_core.dir/report.cc.o.d"
  "/root/repo/src/core/study_analyses.cc" "src/core/CMakeFiles/rpcscope_core.dir/study_analyses.cc.o" "gcc" "src/core/CMakeFiles/rpcscope_core.dir/study_analyses.cc.o.d"
  "/root/repo/src/core/tree_analyses.cc" "src/core/CMakeFiles/rpcscope_core.dir/tree_analyses.cc.o" "gcc" "src/core/CMakeFiles/rpcscope_core.dir/tree_analyses.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/rpcscope_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rpcscope_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rpcscope_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpcscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/rpcscope_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/rpcscope_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librpcscope_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_common.dir/distributions.cc.o"
  "CMakeFiles/rpcscope_common.dir/distributions.cc.o.d"
  "CMakeFiles/rpcscope_common.dir/histogram.cc.o"
  "CMakeFiles/rpcscope_common.dir/histogram.cc.o.d"
  "CMakeFiles/rpcscope_common.dir/logging.cc.o"
  "CMakeFiles/rpcscope_common.dir/logging.cc.o.d"
  "CMakeFiles/rpcscope_common.dir/rng.cc.o"
  "CMakeFiles/rpcscope_common.dir/rng.cc.o.d"
  "CMakeFiles/rpcscope_common.dir/stats.cc.o"
  "CMakeFiles/rpcscope_common.dir/stats.cc.o.d"
  "CMakeFiles/rpcscope_common.dir/status.cc.o"
  "CMakeFiles/rpcscope_common.dir/status.cc.o.d"
  "CMakeFiles/rpcscope_common.dir/table.cc.o"
  "CMakeFiles/rpcscope_common.dir/table.cc.o.d"
  "CMakeFiles/rpcscope_common.dir/time.cc.o"
  "CMakeFiles/rpcscope_common.dir/time.cc.o.d"
  "librpcscope_common.a"
  "librpcscope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

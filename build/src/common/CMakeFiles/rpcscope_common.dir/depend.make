# Empty dependencies file for rpcscope_common.
# This may be replaced when dependencies are built.

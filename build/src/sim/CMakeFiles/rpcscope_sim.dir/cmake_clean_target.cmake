file(REMOVE_RECURSE
  "librpcscope_sim.a"
)

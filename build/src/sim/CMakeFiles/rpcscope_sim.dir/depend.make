# Empty dependencies file for rpcscope_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_sim.dir/server_resource.cc.o"
  "CMakeFiles/rpcscope_sim.dir/server_resource.cc.o.d"
  "CMakeFiles/rpcscope_sim.dir/simulator.cc.o"
  "CMakeFiles/rpcscope_sim.dir/simulator.cc.o.d"
  "librpcscope_sim.a"
  "librpcscope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

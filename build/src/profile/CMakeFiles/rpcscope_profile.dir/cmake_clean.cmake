file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_profile.dir/profile.cc.o"
  "CMakeFiles/rpcscope_profile.dir/profile.cc.o.d"
  "librpcscope_profile.a"
  "librpcscope_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

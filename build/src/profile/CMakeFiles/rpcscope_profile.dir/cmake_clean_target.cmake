file(REMOVE_RECURSE
  "librpcscope_profile.a"
)

# Empty dependencies file for rpcscope_profile.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/call_graph.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/call_graph.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/call_graph.cc.o.d"
  "/root/repo/src/fleet/cluster_state.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/cluster_state.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/cluster_state.cc.o.d"
  "/root/repo/src/fleet/fleet_sampler.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/fleet_sampler.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/fleet_sampler.cc.o.d"
  "/root/repo/src/fleet/growth_model.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/growth_model.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/growth_model.cc.o.d"
  "/root/repo/src/fleet/load_balancer.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/load_balancer.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/load_balancer.cc.o.d"
  "/root/repo/src/fleet/method_catalog.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/method_catalog.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/method_catalog.cc.o.d"
  "/root/repo/src/fleet/mini_fleet.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/mini_fleet.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/mini_fleet.cc.o.d"
  "/root/repo/src/fleet/service_catalog.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/service_catalog.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/service_catalog.cc.o.d"
  "/root/repo/src/fleet/service_study.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/service_study.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/service_study.cc.o.d"
  "/root/repo/src/fleet/workload.cc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/workload.cc.o" "gcc" "src/fleet/CMakeFiles/rpcscope_fleet.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rpcscope_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rpcscope_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/rpcscope_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpcscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/rpcscope_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librpcscope_fleet.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_fleet.dir/call_graph.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/call_graph.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/cluster_state.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/cluster_state.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/fleet_sampler.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/fleet_sampler.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/growth_model.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/growth_model.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/load_balancer.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/load_balancer.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/method_catalog.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/method_catalog.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/mini_fleet.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/mini_fleet.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/service_catalog.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/service_catalog.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/service_study.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/service_study.cc.o.d"
  "CMakeFiles/rpcscope_fleet.dir/workload.cc.o"
  "CMakeFiles/rpcscope_fleet.dir/workload.cc.o.d"
  "librpcscope_fleet.a"
  "librpcscope_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rpcscope_fleet.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/labeled.cc" "src/monitor/CMakeFiles/rpcscope_monitor.dir/labeled.cc.o" "gcc" "src/monitor/CMakeFiles/rpcscope_monitor.dir/labeled.cc.o.d"
  "/root/repo/src/monitor/metrics.cc" "src/monitor/CMakeFiles/rpcscope_monitor.dir/metrics.cc.o" "gcc" "src/monitor/CMakeFiles/rpcscope_monitor.dir/metrics.cc.o.d"
  "/root/repo/src/monitor/windowed.cc" "src/monitor/CMakeFiles/rpcscope_monitor.dir/windowed.cc.o" "gcc" "src/monitor/CMakeFiles/rpcscope_monitor.dir/windowed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_monitor.dir/labeled.cc.o"
  "CMakeFiles/rpcscope_monitor.dir/labeled.cc.o.d"
  "CMakeFiles/rpcscope_monitor.dir/metrics.cc.o"
  "CMakeFiles/rpcscope_monitor.dir/metrics.cc.o.d"
  "CMakeFiles/rpcscope_monitor.dir/windowed.cc.o"
  "CMakeFiles/rpcscope_monitor.dir/windowed.cc.o.d"
  "librpcscope_monitor.a"
  "librpcscope_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

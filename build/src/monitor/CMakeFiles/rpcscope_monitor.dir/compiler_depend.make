# Empty compiler generated dependencies file for rpcscope_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librpcscope_monitor.a"
)

file(REMOVE_RECURSE
  "librpcscope_rpc.a"
)

# Empty dependencies file for rpcscope_rpc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_rpc.dir/channel.cc.o"
  "CMakeFiles/rpcscope_rpc.dir/channel.cc.o.d"
  "CMakeFiles/rpcscope_rpc.dir/client.cc.o"
  "CMakeFiles/rpcscope_rpc.dir/client.cc.o.d"
  "CMakeFiles/rpcscope_rpc.dir/codec.cc.o"
  "CMakeFiles/rpcscope_rpc.dir/codec.cc.o.d"
  "CMakeFiles/rpcscope_rpc.dir/cost_model.cc.o"
  "CMakeFiles/rpcscope_rpc.dir/cost_model.cc.o.d"
  "CMakeFiles/rpcscope_rpc.dir/rpc_system.cc.o"
  "CMakeFiles/rpcscope_rpc.dir/rpc_system.cc.o.d"
  "CMakeFiles/rpcscope_rpc.dir/server.cc.o"
  "CMakeFiles/rpcscope_rpc.dir/server.cc.o.d"
  "librpcscope_rpc.a"
  "librpcscope_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

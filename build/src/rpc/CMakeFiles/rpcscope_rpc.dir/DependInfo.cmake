
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/channel.cc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/channel.cc.o" "gcc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/channel.cc.o.d"
  "/root/repo/src/rpc/client.cc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/client.cc.o" "gcc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/client.cc.o.d"
  "/root/repo/src/rpc/codec.cc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/codec.cc.o" "gcc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/codec.cc.o.d"
  "/root/repo/src/rpc/cost_model.cc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/cost_model.cc.o" "gcc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/cost_model.cc.o.d"
  "/root/repo/src/rpc/rpc_system.cc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/rpc_system.cc.o" "gcc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/rpc_system.cc.o.d"
  "/root/repo/src/rpc/server.cc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/server.cc.o" "gcc" "src/rpc/CMakeFiles/rpcscope_rpc.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpcscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/rpcscope_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librpcscope_trace.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/collector.cc" "src/trace/CMakeFiles/rpcscope_trace.dir/collector.cc.o" "gcc" "src/trace/CMakeFiles/rpcscope_trace.dir/collector.cc.o.d"
  "/root/repo/src/trace/span.cc" "src/trace/CMakeFiles/rpcscope_trace.dir/span.cc.o" "gcc" "src/trace/CMakeFiles/rpcscope_trace.dir/span.cc.o.d"
  "/root/repo/src/trace/storage.cc" "src/trace/CMakeFiles/rpcscope_trace.dir/storage.cc.o" "gcc" "src/trace/CMakeFiles/rpcscope_trace.dir/storage.cc.o.d"
  "/root/repo/src/trace/tree.cc" "src/trace/CMakeFiles/rpcscope_trace.dir/tree.cc.o" "gcc" "src/trace/CMakeFiles/rpcscope_trace.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rpcscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpcscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/rpcscope_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpcscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_trace.dir/collector.cc.o"
  "CMakeFiles/rpcscope_trace.dir/collector.cc.o.d"
  "CMakeFiles/rpcscope_trace.dir/span.cc.o"
  "CMakeFiles/rpcscope_trace.dir/span.cc.o.d"
  "CMakeFiles/rpcscope_trace.dir/storage.cc.o"
  "CMakeFiles/rpcscope_trace.dir/storage.cc.o.d"
  "CMakeFiles/rpcscope_trace.dir/tree.cc.o"
  "CMakeFiles/rpcscope_trace.dir/tree.cc.o.d"
  "librpcscope_trace.a"
  "librpcscope_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

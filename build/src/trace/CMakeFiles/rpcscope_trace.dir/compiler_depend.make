# Empty compiler generated dependencies file for rpcscope_trace.
# This may be replaced when dependencies are built.

# Empty dependencies file for rpcscope_net.
# This may be replaced when dependencies are built.

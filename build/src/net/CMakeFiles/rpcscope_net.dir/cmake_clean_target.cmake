file(REMOVE_RECURSE
  "librpcscope_net.a"
)

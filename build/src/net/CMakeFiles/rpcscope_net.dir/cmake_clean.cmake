file(REMOVE_RECURSE
  "CMakeFiles/rpcscope_net.dir/fabric.cc.o"
  "CMakeFiles/rpcscope_net.dir/fabric.cc.o.d"
  "CMakeFiles/rpcscope_net.dir/topology.cc.o"
  "CMakeFiles/rpcscope_net.dir/topology.cc.o.d"
  "librpcscope_net.a"
  "librpcscope_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcscope_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Regenerates Fig. 7: per-method response/request size ratio.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = StratifiedScan(ctx, 300);
  return RunFigureMain(argc, argv, AnalyzeSizeRatio(scan.agg));
}

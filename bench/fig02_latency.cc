// Regenerates Fig. 2: per-method RPC completion time heatmap and tail CDF.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = StratifiedScan(ctx, 300);
  return RunFigureMain(argc, argv, AnalyzeLatency(scan.agg));
}

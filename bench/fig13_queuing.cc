// Regenerates Fig. 13: per-method queueing latency.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = StratifiedScan(ctx, 300);
  return RunFigureMain(argc, argv, AnalyzeQueueing(scan.agg));
}

// Regenerates Fig. 21: per-method normalized CPU cycles.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = StratifiedScan(ctx, 300);
  return RunFigureMain(argc, argv, AnalyzeMethodCycles(scan.agg));
}

// Regenerates Fig. 1: normalized RPS per CPU cycle over 700 days.
#include "src/core/analyses.h"
#include "src/fleet/growth_model.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  GrowthModelOptions opts;
  MetricRegistry registry(
      MetricRegistry::Options{.sample_window = Minutes(30), .retention = Days(701)});
  GrowthModel model(opts);
  model.GenerateInto(registry);
  return RunFigureMain(argc, argv, AnalyzeGrowth(registry, opts.days));
}

// Ablation: the request-hedging trade-off (§4.4 / §5.1).
//
// The paper attributes most Cancelled errors — 45% of all errors and 55% of
// wasted cycles — to hedging as a deliberate tail-latency strategy, and asks
// whether the overhead is worth it. This ablation answers quantitatively:
// sweep the hedge trigger delay on the KV-Store study and report P99 latency
// against cancellation rate and wasted cycles.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  ServiceStudyConfig base = MakeStudyConfig(ctx.services, ctx.services.studied().kv_store);
  base.duration = Seconds(4);

  FigureReport report;
  report.id = "ablation_hedging";
  report.title = "Ablation: hedge delay vs tail latency vs wasted work";

  TextTable t({"hedge trigger", "P50", "P99", "P99.9", "cancelled spans", "wasted cycles/call"});
  const double multipliers[] = {0, 4, 8, 16, 32};  // x app median; 0 = no hedging.
  for (double mult : multipliers) {
    ServiceStudyConfig config = base;
    config.hedged = mult > 0;
    config.hedge_delay_multiplier = mult;
    const ServiceStudyResult result = RunServiceStudy(config, {});
    std::vector<double> totals;
    int64_t cancelled = 0;
    for (const Span& s : result.spans) {
      if (s.status == StatusCode::kOk) {
        totals.push_back(ToMicros(s.latency.Total()));
      } else if (s.status == StatusCode::kCancelled) {
        ++cancelled;
      }
    }
    t.AddRow({mult > 0 ? FormatDouble(mult, 0) + "x median" : "off",
              FormatDuration(DurationFromMicros(ExactQuantile(totals, 0.5))),
              FormatDuration(DurationFromMicros(ExactQuantile(totals, 0.99))),
              FormatDuration(DurationFromMicros(ExactQuantile(totals, 0.999))),
              FormatCount(static_cast<double>(cancelled)),
              FormatCount(result.wasted_cycles /
                          std::max<double>(1.0, static_cast<double>(result.calls_issued)))});
  }
  report.tables.push_back(t);
  report.notes.push_back("Hedging has a sweet spot: over-aggressive triggers (4-8x the median) "
                         "re-issue so many requests that the added load collapses the very tail "
                         "they target, while a ~16x trigger trims P99.9 for a tiny cancellation "
                         "budget. Either way cancellations carry an outsized share of wasted "
                         "cycles — the paper's Fig. 23 finding, made mechanistic.");
  return RunFigureMain(argc, argv, report);
}

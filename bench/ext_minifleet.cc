// Extension: the Table-1 service graph running as one system.
//
// Instead of studying each service in isolation (Fig. 14), deploy the
// studied services with their actual client->server edges (Table 1) and
// measure end-to-end: per-service latency within the composed fleet, the
// fraction of time each root spends below it, and the shape of the real
// nested traces this produces.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/fleet/mini_fleet.h"
#include "src/trace/tree.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const ServiceCatalog catalog = ServiceCatalog::BuildDefault();
  MiniFleetOptions options;
  options.duration = Seconds(5);
  const MiniFleetResult result = RunMiniFleet(catalog, options);

  FigureReport report;
  report.id = "ext_minifleet";
  report.title = "Extension: the Table-1 service graph, composed and live";

  // Per-service latency within the composed system.
  std::map<int32_t, std::vector<double>> per_service_ms;
  for (const Span& s : result.spans) {
    if (s.status == StatusCode::kOk) {
      per_service_ms[s.service_id].push_back(ToMillis(s.latency.Total()));
    }
  }
  TextTable t({"service", "spans", "median RCT", "P95 RCT", "app share"});
  for (auto& [service_id, totals] : per_service_ms) {
    std::sort(totals.begin(), totals.end());
    double app = 0, total = 0;
    for (const Span& s : result.spans) {
      if (s.service_id == service_id && s.status == StatusCode::kOk) {
        app += static_cast<double>(s.latency[RpcComponent::kServerApp]);
        total += static_cast<double>(s.latency.Total());
      }
    }
    t.AddRow({catalog.service(service_id).name, FormatCount(static_cast<double>(totals.size())),
              FormatDouble(SortedQuantile(totals, 0.5), 2) + "ms",
              FormatDouble(SortedQuantile(totals, 0.95), 2) + "ms",
              FormatPercent(total > 0 ? app / total : 0)});
  }
  report.tables.push_back(t);

  // Trace shapes produced by the composed graph.
  TraceForest forest(result.spans);
  std::vector<double> depths, sizes;
  for (const TraceShape& shape : forest.trace_shapes()) {
    depths.push_back(static_cast<double>(shape.max_depth));
    sizes.push_back(static_cast<double>(shape.total_spans));
  }
  TextTable shapes({"trace metric", "median", "P99"});
  shapes.AddRow({"spans per trace", FormatDouble(ExactQuantile(sizes, 0.5), 1),
                 FormatDouble(ExactQuantile(sizes, 0.99), 1)});
  shapes.AddRow({"depth", FormatDouble(ExactQuantile(depths, 0.5), 1),
                 FormatDouble(ExactQuantile(depths, 0.99), 1)});
  report.tables.push_back(shapes);
  report.notes.push_back("Nested time is counted inside the parent's application component "
                         "(the paper's measurement convention): storage substrates look "
                         "app-light while their callers' 'application' time is mostly waiting "
                         "on them.");
  return RunFigureMain(argc, argv, report);
}

// Shared setup for the figure-reproduction binaries.
//
// Two scan modes over the fleet model:
//  - WeightedScan: popularity-weighted samples, for invocation-weighted
//    figures (3, 8, 10, 20, 23).
//  - StratifiedScan: a fixed number of samples per method, for per-method
//    distribution figures (2, 6, 7, 11, 12, 13, 21) — the paper similarly
//    requires >= 100 samples per method for well-defined tail quantiles.
#ifndef RPCSCOPE_BENCH_BENCH_UTIL_H_
#define RPCSCOPE_BENCH_BENCH_UTIL_H_

#include <cstdint>

#include "src/core/analyses.h"
#include "src/fleet/fleet_sampler.h"
#include "src/fleet/method_catalog.h"
#include "src/fleet/service_catalog.h"
#include "src/net/topology.h"
#include "src/rpc/cost_model.h"

namespace rpcscope {

struct FleetContext {
  ServiceCatalog services;
  MethodCatalog methods;
  Topology topology;
  CycleCostModel costs;

  FleetContext()
      : services(ServiceCatalog::BuildDefault()),
        methods(MethodCatalog::Generate(services, {})),
        topology(TopologyOptions{}) {}

  FleetSampler MakeSampler(uint64_t seed = 7) const {
    FleetSamplerOptions opts;
    opts.seed = seed;
    return FleetSampler(&services, &methods, &topology, &costs, opts);
  }
};

inline FleetScan WeightedScan(const FleetContext& ctx, int64_t n, uint64_t seed = 7) {
  FleetScan scan(ctx.methods.size());
  FleetSampler sampler = ctx.MakeSampler(seed);
  for (int64_t i = 0; i < n; ++i) {
    scan.Add(sampler.Sample());
  }
  return scan;
}

inline FleetScan StratifiedScan(const FleetContext& ctx, int per_method, uint64_t seed = 7) {
  FleetScan scan(ctx.methods.size());
  FleetSampler sampler = ctx.MakeSampler(seed);
  for (int32_t m = 0; m < ctx.methods.size(); ++m) {
    for (int i = 0; i < per_method; ++i) {
      scan.Add(sampler.SampleMethod(m));
    }
  }
  return scan;
}

}  // namespace rpcscope

#endif  // RPCSCOPE_BENCH_BENCH_UTIL_H_

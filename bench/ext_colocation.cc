// Extension (§5.2 "Improved scheduling and placement"): the paper proposes
// that a cluster manager co-locating the RPCs of one call tree could
// significantly cut latency. This experiment builds a 3-level tree
// (frontend -> aggregator -> 4 leaves) and places the lower tiers same-cluster,
// same-metro, or same-continent relative to the aggregator.
#include <cmath>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace rpcscope {
namespace {

constexpr MethodId kAggregate = 1;
constexpr MethodId kLeaf = 2;

double RunTree(ClusterId leaf_cluster, const char** label_out, const Topology& probe) {
  static const char* kLabels[] = {"same cluster", "same metro", "same continent"};
  *label_out = leaf_cluster == 0   ? kLabels[0]
               : probe.ClusterDistance(0, leaf_cluster) == DistanceClass::kSameMetro
                   ? kLabels[1]
                   : kLabels[2];

  RpcSystemOptions sys_opts;
  sys_opts.fabric.congestion_probability = 0;
  sys_opts.seed = 1234;
  RpcSystem system(sys_opts);
  const Topology& topo = system.topology();

  // Leaves.
  std::vector<MachineId> leaf_machines;
  std::vector<std::unique_ptr<Server>> leaves;
  auto rng = std::make_shared<Rng>(5);
  for (int i = 0; i < 4; ++i) {
    const MachineId m = topo.MachineAt(leaf_cluster, 10 + i);
    leaf_machines.push_back(m);
    auto server = std::make_unique<Server>(&system, m, ServerOptions{});
    server->RegisterMethod(kLeaf, "Leaf", [rng](std::shared_ptr<ServerCall> call) {
      call->Compute(DurationFromMicros(rng->NextLognormal(std::log(150.0), 0.4)), [call]() {
        call->Finish(Status::Ok(), Payload::Modeled(2048));
      });
    });
    leaves.push_back(std::move(server));
  }

  // Aggregator: fans out to all 4 leaves, answers when all return.
  const MachineId agg_machine = topo.MachineAt(0, 0);
  Server aggregator(&system, agg_machine, ServerOptions{});
  auto agg_client = std::make_shared<Client>(&system, agg_machine);
  aggregator.RegisterMethod(
      kAggregate, "Aggregate", [&, agg_client](std::shared_ptr<ServerCall> call) {
        auto pending = std::make_shared<int>(4);
        for (const MachineId leaf : leaf_machines) {
          CallOptions child;
          child.trace_id = call->trace_id();
          child.parent_span_id = call->span_id();
          agg_client->Call(leaf, kLeaf, Payload::Modeled(512), child,
                           [call, pending](const CallResult&, Payload) {
                             if (--*pending == 0) {
                               call->Finish(Status::Ok(), Payload::Modeled(4096));
                             }
                           });
        }
      });

  Client frontend(&system, topo.MachineAt(0, 30));
  std::vector<double> totals;
  // Trees are issued well apart: this measures placement, not queueing.
  for (int i = 0; i < 500; ++i) {
    system.sim().Schedule(Millis(80) * i, [&]() {
      frontend.Call(agg_machine, kAggregate, Payload::Modeled(512), {},
                    [&](const CallResult& result, Payload) {
                      if (result.status.ok()) {
                        totals.push_back(ToMillis(result.latency.Total()));
                      }
                    });
    });
  }
  system.sim().Run();
  return ExactQuantile(totals, 0.5);
}

}  // namespace
}  // namespace rpcscope

int main(int argc, char** argv) {
  using namespace rpcscope;
  const Topology probe{TopologyOptions{}};
  // Cluster 0's metro spans clusters 0..5; cluster 6 is another metro of the
  // same continent in the default topology.
  const ClusterId placements[] = {0, 3, 8};

  FigureReport report;
  report.id = "ext_colocation";
  report.title = "Extension: co-locating an RPC tree (frontend->aggregator->4 leaves)";
  TextTable t({"leaf placement", "median tree latency", "slowdown vs co-located"});
  double base = 0;
  for (ClusterId placement : placements) {
    const char* label = nullptr;
    const double median = RunTree(placement, &label, probe);
    if (base == 0) {
      base = median;
    }
    t.AddRow({label, FormatDouble(median, 2) + "ms", FormatDouble(median / base, 1) + "x"});
  }
  report.tables.push_back(t);
  report.notes.push_back("Every fan-out level pays the placement RTT at least once; a tree "
                         "whose leaves sit one metro away is several times slower than the "
                         "co-located tree — quantifying the paper's case for tree-aware "
                         "placement in the cluster manager.");
  return RunFigureMain(argc, argv, report);
}

// Regenerates Fig. 16: P95 latency breakdown of each studied service across
// clusters — same workload and platform, different exogenous cluster state.
#include "bench/bench_util.h"
#include "src/fleet/cluster_state.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const ClusterStateModel state_model({});
  // Cluster counts per service follow the paper's x-axes (5-44 clusters).
  const std::vector<int> cluster_counts = {22, 26, 44, 22, 5, 44, 14, 16};

  std::vector<std::pair<std::string, std::vector<ClusterRunSpans>>> per_service;
  const auto configs = MakeAllStudyConfigs(ctx.services);
  for (size_t i = 0; i < configs.size(); ++i) {
    ServiceStudyConfig config = configs[i];
    config.duration = Seconds(2);
    std::vector<ClusterRunSpans> runs;
    const int n_clusters = std::min(cluster_counts[i], ctx.topology.num_clusters());
    for (int c = 0; c < n_clusters; ++c) {
      const ExogenousState state =
          state_model.StateAt(static_cast<ClusterId>(c), Hours(12));
      ServiceStudyRun run;
      run.server_cluster = static_cast<ClusterId>(c);
      run.app_slowdown = ClusterStateModel::AppSlowdown(state);
      run.wakeup_latency = ClusterStateModel::WakeupLatency(state);
      run.seed_salt = static_cast<uint64_t>(c);
      ServiceStudyResult result = RunServiceStudy(config, run);
      runs.push_back({c, state.cpu_util, std::move(result.spans)});
    }
    per_service.emplace_back(config.service_name, std::move(runs));
  }
  return RunFigureMain(argc, argv, AnalyzeClusterVariation(per_service));
}

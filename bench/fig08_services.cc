// Regenerates Fig. 8: fraction of top services by calls, bytes, and cycles.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = WeightedScan(ctx, 3000000);
  return RunFigureMain(argc, argv, AnalyzeServiceMix(scan.agg, scan.profile, ctx.services));
}

// Regenerates Fig. 4: per-method descendant counts of nested call trees.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  CallGraphModel model(&ctx.methods, {});
  const TreeShapeStats stats = CollectTreeShapes(model, 12000);
  return RunFigureMain(argc, argv, AnalyzeDescendants(stats));
}

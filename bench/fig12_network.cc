// Regenerates Fig. 12: per-method network wire + proc/stack latency.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = StratifiedScan(ctx, 300);
  return RunFigureMain(argc, argv, AnalyzeWireStack(scan.agg));
}

// Regenerates Table 1: the eight studied services.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  return RunFigureMain(argc, argv, MakeTable1(ctx.services));
}

// Regenerates Fig. 23: RPC error taxonomy by count and wasted cycles.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = WeightedScan(ctx, 3000000);
  return RunFigureMain(argc, argv,
                       AnalyzeErrors(scan.error_counts, scan.error_cycles, scan.total_calls));
}

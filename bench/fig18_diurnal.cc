// Regenerates Fig. 18: 24-hour co-movement of Bigtable tail latency with the
// exogenous variables, in a representative fast and slow cluster.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/fleet/cluster_state.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const ClusterStateModel state_model({});
  ServiceStudyConfig config = MakeStudyConfig(ctx.services, ctx.services.studied().bigtable);
  config.duration = Seconds(1);
  config.warmup = Millis(200);

  // Pick a fast and a slow cluster by midday CPU utilization.
  ClusterId fast = 0, slow = 0;
  double best_util = 1.0, worst_util = 0.0;
  for (ClusterId c = 0; c < ctx.topology.num_clusters(); ++c) {
    const double util = state_model.StateAt(c, Hours(12)).cpu_util;
    if (util < best_util) {
      best_util = util;
      fast = c;
    }
    if (util > worst_util) {
      worst_util = util;
      slow = c;
    }
  }

  std::vector<std::pair<std::string, std::vector<DiurnalWindow>>> clusters;
  for (const auto& [name, cluster] :
       std::vector<std::pair<std::string, ClusterId>>{{"fast cluster", fast},
                                                      {"slow cluster", slow}}) {
    std::vector<DiurnalWindow> windows;
    for (int half_hour = 0; half_hour < 48; ++half_hour) {
      const SimTime t = Minutes(30 * half_hour);
      const ExogenousState state = state_model.StateAt(cluster, t);
      ServiceStudyRun run;
      run.server_cluster = cluster;
      run.app_slowdown = ClusterStateModel::AppSlowdown(state);
      run.wakeup_latency = ClusterStateModel::WakeupLatency(state);
      run.seed_salt = static_cast<uint64_t>(half_hour) * 31 + static_cast<uint64_t>(cluster);
      ServiceStudyResult result = RunServiceStudy(config, run);
      std::vector<double> totals;
      for (const Span& s : result.spans) {
        if (s.status == StatusCode::kOk) {
          totals.push_back(ToMillis(s.latency.Total()));
        }
      }
      DiurnalWindow w;
      w.hour = half_hour / 2.0;
      w.p95_latency_ms = ExactQuantile(totals, 0.95);
      w.state = state;
      windows.push_back(w);
    }
    clusters.emplace_back(name, std::move(windows));
  }
  return RunFigureMain(argc, argv, AnalyzeDiurnal(clusters));
}

// Regenerates Fig. 22: CPU usage distribution across clusters vs across
// machines within clusters, per studied service.
#include "bench/bench_util.h"
#include "src/fleet/load_balancer.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const StudiedServices& ids = ctx.services.studied();

  std::vector<std::pair<std::string, LoadBalanceResult>> results;
  const auto configs = MakeAllStudyConfigs(ctx.services);
  for (const ServiceStudyConfig& config : configs) {
    LoadBalanceStudyOptions opts;
    opts.seed = 4242 + static_cast<uint64_t>(config.service_id);
    // Spanner, F1, and ML Inference route by data affinity (§4.3).
    opts.data_dependent = config.service_id == ids.spanner || config.service_id == ids.f1 ||
                          config.service_id == ids.ml_inference;
    LoadBalanceStudy study(&ctx.topology, opts);
    results.emplace_back(config.service_name, study.Run());
  }
  return RunFigureMain(argc, argv, AnalyzeLoadBalance(results));
}

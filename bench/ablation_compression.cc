// Ablation: compression offload (§5.3, "Optimizing common operations").
//
// Compression is the single largest RPC cycle-tax component (3.1% of ALL
// fleet cycles, Fig. 20b), which is why the paper points accelerators at it
// rather than at the RPC library (1.1%). This ablation recomputes the fleet
// cycle tax under three hardware scenarios: baseline software stack,
// compression fully offloaded, and RPC-library offload (the SmartNIC/xPU idea
// the paper argues is lower-value).
#include "bench/bench_util.h"

namespace rpcscope {
namespace {

double TaxWith(const FleetContext& ctx, bool drop_compression, bool drop_rpclib,
               std::array<double, kNumTaxCategories>* fractions) {
  FleetSampler sampler = ctx.MakeSampler(7);
  ProfileCollector profile;
  for (int64_t i = 0; i < 800000; ++i) {
    SampledRpc rpc = sampler.Sample();
    if (drop_compression) {
      rpc.cycles[CycleCategory::kCompression] = 0;
    }
    if (drop_rpclib) {
      rpc.cycles[CycleCategory::kRpcLibrary] = 0;
    }
    profile.AddRpcSample(rpc.span.method_id, rpc.span.service_id, rpc.cycles,
                         rpc.machine_speed, rpc.span.status);
  }
  if (fractions != nullptr) {
    *fractions = profile.TaxCategoryFractions();
  }
  return profile.TaxFraction();
}

}  // namespace
}  // namespace rpcscope

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  std::array<double, kNumTaxCategories> base_fractions{};
  const double base = TaxWith(ctx, false, false, &base_fractions);
  const double no_compression = TaxWith(ctx, true, false, nullptr);
  const double no_rpclib = TaxWith(ctx, false, true, nullptr);

  FigureReport report;
  report.id = "ablation_compression";
  report.title = "Ablation: which stack component is worth an accelerator?";
  TextTable t({"scenario", "fleet cycle tax", "tax cycles saved"});
  t.AddRow({"software baseline", FormatPercent(base, 2), "-"});
  t.AddRow({"compression offloaded (Chiosa-style accelerator)",
            FormatPercent(no_compression, 2),
            FormatPercent((base - no_compression) / base, 1) + " of the tax"});
  t.AddRow({"RPC library offloaded (SmartNIC/xPU)", FormatPercent(no_rpclib, 2),
            FormatPercent((base - no_rpclib) / base, 1) + " of the tax"});
  report.tables.push_back(t);
  report.notes.push_back(
      "Compression offload removes ~" +
      FormatPercent(base_fractions[static_cast<size_t>(CycleCategory::kCompression)], 2) +
      " of all fleet cycles vs ~" +
      FormatPercent(base_fractions[static_cast<size_t>(CycleCategory::kRpcLibrary)], 2) +
      " for an RPC-library offload — the paper's conclusion that accelerating the RPC "
      "library alone 'may not provide the highest value' (§5.3), made quantitative.");
  return RunFigureMain(argc, argv, report);
}

// Regenerates Fig. 17: exogenous variables (CPU util, memory BW, long-wakeup
// rate, CPI) vs P95 latency breakdown, for one service per category.
#include "bench/bench_util.h"
#include "src/fleet/cluster_state.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const ClusterStateModel state_model({});
  const StudiedServices& ids = ctx.services.studied();

  FigureReport combined;
  combined.id = "fig17";
  combined.title = "Exogenous variables vs latency components (Fig. 17)";

  // One service per category, as in the paper: Bigtable (app-heavy),
  // KV-Store (stack-heavy), Video Metadata (queue-heavy).
  for (int32_t service : {ids.bigtable, ids.kv_store, ids.video_metadata}) {
    ServiceStudyConfig config = MakeStudyConfig(ctx.services, service);
    config.duration = Seconds(2);

    // Sweep cluster state by sampling many (cluster, time) pairs; each run is
    // summarized once, then bucketed by each of the four variables.
    struct RunRecord {
      ExogenousState state;
      ExogenousBucket summary;
    };
    std::vector<RunRecord> records;
    for (int c = 0; c < 16; ++c) {
      const ExogenousState state =
          state_model.StateAt(static_cast<ClusterId>(c * 3), Hours((c * 7) % 24));
      ServiceStudyRun run;
      run.server_cluster = 0;
      run.app_slowdown = ClusterStateModel::AppSlowdown(state);
      run.wakeup_latency = ClusterStateModel::WakeupLatency(state);
      run.seed_salt = static_cast<uint64_t>(c) + 100;
      ServiceStudyResult result = RunServiceStudy(config, run);
      records.push_back({state, SummarizeRun(0, result.spans)});
    }

    std::vector<std::pair<std::string, std::vector<ExogenousBucket>>> sweeps;
    auto sweep = [&](const std::string& name, auto extract) {
      std::vector<ExogenousBucket> buckets;
      for (const RunRecord& r : records) {
        ExogenousBucket b = r.summary;
        b.variable_value = extract(r.state);
        buckets.push_back(b);
      }
      std::sort(buckets.begin(), buckets.end(),
                [](const ExogenousBucket& a, const ExogenousBucket& b) {
                  return a.variable_value < b.variable_value;
                });
      sweeps.emplace_back(config.service_name + ": " + name, std::move(buckets));
    };
    sweep("CPU util", [](const ExogenousState& s) { return s.cpu_util; });
    sweep("memory BW (GB/s)", [](const ExogenousState& s) { return s.memory_bw_gbps; });
    sweep("long-wakeup rate", [](const ExogenousState& s) { return s.long_wakeup_rate; });
    sweep("cycles/instr", [](const ExogenousState& s) { return s.cycles_per_instr; });

    FigureReport part = AnalyzeExogenousSweep(sweeps);
    for (TextTable& t : part.tables) {
      combined.tables.push_back(std::move(t));
    }
  }
  combined.notes.push_back("Each service category responds to server-state variables; higher "
                           "utilization, wake-up rates, and CPI inflate tail latency.");
  return RunFigureMain(argc, argv, combined);
}

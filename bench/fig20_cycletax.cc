// Regenerates Fig. 20: the RPC cycle tax and its breakdown.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = WeightedScan(ctx, 2000000);
  return RunFigureMain(argc, argv, AnalyzeCycleTax(scan.profile));
}

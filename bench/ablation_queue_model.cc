// Ablation: queueing-tail shape (DESIGN.md's body+episode mixture).
//
// The paper's Fig. 10 (queueing is 0.43% of invocation-weighted completion
// time) and Fig. 13 (per-method P99 queueing ~300x the median) are only
// mutually satisfiable if queueing has a modest body plus rare congestion
// episodes. This ablation replaces the mixture with a single lognormal whose
// median and P99 match the mixture's, and shows the invocation-weighted
// queueing share exploding while the per-method quantiles stay put.
#include <cmath>

#include "bench/bench_util.h"
#include "src/common/stats.h"

namespace rpcscope {
namespace {

struct QueueModelResult {
  double median_method_median_us;
  double median_method_p99_us;
  double aggregate_queue_share;
};

QueueModelResult Measure(const FleetContext& ctx, bool pure_lognormal) {
  FleetSampler sampler = ctx.MakeSampler(123);
  MethodAggregator agg(ctx.methods.size());
  Rng rng(77);
  double queue_sum = 0, total_sum = 0;
  // Stratified pass for per-method quantiles + weighted pass for aggregates.
  for (int32_t m = 0; m < ctx.methods.size(); m += 7) {
    for (int i = 0; i < 120; ++i) {
      SampledRpc rpc = sampler.SampleMethod(m);
      if (pure_lognormal) {
        // Re-draw queueing from a single lognormal matched to the mixture's
        // median and P99 for this method.
        const MethodModel& model = ctx.methods.method(m);
        const double p99_ratio = model.queue_tail_ratio * 0.68;  // Mixture P99 ~ this.
        const double sigma = std::log(std::max(p99_ratio, 2.0)) / 2.326;
        const double q_us = rng.NextLognormal(std::log(model.queue_median_us), sigma);
        const double old_q = ToMicros(rpc.span.latency.QueueTotal());
        if (old_q > 0) {
          for (RpcComponent c : {RpcComponent::kClientSendQueue, RpcComponent::kServerRecvQueue,
                                 RpcComponent::kServerSendQueue, RpcComponent::kClientRecvQueue}) {
            rpc.span.latency[c] = static_cast<SimDuration>(
                static_cast<double>(rpc.span.latency[c]) * (q_us / old_q));
          }
        }
      }
      agg.Add(rpc.span);
      if (rpc.span.status == StatusCode::kOk) {
        queue_sum += ToMicros(rpc.span.latency.QueueTotal());
        total_sum += ToMicros(rpc.span.latency.Total());
      }
    }
  }
  QueueModelResult out;
  const auto medians =
      agg.CollectSorted(100, [](const MethodAccum& m) { return m.queue.Quantile(0.5); });
  const auto p99s =
      agg.CollectSorted(100, [](const MethodAccum& m) { return m.queue.Quantile(0.99); });
  out.median_method_median_us = SortedQuantile(medians, 0.5);
  out.median_method_p99_us = SortedQuantile(p99s, 0.5);
  out.aggregate_queue_share = queue_sum / total_sum;
  return out;
}

}  // namespace
}  // namespace rpcscope

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const QueueModelResult mixture = Measure(ctx, false);
  const QueueModelResult lognormal = Measure(ctx, true);

  FigureReport report;
  report.id = "ablation_queue_model";
  report.title = "Ablation: queueing as body+episode mixture vs single lognormal";
  TextTable t({"model", "median-method median", "median-method P99", "aggregate queue share"});
  t.AddRow({"mixture (ours)",
            FormatDuration(DurationFromMicros(mixture.median_method_median_us)),
            FormatDuration(DurationFromMicros(mixture.median_method_p99_us)),
            FormatPercent(mixture.aggregate_queue_share, 2)});
  t.AddRow({"single lognormal (matched median+P99)",
            FormatDuration(DurationFromMicros(lognormal.median_method_median_us)),
            FormatDuration(DurationFromMicros(lognormal.median_method_p99_us)),
            FormatPercent(lognormal.aggregate_queue_share, 2)});
  report.tables.push_back(t);
  report.notes.push_back("Holding the Fig. 13 per-method quantiles fixed, a single lognormal "
                         "inflates the invocation-weighted queueing share severalfold: its mean "
                         "is tail-dominated. Rare-episode congestion is the only shape "
                         "consistent with Fig. 10's 0.43% queueing share.");
  return RunFigureMain(argc, argv, report);
}

// Regenerates Fig. 6: per-method request/response sizes.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = StratifiedScan(ctx, 300);
  return RunFigureMain(argc, argv, AnalyzeSizes(scan.agg));
}

// Regenerates Fig. 11: per-method ratio of RPC latency tax to RCT.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = StratifiedScan(ctx, 300);
  return RunFigureMain(argc, argv, AnalyzeTaxRatio(scan.agg));
}

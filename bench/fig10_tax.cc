// Regenerates Fig. 10: fleet-wide RPC latency tax, mean and P95 tail.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  return RunFigureMain(
      argc, argv,
      AnalyzeTaxOverview([&ctx]() { return ctx.MakeSampler(7); }, 2000000));
}

// Extension (§5.2 "Improved scheduling"): the paper argues queueing is a
// major tail contributor and motivates schedulers that isolate short from
// long requests (Shinjuku/Caladan). This experiment runs a bimodal workload —
// 90% short lookups, 10% heavy scans through the same server — under FIFO vs
// size-based two-class scheduling, and reports the short-RPC tail.
#include <cmath>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace rpcscope {
namespace {

constexpr MethodId kLookup = 1;
constexpr MethodId kScan = 2;

struct RunStats {
  double short_p50_us = 0;
  double short_p99_us = 0;
  double scan_p99_us = 0;
  int completed = 0;
};

RunStats RunWorkload(bool size_priority) {
  RpcSystemOptions sys_opts;
  sys_opts.fabric.congestion_probability = 0;
  sys_opts.seed = 404;
  RpcSystem system(sys_opts);

  ServerOptions server_opts;
  server_opts.app_workers = 4;
  if (size_priority) {
    // Classify by request size: heavy scans carry a large request payload.
    server_opts.request_priority = [](const IncomingRequest& req) {
      return req.request_frame.payload_bytes > 4096 ? 1 : 0;
    };
  }
  Server server(&system, system.topology().MachineAt(0, 0), server_opts);
  auto rng = std::make_shared<Rng>(11);
  server.RegisterMethod(kLookup, "Lookup", [rng](std::shared_ptr<ServerCall> call) {
    call->Compute(DurationFromMicros(rng->NextLognormal(std::log(80.0), 0.4)), [call]() {
      call->Finish(Status::Ok(), Payload::Modeled(256));
    });
  });
  server.RegisterMethod(kScan, "Scan", [rng](std::shared_ptr<ServerCall> call) {
    call->Compute(DurationFromMicros(rng->NextLognormal(std::log(2500.0), 0.5)), [call]() {
      call->Finish(Status::Ok(), Payload::Modeled(64 * 1024));
    });
  });

  Client client(&system, system.topology().MachineAt(0, 8));
  std::vector<double> short_lat, scan_lat;
  RunStats stats;
  Rng arrivals(21);
  SimTime t = 0;
  for (int i = 0; i < 40000; ++i) {
    t += DurationFromMicros(arrivals.NextExponential(90.0));  // ~0.88 utilization.
    const bool is_scan = arrivals.NextBool(0.10);
    system.sim().ScheduleAt(t, [&, is_scan]() {
      client.Call(server.machine(), is_scan ? kScan : kLookup,
                  Payload::Modeled(is_scan ? 16 * 1024 : 200), {},
                  [&, is_scan](const CallResult& result, Payload) {
                    ++stats.completed;
                    (is_scan ? scan_lat : short_lat)
                        .push_back(ToMicros(result.latency.Total()));
                  });
    });
  }
  system.sim().Run();
  stats.short_p50_us = ExactQuantile(short_lat, 0.5);
  stats.short_p99_us = ExactQuantile(short_lat, 0.99);
  stats.scan_p99_us = ExactQuantile(scan_lat, 0.99);
  return stats;
}

}  // namespace
}  // namespace rpcscope

int main(int argc, char** argv) {
  using namespace rpcscope;
  const RunStats fifo = RunWorkload(false);
  const RunStats prio = RunWorkload(true);

  FigureReport report;
  report.id = "ext_scheduling";
  report.title = "Extension: size-aware two-class scheduling vs FIFO (the paper's §5.2)";
  TextTable t({"scheduler", "short P50", "short P99", "scan P99", "RPCs"});
  t.AddRow({"FIFO", FormatDuration(DurationFromMicros(fifo.short_p50_us)),
            FormatDuration(DurationFromMicros(fifo.short_p99_us)),
            FormatDuration(DurationFromMicros(fifo.scan_p99_us)),
            FormatCount(fifo.completed)});
  t.AddRow({"short-first (size-classified)",
            FormatDuration(DurationFromMicros(prio.short_p50_us)),
            FormatDuration(DurationFromMicros(prio.short_p99_us)),
            FormatDuration(DurationFromMicros(prio.scan_p99_us)),
            FormatCount(prio.completed)});
  report.tables.push_back(t);
  report.notes.push_back(
      "Short-RPC P99 improves " + FormatDouble(fifo.short_p99_us / prio.short_p99_us, 1) +
      "x by classifying on request size alone — evidence for the paper's claim that better "
      "scheduling (not a faster stack) attacks the HOL-blocking share of tail queueing. The "
      "scans pay a bounded penalty.");
  return RunFigureMain(argc, argv, report);
}

// DES-core benchmarks: the numbers behind BENCH_simcore.json (docs/PERF.md).
//
// Three tiers of the same churn workload isolate the hot-path overhaul:
//   Legacy  — replica of the seed core: std::function callbacks in a
//             std::priority_queue binary heap (the pre-overhaul baseline,
//             kept here because the production Simulator no longer has it).
//   Heap    — SimCallback (inline/pooled captures) on BinaryHeapEventQueue.
//   Ladder  — SimCallback on the ladder/calendar queue (production default).
// Plus the mini-fleet end-to-end events/sec on both queue kinds, and frame
// encode with reused WireScratch vs per-call allocation.
//
// Refresh the tracked baseline with: tools/run_bench_simcore.sh
#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/fleet/mini_fleet.h"
#include "src/fleet/service_catalog.h"
#include "src/rpc/codec.h"
#include "src/sim/simulator.h"
#include "src/wire/message.h"

namespace rpcscope {
namespace {

// ---------------------------------------------------------------------------
// Legacy core replica: what Simulator was immediately before the hot-path
// overhaul — std::function callbacks in a std::priority_queue binary heap,
// with the same digest fold and ordering checks the production core keeps
// (those predate the overhaul, so the replica pays them too; anything less
// would overstate the speedup).

class LegacySimulator {
 public:
  void Schedule(SimDuration delay, std::function<void()> fn) {
    queue_.push(LegacyEvent{now_ + delay, next_seq_++, std::move(fn)});
  }

  uint64_t Run() {
    uint64_t executed = 0;
    while (!queue_.empty()) {
      LegacyEvent ev = std::move(const_cast<LegacyEvent&>(queue_.top()));
      queue_.pop();
      RPCSCOPE_CHECK_GE(ev.time, now_) << "virtual clock would move backwards";
      if (any_executed_) {
        RPCSCOPE_CHECK(ev.time > last_time_ || (ev.time == last_time_ && ev.seq > last_seq_))
            << "event out of order";
      }
      last_time_ = ev.time;
      last_seq_ = ev.seq;
      any_executed_ = true;
      event_digest_ = FnvMix(FnvMix(event_digest_, static_cast<uint64_t>(ev.time)), ev.seq);
      now_ = ev.time;
      ev.fn();
      ++executed;
    }
    return executed;
  }

  uint64_t event_digest() const { return event_digest_; }

 private:
  struct LegacyEvent {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct ExecutesAfter {
    bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  static uint64_t FnvMix(uint64_t digest, uint64_t word) {
    constexpr uint64_t kPrime = 1099511628211ull;
    for (int i = 0; i < 8; ++i) {
      digest ^= (word >> (8 * i)) & 0xff;
      digest *= kPrime;
    }
    return digest;
  }

  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, ExecutesAfter> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t event_digest_ = 14695981039346656037ull;
  SimTime last_time_ = 0;
  uint64_t last_seq_ = 0;
  bool any_executed_ = false;
};

// ---------------------------------------------------------------------------
// Churn workload: parallel self-rescheduling chains with mixed horizons —
// mostly microsecond-scale steps (the RPC-stack regime), periodic
// millisecond timers, and rare multi-second jumps that exercise the ladder's
// overflow tier. Identical schedule for every simulator under test. The chain
// count (benchmark arg) is the pending-event depth: 16 is a toy single-server
// workload, 1024/8192 match the in-flight event populations a loaded
// mini-fleet sustains, where heap sift depth is what the ladder eliminates.

constexpr uint64_t kChurnEvents = 1 << 17;  // Total events per run, all depths.

template <typename SimT>
struct Chain {
  SimT* sim = nullptr;
  uint64_t remaining = 0;
  uint64_t tick = 0;
  int id = 0;

  SimDuration NextDelay() {
    ++tick;
    if (tick % 1024 == 0) {
      return Seconds(2);  // Far-future: overflow tier.
    }
    if (tick % 64 == 0) {
      return Millis(5);  // Timer-scale: window edge.
    }
    return Micros(
        static_cast<int64_t>(1 + ((tick + static_cast<uint64_t>(id)) % 13)));
  }

  void Step() {
    if (remaining == 0) {
      return;
    }
    --remaining;
    sim->Schedule(NextDelay(), [this] { Step(); });
  }
};

template <typename SimT>
uint64_t RunChurn(SimT& sim, int chain_count) {
  std::vector<Chain<SimT>> chains(static_cast<size_t>(chain_count));
  for (int i = 0; i < chain_count; ++i) {
    chains[static_cast<size_t>(i)].sim = &sim;
    chains[static_cast<size_t>(i)].id = i;
    chains[static_cast<size_t>(i)].remaining =
        kChurnEvents / static_cast<uint64_t>(chain_count);
    chains[static_cast<size_t>(i)].Step();
  }
  return sim.Run();
}

void BM_SimChurn_Legacy(benchmark::State& state) {
  uint64_t events = 0;
  for (auto _ : state) {
    LegacySimulator sim;
    events += RunChurn(sim, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_SimChurn_Legacy)->Arg(16)->Arg(1024)->Arg(8192);

void BM_SimChurn_Heap(benchmark::State& state) {
  uint64_t events = 0;
  for (auto _ : state) {
    Simulator sim(SimQueueKind::kBinaryHeap);
    events += RunChurn(sim, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_SimChurn_Heap)->Arg(16)->Arg(1024)->Arg(8192);

void BM_SimChurn_Ladder(benchmark::State& state) {
  uint64_t events = 0;
  for (auto _ : state) {
    Simulator sim(SimQueueKind::kLadder);
    events += RunChurn(sim, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_SimChurn_Ladder)->Arg(16)->Arg(1024)->Arg(8192);

// ---------------------------------------------------------------------------
// Deep-backlog regime: all events scheduled up front, then drained. This is
// where the binary heap's O(log n) per op hurts most and the ladder's
// bucketing pays off.

constexpr int kBacklog = 100000;

template <typename SimT>
void RunBacklog(SimT& sim) {
  uint64_t tick = 0;
  for (int i = 0; i < kBacklog; ++i) {
    tick += 1 + (tick % 7);
    sim.Schedule(static_cast<SimDuration>(Micros(1) * static_cast<int64_t>(tick % 50000)),
                 [] {});
  }
  sim.Run();
}

void BM_SimBacklog_Legacy(benchmark::State& state) {
  for (auto _ : state) {
    LegacySimulator sim;
    RunBacklog(sim);
  }
  state.SetItemsProcessed(state.iterations() * kBacklog);
}
BENCHMARK(BM_SimBacklog_Legacy);

void BM_SimBacklog_Heap(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(SimQueueKind::kBinaryHeap);
    RunBacklog(sim);
  }
  state.SetItemsProcessed(state.iterations() * kBacklog);
}
BENCHMARK(BM_SimBacklog_Heap);

void BM_SimBacklog_Ladder(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(SimQueueKind::kLadder);
    RunBacklog(sim);
  }
  state.SetItemsProcessed(state.iterations() * kBacklog);
}
BENCHMARK(BM_SimBacklog_Ladder);

// ---------------------------------------------------------------------------
// End-to-end: mini-fleet virtual-events-per-host-second on both queue kinds.

void RunMiniFleetBench(benchmark::State& state, SimQueueKind kind) {
  const ServiceCatalog catalog = ServiceCatalog::BuildDefault();
  MiniFleetOptions options;
  options.duration = Millis(500);
  options.warmup = Millis(100);
  options.frontend_rps = 400;
  options.sim_queue = kind;
  uint64_t events = 0;
  for (auto _ : state) {
    const MiniFleetResult result = RunMiniFleet(catalog, options);
    events += result.events_executed;
    benchmark::DoNotOptimize(result.event_digest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

void BM_MiniFleet_Heap(benchmark::State& state) {
  RunMiniFleetBench(state, SimQueueKind::kBinaryHeap);
}
BENCHMARK(BM_MiniFleet_Heap);

void BM_MiniFleet_Ladder(benchmark::State& state) {
  RunMiniFleetBench(state, SimQueueKind::kLadder);
}
BENCHMARK(BM_MiniFleet_Ladder);

// ---------------------------------------------------------------------------
// Shard-domain execution (docs/PARALLEL.md): the mini-fleet spread across
// shard domains, swept over worker-thread counts. shards:1/workers:1 is the
// legacy single-domain path and must stay within noise of BM_MiniFleet_Ladder;
// the multi-worker rows measure conservative-PDES scaling (they only beat the
// 1-worker row when the host actually has spare cores — see the committed
// BENCH_parallel.json context.num_cpus for the machine the baseline ran on).

void BM_MiniFleetSharded(benchmark::State& state) {
  const ServiceCatalog catalog = ServiceCatalog::BuildDefault();
  MiniFleetOptions options;
  options.duration = Millis(500);
  options.warmup = Millis(100);
  options.frontend_rps = 400;
  options.num_shards = static_cast<int>(state.range(0));
  options.worker_threads = static_cast<int>(state.range(1));
  uint64_t events = 0;
  uint64_t rounds = 0;
  uint64_t cross = 0;
  for (auto _ : state) {
    const MiniFleetResult result = RunMiniFleet(catalog, options);
    events += result.events_executed;
    rounds += result.rounds;
    cross += result.cross_domain_events;
    benchmark::DoNotOptimize(result.event_digest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  // rounds is always >= 1 per run: the single-domain fast path reports one
  // uninterrupted round, so avg_events_per_round stays meaningful across rows.
  state.counters["rounds"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
  state.counters["avg_events_per_round"] =
      rounds == 0 ? 0.0 : static_cast<double>(events) / static_cast<double>(rounds);
  state.counters["cross_domain_events"] =
      benchmark::Counter(static_cast<double>(cross), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MiniFleetSharded)
    ->ArgNames({"shards", "workers"})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 8})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// ---------------------------------------------------------------------------
// Wire path: frame encode with per-call allocation (the pre-overhaul shape)
// vs a reused WireScratch (what Client/Server now do).

void BM_EncodeFrame_Alloc(benchmark::State& state) {
  Rng rng(7);
  const Message msg =
      Message::GeneratePayload(rng, static_cast<size_t>(state.range(0)), 0.6);
  const Payload payload = Payload::Real(msg);
  uint64_t nonce = 0;
  for (auto _ : state) {
    WireFrame frame = EncodeFrame(payload, 99, nonce++);
    benchmark::DoNotOptimize(frame.body.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(msg.ByteSize()));
}
BENCHMARK(BM_EncodeFrame_Alloc)->Arg(1530)->Arg(32768);

void BM_EncodeFrame_Scratch(benchmark::State& state) {
  Rng rng(7);
  const Message msg =
      Message::GeneratePayload(rng, static_cast<size_t>(state.range(0)), 0.6);
  const Payload payload = Payload::Real(msg);
  WireScratch scratch;
  uint64_t nonce = 0;
  for (auto _ : state) {
    WireFrame frame = EncodeFrame(payload, 99, nonce++, scratch);
    benchmark::DoNotOptimize(frame.body.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(msg.ByteSize()));
}
BENCHMARK(BM_EncodeFrame_Scratch)->Arg(1530)->Arg(32768);

}  // namespace
}  // namespace rpcscope

int main(int argc, char** argv) {
  // The library's own "library_build_type" context reflects how the system
  // benchmark package was compiled, not this binary. Record our build type so
  // tools/run_bench_*.sh can refuse to commit a non-optimized baseline.
#ifdef NDEBUG
  benchmark::AddCustomContext("rpcscope_build_type", "release");
#else
  benchmark::AddCustomContext("rpcscope_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

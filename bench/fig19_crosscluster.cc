// Regenerates Fig. 19: Spanner cross-cluster latency — clients in many
// clusters calling servers in one cluster; the wire dominates with distance.
#include "bench/bench_util.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  ServiceStudyConfig config = MakeStudyConfig(ctx.services, ctx.services.studied().spanner);
  config.duration = Seconds(1);
  config.warmup = Millis(200);
  config.target_utilization = 0.3;
  config.num_clients = 4;

  const ClusterId server_cluster = 0;
  std::vector<CrossClusterPoint> points;
  for (ClusterId client = 0; client < ctx.topology.num_clusters(); ++client) {
    ServiceStudyRun run;
    run.server_cluster = server_cluster;
    run.client_cluster = client;
    run.seed_salt = static_cast<uint64_t>(client) + 7000;
    ServiceStudyResult result = RunServiceStudy(config, run);
    CrossClusterPoint p;
    p.client_cluster = client;
    p.distance_class =
        std::string(DistanceClassName(ctx.topology.ClusterDistance(client, server_cluster)));
    p.spans = std::move(result.spans);
    points.push_back(std::move(p));
  }
  return RunFigureMain(argc, argv, AnalyzeCrossCluster(points));
}

// Calibration self-check: recomputes every DESIGN.md §4 anchor against the
// current model and reports pass / near / off verdicts. Run this after any
// change to the catalogs, cost model, or sampler to see what drifted.
#include <cmath>

#include "bench/bench_util.h"
#include "src/common/stats.h"

namespace rpcscope {
namespace {

struct Check {
  const char* anchor;
  double target;
  double measured;
  // An anchor "passes" within this multiplicative band around the target.
  double band = 2.0;
};

const char* Verdict(const Check& c) {
  if (c.target <= 0 || c.measured <= 0) {
    return "off ";
  }
  const double ratio = c.measured / c.target;
  if (ratio >= 1.0 / 1.3 && ratio <= 1.3) {
    return "PASS";
  }
  if (ratio >= 1.0 / c.band && ratio <= c.band) {
    return "near";
  }
  return "OFF ";
}

}  // namespace
}  // namespace rpcscope

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan strat = StratifiedScan(ctx, 250);
  const FleetScan weighted = WeightedScan(ctx, 1500000);

  auto qq = [&](double method_q, auto extract) {
    const std::vector<double> v = strat.agg.CollectSorted(100, extract);
    return SortedQuantile(v, method_q);
  };
  auto rct = [](double q) {
    return [q](const MethodAccum& m) { return m.rct.Quantile(q); };
  };
  auto queue = [](double q) {
    return [q](const MethodAccum& m) { return m.queue.Quantile(q); };
  };

  std::vector<Check> checks;
  // Fig. 2.
  checks.push_back({"fig02 P1 @90th-pct method (us)", 657, qq(0.90, rct(0.01))});
  checks.push_back({"fig02 median @10th-pct method (us)", 10700, qq(0.10, rct(0.5))});
  checks.push_back({"fig02 P99 @median method (us)", 225000, qq(0.50, rct(0.99)), 3.0});
  // Fig. 3.
  double total_calls = 0, fastest100 = 0, write_share = 0;
  {
    const auto& methods = weighted.agg.methods();
    for (size_t i = 0; i < methods.size(); ++i) {
      total_calls += static_cast<double>(methods[i].calls);
      if (i < 100) {
        fastest100 += static_cast<double>(methods[i].calls);
      }
    }
    write_share = static_cast<double>(
                      methods[static_cast<size_t>(ctx.methods.network_disk_write_id())].calls) /
                  total_calls;
  }
  checks.push_back({"fig03 ND Write call share", 0.28, write_share, 1.3});
  checks.push_back({"fig03 fastest-100 call share", 0.40, fastest100 / total_calls, 1.5});
  // Fig. 13.
  checks.push_back({"fig13 median queue @median method (us)", 360, qq(0.50, queue(0.5))});
  checks.push_back({"fig13 P99 queue @median method (us)", 102000, qq(0.50, queue(0.99)), 3.0});
  // Fig. 20.
  checks.push_back({"fig20 cycle tax fraction", 0.071, weighted.profile.TaxFraction(), 1.8});
  const auto fractions = weighted.profile.TaxCategoryFractions();
  checks.push_back({"fig20 compression fraction", 0.031,
                    fractions[static_cast<size_t>(CycleCategory::kCompression)], 1.8});
  checks.push_back({"fig20 rpclib fraction", 0.011,
                    fractions[static_cast<size_t>(CycleCategory::kRpcLibrary)], 1.8});
  // Fig. 23.
  double errors = 0;
  for (const auto& [code, count] : weighted.error_counts) {
    errors += static_cast<double>(count);
  }
  checks.push_back({"fig23 error rate", 0.019,
                    errors / static_cast<double>(weighted.total_calls), 1.6});
  checks.push_back(
      {"fig23 cancelled share of errors", 0.45,
       static_cast<double>(weighted.error_counts.at(StatusCode::kCancelled)) / errors, 1.4});

  FigureReport report;
  report.id = "calibration";
  report.title = "Calibration self-check (DESIGN.md section 4 anchors)";
  TextTable t({"verdict", "anchor", "target", "measured", "ratio"});
  int off = 0;
  for (const Check& c : checks) {
    const char* verdict = Verdict(c);
    if (verdict[0] == 'O') {
      ++off;
    }
    t.AddRow({verdict, c.anchor, FormatDouble(c.target, 4), FormatDouble(c.measured, 4),
              FormatDouble(c.measured / c.target, 2) + "x"});
  }
  report.tables.push_back(t);
  report.notes.push_back(off == 0 ? "all anchors within their bands"
                                  : std::to_string(off) + " anchor(s) OFF — see rows above");
  return RunFigureMain(argc, argv, report);
}

// Regenerates Fig. 14: intra-cluster RPC completion-time breakdown CDFs for
// the eight studied services, from full discrete-event runs of the RPC stack.
#include "bench/bench_util.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  std::vector<ServiceSpans> studies;
  for (ServiceStudyConfig config : MakeAllStudyConfigs(ctx.services)) {
    config.duration = Seconds(6);
    ServiceStudyResult result = RunServiceStudy(config, {});
    studies.push_back({config.service_name, std::move(result.spans)});
  }
  return RunFigureMain(argc, argv, AnalyzeServiceBreakdown(studies));
}

// Colocated-vs-wire microbenchmark (docs/POLICY.md#colocated-bypass): the
// same same-machine echo call issued through the full stack (serialize,
// compress, loopback wire) and through the colocated zero-copy fast path,
// across payload sizes. Reports the median latency of each path, the speedup,
// and the fraction of the stack's cycle tax the bypass avoids — the per-span
// "avoided tax" the tracer accounts instead of silently dropping.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace rpcscope {
namespace {

constexpr MethodId kEcho = 1;
constexpr int kCalls = 400;

struct PathResult {
  double median_latency_us = 0;
  double paid_tax_cycles = 0;
  double avoided_tax_cycles = 0;
};

PathResult RunPath(bool bypass, int64_t payload_bytes) {
  RpcSystemOptions sys_opts;
  sys_opts.fabric.congestion_probability = 0;
  sys_opts.seed = 42;
  RpcSystem system(sys_opts);
  const MachineId machine = system.topology().MachineAt(0, 0);

  Server server(&system, machine, ServerOptions{});
  server.RegisterMethod(kEcho, "Echo", [payload_bytes](std::shared_ptr<ServerCall> call) {
    call->Compute(Micros(50), [call, payload_bytes]() {
      call->Finish(Status::Ok(), Payload::Modeled(payload_bytes));
    });
  });

  ClientOptions copts;
  copts.colocated_bypass = bypass;
  Client client(&system, machine, copts);

  std::vector<double> latencies;
  latencies.reserve(kCalls);
  // Calls are spaced out: this measures the stack, not queueing.
  for (int i = 0; i < kCalls; ++i) {
    system.sim().Schedule(Millis(2) * i, [&, payload_bytes]() {
      client.Call(machine, kEcho, Payload::Modeled(payload_bytes), {},
                  [&](const CallResult& result, Payload) {
                    if (result.status.ok()) {
                      latencies.push_back(static_cast<double>(result.latency.Total()) / 1000.0);
                    }
                  });
    });
  }
  system.sim().Run();

  PathResult out;
  out.median_latency_us = ExactQuantile(latencies, 0.5);
  out.paid_tax_cycles = system.metrics().GetCounter("client.tax_cycles").value();
  out.avoided_tax_cycles = client.avoided_tax_cycles();
  return out;
}

}  // namespace
}  // namespace rpcscope

int main(int argc, char** argv) {
  using namespace rpcscope;

  FigureReport report;
  report.id = "micro_colocated";
  report.title = "Microbenchmark: same-machine RPC, full stack vs colocated zero-copy bypass";
  TextTable t({"payload", "wire median", "bypass median", "speedup", "bypassed-tax fraction"});
  for (const int64_t bytes : {256LL, 2048LL, 16384LL, 131072LL}) {
    const PathResult wire = RunPath(/*bypass=*/false, bytes);
    const PathResult fast = RunPath(/*bypass=*/true, bytes);
    const double denom = fast.paid_tax_cycles + fast.avoided_tax_cycles;
    t.AddRow({FormatBytes(static_cast<double>(bytes)),
              FormatDouble(wire.median_latency_us, 1) + "us",
              FormatDouble(fast.median_latency_us, 1) + "us",
              FormatDouble(wire.median_latency_us / fast.median_latency_us, 2) + "x",
              FormatDouble(denom > 0 ? 100.0 * fast.avoided_tax_cycles / denom : 0.0, 1) + "%"});
  }
  report.tables.push_back(t);
  report.notes.push_back(
      "The bypass removes serialization, compression, and the loopback wire from "
      "same-machine calls; the avoided stages' cycle cost is still accounted as "
      "per-span avoided tax, so the bypassed-tax fraction grows with payload size "
      "while the paid stack shrinks to the local hand-off.");
  return RunFigureMain(argc, argv, report);
}

// Regenerates Fig. 15: what-if analysis — percentage of P95-tail RPCs that
// become non-tail when each latency component is reduced to its median.
#include "bench/bench_util.h"
#include "src/fleet/service_study.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  std::vector<ServiceSpans> studies;
  // The paper's Fig. 15 includes BigQuery alongside the Table-1 services.
  std::vector<ServiceStudyConfig> configs = MakeAllStudyConfigs(ctx.services);
  configs.push_back(MakeStudyConfig(ctx.services, ctx.services.studied().bigquery));
  for (ServiceStudyConfig config : configs) {
    config.duration = Seconds(6);
    ServiceStudyResult result = RunServiceStudy(config, {});
    studies.push_back({config.service_name, std::move(result.spans)});
  }
  return RunFigureMain(argc, argv, AnalyzeWhatIf(studies));
}

// Regenerates Fig. 3: per-method RPC frequency and popularity skew.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;
  const FleetScan scan = WeightedScan(ctx, 3000000);
  return RunFigureMain(argc, argv, AnalyzePopularity(scan.agg, ctx.methods));
}

// Ablation: intra-cluster load-balancing policy (§4.3 / §5.2).
//
// The paper finds intra-cluster load tight for stateless services but skewed
// for data-dependent ones, and calls for better balancing. This ablation
// compares three machine-selection policies under identical demand: naive
// random, power-of-two-choices, and key affinity over a Zipf key population —
// plus a key-skew sweep showing when affinity becomes the bottleneck.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/fleet/load_balancer.h"

int main(int argc, char** argv) {
  using namespace rpcscope;
  const FleetContext ctx;

  FigureReport report;
  report.id = "ablation_loadbalance";
  report.title = "Ablation: intra-cluster balancing policy and key skew";

  TextTable t({"policy", "machine P50", "machine P99", "P99/P50"});
  const std::pair<const char*, IntraClusterPolicy> policies[] = {
      {"random", IntraClusterPolicy::kRandom},
      {"power-of-two-choices", IntraClusterPolicy::kPowerOfTwoChoices},
      {"key affinity (zipf 1.05)", IntraClusterPolicy::kKeyAffinity},
  };
  for (const auto& [name, policy] : policies) {
    LoadBalanceStudyOptions opts;
    opts.policy = policy;
    LoadBalanceStudy study(&ctx.topology, opts);
    const LoadBalanceResult result = study.Run();
    const double p50 = SortedQuantile(result.median_cluster_machine_usage, 0.5);
    const double p99 = SortedQuantile(result.median_cluster_machine_usage, 0.99);
    t.AddRow({name, FormatPercent(p50), FormatPercent(p99),
              FormatDouble(p99 / std::max(p50, 1e-9), 2) + "x"});
  }
  report.tables.push_back(t);

  TextTable sweep({"key zipf exponent", "machine P50", "machine P99", "P99/P50"});
  for (double exponent : {0.6, 0.9, 1.05, 1.2, 1.5}) {
    LoadBalanceStudyOptions opts;
    opts.policy = IntraClusterPolicy::kKeyAffinity;
    opts.key_zipf_exponent = exponent;
    LoadBalanceStudy study(&ctx.topology, opts);
    const LoadBalanceResult result = study.Run();
    const double p50 = SortedQuantile(result.median_cluster_machine_usage, 0.5);
    const double p99 = SortedQuantile(result.median_cluster_machine_usage, 0.99);
    sweep.AddRow({FormatDouble(exponent, 2), FormatPercent(p50), FormatPercent(p99),
                  FormatDouble(p99 / std::max(p50, 1e-9), 2) + "x"});
  }
  report.tables.push_back(sweep);
  report.notes.push_back("Power-of-two-choices keeps machines within a fraction of a percent "
                         "of each other; key affinity inherits the key skew — the paper's "
                         "observation that data-dependent balancing 'may suffer from limited "
                         "parallelism' is a property of the key distribution, not the balancer.");
  return RunFigureMain(argc, argv, report);
}

// google-benchmark microbenchmarks of the RPC stack's byte-level operations:
// varint codecs, message serialization/parsing, Ratel compression, stream
// encryption, CRC32C, full frame encode/decode, and end-to-end simulated RPCs.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/rpc/client.h"
#include "src/rpc/codec.h"
#include "src/rpc/server.h"
#include "src/wire/checksum.h"
#include "src/wire/cipher.h"
#include "src/wire/compressor.h"
#include "src/wire/message.h"
#include "src/wire/varint.h"

namespace rpcscope {
namespace {

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) {
    v = rng.NextUint64() >> rng.NextBounded(64);
  }
  std::vector<uint8_t> out;
  for (auto _ : state) {
    out.clear();
    for (uint64_t v : values) {
      PutVarint64(out, v);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  Rng rng(2);
  std::vector<uint8_t> buf;
  for (int i = 0; i < 1024; ++i) {
    PutVarint64(buf, rng.NextUint64() >> rng.NextBounded(64));
  }
  for (auto _ : state) {
    size_t pos = 0;
    uint64_t v = 0;
    while (pos < buf.size()) {
      if (!GetVarint64(buf, pos, v)) {
        break;
      }
    }
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintDecode);

void BM_MessageSerialize(benchmark::State& state) {
  Rng rng(3);
  const Message msg =
      Message::GeneratePayload(rng, static_cast<size_t>(state.range(0)), 0.5);
  for (auto _ : state) {
    std::vector<uint8_t> buf = msg.Serialize();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(msg.ByteSize()));
}
BENCHMARK(BM_MessageSerialize)->Arg(128)->Arg(1530)->Arg(32768)->Arg(196000);

void BM_MessageParse(benchmark::State& state) {
  Rng rng(4);
  const Message msg =
      Message::GeneratePayload(rng, static_cast<size_t>(state.range(0)), 0.5);
  const std::vector<uint8_t> buf = msg.Serialize();
  for (auto _ : state) {
    Result<Message> parsed = Message::Parse(buf);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_MessageParse)->Arg(128)->Arg(1530)->Arg(32768);

void BM_Compress(benchmark::State& state) {
  Rng rng(5);
  const double redundancy = static_cast<double>(state.range(1)) / 100.0;
  const std::vector<uint8_t> data =
      Message::GeneratePayload(rng, static_cast<size_t>(state.range(0)), redundancy)
          .Serialize();
  size_t compressed_size = 0;
  for (auto _ : state) {
    std::vector<uint8_t> out = RatelCompress(data);
    compressed_size = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(data.size()));
  state.counters["ratio"] = CompressionRatio(data.size(), compressed_size);
}
BENCHMARK(BM_Compress)->Args({32768, 0})->Args({32768, 50})->Args({32768, 95});

void BM_Decompress(benchmark::State& state) {
  Rng rng(6);
  const std::vector<uint8_t> data = Message::GeneratePayload(rng, 32768, 0.7).Serialize();
  const std::vector<uint8_t> block = RatelCompress(data);
  for (auto _ : state) {
    Result<std::vector<uint8_t>> out = RatelDecompress(block);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Decompress);

void BM_Encrypt(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xab);
  uint64_t nonce = 0;
  for (auto _ : state) {
    StreamCipher cipher(42, nonce++);
    cipher.Apply(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Encrypt)->Arg(1530)->Arg(32768);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(1530)->Arg(32768);

void BM_FrameEncodeDecode(benchmark::State& state) {
  Rng rng(7);
  const Message msg =
      Message::GeneratePayload(rng, static_cast<size_t>(state.range(0)), 0.6);
  uint64_t nonce = 0;
  for (auto _ : state) {
    WireFrame frame = EncodeFrame(Payload::Real(msg), 99, nonce++);
    Result<Payload> decoded = DecodeFrame(frame, 99);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(msg.ByteSize()));
}
BENCHMARK(BM_FrameEncodeDecode)->Arg(1530)->Arg(32768);

// Host-side throughput of the full simulated stack: one complete RPC through
// client tx -> fabric -> server pipeline -> response path.
void BM_SimulatedRpc(benchmark::State& state) {
  RpcSystemOptions opts;
  opts.fabric.congestion_probability = 0;
  RpcSystem system(opts);
  const MachineId server_machine = system.topology().MachineAt(0, 0);
  Server server(&system, server_machine, ServerOptions{});
  server.RegisterMethod(1, "Echo", [](std::shared_ptr<ServerCall> call) {
    call->Compute(Micros(100), [call]() {
      call->Finish(Status::Ok(), Payload::Modeled(512));
    });
  });
  Client client(&system, system.topology().MachineAt(0, 1));
  for (auto _ : state) {
    bool done = false;
    client.Call(server_machine, 1, Payload::Modeled(1024), {},
                [&done](const CallResult&, Payload) { done = true; });
    system.sim().Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRpc);

}  // namespace
}  // namespace rpcscope

BENCHMARK_MAIN();

// rpcscope_doccheck: markdown link checker for the repo's documentation.
//
// Usage:
//   rpcscope_doccheck [--root <repo-root>]
//
// Scans the maintained markdown set — README.md, DESIGN.md, ROADMAP.md,
// EXPERIMENTS.md, CHANGES.md, and everything under docs/ — and verifies that
// every relative link target exists and every `#anchor` fragment matches a
// heading in the target file (GitHub slug rules). External links (http/https/
// mailto) are not fetched. Fenced code blocks and inline code spans are
// skipped so module maps and shell snippets never parse as links.
//
// Exit status 0 when every link resolves, 1 when any is dead, 2 on usage
// errors. CI runs this as the docs-lint job; `docs_links_clean` is the same
// gate as a ctest.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Link {
  int line = 0;         // 1-based.
  std::string target;   // Raw target, e.g. "docs/PERF.md#rules" or "#rules".
};

// GitHub's heading-anchor slug: lowercase; spaces -> hyphens; word
// characters and hyphens kept; everything else dropped (hyphens are NOT
// collapsed, so "A — B" slugs to "a--b").
std::string SlugOf(const std::string& heading) {
  std::string slug;
  for (char c : heading) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      slug.push_back(static_cast<char>(std::tolower(u)));
    } else if (c == ' ') {
      slug.push_back('-');
    } else if (c == '-' || c == '_') {
      slug.push_back(c);
    }
    // Punctuation (including markdown backticks) contributes nothing.
  }
  return slug;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Removes `inline code` spans so example links inside them are not checked.
std::string StripInlineCode(const std::string& line) {
  std::string out;
  bool in_code = false;
  for (char c : line) {
    if (c == '`') {
      in_code = !in_code;
      continue;
    }
    if (!in_code) {
      out.push_back(c);
    }
  }
  return out;
}

struct DocFile {
  fs::path path;                 // Absolute.
  std::string relative;          // Repo-relative, forward slashes.
  std::vector<Link> links;
  std::set<std::string> anchors;  // Heading slugs (with -1, -2 dedup suffixes).
};

// Parses one markdown file: collects heading anchors and inline links,
// skipping ``` fences and inline code spans.
DocFile ParseDoc(const fs::path& path, const std::string& relative) {
  DocFile doc;
  doc.path = path;
  doc.relative = relative;
  std::ifstream in(path);
  std::string line;
  int line_no = 0;
  bool in_fence = false;
  std::map<std::string, int> slug_uses;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) {
      continue;
    }
    if (!trimmed.empty() && trimmed[0] == '#') {
      size_t level = trimmed.find_first_not_of('#');
      if (level != std::string::npos && level <= 6 && trimmed[level] == ' ') {
        const std::string slug = SlugOf(Trim(trimmed.substr(level)));
        const int n = slug_uses[slug]++;
        doc.anchors.insert(n == 0 ? slug : slug + "-" + std::to_string(n));
        continue;
      }
    }
    const std::string text = StripInlineCode(line);
    // Inline links: [label](target). Labels never nest brackets in this
    // repo's docs, so a text scan suffices — no regex engine needed.
    for (size_t pos = 0; (pos = text.find("](", pos)) != std::string::npos; pos += 2) {
      const size_t open = text.rfind('[', pos);
      if (open == std::string::npos) {
        continue;
      }
      const size_t close = text.find(')', pos + 2);
      if (close == std::string::npos) {
        continue;
      }
      std::string target = Trim(text.substr(pos + 2, close - pos - 2));
      // "[x](target "title")" — drop the optional title.
      const size_t space = target.find(' ');
      if (space != std::string::npos) {
        target = target.substr(0, space);
      }
      if (!target.empty()) {
        doc.links.push_back({line_no, target});
      }
    }
  }
  return doc;
}

bool IsExternal(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: rpcscope_doccheck [--root <repo-root>]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }
  const fs::path root_path = fs::path(root);
  if (!fs::is_directory(root_path)) {
    std::cerr << "rpcscope_doccheck: root is not a directory: " << root << "\n";
    return 2;
  }

  // The maintained documentation set. PAPER.md / PAPERS.md / SNIPPETS.md /
  // ISSUE.md are driver-provided artifacts, not maintained docs.
  std::vector<std::string> relatives = {"README.md", "DESIGN.md", "ROADMAP.md",
                                        "EXPERIMENTS.md", "CHANGES.md"};
  if (fs::is_directory(root_path / "docs")) {
    // Enumeration order is irrelevant: the list is sorted just below.
    // NOLINTNEXTLINE(detan-nondet-source)
    for (const fs::directory_entry& entry : fs::directory_iterator(root_path / "docs")) {
      if (entry.is_regular_file() && entry.path().extension() == ".md") {
        relatives.push_back("docs/" + entry.path().filename().string());
      }
    }
  }
  std::sort(relatives.begin(), relatives.end());

  const fs::path abs_root = fs::absolute(root_path).lexically_normal();
  std::map<std::string, DocFile> docs;  // Keyed by repo-relative path.
  for (const std::string& rel : relatives) {
    const fs::path p = abs_root / rel;
    if (fs::is_regular_file(p)) {
      docs.emplace(rel, ParseDoc(p, rel));
    }
  }
  if (docs.empty()) {
    std::cerr << "rpcscope_doccheck: no documentation files under " << root << "\n";
    return 2;
  }

  int dead = 0;
  int checked = 0;
  for (const auto& [rel, doc] : docs) {
    for (const Link& link : doc.links) {
      if (IsExternal(link.target)) {
        continue;
      }
      ++checked;
      const size_t hash = link.target.find('#');
      const std::string path_part =
          hash == std::string::npos ? link.target : link.target.substr(0, hash);
      const std::string anchor = hash == std::string::npos ? "" : link.target.substr(hash + 1);

      // Resolve the path relative to the linking file's directory, then
      // re-express repo-relative so anchor lookups hit the parsed set.
      std::string target_rel = rel;  // Empty path part = same-file anchor.
      if (!path_part.empty()) {
        const fs::path resolved =
            (doc.path.parent_path() / path_part).lexically_normal();
        if (!fs::exists(resolved)) {
          std::cout << rel << ":" << link.line << ": dead link: " << link.target
                    << " (no such file)\n";
          ++dead;
          continue;
        }
        target_rel = resolved.lexically_relative(abs_root).generic_string();
      }
      if (!anchor.empty()) {
        auto it = docs.find(target_rel);
        if (it == docs.end()) {
          std::cout << rel << ":" << link.line << ": dead link: " << link.target
                    << " (anchor in a file outside the checked doc set)\n";
          ++dead;
        } else if (it->second.anchors.count(anchor) == 0) {
          std::cout << rel << ":" << link.line << ": dead anchor: " << link.target
                    << " (no heading slugs to '" << anchor << "' in " << target_rel << ")\n";
          ++dead;
        }
      }
    }
  }

  if (dead == 0) {
    std::cout << "rpcscope_doccheck: clean (" << checked << " relative links across "
              << docs.size() << " files)\n";
    return 0;
  }
  std::cout << "rpcscope_doccheck: " << dead << " dead link(s)\n";
  return 1;
}

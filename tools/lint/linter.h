// rpcscope_lint: repo-specific static analysis, token/regex level.
//
// The rules encode correctness contracts the compiler cannot see:
//   rpcscope-nodiscard-status  fallible declarations (Status / Result<T>) in
//                              src/rpc, src/wire, src/trace, src/monitor
//                              headers must be [[nodiscard]].
//   rpcscope-discarded-status  expression-statements that call a known
//                              fallible function and drop the result.
//   rpcscope-wallclock         wall-clock / libc randomness inside src/sim,
//                              src/net, src/fleet — those layers must stay on
//                              deterministic virtual time and seeded Rng.
//   rpcscope-unordered-iter    range-for over an unordered container in
//                              src/sim, src/net, src/fleet — iteration order
//                              feeds event scheduling, a determinism hazard.
//   rpcscope-include-guard     headers must carry the canonical
//                              RPCSCOPE_<PATH>_H_ include guard.
//   rpcscope-cout              std::cout / printf in library code (src/);
//                              libraries report through Status and ostream&
//                              parameters, never the process's stdout.
//   rpcscope-serialize-hotpath calls to the vector-returning
//                              Message::Serialize() in src/ — library code
//                              sits on the per-RPC wire path and must use
//                              SerializeTo() into a reused buffer
//                              (docs/PERF.md); the allocating form is for
//                              tests and tools only.
//   rpcscope-unused-nolint     a NOLINT naming one of the rules above that
//                              suppressed nothing (opt-in via
//                              --fail-on-unused; CI enables it).
//
// The raw-threading rule (rpcscope-raw-thread) moved to rpcscope_detan,
// which scopes it by the include graph instead of a path regex; existing
// suppressions keep their rule name. See docs/ANALYSIS.md.
//
// Any finding is suppressible on its line with // NOLINT(rpcscope-<rule>) or
// on the preceding line with // NOLINTNEXTLINE(rpcscope-<rule>);
// NOLINT(rpcscope-all) suppresses every rule. No libclang: the linter reads
// files as text, strips comments and string literals, and pattern-matches —
// fast enough to gate every CI build. Text/suppression plumbing is shared
// with rpcscope_detan via tools/analysis/.
#ifndef RPCSCOPE_TOOLS_LINT_LINTER_H_
#define RPCSCOPE_TOOLS_LINT_LINTER_H_

#include <string>
#include <vector>

#include "tools/analysis/finding.h"

namespace rpcscope {
namespace lint {

// Shared with rpcscope_detan; equality ignores the message so tests can
// assert on (file, line, rule).
using Finding = analysis::Finding;

// Rule names and one-line docs, for --list-rules.
std::vector<analysis::RuleDoc> Rules();

// Scans header content for fallible function declarations (returning Status
// or Result<T>) and returns their names. Used to build the project-wide set
// that rpcscope-discarded-status checks call sites against.
std::vector<std::string> CollectFallibleFunctions(const std::string& content);

// Lints one file. `rel_path` selects which rules apply (directory scoping);
// `fallible` is the project-wide fallible-function name set. When
// `check_unused` is set, suppressions naming a lint rule that silenced
// nothing are reported as rpcscope-unused-nolint.
std::vector<Finding> LintFile(const std::string& rel_path, const std::string& content,
                              const std::vector<std::string>& fallible,
                              bool check_unused = false);

// Walks `root` (the repo checkout), collects fallible names from src/
// headers, lints every .h/.cc/.cpp under src/, tests/, bench/, examples/,
// tools/ (skipping any path containing "fixtures"), and returns all findings
// sorted by (file, line).
std::vector<Finding> LintTree(const std::string& root, bool check_unused = false);

// Renders "file:line: [rule] message".
using analysis::FormatFinding;

}  // namespace lint
}  // namespace rpcscope

#endif  // RPCSCOPE_TOOLS_LINT_LINTER_H_

// rpcscope_lint: repo-specific static analysis, token/regex level.
//
// The rules encode correctness contracts the compiler cannot see:
//   rpcscope-nodiscard-status  fallible declarations (Status / Result<T>) in
//                              src/rpc, src/wire, src/trace, src/monitor
//                              headers must be [[nodiscard]].
//   rpcscope-discarded-status  expression-statements that call a known
//                              fallible function and drop the result.
//   rpcscope-wallclock         wall-clock / libc randomness inside src/sim,
//                              src/net, src/fleet — those layers must stay on
//                              deterministic virtual time and seeded Rng.
//   rpcscope-unordered-iter    range-for over an unordered container in
//                              src/sim, src/net, src/fleet — iteration order
//                              feeds event scheduling, a determinism hazard.
//   rpcscope-include-guard     headers must carry the canonical
//                              RPCSCOPE_<PATH>_H_ include guard.
//   rpcscope-cout              std::cout / printf in library code (src/);
//                              libraries report through Status and ostream&
//                              parameters, never the process's stdout.
//   rpcscope-raw-thread        host threading primitives (std::thread, mutex,
//                              condition_variable, atomics, futures, latches,
//                              thread_local, pthreads) in src/ outside
//                              src/sim/parallel/ — the DES is single-threaded
//                              per shard domain and host concurrency is
//                              confined to the shard executor
//                              (docs/PARALLEL.md).
//   rpcscope-serialize-hotpath calls to the vector-returning
//                              Message::Serialize() in src/ — library code
//                              sits on the per-RPC wire path and must use
//                              SerializeTo() into a reused buffer
//                              (docs/PERF.md); the allocating form is for
//                              tests and tools only.
//
// Any finding is suppressible on its line with // NOLINT(rpcscope-<rule>) or
// on the preceding line with // NOLINTNEXTLINE(rpcscope-<rule>);
// NOLINT(rpcscope-all) suppresses every rule. No libclang: the linter reads
// files as text, strips comments and string literals, and pattern-matches —
// fast enough to gate every CI build.
#ifndef RPCSCOPE_TOOLS_LINT_LINTER_H_
#define RPCSCOPE_TOOLS_LINT_LINTER_H_

#include <string>
#include <vector>

namespace rpcscope {
namespace lint {

struct Finding {
  std::string file;  // Repo-relative path, forward slashes.
  int line = 0;      // 1-based.
  std::string rule;  // e.g. "rpcscope-wallclock".
  std::string message;

  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule;
  }
};

// Scans header content for fallible function declarations (returning Status
// or Result<T>) and returns their names. Used to build the project-wide set
// that rpcscope-discarded-status checks call sites against.
std::vector<std::string> CollectFallibleFunctions(const std::string& content);

// Lints one file. `rel_path` selects which rules apply (directory scoping);
// `fallible` is the project-wide fallible-function name set.
std::vector<Finding> LintFile(const std::string& rel_path, const std::string& content,
                              const std::vector<std::string>& fallible);

// Walks `root` (the repo checkout), collects fallible names from src/
// headers, lints every .h/.cc/.cpp under src/, tests/, bench/, examples/,
// tools/ (skipping any path containing "fixtures"), and returns all findings
// sorted by (file, line).
std::vector<Finding> LintTree(const std::string& root);

// Renders "file:line: [rule] message".
std::string FormatFinding(const Finding& f);

}  // namespace lint
}  // namespace rpcscope

#endif  // RPCSCOPE_TOOLS_LINT_LINTER_H_

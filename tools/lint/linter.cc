#include "tools/lint/linter.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace rpcscope {
namespace lint {

namespace {

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  return lines;
}

// Replaces comments and string/char literal contents with spaces so patterns
// never match inside them. Tracks block comments across lines. Literal
// delimiters are kept (a string becomes "   ") so column positions and syntax
// shape survive.
std::vector<std::string> Sanitize(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string s;
    s.reserve(line.size());
    size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          s += "  ";
          i += 2;
        } else {
          s += ' ';
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // Rest of the line is a comment.
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        s += "  ";
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        s += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            s += "  ";
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            s += quote;
            ++i;
            break;
          }
          s += ' ';
          ++i;
        }
        continue;
      }
      s += c;
      ++i;
    }
    out.push_back(std::move(s));
  }
  return out;
}

// True if `raw_lines[idx]` carries a suppression for `rule`: NOLINT on the
// line itself or NOLINTNEXTLINE on the line above. Suppressions must name the
// rule (or rpcscope-all) — bare NOLINT belongs to other tools and is ignored.
bool IsSuppressed(const std::vector<std::string>& raw_lines, size_t idx, const std::string& rule) {
  auto matches = [&rule](const std::string& line, const char* marker) {
    const size_t at = line.find(marker);
    if (at == std::string::npos) {
      return false;
    }
    const size_t open = line.find('(', at);
    if (open == std::string::npos) {
      return false;
    }
    const size_t close = line.find(')', open);
    if (close == std::string::npos) {
      return false;
    }
    const std::string args = line.substr(open + 1, close - open - 1);
    return args.find(rule) != std::string::npos || args.find("rpcscope-all") != std::string::npos;
  };
  if (idx < raw_lines.size() && matches(raw_lines[idx], "NOLINT")) {
    // NOLINTNEXTLINE on the *same* line suppresses the next line, not this
    // one; only a plain NOLINT counts here.
    if (raw_lines[idx].find("NOLINTNEXTLINE") == std::string::npos) {
      return true;
    }
  }
  return idx > 0 && matches(raw_lines[idx - 1], "NOLINTNEXTLINE");
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// Expected canonical include guard for a repo-relative header path:
// src/common/check.h -> RPCSCOPE_SRC_COMMON_CHECK_H_.
std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard = "RPCSCOPE_";
  for (char c : rel_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// Identifier names declared as unordered containers in this file (variables
// and members; token-level, so template parameters inside <> are skipped by
// matching the name after the closing angle or after the full type).
std::vector<std::string> CollectUnorderedNames(const std::vector<std::string>& lines) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+([A-Za-z_]\w*))");
  std::vector<std::string> names;
  for (const std::string& line : lines) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      names.push_back((*it)[1].str());
    }
  }
  return names;
}

bool ContainsWord(const std::string& haystack, const std::string& word) {
  size_t at = 0;
  while ((at = haystack.find(word, at)) != std::string::npos) {
    const bool left_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(haystack[at - 1])) &&
                    haystack[at - 1] != '_');
    const size_t end = at + word.size();
    const bool right_ok =
        end >= haystack.size() || (!std::isalnum(static_cast<unsigned char>(haystack[end])) &&
                                   haystack[end] != '_');
    if (left_ok && right_ok) {
      return true;
    }
    at = end;
  }
  return false;
}

struct RulePattern {
  const char* pattern;
  const char* what;
};

}  // namespace

std::vector<std::string> CollectFallibleFunctions(const std::string& content) {
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> lines = Sanitize(raw);
  // A declaration line: optional attributes/specifiers, then Status or
  // Result<...> as the return type, then the function name and '('. Member
  // fields ("Status status;") and parameters ("Status status,") have no '('
  // directly after the name, so they do not match.
  static const std::regex kDecl(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|inline\s+|virtual\s+|friend\s+|constexpr\s+)*(?:Status|Result<[^;{}()]*>)\s+([A-Za-z_]\w*)\s*\()");
  std::vector<std::string> names;
  for (const std::string& line : lines) {
    std::smatch m;
    if (std::regex_search(line, m, kDecl)) {
      const std::string name = m[1].str();
      if (name != "operator" && name != "Ok") {
        names.push_back(name);
      }
    }
  }
  return names;
}

std::vector<Finding> LintFile(const std::string& rel_path, const std::string& content,
                              const std::vector<std::string>& fallible) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> lines = Sanitize(raw);

  const bool in_src = StartsWith(rel_path, "src/");
  const bool virtual_time_layer = StartsWith(rel_path, "src/sim/") ||
                                  StartsWith(rel_path, "src/net/") ||
                                  StartsWith(rel_path, "src/fault/") ||
                                  StartsWith(rel_path, "src/fleet/");
  const bool fallible_api_layer = StartsWith(rel_path, "src/rpc/") ||
                                  StartsWith(rel_path, "src/fault/") ||
                                  StartsWith(rel_path, "src/wire/") ||
                                  StartsWith(rel_path, "src/trace/") ||
                                  StartsWith(rel_path, "src/monitor/");

  auto add = [&](size_t idx, const char* rule, std::string message) {
    if (!IsSuppressed(raw, idx, rule)) {
      findings.push_back(Finding{rel_path, static_cast<int>(idx) + 1, rule, std::move(message)});
    }
  };

  // --- rpcscope-include-guard -----------------------------------------------
  if (IsHeader(rel_path)) {
    const std::string guard = ExpectedGuard(rel_path);
    bool found = false;
    for (size_t i = 0; i + 1 < lines.size() && !found; ++i) {
      if (lines[i].find("#ifndef " + guard) != std::string::npos &&
          lines[i + 1].find("#define " + guard) != std::string::npos) {
        found = true;
      }
    }
    bool suppressed = false;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (IsSuppressed(raw, i, "rpcscope-include-guard")) {
        suppressed = true;
        break;
      }
    }
    if (!found && !suppressed) {
      findings.push_back(Finding{rel_path, 1, "rpcscope-include-guard",
                                 "header must use the canonical include guard " + guard});
    }
  }

  // --- rpcscope-nodiscard-status --------------------------------------------
  if (fallible_api_layer && IsHeader(rel_path)) {
    static const std::regex kDecl(
        R"(^\s*(?:static\s+|inline\s+|virtual\s+|friend\s+|constexpr\s+)*(?:Status|Result<[^;{}()]*>)\s+([A-Za-z_]\w*)\s*\()");
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, kDecl)) {
        continue;
      }
      const bool marked = lines[i].find("[[nodiscard]]") != std::string::npos ||
                          (i > 0 && lines[i - 1].find("[[nodiscard]]") != std::string::npos);
      if (!marked) {
        add(i, "rpcscope-nodiscard-status",
            "fallible declaration '" + m[1].str() + "' must be [[nodiscard]]");
      }
    }
  }

  // --- rpcscope-discarded-status --------------------------------------------
  if (!fallible.empty()) {
    // An expression-statement that is just a call to a fallible function:
    // optional object/namespace qualification, the name, '('. Assignments,
    // returns, conditions, and initializations do not match because the call
    // is not at statement start.
    std::string alternation;
    for (const std::string& name : fallible) {
      if (!alternation.empty()) {
        alternation += '|';
      }
      alternation += name;
    }
    const std::regex call_stmt(R"(^\s*(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*()" + alternation +
                               R"()\s*\()");
    auto starts_statement = [&lines](size_t i) {
      // A line begins a statement only if the previous non-blank line ended
      // one. Otherwise it is a continuation (wrapped argument list, RHS of an
      // initialization) and the call result is consumed by the outer
      // expression.
      for (size_t j = i; j > 0; --j) {
        const std::string& prev = lines[j - 1];
        const size_t last = prev.find_last_not_of(" \t");
        if (last == std::string::npos) {
          continue;  // Blank; keep looking up.
        }
        const char c = prev[last];
        return c == ';' || c == '{' || c == '}' || c == ':';
      }
      return true;  // First line of the file.
    };
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, call_stmt)) {
        continue;
      }
      if (!starts_statement(i)) {
        continue;
      }
      // Declarations/definitions of the function itself start with a type
      // name, so a match here is genuinely a call at statement start. Skip
      // lines that are part of a larger expression.
      const std::string& line = lines[i];
      if (line.find("return") != std::string::npos || line.find('=') != std::string::npos ||
          line.find("if") != std::string::npos || line.find("while") != std::string::npos ||
          line.find("EXPECT") != std::string::npos || line.find("ASSERT") != std::string::npos ||
          line.find("CHECK") != std::string::npos) {
        continue;
      }
      // `(void)Foo();` is the sanctioned explicit discard.
      if (line.find("(void)") != std::string::npos) {
        continue;
      }
      add(i, "rpcscope-discarded-status",
          "result of fallible call '" + m[1].str() + "' is discarded");
    }
  }

  // --- rpcscope-wallclock ---------------------------------------------------
  if (virtual_time_layer) {
    static const RulePattern kWallclock[] = {
        {R"(std::chrono::system_clock)", "std::chrono::system_clock"},
        {R"(std::chrono::steady_clock)", "std::chrono::steady_clock"},
        {R"(std::chrono::high_resolution_clock)", "std::chrono::high_resolution_clock"},
        {R"(\bgettimeofday\s*\()", "gettimeofday()"},
        {R"(\bclock_gettime\s*\()", "clock_gettime()"},
        {R"(\btime\s*\()", "time()"},
        {R"(\brand\s*\()", "rand()"},
        {R"(\bsrand\s*\()", "srand()"},
        {R"(std::random_device)", "std::random_device"},
    };
    for (size_t i = 0; i < lines.size(); ++i) {
      for (const RulePattern& p : kWallclock) {
        if (std::regex_search(lines[i], std::regex(p.pattern))) {
          add(i, "rpcscope-wallclock",
              std::string(p.what) +
                  " in a virtual-time layer; use Simulator::Now() / seeded Rng");
          break;
        }
      }
    }
  }

  // --- rpcscope-unordered-iter ----------------------------------------------
  if (virtual_time_layer) {
    const std::vector<std::string> unordered_names = CollectUnorderedNames(lines);
    static const std::regex kRangeFor(R"(for\s*\(.*:(.*)\))");
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, kRangeFor)) {
        continue;
      }
      const std::string range_expr = m[1].str();
      bool hazardous = range_expr.find("unordered_") != std::string::npos;
      for (const std::string& name : unordered_names) {
        hazardous = hazardous || ContainsWord(range_expr, name);
      }
      if (hazardous) {
        add(i, "rpcscope-unordered-iter",
            "iteration over an unordered container in a scheduling layer; order feeds "
            "event timing — use a sorted container or sort keys first");
      }
    }
  }

  // --- rpcscope-serialize-hotpath -------------------------------------------
  if (in_src) {
    // Matches member calls `.Serialize(` / `->Serialize(`. The definition
    // (`Message::Serialize`) and the SerializeTo() replacement do not match.
    static const std::regex kSerializeCall(R"((\.|->)\s*Serialize\s*\()");
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(lines[i], kSerializeCall)) {
        add(i, "rpcscope-serialize-hotpath",
            "vector-returning Serialize() allocates per message on the wire path; "
            "use SerializeTo() with a reused buffer (see docs/PERF.md)");
      }
    }
  }

  // --- rpcscope-raw-thread --------------------------------------------------
  if (in_src && !StartsWith(rel_path, "src/sim/parallel/")) {
    static const RulePattern kRawThread[] = {
        {R"(std::(?:jthread|thread)\b)", "std::thread"},
        {R"(std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b)", "a mutex"},
        {R"(std::condition_variable)", "std::condition_variable"},
        {R"(std::atomic)", "std::atomic"},
        {R"(std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b)", "a lock wrapper"},
        {R"(std::(?:async|future|shared_future|promise|packaged_task)\b)", "std::async/future"},
        {R"(std::(?:barrier|latch|counting_semaphore|binary_semaphore)\b)",
         "a barrier/latch/semaphore"},
        {R"(\bthread_local\b)", "thread_local"},
        {R"(\bpthread_\w+)", "pthreads"},
    };
    for (size_t i = 0; i < lines.size(); ++i) {
      for (const RulePattern& p : kRawThread) {
        if (std::regex_search(lines[i], std::regex(p.pattern))) {
          add(i, "rpcscope-raw-thread",
              std::string(p.what) +
                  " outside src/sim/parallel/; the DES is single-threaded per shard "
                  "domain — model concurrency in virtual time, host threads belong to "
                  "the shard executor only (docs/PARALLEL.md)");
          break;
        }
      }
    }
  }

  // --- rpcscope-cout --------------------------------------------------------
  if (in_src) {
    static const RulePattern kStdout[] = {
        {R"(std::cout)", "std::cout"},
        {R"(\bprintf\s*\()", "printf()"},
        {R"(\bfprintf\s*\(\s*stdout)", "fprintf(stdout, ...)"},
        {R"(\bputs\s*\()", "puts()"},
    };
    for (size_t i = 0; i < lines.size(); ++i) {
      for (const RulePattern& p : kStdout) {
        if (std::regex_search(lines[i], std::regex(p.pattern))) {
          add(i, "rpcscope-cout",
              std::string(p.what) +
                  " in library code; report via Status or take an std::ostream&");
          break;
        }
      }
    }
  }

  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  const std::vector<std::string> scan_dirs = {"src", "tests", "bench", "examples", "tools"};

  auto rel_of = [&root](const fs::path& p) {
    std::string rel = fs::relative(p, root).generic_string();
    return rel;
  };
  auto lintable = [](const std::string& rel) {
    if (rel.find("fixtures") != std::string::npos) {
      return false;  // Lint self-test fixtures violate rules on purpose.
    }
    return rel.ends_with(".h") || rel.ends_with(".cc") || rel.ends_with(".cpp");
  };

  // Pass 1: fallible-function names from src/ headers.
  std::set<std::string> fallible_set;
  fallible_set.insert("GetVarint64");  // bool-fallible: out-param undefined on false.
  const fs::path src_dir = fs::path(root) / "src";
  if (fs::exists(src_dir)) {
    for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
      if (!entry.is_regular_file() || entry.path().extension() != ".h") {
        continue;
      }
      std::ifstream in(entry.path());
      std::stringstream buffer;
      buffer << in.rdbuf();
      for (const std::string& name : CollectFallibleFunctions(buffer.str())) {
        fallible_set.insert(name);
      }
    }
  }
  const std::vector<std::string> fallible(fallible_set.begin(), fallible_set.end());

  // Pass 2: lint every file.
  std::vector<Finding> findings;
  for (const std::string& dir : scan_dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string rel = rel_of(entry.path());
      if (!lintable(rel)) {
        continue;
      }
      std::ifstream in(entry.path());
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::vector<Finding> file_findings = LintFile(rel, buffer.str(), fallible);
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    return a.line < b.line;
  });
  return findings;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return out.str();
}

}  // namespace lint
}  // namespace rpcscope

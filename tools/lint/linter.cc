#include "tools/lint/linter.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "tools/analysis/source_tree.h"
#include "tools/analysis/suppressions.h"
#include "tools/analysis/text.h"

namespace rpcscope {
namespace lint {

namespace {

using analysis::ContainsWord;
using analysis::Sanitize;
using analysis::SplitLines;
using analysis::StartsWith;
using analysis::SuppressionSet;

constexpr char kUnusedNolint[] = "rpcscope-unused-nolint";

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// Expected canonical include guard for a repo-relative header path:
// src/common/check.h -> RPCSCOPE_SRC_COMMON_CHECK_H_.
std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard = "RPCSCOPE_";
  for (char c : rel_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// Identifier names declared as unordered containers in this file (variables
// and members; token-level, so template parameters inside <> are skipped by
// matching the name after the closing angle or after the full type).
std::vector<std::string> CollectUnorderedNames(const std::vector<std::string>& lines) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+([A-Za-z_]\w*))");
  std::vector<std::string> names;
  for (const std::string& line : lines) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      names.push_back((*it)[1].str());
    }
  }
  return names;
}

struct RulePattern {
  const char* pattern;
  const char* what;
};

}  // namespace

std::vector<analysis::RuleDoc> Rules() {
  return {
      {"rpcscope-nodiscard-status",
       "fallible declarations (Status / Result<T>) in fallible-API headers must be "
       "[[nodiscard]]"},
      {"rpcscope-discarded-status",
       "expression-statements that call a known fallible function and drop the result"},
      {"rpcscope-wallclock",
       "wall-clock / libc randomness in the virtual-time layers (src/sim, src/net, "
       "src/fault, src/fleet)"},
      {"rpcscope-unordered-iter",
       "range-for over an unordered container in a scheduling layer; order feeds event "
       "timing"},
      {"rpcscope-include-guard", "headers must carry the canonical RPCSCOPE_<PATH>_H_ guard"},
      {"rpcscope-cout", "std::cout / printf in library code (src/)"},
      {"rpcscope-serialize-hotpath",
       "allocating Message::Serialize() on the wire path; use SerializeTo()"},
      {kUnusedNolint,
       "a NOLINT naming a lint rule that suppressed nothing (enabled by --fail-on-unused)"},
  };
}

std::vector<std::string> CollectFallibleFunctions(const std::string& content) {
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> lines = Sanitize(raw);
  // A declaration line: optional attributes/specifiers, then Status or
  // Result<...> as the return type, then the function name and '('. Member
  // fields ("Status status;") and parameters ("Status status,") have no '('
  // directly after the name, so they do not match.
  static const std::regex kDecl(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|inline\s+|virtual\s+|friend\s+|constexpr\s+)*(?:Status|Result<[^;{}()]*>)\s+([A-Za-z_]\w*)\s*\()");
  std::vector<std::string> names;
  for (const std::string& line : lines) {
    std::smatch m;
    if (std::regex_search(line, m, kDecl)) {
      const std::string name = m[1].str();
      if (name != "operator" && name != "Ok") {
        names.push_back(name);
      }
    }
  }
  return names;
}

std::vector<Finding> LintFile(const std::string& rel_path, const std::string& content,
                              const std::vector<std::string>& fallible, bool check_unused) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> lines = Sanitize(raw);
  SuppressionSet supp = SuppressionSet::Parse(raw);

  const bool in_src = StartsWith(rel_path, "src/");
  const bool virtual_time_layer = StartsWith(rel_path, "src/sim/") ||
                                  StartsWith(rel_path, "src/net/") ||
                                  StartsWith(rel_path, "src/fault/") ||
                                  StartsWith(rel_path, "src/fleet/");
  const bool fallible_api_layer = StartsWith(rel_path, "src/rpc/") ||
                                  StartsWith(rel_path, "src/fault/") ||
                                  StartsWith(rel_path, "src/wire/") ||
                                  StartsWith(rel_path, "src/trace/") ||
                                  StartsWith(rel_path, "src/monitor/");

  auto add = [&](size_t idx, const char* rule, std::string message) {
    if (!supp.IsSuppressed(idx, rule)) {
      findings.push_back(Finding{rel_path, static_cast<int>(idx) + 1, rule, std::move(message)});
    }
  };

  // --- rpcscope-include-guard -----------------------------------------------
  if (IsHeader(rel_path)) {
    const std::string guard = ExpectedGuard(rel_path);
    bool found = false;
    for (size_t i = 0; i + 1 < lines.size() && !found; ++i) {
      if (lines[i].find("#ifndef " + guard) != std::string::npos &&
          lines[i + 1].find("#define " + guard) != std::string::npos) {
        found = true;
      }
    }
    if (!found && !supp.IsSuppressedAnywhere("rpcscope-include-guard")) {
      findings.push_back(Finding{rel_path, 1, "rpcscope-include-guard",
                                 "header must use the canonical include guard " + guard});
    }
  }

  // --- rpcscope-nodiscard-status --------------------------------------------
  if (fallible_api_layer && IsHeader(rel_path)) {
    static const std::regex kDecl(
        R"(^\s*(?:static\s+|inline\s+|virtual\s+|friend\s+|constexpr\s+)*(?:Status|Result<[^;{}()]*>)\s+([A-Za-z_]\w*)\s*\()");
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, kDecl)) {
        continue;
      }
      const bool marked = lines[i].find("[[nodiscard]]") != std::string::npos ||
                          (i > 0 && lines[i - 1].find("[[nodiscard]]") != std::string::npos);
      if (!marked) {
        add(i, "rpcscope-nodiscard-status",
            "fallible declaration '" + m[1].str() + "' must be [[nodiscard]]");
      }
    }
  }

  // --- rpcscope-discarded-status --------------------------------------------
  if (!fallible.empty()) {
    // An expression-statement that is just a call to a fallible function:
    // optional object/namespace qualification, the name, '('. Assignments,
    // returns, conditions, and initializations do not match because the call
    // is not at statement start.
    std::string alternation;
    for (const std::string& name : fallible) {
      if (!alternation.empty()) {
        alternation += '|';
      }
      alternation += name;
    }
    const std::regex call_stmt(R"(^\s*(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*()" + alternation +
                               R"()\s*\()");
    auto starts_statement = [&lines](size_t i) {
      // A line begins a statement only if the previous non-blank line ended
      // one. Otherwise it is a continuation (wrapped argument list, RHS of an
      // initialization) and the call result is consumed by the outer
      // expression.
      for (size_t j = i; j > 0; --j) {
        const std::string& prev = lines[j - 1];
        const size_t last = prev.find_last_not_of(" \t");
        if (last == std::string::npos) {
          continue;  // Blank; keep looking up.
        }
        const char c = prev[last];
        return c == ';' || c == '{' || c == '}' || c == ':';
      }
      return true;  // First line of the file.
    };
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, call_stmt)) {
        continue;
      }
      if (!starts_statement(i)) {
        continue;
      }
      // Declarations/definitions of the function itself start with a type
      // name, so a match here is genuinely a call at statement start. Skip
      // lines that are part of a larger expression.
      const std::string& line = lines[i];
      if (line.find("return") != std::string::npos || line.find('=') != std::string::npos ||
          line.find("if") != std::string::npos || line.find("while") != std::string::npos ||
          line.find("EXPECT") != std::string::npos || line.find("ASSERT") != std::string::npos ||
          line.find("CHECK") != std::string::npos) {
        continue;
      }
      // `(void)Foo();` is the sanctioned explicit discard.
      if (line.find("(void)") != std::string::npos) {
        continue;
      }
      add(i, "rpcscope-discarded-status",
          "result of fallible call '" + m[1].str() + "' is discarded");
    }
  }

  // --- rpcscope-wallclock ---------------------------------------------------
  if (virtual_time_layer) {
    static const RulePattern kWallclock[] = {
        {R"(std::chrono::system_clock)", "std::chrono::system_clock"},
        {R"(std::chrono::steady_clock)", "std::chrono::steady_clock"},
        {R"(std::chrono::high_resolution_clock)", "std::chrono::high_resolution_clock"},
        {R"(\bgettimeofday\s*\()", "gettimeofday()"},
        {R"(\bclock_gettime\s*\()", "clock_gettime()"},
        {R"(\btime\s*\()", "time()"},
        {R"(\brand\s*\()", "rand()"},
        {R"(\bsrand\s*\()", "srand()"},
        {R"(std::random_device)", "std::random_device"},
    };
    for (size_t i = 0; i < lines.size(); ++i) {
      for (const RulePattern& p : kWallclock) {
        if (std::regex_search(lines[i], std::regex(p.pattern))) {
          add(i, "rpcscope-wallclock",
              std::string(p.what) +
                  " in a virtual-time layer; use Simulator::Now() / seeded Rng");
          break;
        }
      }
    }
  }

  // --- rpcscope-unordered-iter ----------------------------------------------
  if (virtual_time_layer) {
    const std::vector<std::string> unordered_names = CollectUnorderedNames(lines);
    static const std::regex kRangeFor(R"(for\s*\(.*:(.*)\))");
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, kRangeFor)) {
        continue;
      }
      const std::string range_expr = m[1].str();
      bool hazardous = range_expr.find("unordered_") != std::string::npos;
      for (const std::string& name : unordered_names) {
        hazardous = hazardous || ContainsWord(range_expr, name);
      }
      if (hazardous) {
        add(i, "rpcscope-unordered-iter",
            "iteration over an unordered container in a scheduling layer; order feeds "
            "event timing — use a sorted container or sort keys first");
      }
    }
  }

  // --- rpcscope-serialize-hotpath -------------------------------------------
  if (in_src) {
    // Matches member calls `.Serialize(` / `->Serialize(`. The definition
    // (`Message::Serialize`) and the SerializeTo() replacement do not match.
    static const std::regex kSerializeCall(R"((\.|->)\s*Serialize\s*\()");
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(lines[i], kSerializeCall)) {
        add(i, "rpcscope-serialize-hotpath",
            "vector-returning Serialize() allocates per message on the wire path; "
            "use SerializeTo() with a reused buffer (see docs/PERF.md)");
      }
    }
  }

  // --- rpcscope-cout --------------------------------------------------------
  if (in_src) {
    static const RulePattern kStdout[] = {
        {R"(std::cout)", "std::cout"},
        {R"(\bprintf\s*\()", "printf()"},
        {R"(\bfprintf\s*\(\s*stdout)", "fprintf(stdout, ...)"},
        {R"(\bputs\s*\()", "puts()"},
    };
    for (size_t i = 0; i < lines.size(); ++i) {
      for (const RulePattern& p : kStdout) {
        if (std::regex_search(lines[i], std::regex(p.pattern))) {
          add(i, "rpcscope-cout",
              std::string(p.what) +
                  " in library code; report via Status or take an std::ostream&");
          break;
        }
      }
    }
  }

  // --- rpcscope-unused-nolint -----------------------------------------------
  if (check_unused) {
    std::vector<std::string> known;
    for (const auto& rule : Rules()) {
      if (rule.name != kUnusedNolint) {
        known.push_back(rule.name);
      }
    }
    const auto unused = supp.UnusedSuppressions(rel_path, known, kUnusedNolint);
    findings.insert(findings.end(), unused.begin(), unused.end());
  }

  return findings;
}

std::vector<Finding> LintTree(const std::string& root, bool check_unused) {
  const std::vector<analysis::SourceFile> files =
      analysis::CollectSourceTree(root, analysis::DefaultScanDirs());

  // Pass 1: fallible-function names from src/ headers.
  std::set<std::string> fallible_set;
  fallible_set.insert("GetVarint64");  // bool-fallible: out-param undefined on false.
  for (const auto& file : files) {
    if (!StartsWith(file.rel_path, "src/") || !IsHeader(file.rel_path)) {
      continue;
    }
    for (const std::string& name : CollectFallibleFunctions(file.content)) {
      fallible_set.insert(name);
    }
  }
  const std::vector<std::string> fallible(fallible_set.begin(), fallible_set.end());

  // Pass 2: lint every file.
  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::vector<Finding> file_findings =
        LintFile(file.rel_path, file.content, fallible, check_unused);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  analysis::SortFindings(findings);
  return findings;
}

}  // namespace lint
}  // namespace rpcscope

// rpcscope_fleetgen: generate fleet trace files for offline analysis.
//
// Samples the calibrated 10,000-method fleet model and writes the spans as a
// TraceStore binary — feed the output to rpcscope_analyze, or to your own
// tooling via trace/storage.h.
//
// Usage:
//   rpcscope_fleetgen --out=spans.bin [--samples=N] [--per-method=K]
//                     [--seed=S]
//   --samples:    N popularity-weighted samples (default 1,000,000)
//   --per-method: instead, K samples of every method (stratified)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/fleet/fleet_sampler.h"
#include "src/trace/storage.h"

using namespace rpcscope;

int main(int argc, char** argv) {
  std::string out;
  std::string catalog_csv;
  int64_t samples = 1000000;
  int per_method = 0;
  uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--samples=", 0) == 0) {
      samples = std::atoll(arg.c_str() + 10);
    } else if (arg.rfind("--per-method=", 0) == 0) {
      per_method = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--catalog-csv=", 0) == 0) {
      catalog_csv = arg.substr(14);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (out.empty() && catalog_csv.empty()) {
    std::fputs("usage: rpcscope_fleetgen --out=spans.bin [--samples=N] "
               "[--per-method=K] [--seed=S]\n",
               stderr);
    return 2;
  }

  const ServiceCatalog services = ServiceCatalog::BuildDefault();
  const MethodCatalog methods = MethodCatalog::Generate(services, {});
  if (!catalog_csv.empty()) {
    std::FILE* f = std::fopen(catalog_csv.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", catalog_csv.c_str());
      return 1;
    }
    const std::string csv = methods.ExportCsv(services);
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("wrote catalog (%d methods) to %s\n", methods.size(), catalog_csv.c_str());
    if (out.empty()) {
      return 0;
    }
  }
  const Topology topology{TopologyOptions{}};
  const CycleCostModel costs;
  FleetSamplerOptions opts;
  opts.seed = seed;
  FleetSampler sampler(&services, &methods, &topology, &costs, opts);

  TraceStore store;
  if (per_method > 0) {
    for (int32_t m = 0; m < methods.size(); ++m) {
      for (int k = 0; k < per_method; ++k) {
        store.Add(sampler.SampleMethod(m).span);
      }
    }
    std::printf("generated %d spans per method x %d methods\n", per_method, methods.size());
  } else {
    for (int64_t i = 0; i < samples; ++i) {
      store.Add(sampler.Sample().span);
    }
    std::printf("generated %lld popularity-weighted spans\n",
                static_cast<long long>(samples));
  }
  if (Status s = store.SaveToFile(out); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu spans to %s\n", store.size(), out.c_str());
  return 0;
}
